"""Fig. 2: serial vs task-parallel additive Schwarz preconditioner.

The paper shows Nsight timelines of the two schedules on a 4x A100 node
and reports ~20% wall-time reduction of the Schwarz phase over 50 steps,
with stream priorities required on NVIDIA but not on AMD.  This bench
runs the discrete-event simulation of both schedules on both device
models and asserts those three findings.
"""

import pytest

from repro.gpu import A100, MI250X_GCD, SchwarzOverlapStudy


@pytest.fixture(scope="module")
def a100_results():
    return SchwarzOverlapStudy(A100).reduction(applications=50)


@pytest.fixture(scope="module")
def mi250x_results():
    return SchwarzOverlapStudy(MI250X_GCD).reduction(applications=50)


def test_fig2_reduction_a100(benchmark, a100_results, capsys):
    study = SchwarzOverlapStudy(A100)
    benchmark(lambda: study.reduction(applications=5))
    r = a100_results
    with capsys.disabled():
        print("\n=== Fig. 2: Schwarz phase over 50 applications (A100) ===")
        print(f"serial:      {r['serial_us'] / 1e3:8.2f} ms")
        print(f"overlapped:  {r['overlap_us'] / 1e3:8.2f} ms")
        print(f"reduction:   {r['reduction']:.1%}  (paper: ~20%)")
        print(f"no-priority: {r['reduction_nopriority']:.1%}")
        print(f"utilization: {r['serial_utilization']:.1%} -> {r['overlap_utilization']:.1%}")
    # Paper: "approximate wall-time reduction ... is 20%".
    assert 0.12 <= r["reduction"] <= 0.32


def test_fig2_priorities_needed_on_nvidia(benchmark, a100_results):
    study = SchwarzOverlapStudy(A100)
    benchmark(lambda: study.run_overlapped(applications=2, priorities=False).wall_us)
    r = a100_results
    assert r["reduction_nopriority"] < 0.5 * r["reduction"]


def test_fig2_priorities_not_needed_on_amd(benchmark, mi250x_results, capsys):
    study = SchwarzOverlapStudy(MI250X_GCD)
    benchmark(lambda: study.run_overlapped(applications=2).wall_us)
    r = mi250x_results
    with capsys.disabled():
        print(f"\nMI250X GCD: reduction {r['reduction']:.1%}, "
              f"without priorities {r['reduction_nopriority']:.1%}")
    assert r["reduction_nopriority"] == pytest.approx(r["reduction"], abs=0.02)


def test_fig2_utilization_improves(benchmark, a100_results):
    study = SchwarzOverlapStudy(A100)
    benchmark(lambda: study.run_serial(applications=2).utilization)
    # "improved GPU utilization (fewer gaps)".
    r = a100_results
    assert r["overlap_utilization"] > r["serial_utilization"]
    assert r["overlap_utilization"] > 0.9


def test_fig2_stream_aware_mpi_prediction(benchmark, capsys):
    # Section 5.3's footnote: stream-aware MPI (Namashivayam et al. [20])
    # "would integrate well with our approach and we expect these to
    # further improve efficiency" -- it was not available on the Cray
    # systems used.  The DES quantifies the prediction: no change while
    # the coarse path hides under the smoother, a further large win once
    # strong scaling makes the latency-bound coarse path critical.
    from repro.gpu.schwarz import SchwarzWorkload

    deep = SchwarzOverlapStudy(A100, SchwarzWorkload(n_elements=1000))
    r_deep = benchmark(lambda: deep.reduction(applications=5))
    r_prod = SchwarzOverlapStudy(A100).reduction(applications=5)
    with capsys.disabled():
        print("\n=== stream-aware MPI (triggered ops) prediction ===")
        print(f"7000 elem/GPU: overlap {r_prod['reduction']:.1%} -> "
              f"stream-aware {r_prod['reduction_stream_aware']:.1%}")
        print(f"1000 elem/GPU: overlap {r_deep['reduction']:.1%} -> "
              f"stream-aware {r_deep['reduction_stream_aware']:.1%}")
    assert r_deep["reduction_stream_aware"] > r_deep["reduction"] + 0.05
    assert r_prod["reduction_stream_aware"] == pytest.approx(r_prod["reduction"], abs=0.01)


def test_fig2_timeline_rendering(benchmark, capsys):
    study = SchwarzOverlapStudy(A100)
    ovl = study.run_overlapped(applications=1)
    txt = benchmark(ovl.simulator.render_timeline, 90)
    with capsys.disabled():
        print("\n=== Fig. 2 timeline (task-parallel, one application) ===")
        print(txt)
    # Two streams and two host threads present, kernels overlap.
    assert "stream0" in txt and "stream1" in txt
    assert "host0" in txt and "host1" in txt
