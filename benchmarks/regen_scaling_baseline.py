"""Regenerate the committed ``BENCH_scaling.json`` golden baseline.

The scaling campaign's "seconds" are *simulated* (DES) step times --
deterministic functions of the mesh structure, the partition and the
Table 1 machine parameters, with no wall clock anywhere -- so the
baseline is a golden file, reproducible bit-for-bit on any host.  Commit
the regenerated file whenever a deliberate change to the comm engine,
the cost model or the work model moves the numbers, together with the
reasoning for the move::

    PYTHONPATH=src python -m benchmarks.regen_scaling_baseline

CI re-runs the identical campaign and diffs against the committed copy
with a tight threshold (``compare_bench --threshold 0.05``); an
unexplained drift there means the simulated machine changed when only
the code was supposed to.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.comm.campaign import DEFAULT_RANKS, DEFAULT_SHAPE, bench_record, run_fig3_campaign

__all__ = ["regenerate", "main"]

#: The committed baseline lives at the repository root, next to the other
#: BENCH_* baselines the comparator knows about.
BASELINE = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"


def regenerate(path: Path = BASELINE) -> Path:
    """Run the deterministic campaign and (over)write the baseline."""
    results = run_fig3_campaign(DEFAULT_RANKS, shape=DEFAULT_SHAPE, lx=8)
    # No environment block: the payload is host-independent, and keeping
    # the golden file free of timestamps keeps its diffs reviewable.
    record = bench_record(results, environment={})
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(BASELINE), help="baseline path to write")
    args = parser.parse_args(argv)
    path = regenerate(Path(args.out))
    data = json.loads(path.read_text())
    print(f"wrote {path} ({len(data['results'])} entries)")
    for name, rec in sorted(data["results"].items()):
        print(
            f"  {name:<28s} {rec['seconds'] * 1e3:9.3f} ms  "
            f"eff {rec['efficiency']:.3f}  topo x{rec['gs_topology_speedup']:.2f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
