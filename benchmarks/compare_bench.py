"""Comparator for the bench trajectory: diff a run against the baseline.

Reads two ``BENCH_*.json`` files produced by
:mod:`benchmarks.perf_harness` and fails (nonzero exit) when any shared
benchmark slowed down beyond the noise threshold, or when the candidate
dropped a benchmark the baseline has (silent coverage loss reads as
"nothing regressed" when nothing was measured).

The threshold is *relative*: ``--threshold 0.3`` tolerates a 30 % slowdown
per entry.  Same-machine smoke runs sit well inside that; a genuine 2x
regression is far outside it.  Cross-machine comparisons (CI vs. the
committed baseline) should pass a generous threshold -- the point there is
catching catastrophic regressions, not 10 % drifts on different silicon.

Usage::

    PYTHONPATH=src python -m benchmarks.compare_bench \
        BENCH_kernels.json bench_out/BENCH_kernels.json --threshold 0.3
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Comparison", "compare", "render_table", "main"]


@dataclass
class Comparison:
    """Outcome for one benchmark entry."""

    name: str
    baseline_seconds: float | None
    candidate_seconds: float | None
    ratio: float | None
    regressed: bool

    def describe(self, threshold: float) -> str:
        if self.baseline_seconds is None:
            return f"  NEW  {self.name:<20s} {self.candidate_seconds * 1e3:9.3f} ms (no baseline)"
        if self.candidate_seconds is None:
            return f"  GONE {self.name:<20s} missing from candidate (was {self.baseline_seconds * 1e3:.3f} ms)"
        verdict = "FAIL" if self.regressed else ("ok  " if self.ratio <= 1.0 + threshold else "??  ")
        return (
            f"  {verdict} {self.name:<20s} {self.baseline_seconds * 1e3:9.3f} -> "
            f"{self.candidate_seconds * 1e3:9.3f} ms   x{self.ratio:.3f}"
        )


def compare(baseline: dict, candidate: dict, threshold: float = 0.3) -> list[Comparison]:
    """Entry-by-entry comparison of two bench records.

    An entry regresses when ``candidate > baseline * (1 + threshold)``;
    an entry present in the baseline but absent from the candidate also
    counts as a regression (lost coverage).
    """
    base = baseline.get("results", {})
    cand = candidate.get("results", {})
    out: list[Comparison] = []
    for name in sorted(set(base) | set(cand)):
        b = base.get(name, {}).get("seconds")
        c = cand.get(name, {}).get("seconds")
        if b is None:
            out.append(Comparison(name, None, c, None, regressed=False))
        elif c is None:
            out.append(Comparison(name, b, None, None, regressed=True))
        else:
            ratio = c / b if b > 0 else float("inf")
            out.append(Comparison(name, b, c, ratio, regressed=ratio > 1.0 + threshold))
    return out


def render_table(comparisons: list[Comparison], threshold: float) -> list[str]:
    """Aligned per-entry summary table, printed on success and failure alike.

    A green run that shows its numbers is reviewable; a green run that
    prints nothing forces the reviewer to trust the exit code.
    """
    name_w = max([len(c.name) for c in comparisons] + [len("benchmark")])
    header = (
        f"  {'benchmark':<{name_w}s} {'baseline':>12s} {'candidate':>12s} "
        f"{'ratio':>8s}  verdict"
    )
    lines = [header, "  " + "-" * (len(header) - 2)]
    for c in comparisons:
        base = f"{c.baseline_seconds * 1e3:9.3f} ms" if c.baseline_seconds is not None else "-"
        cand = f"{c.candidate_seconds * 1e3:9.3f} ms" if c.candidate_seconds is not None else "-"
        ratio = f"x{c.ratio:.3f}" if c.ratio is not None else "-"
        if c.regressed:
            verdict = "FAIL" if c.candidate_seconds is not None else "GONE"
        elif c.baseline_seconds is None:
            verdict = "NEW"
        else:
            verdict = "ok"
        lines.append(
            f"  {c.name:<{name_w}s} {base:>12s} {cand:>12s} {ratio:>8s}  {verdict}"
        )
    measured = [c for c in comparisons if c.ratio is not None]
    n_fail = sum(c.regressed for c in comparisons)
    tail = f"  {len(comparisons)} entr{'y' if len(comparisons) == 1 else 'ies'}, {n_fail} regressed"
    if measured:
        worst = max(measured, key=lambda c: c.ratio)
        tail += f"; worst ratio x{worst.ratio:.3f} ({worst.name})"
    lines.append(tail)
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_*.json baseline")
    parser.add_argument("candidate", type=Path, help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.3,
        help="tolerated relative slowdown per entry (0.3 = 30%%)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    candidate = json.loads(args.candidate.read_text())
    comparisons = compare(baseline, candidate, threshold=args.threshold)

    print(f"comparing {args.candidate} against {args.baseline} (threshold {args.threshold:.0%})")
    for line in render_table(comparisons, args.threshold):
        print(line)
    regressed = [c for c in comparisons if c.regressed]
    if regressed:
        print(f"REGRESSION: {len(regressed)} entr{'y' if len(regressed) == 1 else 'ies'} "
              f"beyond the {args.threshold:.0%} threshold")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
