"""Comparator for the bench trajectory: diff a run against the baseline.

Reads two ``BENCH_*.json`` files produced by
:mod:`benchmarks.perf_harness` and fails (nonzero exit) when any shared
benchmark slowed down beyond the noise threshold, or when the candidate
dropped a benchmark the baseline has (silent coverage loss reads as
"nothing regressed" when nothing was measured).

The threshold is *relative*: ``--threshold 0.3`` tolerates a 30 % slowdown
per entry.  Same-machine smoke runs sit well inside that; a genuine 2x
regression is far outside it.  Cross-machine comparisons (CI vs. the
committed baseline) should pass a generous threshold -- the point there is
catching catastrophic regressions, not 10 % drifts on different silicon.

Usage::

    PYTHONPATH=src python -m benchmarks.compare_bench \
        BENCH_kernels.json bench_out/BENCH_kernels.json --threshold 0.3
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Comparison",
    "compare",
    "check_min_speedups",
    "check_ledger_trends",
    "parse_min_speedups",
    "render_table",
    "main",
]

#: Structural sub-keys the comparator refuses to lose.  ``calls`` and
#: ``bytes`` carry the traffic accounting behind the bandwidth figures and
#: ``memory`` the peak-RSS/allocation-delta footprint; a candidate that
#: drops any of them from an entry the baseline measures has silently lost
#: coverage even if its wall time looks fine.
TRACKED_SUBKEYS = ("calls", "bytes", "memory")


@dataclass
class Comparison:
    """Outcome for one benchmark entry."""

    name: str
    baseline_seconds: float | None
    candidate_seconds: float | None
    ratio: float | None
    regressed: bool
    lost_subkeys: list[str] = field(default_factory=list)

    def describe(self, threshold: float) -> str:
        if self.baseline_seconds is None:
            return f"  NEW  {self.name:<20s} {self.candidate_seconds * 1e3:9.3f} ms (no baseline)"
        if self.candidate_seconds is None:
            return f"  GONE {self.name:<20s} missing from candidate (was {self.baseline_seconds * 1e3:.3f} ms)"
        verdict = "FAIL" if self.regressed else ("ok  " if self.ratio <= 1.0 + threshold else "??  ")
        return (
            f"  {verdict} {self.name:<20s} {self.baseline_seconds * 1e3:9.3f} -> "
            f"{self.candidate_seconds * 1e3:9.3f} ms   x{self.ratio:.3f}"
        )


def compare(baseline: dict, candidate: dict, threshold: float = 0.3) -> list[Comparison]:
    """Entry-by-entry comparison of two bench records.

    An entry regresses when ``candidate > baseline * (1 + threshold)``;
    an entry present in the baseline but absent from the candidate also
    counts as a regression (lost coverage), as does an entry that dropped
    a :data:`TRACKED_SUBKEYS` sub-key the baseline records.
    """
    base = baseline.get("results", {})
    cand = candidate.get("results", {})
    out: list[Comparison] = []
    for name in sorted(set(base) | set(cand)):
        b = base.get(name, {}).get("seconds")
        c = cand.get(name, {}).get("seconds")
        if b is None:
            out.append(Comparison(name, None, c, None, regressed=False))
        elif c is None:
            out.append(Comparison(name, b, None, None, regressed=True))
        else:
            ratio = c / b if b > 0 else float("inf")
            lost = [
                k for k in TRACKED_SUBKEYS
                if k in base[name] and k not in cand[name]
            ]
            out.append(
                Comparison(
                    name, b, c, ratio,
                    regressed=ratio > 1.0 + threshold or bool(lost),
                    lost_subkeys=lost,
                )
            )
    return out


def parse_min_speedups(specs: list[str]) -> dict[str, float]:
    """Parse repeated ``--min-speedup ENTRY=MIN`` values."""
    out: dict[str, float] = {}
    for spec in specs:
        name, sep, value = spec.partition("=")
        if not sep or not name:
            raise ValueError(f"--min-speedup expects ENTRY=MIN, got {spec!r}")
        try:
            out[name] = float(value)
        except ValueError:
            raise ValueError(f"--min-speedup {spec!r}: {value!r} is not a number")
    return out


def check_min_speedups(
    baseline: dict, candidate: dict, required: dict[str, float]
) -> list[str]:
    """Enforce ``--min-speedup ENTRY=MIN``; returns failure messages.

    For a self-contained A/B entry (one carrying both ``seconds`` and
    ``legacy_seconds``, like ``pressure_fastpath``) the speedup is the
    candidate's own ``legacy_seconds / seconds`` -- machine-independent,
    which is what lets CI gate a ratio measured on different silicon than
    the committed baseline.  Otherwise the speedup is cross-file:
    ``baseline seconds / candidate seconds``.
    """
    failures: list[str] = []
    cand = candidate.get("results", {})
    base = baseline.get("results", {})
    for name, minimum in sorted(required.items()):
        rec = cand.get(name)
        if rec is None or "seconds" not in rec:
            failures.append(f"{name}: required speedup x{minimum:g} but entry is missing")
            continue
        if "legacy_seconds" in rec:
            speedup = rec["legacy_seconds"] / rec["seconds"]
            kind = "self (legacy/fast)"
        elif name in base and base[name].get("seconds"):
            speedup = base[name]["seconds"] / rec["seconds"]
            kind = "vs baseline"
        else:
            failures.append(
                f"{name}: required speedup x{minimum:g} but no baseline or "
                "legacy_seconds to compare against"
            )
            continue
        if speedup < minimum:
            failures.append(
                f"{name}: speedup x{speedup:.3f} ({kind}) below required x{minimum:g}"
            )
    return failures


def check_ledger_trends(
    candidate: dict, ledger_path: Path, window: int = 5, threshold: float = 0.3
) -> list[str]:
    """Gate the candidate against the campaign ledger's recent history.

    The two-file diff above compares against *one* baseline run; the
    ledger gate compares against the rolling median of the last ``window``
    recorded runs, which is robust to a single noisy baseline.  For every
    candidate entry whose name the ledger knows, the candidate's seconds
    must stay within ``(1 + threshold)`` of that median.  Returns failure
    messages (empty = pass).  A missing or too-short ledger series is not
    a failure -- trend gating only engages once history exists.
    """
    from repro.observability.campaign import Ledger
    from repro.observability.campaign.trend import median

    ledger = Ledger(Path(ledger_path))
    cand = candidate.get("results", {})
    failures: list[str] = []
    for name in sorted(cand):
        seconds = cand[name].get("seconds")
        if seconds is None:
            continue
        history = [v for _, v in ledger.series(name)][-window:]
        if len(history) < 3:
            continue
        baseline = median(history)
        if baseline > 0 and seconds > baseline * (1.0 + threshold):
            failures.append(
                f"{name}: {seconds * 1e3:.3f} ms is x{seconds / baseline:.3f} the "
                f"rolling median of the last {len(history)} ledger runs "
                f"({baseline * 1e3:.3f} ms)"
            )
    return failures


def render_table(comparisons: list[Comparison], threshold: float) -> list[str]:
    """Aligned per-entry summary table, printed on success and failure alike.

    A green run that shows its numbers is reviewable; a green run that
    prints nothing forces the reviewer to trust the exit code.
    """
    name_w = max([len(c.name) for c in comparisons] + [len("benchmark")])
    header = (
        f"  {'benchmark':<{name_w}s} {'baseline':>12s} {'candidate':>12s} "
        f"{'ratio':>8s}  verdict"
    )
    lines = [header, "  " + "-" * (len(header) - 2)]
    for c in comparisons:
        base = f"{c.baseline_seconds * 1e3:9.3f} ms" if c.baseline_seconds is not None else "-"
        cand = f"{c.candidate_seconds * 1e3:9.3f} ms" if c.candidate_seconds is not None else "-"
        ratio = f"x{c.ratio:.3f}" if c.ratio is not None else "-"
        if c.regressed:
            verdict = "FAIL" if c.candidate_seconds is not None else "GONE"
        elif c.baseline_seconds is None:
            verdict = "NEW"
        else:
            verdict = "ok"
        if c.lost_subkeys:
            verdict += f" (lost sub-keys: {', '.join(c.lost_subkeys)})"
        lines.append(
            f"  {c.name:<{name_w}s} {base:>12s} {cand:>12s} {ratio:>8s}  {verdict}"
        )
    measured = [c for c in comparisons if c.ratio is not None]
    n_fail = sum(c.regressed for c in comparisons)
    tail = f"  {len(comparisons)} entr{'y' if len(comparisons) == 1 else 'ies'}, {n_fail} regressed"
    if measured:
        worst = max(measured, key=lambda c: c.ratio)
        tail += f"; worst ratio x{worst.ratio:.3f} ({worst.name})"
    lines.append(tail)
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_*.json baseline")
    parser.add_argument("candidate", type=Path, help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.3,
        help="tolerated relative slowdown per entry (0.3 = 30%%)",
    )
    parser.add_argument(
        "--min-speedup",
        action="append",
        default=[],
        metavar="ENTRY=MIN",
        help="require a minimum speedup for ENTRY (repeatable); entries "
        "carrying legacy_seconds are gated on their own legacy/fast "
        "ratio, others against the baseline file",
    )
    parser.add_argument(
        "--ledger",
        type=Path,
        default=None,
        help="campaign ledger (JSONL); also gate the candidate against the "
        "rolling median of recent ledger runs",
    )
    parser.add_argument(
        "--trend-window",
        type=int,
        default=5,
        help="number of recent ledger runs the trend gate medians over",
    )
    args = parser.parse_args(argv)
    try:
        required = parse_min_speedups(args.min_speedup)
    except ValueError as exc:
        parser.error(str(exc))

    baseline = json.loads(args.baseline.read_text())
    candidate = json.loads(args.candidate.read_text())
    comparisons = compare(baseline, candidate, threshold=args.threshold)

    print(f"comparing {args.candidate} against {args.baseline} (threshold {args.threshold:.0%})")
    for line in render_table(comparisons, args.threshold):
        print(line)
    failed = False
    regressed = [c for c in comparisons if c.regressed]
    if regressed:
        print(f"REGRESSION: {len(regressed)} entr{'y' if len(regressed) == 1 else 'ies'} "
              f"beyond the {args.threshold:.0%} threshold")
        failed = True
    speedup_failures = check_min_speedups(baseline, candidate, required)
    for msg in speedup_failures:
        print(f"SPEEDUP GATE: {msg}")
        failed = True
    if args.ledger is not None:
        trend_failures = check_ledger_trends(
            candidate, args.ledger, window=args.trend_window, threshold=args.threshold
        )
        for msg in trend_failures:
            print(f"TREND GATE: {msg}")
            failed = True
        if not trend_failures:
            print(f"ledger trend gate satisfied ({args.ledger})")
    if failed:
        return 1
    if required:
        print(f"speedup gate{'s' if len(required) > 1 else ''} satisfied")
    print("no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
