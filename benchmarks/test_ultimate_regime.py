"""Section 8.1: the Nu(Ra) scaling question the workflow exists to settle.

Combines DNS at laptop Ra with the Grossmann-Lohse classical branch and
the Kraichnan ultimate branch, then runs the analysis the paper's future
production data will face: power-law fits, the local exponent
gamma(Ra) = d ln Nu / d ln Ra, and crossover detection.

Shape claims asserted: the classical branch fits gamma ~ 1/3 (Iyer et
al.'s 0.331 within tolerance), the composite curve leaves the classical
plateau beyond Ra ~ 1e13, and the detected crossover lands in the
contested 1e13-1e15 window.
"""

import numpy as np
import pytest

from repro.analysis import (
    GrossmannLohse,
    UltimateExtension,
    detect_crossover,
    fit_power_law,
    local_exponents,
)


@pytest.fixture(scope="module")
def gl():
    return GrossmannLohse()


@pytest.fixture(scope="module")
def composite(gl):
    ue = UltimateExtension(gl=gl)
    ra = np.logspace(8, 17, 37)
    return ue, ra, ue.nusselt(ra)


def test_dns_point_consistent_with_gl(benchmark, box_sim, gl, capsys):
    s = benchmark(box_sim.sample_statistics)
    nu_dns = s.nusselt.volume
    nu_gl = gl.solve(box_sim.config.rayleigh)[0]
    with capsys.disabled():
        print(f"\nDNS at Ra = {box_sim.config.rayleigh:g}: Nu = {nu_dns:.2f} "
              f"(GL theory: {nu_gl:.2f})")
    # Coarse DNS within a factor ~2 of theory (resolution-limited).
    assert 0.4 < nu_dns / nu_gl < 2.5


def test_classical_branch_exponent(benchmark, gl, capsys):
    ra = np.logspace(9, 15, 13)
    fit = benchmark.pedantic(lambda: fit_power_law(ra, gl.nusselt(ra)), rounds=2, iterations=1)
    with capsys.disabled():
        print(f"\nclassical fit over [1e9, 1e15]: Nu = {fit.prefactor:.4f} "
              f"Ra^{fit.exponent:.4f}  (Iyer et al.: 0.0525 Ra^0.331)")
    assert fit.exponent == pytest.approx(0.331, abs=0.025)
    assert fit.r_squared > 0.999


def test_ultimate_crossover_window(benchmark, composite, capsys):
    ue, ra, nu = composite
    cx_branch = benchmark.pedantic(ue.crossover_ra, rounds=2, iterations=1)
    cx_detected = detect_crossover(ra, nu)
    with capsys.disabled():
        print(f"\nbranch crossover: Ra = {cx_branch:.2e}; "
              f"detected (gamma > 5/12): Ra = {cx_detected:.2e}")
    assert 1e13 < cx_branch < 1e15
    assert cx_detected is not None
    assert 1e12 < cx_detected < 1e16


def test_local_exponent_plateaus(benchmark, composite, capsys):
    _, ra, nu = composite
    ra_mid, gamma = benchmark(local_exponents, ra, nu)
    with capsys.disabled():
        print("\ngamma(Ra):")
        for r, g in zip(ra_mid[::6], gamma[::6]):
            print(f"  Ra = {r:8.1e}  gamma = {g:.3f}")
    low = gamma[ra_mid < 1e11]
    high = gamma[ra_mid > 3e15]
    assert np.all(low < 0.36)
    assert np.all(high > 0.42)


def test_iyer_conclusion_reproducible(benchmark, gl):
    # "Classical 1/3 scaling of convection holds up to Ra = 1e15": on the
    # pure GL branch no crossover is detected through 1e15.
    ra = np.logspace(10, 15, 11)
    nus = gl.nusselt(ra)
    assert benchmark(detect_crossover, ra, nus) is None


def test_gl_solve_benchmark(benchmark, gl):
    nu, re = benchmark(gl.solve, 1e12, 1.0)
    assert nu > 100
    assert re > 1e4
