"""Shared fixtures for the experiment benchmarks.

The DNS-backed benches (Figs. 1, 4, 5) share two short simulations run
once per session: a box RBC case in a convective state and a cylinder
case in the paper's geometry.  Both are laptop-scale stand-ins for the
production runs; the benches compare *shapes*, not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.core import Simulation, rbc_box_case, rbc_cylinder_case


@pytest.fixture(scope="session")
def box_sim() -> Simulation:
    """Box RBC at Ra = 1e5 advanced into (weakly turbulent) convection."""
    config = rbc_box_case(1e5, n=(3, 3, 3), lx=6, aspect=2.0,
                          perturbation_amplitude=0.1)
    sim = Simulation(config)
    sim.run(n_steps=220, stats_interval=20)
    return sim


@pytest.fixture(scope="session")
def cyl_sim() -> Simulation:
    """Cylinder RBC (the Fig. 1 geometry) after a short development time."""
    config = rbc_cylinder_case(5e4, aspect=1.0, n_square=2, n_ring=2, n_z=5,
                               lx=5, perturbation_amplitude=0.1)
    sim = Simulation(config)
    sim.run(n_steps=120, stats_interval=20)
    return sim
