"""Table 1: hardware and software details of the experimental platforms.

Regenerates the paper's platform table from the machine registry and
validates every printed value, plus the derived quantities the analysis
relies on (GCD counting, machine fractions of the scaling runs, memory/
flop balance).
"""

import pytest

from repro.perfmodel import LEONARDO, LUMI, platform_table


def test_table1_rendering(benchmark, capsys):
    table = benchmark(platform_table)
    with capsys.disabled():
        print("\n=== Table 1 (regenerated) ===")
        print(table)
    # Every cell of the paper's table appears.
    for token in (
        "LUMI", "Leonardo",
        "AMD MI250X", "NVIDIA A100",
        "47.9", "9.7",
        "3300", "1550",
        "10240", "13824",
        "HPE Slingshot 11", "Nvidia HDR",
        "200 GbE NICs (4x200 Gb/s)", "2x(2x100 Gb/s)",
        "Cray MPICH 8.1.18", "OpenMPI 4.1.4",
        "CCE 14.0.2", "GCC 8.5.0",
        "5.16.9.22.20", "520.61.05",
        "ROCm 5.2.3", "CUDA 11.8",
    ):
        assert token in table, token


def test_table1_derived_quantities(benchmark):
    benchmark(lambda: (LUMI.machine_balance_bytes_per_flop, LEONARDO.injection_per_gpu_gbs))
    # Machine fractions quoted in Section 7.1.
    assert 4096 / LUMI.n_logical_gpus == pytest.approx(0.20)
    assert 8192 / LUMI.n_logical_gpus == pytest.approx(0.40)
    assert 16384 / LUMI.n_logical_gpus == pytest.approx(0.80)
    assert 3456 / LEONARDO.n_logical_gpus == pytest.approx(0.25)
    assert 6912 / LEONARDO.n_logical_gpus == pytest.approx(0.50)
    # Rmax (Section 7): 309.10 and 174.70 PFlop/s, ranks 3 and 4.
    assert LUMI.rmax_pflops == 309.10
    assert LEONARDO.rmax_pflops == 174.70
    # Both machines offer < 0.2 bytes/flop -- the matrix-free argument.
    assert LUMI.machine_balance_bytes_per_flop < 0.2
    assert LEONARDO.machine_balance_bytes_per_flop < 0.2
