"""Fig. 1: the canonical RBC flow in a cylindrical cell.

The paper's Fig. 1 visualizes convection in the cylinder (warm rising /
cold falling fluid) with a cross-section AA near the heated bottom wall
showing the velocity magnitude and temperature fields.  At laptop scale
this bench runs the same geometry, checks the physical signatures the
figure illustrates, and extracts the AA cross-section data.
"""

import numpy as np


def test_fig1_convection_established(benchmark, cyl_sim, capsys):
    s = benchmark(cyl_sim.sample_statistics)
    with capsys.disabled():
        print(f"\n=== Fig. 1 case: {cyl_sim.config.name} ===")
        print(f"t = {cyl_sim.time:.2f}, Nu_vol = {s.nusselt.volume:.3f}, "
              f"Re = {s.reynolds:.1f}, KE = {s.kinetic_energy:.3e}")
    assert np.isfinite(s.nusselt.volume)
    assert s.kinetic_energy > 0


def test_fig1_warm_rises_cold_falls(benchmark, cyl_sim):
    # The figure's message: buoyancy correlates uz with T.
    uz = cyl_sim.velocity[2]
    t = cyl_sim.temperature
    corr = benchmark(lambda: cyl_sim.space.integrate(uz * t))
    assert corr > 0.0


def test_fig1_cross_section_aa(benchmark, cyl_sim, capsys):
    # Slice near the heated bottom wall: temperature contrast and nonzero
    # velocity magnitude, as the inset shows.
    space = cyl_sim.space
    z = space.z
    sel = benchmark(lambda: np.abs(z - 0.15) < 0.08)
    assert sel.any()
    t_slice = cyl_sim.temperature[sel]
    umag = np.sqrt(sum(c**2 for c in cyl_sim.velocity))[sel]
    with capsys.disabled():
        print(f"\nAA slice: T in [{t_slice.min():+.3f}, {t_slice.max():+.3f}], "
              f"|u| up to {umag.max():.3f}")
    assert t_slice.max() - t_slice.min() > 0.05
    assert umag.max() > 1e-3


def test_fig1_no_slip_walls_hold(benchmark, cyl_sim):
    benchmark(cyl_sim.fluid.divergence_norm)
    mask = cyl_sim.fluid.vel_mask
    for comp in cyl_sim.velocity:
        assert np.allclose(comp[mask == 0.0], 0.0, atol=1e-13)


def test_fig1_step_cost(benchmark, cyl_sim):
    # Time one coupled step of the cylinder case (the whole-application
    # quantity Fig. 3 is built from).
    benchmark.pedantic(cyl_sim.step, rounds=3, iterations=1, warmup_rounds=1)
