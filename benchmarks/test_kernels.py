"""Solver kernel microbenchmarks (the roofline calibration set).

Times the matrix-free kernels the performance model budgets -- Helmholtz
ax, gather--scatter, dealiased advection, FDM local solve -- and reports
their achieved effective bandwidth.  These are the numbers behind the
``bandwidth_efficiency`` parameter of :class:`repro.perfmodel.SEMWorkModel`.
"""

import numpy as np
import pytest

from repro.precond import FastDiagonalization
from repro.sem.dealias import Dealiaser
from repro.sem.mesh import box_mesh
from repro.sem.operators import ax_helmholtz
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def sp():
    # Production-like polynomial degree 7, modest element count.
    return FunctionSpace(box_mesh((6, 6, 6)), 8)


@pytest.fixture(scope="module")
def u(sp):
    rng = np.random.default_rng(0)
    return rng.normal(size=sp.shape)


def report_bw(capsys, name, nbytes, seconds):
    with capsys.disabled():
        print(f"\n{name}: {nbytes / seconds / 1e9:.2f} GB/s effective")


def test_bench_ax_helmholtz(benchmark, sp, u, capsys):
    result = benchmark(ax_helmholtz, u, sp.coef, sp.dx, 1.0, 10.0)
    assert result.shape == sp.shape
    # ~9 field-sized streams (u, out, 6 G arrays, mass).
    nbytes = 9 * u.nbytes
    report_bw(capsys, "ax_helmholtz", nbytes, benchmark.stats["mean"])


def test_bench_gather_scatter(benchmark, sp, u, capsys):
    result = benchmark(sp.gs.add, u)
    assert result.shape == sp.shape
    report_bw(capsys, "gather_scatter", 2 * u.nbytes, benchmark.stats["mean"])


def test_bench_dealias_convection(benchmark, sp, u, capsys):
    dl = Dealiaser(sp)
    cx = cy = cz = u
    cf = (dl.to_fine(cx), dl.to_fine(cy), dl.to_fine(cz))
    result = benchmark(dl.convect_weak, cx, cy, cz, u, cf)
    assert result.shape == sp.shape
    fine_bytes = u.nbytes * (dl.lxd / sp.lx) ** 3
    report_bw(capsys, "dealias_convect", 6 * fine_bytes, benchmark.stats["mean"])


def test_bench_fdm_solve(benchmark, sp, u, capsys):
    fdm = FastDiagonalization(sp)
    result = benchmark(fdm.solve, u)
    assert result.shape == sp.shape
    report_bw(capsys, "fdm_solve", 6 * u.nbytes, benchmark.stats["mean"])


def test_bench_full_pressure_preconditioner(benchmark, sp, u, capsys):
    from repro.precond import HybridSchwarzMultigrid

    hsmg = HybridSchwarzMultigrid(sp)
    r = sp.gs.add(u)
    result = benchmark(hsmg, r)
    assert result.shape == sp.shape
    with capsys.disabled():
        t = hsmg.timing
        print(f"\nhsmg: coarse {t.coarse / t.applications * 1e3:.2f} ms, "
              f"schwarz {t.schwarz / t.applications * 1e3:.2f} ms per application "
              f"(the Fig. 2 decomposition, measured)")
