"""Fig. 5: lossy compression of a velocity field.

The paper compresses a stream-wise velocity field of the Ra = 1e11 case
to 97% size reduction at 2.5% relative (weighted-L^2) error, noting that
conservative settings of 85-90% reduction preserve high-fidelity
post-processing.  Two field sources are exercised:

* a **resolved synthetic turbulence field** (random Fourier modes with a
  Kolmogorov-like spectrum, finest mode at ~5 points per wavelength --
  standard DNS resolution).  This is the stand-in for the paper's
  well-resolved Ra = 1e11 data and reproduces the 97% / 2.5% operating
  point;
* the **live DNS velocity field** from the shared laptop-scale run, which
  is only marginally resolved and therefore compresses less at a given
  error -- the trade-off curve is printed and its monotonicity asserted.
"""

import numpy as np
import pytest

from repro.compression import SpectralCompressor
from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def resolved_field():
    """Synthetic resolved turbulence on a degree-7, 4^3-element grid."""
    sp = FunctionSpace(box_mesh((4, 4, 4)), 8)
    rng = np.random.default_rng(0)
    u = np.zeros(sp.shape)
    for k in range(1, 6):
        for _ in range(4):
            kv = rng.normal(size=3)
            kv = kv / np.linalg.norm(kv) * k
            ph = rng.uniform(0, 2 * np.pi)
            u += k ** (-5.0 / 6.0) * np.sin(
                2 * np.pi * (kv[0] * sp.x + kv[1] * sp.y + kv[2] * sp.z) + ph
            )
    return sp, u


@pytest.fixture(scope="module")
def velocity_field(box_sim):
    # Stream-wise (x) velocity of the developed convection state.
    return box_sim.velocity[0].copy()


def tradeoff(space, field, bounds, quant_bits=16):
    rows = []
    for eps in bounds:
        comp = SpectralCompressor(space, error_bound=eps, quant_bits=quant_bits)
        cf, err = comp.roundtrip(field)
        rows.append((eps, cf.reduction, err))
    return rows


def test_fig5_paper_operating_point(benchmark, resolved_field, capsys):
    # The headline: 97% reduction at 2.5% error on a resolved field.
    sp, u = resolved_field
    comp = SpectralCompressor(sp, error_bound=0.025, quant_bits=12)
    cf, err = benchmark.pedantic(comp.roundtrip, args=(u,), rounds=2, iterations=1)
    with capsys.disabled():
        print(f"\n=== Fig. 5 operating point (resolved field) ===")
        print(f"reduction {cf.reduction:.1%} at weighted-L2 error {err:.2%} "
              f"(paper: 97% at 2.5%)")
    assert cf.reduction >= 0.95
    assert err <= 0.035
    # "No visual difference": the reconstruction stays highly correlated.
    rec = cf.decompress()
    corr = np.corrcoef(rec.reshape(-1), u.reshape(-1))[0, 1]
    assert corr > 0.995


def test_fig5_conservative_band(benchmark, resolved_field, capsys):
    # "conservative compression levels of 85-90% allow for high-fidelity
    # results": within that band the error is well below a percent.
    sp, u = resolved_field
    rows = benchmark.pedantic(
        tradeoff, args=(sp, u, [0.0005, 0.001, 0.002, 0.005]), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\nconservative band (resolved field):")
        for eps, red, err in rows:
            print(f"  bound {eps:7.4f}: reduction {red:6.1%}, error {err:.3%}")
    in_band = [(red, err) for _, red, err in rows if 0.85 <= red <= 0.95]
    assert in_band, "no operating point landed in the 85-95% band"
    assert all(err < 0.01 for _, err in in_band)


def test_fig5_dns_tradeoff_curve(benchmark, box_sim, velocity_field, capsys):
    bounds = [0.001, 0.005, 0.01, 0.025, 0.05, 0.1]
    rows = benchmark.pedantic(
        tradeoff, args=(box_sim.space, velocity_field, bounds), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n=== Fig. 5: reduction vs error (live DNS ux, marginal resolution) ===")
        print(f"{'bound':>8} {'reduction':>10} {'L2 error':>10}")
        for eps, red, err in rows:
            print(f"{eps:8.3f} {red:10.1%} {err:10.2%}")
    errs = [r[2] for r in rows]
    reds = [r[1] for r in rows]
    # Monotone trade-off, and a marginally resolved field still reaches
    # the conservative band at percent-level error.
    assert all(a <= b + 1e-6 for a, b in zip(errs, errs[1:]))
    assert all(a <= b + 1e-3 for a, b in zip(reds, reds[1:]))
    assert any(red >= 0.85 and err < 0.06 for _, red, err in rows)


def test_fig5_dns_operating_point(benchmark, box_sim, velocity_field, capsys):
    comp = SpectralCompressor(box_sim.space, error_bound=0.025)
    cf, err = benchmark(comp.roundtrip, velocity_field)
    with capsys.disabled():
        print(f"\nDNS field at 2.5% budget: reduction {cf.reduction:.1%}, error {err:.2%}")
    assert cf.reduction >= 0.80
    assert err <= 0.045
    rec = cf.decompress()
    corr = np.corrcoef(rec.reshape(-1), velocity_field.reshape(-1))[0, 1]
    assert corr > 0.99


def test_fig5_temperature_field_also_compresses(benchmark, box_sim):
    comp = SpectralCompressor(box_sim.space, error_bound=0.025)
    cf, err = benchmark(comp.roundtrip, box_sim.temperature.copy())
    assert cf.reduction > 0.80
    assert err < 0.05


def test_fig5_compression_throughput(benchmark, box_sim, velocity_field, capsys):
    comp = SpectralCompressor(box_sim.space, error_bound=0.025)
    cf = benchmark(comp.compress, velocity_field)
    mb = velocity_field.nbytes / 1e6
    with capsys.disabled():
        print(f"\ncompressed {mb:.2f} MB -> {cf.compressed_bytes / 1e3:.1f} kB")
