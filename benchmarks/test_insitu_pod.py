"""Section 5.2: asynchronous in-situ streaming POD with low overhead.

The paper streams data through ADIOS2 to a Python streaming-POD consumer
"with a low impact on the simulation performance".  The bench feeds DNS
temperature snapshots through the pipeline, checks the streaming result
against a direct SVD, and measures the producer-side overhead.
"""

import numpy as np
import pytest

from repro.insitu import InSituPipeline, PODProcessor, StreamingPOD, direct_pod


@pytest.fixture(scope="module")
def pod_sim():
    """A dedicated small simulation (so other benches' fixtures stay put)."""
    from repro.core import Simulation, rbc_box_case

    cfg = rbc_box_case(1e5, n=(2, 2, 2), lx=5, aspect=2.0, perturbation_amplitude=0.15)
    sim = Simulation(cfg)
    sim.run(n_steps=80)
    return sim


@pytest.fixture(scope="module")
def snapshots(pod_sim):
    """A short trajectory of temperature snapshots from the live solver."""
    snaps = [pod_sim.temperature.copy()]
    for _ in range(11):
        pod_sim.run(n_steps=5)
        snaps.append(pod_sim.temperature.copy())
    return snaps


def test_streaming_pod_matches_direct(benchmark, pod_sim, snapshots, capsys):
    w = pod_sim.space.coef.mass.reshape(-1)
    pod = StreamingPOD(n_modes=4, batch_size=4, weight=w)
    for s in snapshots:
        pod.push(s)
    pod.finalize()
    x = np.stack([s.reshape(-1) for s in snapshots], axis=1)
    _, s_ref = benchmark(direct_pod, x, 4, w)
    with capsys.disabled():
        print("\n=== streaming POD vs direct SVD (singular values) ===")
        print("streaming:", np.round(pod.singular_values, 6))
        print("direct:   ", np.round(s_ref, 6))
    assert np.allclose(pod.singular_values[:2], s_ref[:2], rtol=0.02)


def test_pipeline_overhead_low(benchmark, snapshots, capsys):
    def run():
        pod = StreamingPOD(n_modes=4, batch_size=4)
        pipe = InSituPipeline([PODProcessor(pod, "t")], max_queue=16).open()
        for s in snapshots:
            pipe.put("t", s)
        return pipe.close()

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    overhead_per_item = stats.producer_wait / stats.items
    with capsys.disabled():
        print(f"\nproducer wait per snapshot: {overhead_per_item * 1e6:.1f} us "
              f"({stats.items} items, {stats.bytes_in / 1e6:.1f} MB)")
    # "low impact on the simulation performance": the producer must spend
    # far less time enqueueing than a time step takes (~100 ms here).
    assert overhead_per_item < 0.01


def test_pod_energy_concentration(benchmark, pod_sim, snapshots):
    # RBC temperature dynamics at fixed Ra are low-dimensional: the
    # leading mode dominates.
    def run():
        pod = StreamingPOD(n_modes=6, batch_size=4,
                           weight=pod_sim.space.coef.mass.reshape(-1))
        for s in snapshots:
            pod.push(s)
        pod.finalize()
        return pod

    pod = benchmark(run)
    sv = pod.singular_values
    assert sv[0] > 5 * sv[1]


def test_streaming_pod_throughput(benchmark, snapshots):
    def run():
        pod = StreamingPOD(n_modes=4, batch_size=4)
        for s in snapshots:
            pod.push(s)
        pod.finalize()
        return pod

    pod = benchmark(run)
    assert pod.n_seen == len(snapshots)
