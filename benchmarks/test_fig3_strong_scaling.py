"""Fig. 3: strong scaling of Neko on LUMI and Leonardo.

The paper: average time per step for the 108M-element, degree-7 RBC case
at 4096/8192/16384 GCDs on LUMI (20/40/80% of the machine) and 3456/6912
A100s on Leonardo (25/50%), showing "close to perfect parallel
efficiency" with fewer than 7,000 elements per logical GPU -- enabled by
the overlapped pressure preconditioner.

The bench regenerates both series from the performance model, runs the
no-overlap ablation, and asserts the shape claims.
"""

import pytest

from repro.perfmodel import LEONARDO, LUMI, SEMWorkModel, StrongScalingStudy


@pytest.fixture(scope="module")
def lumi_series():
    st = StrongScalingStudy(LUMI)
    return st, st.paper_series()


@pytest.fixture(scope="module")
def leonardo_series():
    st = StrongScalingStudy(LEONARDO)
    return st, st.paper_series()


def test_fig3_lumi(benchmark, lumi_series, capsys):
    st, pts = lumi_series
    benchmark(lambda: st.time_per_step(16384))
    with capsys.disabled():
        print("\n=== Fig. 3 (LUMI series) ===")
        print(st.render(pts))
    assert [p.n_gpus for p in pts] == [4096, 8192, 16384]
    # Near-perfect efficiency and the < 7000 elements/GPU headline.
    assert pts[-1].parallel_efficiency > 0.85
    assert pts[-1].elements_per_gpu < 7000
    # Time per step halves (approximately) per doubling.
    assert pts[1].time_per_step_s < 0.60 * pts[0].time_per_step_s
    assert pts[2].time_per_step_s < 0.60 * pts[1].time_per_step_s


def test_fig3_leonardo(benchmark, leonardo_series, capsys):
    benchmark(lambda: leonardo_series[0].time_per_step(6912))
    st, pts = leonardo_series
    with capsys.disabled():
        print("\n=== Fig. 3 (Leonardo series) ===")
        print(st.render(pts))
    assert [p.n_gpus for p in pts] == [3456, 6912]
    assert pts[-1].parallel_efficiency > 0.90


def test_fig3_performance_portability(benchmark, lumi_series, leonardo_series):
    benchmark(lambda: lumi_series[0].time_per_step(8192))
    # The same code model scales on both architectures (the paper's
    # portability claim): both series stay above 85% efficiency.
    for _, pts in (lumi_series, leonardo_series):
        assert all(p.parallel_efficiency > 0.85 for p in pts)


def test_fig3_overlap_ablation(benchmark, capsys):
    on = StrongScalingStudy(LUMI)
    off = StrongScalingStudy(LUMI, work=SEMWorkModel(overlap_preconditioner=False))
    pts_on = benchmark(on.paper_series)
    pts_off = off.paper_series()
    with capsys.disabled():
        print("\n=== Fig. 3 ablation: serial preconditioner ===")
        print(off.render(pts_off))
    # "The main reason for the improvements is the new overlapped pressure
    # preconditioner": without it, the largest run loses efficiency.
    assert pts_off[-1].parallel_efficiency < pts_on[-1].parallel_efficiency - 0.05
    assert pts_off[-1].time_per_step_s > pts_on[-1].time_per_step_s


def test_fig3_model_sanity_larger_counts_never_slower(benchmark):
    st = StrongScalingStudy(LUMI)
    pts = benchmark(st.sweep, [1024, 2048, 4096, 8192, 16384])
    ts = [p.time_per_step_s for p in pts]
    assert all(a > b for a, b in zip(ts, ts[1:]))
