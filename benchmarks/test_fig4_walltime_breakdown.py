"""Fig. 4: wall-time distribution of one time step.

The paper reports, for the 16,384-GCD LUMI run, pressure constituting
more than 85% of the step time, with velocity and temperature taking the
rest.  Two reproductions:

* the performance model's distribution at exactly that configuration;
* the *measured* distribution of the real (laptop-scale) Python solver,
  which shows the same ordering with pressure dominant.
"""

import pytest

from repro.perfmodel import LUMI, walltime_breakdown
from repro.perfmodel.breakdown import render_breakdown


@pytest.fixture(scope="module")
def model_fractions():
    return walltime_breakdown(LUMI, 16384)


def test_fig4_model_pressure_dominates(benchmark, model_fractions, capsys):
    benchmark(lambda: walltime_breakdown(LUMI, 16384))
    fr = model_fractions
    with capsys.disabled():
        print("\n=== Fig. 4 (model, LUMI 16,384 GCDs) ===")
        print(render_breakdown(fr))
    assert fr["pressure"] > 0.85  # the paper's quoted share
    assert sum(fr.values()) == pytest.approx(1.0)


def test_fig4_model_ordering(benchmark, model_fractions):
    benchmark(lambda: walltime_breakdown(LUMI, 8192))
    fr = model_fractions
    assert fr["pressure"] > fr["velocity"] > fr["temperature"]


def test_fig4_measured_python_solver(benchmark, box_sim, capsys):
    fr = benchmark(box_sim.timers.fractions)
    with capsys.disabled():
        print("\n=== Fig. 4 (measured, Python solver at laptop scale) ===")
        print(render_breakdown(fr))
    # The *shape* holds at laptop scale too: pressure is the dominant
    # phase (the share is lower than at 16k GCDs, where the larger
    # iteration counts and communication amplify it).
    assert fr["pressure"] > 0.5
    assert fr["pressure"] > fr["velocity"]
    assert fr["velocity"] > fr["temperature"] * 0.5
