"""Perf-regression harness: the smoke tier of the bench trajectory.

Measures (a) the solver's hot kernels (the roofline calibration set of
``test_kernels.py``) and (b) whole-step/per-phase wall times of a small
box RBC case, and records both into ``BENCH_kernels.json`` and
``BENCH_step.json`` with environment metadata.  The committed copies at
the repository root are the baselines the comparator
(:mod:`benchmarks.compare_bench`) diffs against, so any hot-path PR can
prove -- or is forced to confess -- its effect on the numbers the paper's
Figs. 2 and 4 are about.

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf_harness --out-dir bench_out
    PYTHONPATH=src python -m benchmarks.compare_bench BENCH_kernels.json \
        bench_out/BENCH_kernels.json

Timings are best-of-``repeats`` over a calibrated number of inner
iterations: the minimum is the standard noise-robust statistic for
microbenchmarks (anything slower was interference, not the code).
"""

from __future__ import annotations

import argparse
import dataclasses
import datetime
import json
import platform
import resource
import subprocess
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.comm import (
    DistributedConjugateGradient,
    DistributedGatherScatter,
    SimWorld,
    linear_partition,
)
from repro.core import Simulation, rbc_box_case
from repro.core.timers import RegionTimers
from repro.precond import FastDiagonalization, HybridSchwarzMultigrid
from repro.precond.jacobi import helmholtz_diagonal
from repro.precond.cache import global_cache, reset_global_cache
from repro.sem.bc import DirichletBC
from repro.sem.coef import get_contraction_variant, set_contraction_variant
from repro.sem.dealias import Dealiaser
from repro.sem.mesh import box_mesh
from repro.sem.operators import ax_helmholtz
from repro.sem.space import FunctionSpace

__all__ = [
    "environment",
    "kernel_benchmarks",
    "step_benchmark",
    "pressure_fastpath_benchmark",
    "world_step_benchmark",
    "scaling_campaign_benchmark",
    "noop_tracer_overhead",
    "profiler_overhead",
    "measure_memory",
    "write_tuning_artifacts",
    "append_to_ledger",
    "run_harness",
    "main",
]

SCHEMA_VERSION = 1

# The kernel space mirrors benchmarks/test_kernels.py: production-like
# polynomial degree 7 on a modest element count.
KERNEL_MESH = (6, 6, 6)
KERNEL_LX = 8


def environment() -> dict:
    """Metadata pinning where/when a bench record was produced."""
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        git_sha = None
    return {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "git_sha": git_sha,
    }


def measure_memory(fn) -> dict:
    """Memory footprint of one ``fn()`` call: peak RSS plus allocation delta.

    ``peak_rss_bytes`` is the process high-water mark (``ru_maxrss``) --
    monotone across the whole run, so per-entry differences only show when
    an entry *raises* the peak.  ``alloc_delta_bytes`` is the
    tracemalloc-observed peak of Python-level allocations during the call,
    which is the per-entry figure: a kernel that suddenly materializes an
    extra field-sized temporary moves it even when the RSS peak does not.
    Measured in a separate untimed call so tracemalloc's overhead never
    touches the timing loops.
    """
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "peak_rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024,
        "alloc_delta_bytes": int(peak),
    }


def _best_seconds(fn, repeats: int = 5, min_time: float = 0.02) -> float:
    """Best-of-``repeats`` per-call seconds, inner loop calibrated to
    ``min_time`` so the clock granularity never dominates."""
    fn()  # warm caches, JIT-able BLAS dispatch, page faults
    inner = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        dt = time.perf_counter() - t0
        if dt >= min_time or inner >= 1024:
            break
        inner *= 2
    best = dt / inner
    for _ in range(repeats - 1):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def kernel_benchmarks(
    repeats: int = 5, mesh: tuple[int, int, int] = KERNEL_MESH, lx: int = KERNEL_LX
) -> dict[str, dict]:
    """Time the hot kernels; returns ``{name: {seconds, bytes, gbps}}``."""
    sp = FunctionSpace(box_mesh(mesh), lx)
    rng = np.random.default_rng(0)
    u = rng.normal(size=sp.shape)
    dl = Dealiaser(sp)
    cf = (dl.to_fine(u), dl.to_fine(u), dl.to_fine(u))
    fdm = FastDiagonalization(sp)
    hsmg = HybridSchwarzMultigrid(sp)
    r = sp.gs.add(u)

    cases = {
        # name: (callable, effective bytes for the bandwidth figure)
        "ax_helmholtz": (lambda: ax_helmholtz(u, sp.coef, sp.dx, 1.0, 10.0), 9 * u.nbytes),
        "gather_scatter": (lambda: sp.gs.add(u), 2 * u.nbytes),
        "dealias_convect": (
            lambda: dl.convect_weak(u, u, u, u, cf),
            6 * u.nbytes * (dl.lxd / sp.lx) ** 3,
        ),
        "fdm_solve": (lambda: fdm.solve(u), 6 * u.nbytes),
        "hsmg_apply": (lambda: hsmg(r), 12 * u.nbytes),
    }
    results = {}
    for name, (fn, nbytes) in cases.items():
        seconds = _best_seconds(fn, repeats=repeats)
        results[name] = {
            "seconds": seconds,
            "bytes": int(nbytes),
            "gbps": nbytes / seconds / 1e9,
            "memory": measure_memory(fn),
        }
    return results


def noop_tracer_overhead(
    repeats: int = 5, mesh: tuple[int, int, int] = KERNEL_MESH, lx: int = KERNEL_LX
) -> dict:
    """Overhead of a no-op-traced region around the ax kernel.

    This is the acceptance number for the observability layer: wrapping
    the kernel in ``RegionTimers.region`` with the default
    :class:`~repro.observability.tracer.NullTracer` must cost < 2 %.
    """
    sp = FunctionSpace(box_mesh(mesh), lx)
    u = np.random.default_rng(0).normal(size=sp.shape)
    timers = RegionTimers()  # carries NULL_TRACER

    def bare():
        ax_helmholtz(u, sp.coef, sp.dx, 1.0, 10.0)

    def traced():
        with timers.region("ax"):
            ax_helmholtz(u, sp.coef, sp.dx, 1.0, 10.0)

    t_bare = _best_seconds(bare, repeats=repeats)
    t_traced = _best_seconds(traced, repeats=repeats)
    return {
        "bare_seconds": t_bare,
        "traced_seconds": t_traced,
        "overhead_fraction": max(0.0, t_traced / t_bare - 1.0),
    }


def profiler_overhead(
    n_steps: int = 5,
    warmup: int = 3,
    n: tuple[int, int, int] = (3, 3, 3),
    lx: int = 6,
    repeats: int = 3,
) -> dict:
    """Overhead of the continuous profiler on the whole-step path.

    The acceptance number for the profiling layer: attaching
    :class:`~repro.observability.profile.profiler.ContinuousProfiler` to a
    :class:`~repro.core.simulation.Simulation` must cost < 3 % per step.
    The profiler only diffs ``RegionTimers`` totals and evaluates the
    closed-form work model, so the cost is a handful of dict lookups and
    float ops per step -- this measures it instead of asserting it.  The
    bare and profiled legs are interleaved per repeat so slow drift of the
    host (thermal, background load) cannot bias one leg.
    """
    from repro.observability.profile import ContinuousProfiler

    def one_window(profiled: bool) -> float:
        config = rbc_box_case(1e5, n=n, lx=lx, aspect=2.0, perturbation_amplitude=0.1)
        profiler = ContinuousProfiler() if profiled else None
        sim = Simulation(config, profiler=profiler)
        sim.run(n_steps=warmup)
        t0 = time.perf_counter()
        sim.run(n_steps=n_steps)
        return (time.perf_counter() - t0) / n_steps

    t_bare = float("inf")
    t_profiled = float("inf")
    for _ in range(max(repeats, 1)):
        t_bare = min(t_bare, one_window(False))
        t_profiled = min(t_profiled, one_window(True))
    return {
        "bare_seconds": t_bare,
        "profiled_seconds": t_profiled,
        "overhead_fraction": max(0.0, t_profiled / t_bare - 1.0),
    }


#: Config overrides reproducing the pre-fast-path pressure solve: the old
#: projection window, no operator cache (the per-axis contraction variant
#: is switched separately -- it is process-wide state, not config).
LEGACY_PRESSURE_OVERRIDES = {
    "pressure_projection_dim": 8,
    "operator_cache": False,
}


def step_benchmark(
    n_steps: int = 5,
    warmup: int = 3,
    n: tuple[int, int, int] = (3, 3, 3),
    lx: int = 6,
    repeats: int = 3,
    overrides: dict | None = None,
    contraction: str | None = None,
) -> dict[str, dict]:
    """Whole-step and per-phase wall times of a small box RBC case.

    Phases come from the same ``RegionTimers`` regions the Fig. 4
    breakdown uses; ``gather_scatter`` is the dssum time accumulated by
    the operator itself.  The *same* physical window (steps
    ``warmup+1 .. warmup+n_steps`` from the identical initial condition)
    is re-run ``repeats`` times from scratch and the fastest repeat wins:
    iteration counts depend on the flow state, so repeating a fixed
    window separates scheduler/VM noise from genuine cost without mixing
    in easier or harder physics.

    ``overrides`` patches the case config (e.g.
    :data:`LEGACY_PRESSURE_OVERRIDES` for the pre-fast-path A/B leg) and
    ``contraction`` pins the process-wide contraction variant for the
    duration of the measurement.
    """
    prev_variant = get_contraction_variant()
    if contraction is not None:
        set_contraction_variant(contraction)
    try:
        return _step_benchmark_runs(n_steps, warmup, n, lx, repeats, overrides)
    finally:
        set_contraction_variant(prev_variant)


def _step_benchmark_runs(
    n_steps: int,
    warmup: int,
    n: tuple[int, int, int],
    lx: int,
    repeats: int,
    overrides: dict | None,
) -> dict[str, dict]:
    best: dict[str, dict] | None = None
    for _ in range(max(repeats, 1)):
        config = rbc_box_case(1e5, n=n, lx=lx, aspect=2.0, perturbation_amplitude=0.1)
        if overrides:
            config = dataclasses.replace(config, **overrides)
        sim = Simulation(config)
        sim.run(n_steps=warmup)
        sim.timers.reset()
        sim.space.gs.reset_traffic()

        t0 = time.perf_counter()
        sim.run(n_steps=n_steps)
        total = time.perf_counter() - t0

        results = {"step": {"seconds": total / n_steps, "steps": n_steps}}
        for phase, seconds in sim.timers.totals.items():
            results[phase] = {"seconds": seconds / n_steps}
        gs = sim.space.gs
        results["gather_scatter"] = {
            "seconds": gs.seconds / n_steps,
            "calls": gs.calls // n_steps,
            "bytes": gs.bytes_moved // n_steps,
        }
        # Memory is measured last -- the extra instrumented step must not
        # leak into the phase totals harvested above.
        results["step"]["memory"] = measure_memory(sim.step)
        if best is None or results["step"]["seconds"] < best["step"]["seconds"]:
            best = results
    assert best is not None
    return best


def pressure_fastpath_benchmark(
    n_steps: int = 5,
    warmup: int = 3,
    n: tuple[int, int, int] = (3, 3, 3),
    lx: int = 6,
    repeats: int = 3,
) -> tuple[dict[str, dict], dict]:
    """A/B the pressure solve: fast path vs the pre-optimization setup.

    Runs the identical physical window twice -- once with the production
    defaults (batched contraction, operator cache, projection dim 20) and
    once with :data:`LEGACY_PRESSURE_OVERRIDES` plus the per-axis
    contraction -- and reports the pressure-phase ratio.  Because both
    legs run back to back on the same machine, the ``speedup`` figure is
    hardware-independent and is what CI gates on
    (``compare_bench --min-speedup pressure_fastpath=MIN``).

    Returns ``(fast_step_results, pressure_fastpath_record)``.
    """
    fast = step_benchmark(n_steps, warmup, n, lx, repeats)
    legacy = step_benchmark(
        n_steps, warmup, n, lx, repeats,
        overrides=LEGACY_PRESSURE_OVERRIDES, contraction="axis",
    )
    fast_s = fast["pressure"]["seconds"]
    legacy_s = legacy["pressure"]["seconds"]
    record = {
        "seconds": fast_s,
        "legacy_seconds": legacy_s,
        "speedup": legacy_s / fast_s,
    }
    return fast, record


def world_step_benchmark(
    nranks: int = 4,
    repeats: int = 3,
    mesh: tuple[int, int, int] = (3, 2, 2),
    lx: int = 5,
) -> dict[str, dict]:
    """Multi-rank timing: one distributed-CG Helmholtz solve on a
    ``SimWorld(size=4)``, the executable stand-in for the paper's strong-
    scaling step (Fig. 3).  Tracks the SPMD code path -- per-rank operator
    application plus the two-phase gather--scatter -- so a regression in
    the distributed layer shows up even though the world is simulated.
    """
    sp = FunctionSpace(box_mesh(mesh), lx)
    bc = DirichletBC(sp, ["bottom", "top", "x-", "x+", "y-", "y+"], 0.0)
    h1, h2 = 0.05, 20.0
    rng = np.random.default_rng(0)
    b = sp.gs.add(sp.coef.mass * rng.normal(size=sp.shape)) * bc.mask

    world = SimWorld(nranks)
    owner = linear_partition(sp.mesh.nelv, nranks)
    dgs = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, world)
    coef_chunks = {
        name: dgs.scatter_field(getattr(sp.coef, name))
        for name in ("g11", "g22", "g33", "g12", "g13", "g23", "mass")
    }

    class _LocalCoef:
        pass

    def local_amul(r, chunk):
        c = _LocalCoef()
        for name, chunks in coef_chunks.items():
            setattr(c, name, chunks[r])
        return ax_helmholtz(chunk, c, sp.dx, h1, h2)

    mask_chunks = dgs.scatter_field(bc.mask)
    diag = sp.gs.add(helmholtz_diagonal(sp, h1, h2))
    diag = np.where(bc.mask == 0.0, 1.0, diag)
    pd = [d * m for d, m in zip(dgs.scatter_field(1.0 / diag), mask_chunks)]
    solver = DistributedConjugateGradient(
        local_amul, dgs, world, local_mask=mask_chunks, precond_diag=pd,
        tol=1e-10, maxiter=400,
    )
    b_chunks = dgs.scatter_field(b)

    # One counted solve pins the deterministic per-solve traffic.
    world.stats.reset()
    _, mon = solver.solve(b_chunks)
    messages = world.stats.p2p_messages

    seconds = _best_seconds(lambda: solver.solve(b_chunks), repeats=repeats, min_time=0.0)
    return {
        f"world{nranks}_dist_cg": {
            "seconds": seconds,
            "iterations": mon.iterations,
            "ranks": nranks,
            "p2p_messages_per_solve": messages,
            "memory": measure_memory(lambda: solver.solve(b_chunks)),
        }
    }


def scaling_campaign_benchmark(n_ranks: int = 4096, repeats: int = 3) -> dict[str, dict]:
    """Engine speed of the simulated-exascale scaling campaign.

    Times one full :meth:`~repro.comm.campaign.ScalingCampaign.run_point`
    at 4096 simulated ranks -- partition, batched gather--scatter setup,
    staged-round construction and DES pricing -- i.e. the wall-clock cost
    of producing one Fig. 3 point.  This is the tentpole claim of the
    batched comm engine (O(10^3..10^4) ranks in seconds), so it is gated
    like any other hot path; the *simulated* step time itself is
    deterministic and lives in ``BENCH_scaling.json``.
    """
    from repro.comm.campaign import ScalingCampaign
    from repro.perfmodel.machine import LUMI

    campaign = ScalingCampaign(LUMI)
    point = campaign.run_point(n_ranks)
    seconds = _best_seconds(
        lambda: campaign.run_point(n_ranks), repeats=repeats, min_time=0.0
    )
    return {
        f"scaling_{n_ranks}": {
            "seconds": seconds,
            "ranks": n_ranks,
            "simulated_step_seconds": point.step_us * 1e-6,
            "gs_topology_speedup": point.gs_topology_speedup,
            "memory": measure_memory(lambda: campaign.run_point(n_ranks)),
        }
    }


def write_tuning_artifacts(
    out_dir: Path, shapes: tuple[tuple[int, int], ...] = ((27, 5), (216, 7))
) -> tuple[Path, Path]:
    """Write the autotuner table and operator-cache report artifacts.

    ``tuning_table.json`` records the startup sweep for the harness's own
    shapes (the step-bench and kernel-bench meshes by default) so a CI run
    archives both *what was picked* and the measurements behind the pick;
    ``cache_report.json`` snapshots the process-wide operator cache --
    including the hit rate the ISSUE makes an exported metric -- after the
    benchmarks have exercised it.
    """
    from repro.sem.autotune import TuningTable, autotune

    out_dir = Path(out_dir)
    table = TuningTable()
    for nelem, p in shapes:
        table.add(autotune(nelem, p))
    table_path = out_dir / "tuning_table.json"
    table.save(table_path)

    report_path = out_dir / "cache_report.json"
    report = global_cache().report()
    report["hit_rate"] = global_cache().hit_rate()
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return table_path, report_path


def append_to_ledger(
    ledger_path: Path, kernels_path: Path, step_path: Path, tuning_path: Path | None = None
) -> str:
    """Append one campaign-ledger run built from the bench artifacts.

    Merges the kernel and step records into a single
    :class:`~repro.observability.campaign.ledger.RunRecord` (the run id is
    derived from the git sha + timestamp the harness already recorded in
    the environment block -- the ledger itself never reads a clock) and
    appends it to the JSONL ledger at ``ledger_path``.  Returns the run id.
    """
    from repro.observability.campaign import Ledger, RunRecord

    kernels = json.loads(Path(kernels_path).read_text())
    step = json.loads(Path(step_path).read_text())
    tuning = None
    if tuning_path is not None and Path(tuning_path).exists():
        tuning = json.loads(Path(tuning_path).read_text())
    record = RunRecord.from_bench(kernels, step, tuning=tuning)
    Ledger(Path(ledger_path)).append(record)
    return record.run_id


def run_harness(
    out_dir: Path,
    repeats: int = 5,
    n_steps: int = 5,
    warmup: int = 3,
    ledger: Path | None = None,
) -> tuple[Path, Path]:
    """Run both tiers and write ``BENCH_kernels.json`` / ``BENCH_step.json``
    plus the ``tuning_table.json`` / ``cache_report.json`` artifacts.
    With ``ledger`` set, the run is also appended to that campaign ledger."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    env = environment()
    reset_global_cache()

    kernels = {
        "schema": SCHEMA_VERSION,
        "tier": "smoke",
        "environment": env,
        "results": kernel_benchmarks(repeats=repeats),
        "noop_tracer_overhead": noop_tracer_overhead(repeats=repeats),
        # Longer windows than the step bench: the per-step profiler cost is
        # tens of microseconds against a ~20 ms step, so the overhead
        # figure is jitter-dominated unless each timed window spans enough
        # steps to average the host's scheduling noise.
        "profiler_overhead": profiler_overhead(
            n_steps=max(2 * n_steps, 10), warmup=warmup, repeats=max(repeats, 3)
        ),
    }
    kernels_path = out_dir / "BENCH_kernels.json"
    kernels_path.write_text(json.dumps(kernels, indent=2) + "\n")

    step_results, fastpath = pressure_fastpath_benchmark(n_steps=n_steps, warmup=warmup)
    step_results["pressure_fastpath"] = fastpath
    step_results.update(world_step_benchmark(repeats=max(2, repeats - 2)))
    step_results.update(scaling_campaign_benchmark(repeats=max(2, repeats - 2)))
    step = {
        "schema": SCHEMA_VERSION,
        "tier": "smoke",
        "environment": env,
        "results": step_results,
    }
    step_path = out_dir / "BENCH_step.json"
    step_path.write_text(json.dumps(step, indent=2) + "\n")

    tuning_path, _ = write_tuning_artifacts(out_dir)
    if ledger is not None:
        run_id = append_to_ledger(ledger, kernels_path, step_path, tuning_path)
        print(f"appended run {run_id} to {ledger}")
    return kernels_path, step_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=".", help="where to write BENCH_*.json")
    parser.add_argument("--repeats", type=int, default=5, help="best-of repeats per kernel")
    parser.add_argument("--steps", type=int, default=5, help="measured steps for the step bench")
    parser.add_argument("--warmup", type=int, default=3, help="untimed warmup steps")
    parser.add_argument(
        "--ledger", default=None,
        help="campaign ledger (JSONL) to append this run to",
    )
    args = parser.parse_args(argv)

    kernels_path, step_path = run_harness(
        Path(args.out_dir),
        repeats=args.repeats,
        n_steps=args.steps,
        warmup=args.warmup,
        ledger=Path(args.ledger) if args.ledger else None,
    )
    for path in (kernels_path, step_path):
        data = json.loads(path.read_text())
        print(f"wrote {path}")
        for name, rec in data["results"].items():
            if "gbps" in rec:
                extra = f"  ({rec['gbps']:.2f} GB/s)"
            elif "speedup" in rec:
                extra = f"  (x{rec['speedup']:.2f} vs legacy {rec['legacy_seconds'] * 1e3:.3f} ms)"
            else:
                extra = ""
            print(f"  {name:<18s} {rec['seconds'] * 1e3:9.3f} ms{extra}")
    kernels_data = json.loads(kernels_path.read_text())
    overhead = kernels_data["noop_tracer_overhead"]
    print(f"no-op tracer overhead: {100 * overhead['overhead_fraction']:.2f}%")
    prof = kernels_data["profiler_overhead"]
    print(f"continuous-profiler overhead: {100 * prof['overhead_fraction']:.2f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
