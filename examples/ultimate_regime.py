#!/usr/bin/env python
"""The ultimate-regime question: Nu(Ra) from DNS + theory (Section 8.1).

Combines three data sources across fourteen decades of Ra:

1. our own DNS at laptop-accessible Ra (a few points near onset and in
   weakly turbulent convection),
2. the Grossmann-Lohse model along the classical branch (the documented
   substitution for the petascale runs),
3. a Kraichnan ultimate branch grafted on top,

then runs the paper's target analysis: power-law fits per window, the
local scaling exponent gamma(Ra) = d ln Nu / d ln Ra, and the detected
classical-to-ultimate crossover.

Run:  python examples/ultimate_regime.py [--dns-steps N]
"""

import argparse

import numpy as np

from repro.analysis import (
    GrossmannLohse,
    UltimateExtension,
    detect_crossover,
    fit_power_law,
    local_exponents,
)
from repro.core import Simulation, rbc_box_case


def dns_nusselt(rayleigh: float, steps: int) -> float:
    """Time-averaged volume Nusselt number from a short coarse DNS."""
    config = rbc_box_case(rayleigh, n=(3, 3, 3), lx=5, aspect=2.0,
                          perturbation_amplitude=0.1)
    sim = Simulation(config)
    sim.run(n_steps=steps, stats_interval=20)
    return sim.time_averaged_nusselt(discard_fraction=0.5).volume


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dns-steps", type=int, default=400)
    args = parser.parse_args()

    print("=== DNS points (this framework, laptop scale) ===")
    dns_ra = [3e4, 1e5, 3e5]
    dns_nu = []
    gl = GrossmannLohse()
    for ra in dns_ra:
        nu = dns_nusselt(ra, args.dns_steps)
        dns_nu.append(nu)
        print(f"  Ra = {ra:8.1e}:  Nu_DNS = {nu:6.2f}   (GL theory: {gl.solve(ra)[0]:6.2f})")

    fit_dns = fit_power_law(np.array(dns_ra), np.array(dns_nu))
    print(f"  DNS fit: Nu = {fit_dns.prefactor:.3f} Ra^{fit_dns.exponent:.3f} "
          f"(+- {fit_dns.exponent_stderr:.3f})")

    print()
    print("=== classical branch (GL model, the petascale substitution) ===")
    ra_cl = np.logspace(8, 13, 11)
    nu_cl = gl.nusselt(ra_cl)
    fit_cl = fit_power_law(ra_cl, nu_cl)
    print(f"  fit over Ra in [1e8, 1e13]: Nu = {fit_cl.prefactor:.4f} Ra^{fit_cl.exponent:.4f}")
    print("  (Iyer et al. 2020 report Nu ~ 0.0525 Ra^0.331 up to Ra = 1e15)")

    print()
    print("=== with the ultimate branch ===")
    ue = UltimateExtension()
    ra_all = np.logspace(8, 17, 37)
    nu_all = ue.nusselt(ra_all)
    ra_mid, gamma = local_exponents(ra_all, nu_all)
    print(f"  branch crossover (equal Nu): Ra = {ue.crossover_ra():.2e}")
    cx = detect_crossover(ra_all, nu_all)
    print(f"  detected crossover (gamma > 5/12): Ra = {cx:.2e}")
    print()
    print("  local scaling exponent gamma(Ra):")
    for r, g in zip(ra_mid[::4], gamma[::4]):
        marker = "classical" if g < 0.36 else ("ULTIMATE" if g > 0.45 else "transition")
        bar = "-" * int((g - 0.25) * 120)
        print(f"    Ra = {r:8.1e}  gamma = {g:.3f} |{bar} {marker}")
    print()
    print("  The paper's workflow exists to measure this curve from DNS at")
    print("  Ra >= 1e15 with multiple aspect ratios -- settling whether the")
    print("  rise to gamma = 1/2 is real.")


if __name__ == "__main__":
    main()
