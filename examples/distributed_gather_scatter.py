#!/usr/bin/env python
"""Domain decomposition and the two-phase gather-scatter, demonstrated.

The paper attributes Neko's scalability to the topology-aware two-phase
gather-scatter ("one [phase] for the local and one for the shared elements
between different MPI ranks").  This example partitions an RBC mesh over
simulated ranks, runs a distributed Jacobi-CG Helmholtz solve through the
two-phase operation, verifies bit-level agreement with the single-rank
solver, and prints the communication profile the performance model
budgets (2 allreduces + 1 halo exchange per iteration).

Run:  python examples/distributed_gather_scatter.py [--ranks N]
"""

import argparse

import numpy as np

from repro.comm import (
    DistributedConjugateGradient,
    DistributedGatherScatter,
    SimWorld,
    partition_quality,
    rcb_partition,
)
from repro.precond import JacobiPrecond
from repro.precond.jacobi import helmholtz_diagonal
from repro.sem.bc import DirichletBC
from repro.sem.mesh import box_mesh
from repro.sem.operators import ax_helmholtz
from repro.sem.space import FunctionSpace
from repro.solvers import ConjugateGradient


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    args = parser.parse_args()

    mesh = box_mesh((4, 4, 4))
    sp = FunctionSpace(mesh, 6)
    bc = DirichletBC(sp, sp.mesh.boundary_labels(), 0.0)
    h1, h2 = 0.01, 50.0

    print(f"mesh: {mesh.nelv} elements, {sp.n_dofs} unique dofs, {args.ranks} ranks")
    owner = rcb_partition(mesh, args.ranks)
    q = partition_quality(owner, sp.gs.global_ids, mesh.nelv, sp.lx**3)
    print(f"partition (RCB): imbalance {q['imbalance']:.3f}, "
          f"shared nodes {q['shared_nodes_global']:.0f} "
          f"(max {q['max_shared_per_rank']:.0f} per rank)")

    world = SimWorld(args.ranks)
    dgs = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, world)

    # Distribute the metric factors and build the rank-local operator.
    coef_chunks = {
        name: dgs.scatter_field(getattr(sp.coef, name))
        for name in ("g11", "g22", "g33", "g12", "g13", "g23", "mass")
    }

    class LocalCoef:
        pass

    def local_amul(r, chunk):
        c = LocalCoef()
        for name, chunks in coef_chunks.items():
            setattr(c, name, chunks[r])
        return ax_helmholtz(chunk, c, sp.dx, h1, h2)

    rng = np.random.default_rng(0)
    b = sp.gs.add(sp.coef.mass * rng.normal(size=sp.shape)) * bc.mask

    mask_chunks = dgs.scatter_field(bc.mask)
    diag = np.where(bc.mask == 0.0, 1.0, sp.gs.add(helmholtz_diagonal(sp, h1, h2)))
    pd = [d * m for d, m in zip(dgs.scatter_field(1.0 / diag), mask_chunks)]

    dist = DistributedConjugateGradient(
        local_amul, dgs, world, local_mask=mask_chunks, precond_diag=pd, tol=1e-10
    )
    world.stats.reset()
    x_chunks, mon = dist.solve(dgs.scatter_field(b))
    x_dist = dgs.gather_field(x_chunks)
    print(f"\ndistributed solve: {mon.summary()}")
    print(f"traffic: {world.stats.allreduce_calls} allreduces, "
          f"{world.stats.p2p_messages} messages, "
          f"{world.stats.p2p_bytes / 1e3:.1f} kB point-to-point")

    def amul(u):
        return sp.gs.add(ax_helmholtz(u, sp.coef, sp.dx, h1, h2)) * bc.mask

    ref = ConjugateGradient(amul, sp.gs.dot,
                            precond=JacobiPrecond(sp, h1, h2, mask=bc.mask), tol=1e-10)
    x_ref, mon_ref = ref.solve(b)
    err = np.abs(x_dist - x_ref).max()
    print(f"single-rank solve: {mon_ref.summary()}")
    print(f"max |x_dist - x_single| = {err:.2e}")
    print(f"\nper-iteration communication: "
          f"{world.stats.allreduce_calls / max(1, mon.iterations):.1f} allreduces "
          f"(the performance model budgets 2-3)")


if __name__ == "__main__":
    main()
