#!/usr/bin/env python
"""RBC in a cylindrical cell -- the geometry of the paper (Fig. 1).

Builds the butterfly (O-grid) cylinder mesh, runs a short DNS at a
laptop-scale Rayleigh number and extracts the cross-section "AA" of the
paper's Fig. 1: a horizontal slice near the heated bottom wall, rendered
as ASCII art for the temperature and velocity-magnitude fields, plus the
vertical mean-temperature profile.

Run:  python examples/rbc_cylinder.py [--steps N] [--rayleigh RA]
"""

import argparse

import numpy as np

from repro.analysis import mean_profile
from repro.core import Simulation, rbc_cylinder_case


def ascii_slice(sim, field, z_level, n=41, radius=0.5):
    """Sample a horizontal slice by exact spectral interpolation (probes)."""
    from repro.sem.probes import FieldProbes

    xs = np.linspace(-radius, radius, n)
    pts = []
    grid_idx = []
    for iy, yy in enumerate(xs[::-1]):
        for ix, xx in enumerate(xs):
            if xx**2 + yy**2 <= (0.995 * radius) ** 2:
                pts.append((xx, yy, z_level))
                grid_idx.append((iy, ix))
    probes = FieldProbes(sim.space, np.array(pts), strict=False)
    vals = probes.evaluate(field)
    finite = vals[np.isfinite(vals)]
    lo, hi = finite.min(), finite.max()
    ramp = " .:-=+*#%@"
    canvas = [[" "] * n for _ in range(n)]
    for (iy, ix), v in zip(grid_idx, vals):
        if not np.isfinite(v):
            continue
        t = (v - lo) / (hi - lo + 1e-30)
        canvas[iy][ix] = ramp[min(len(ramp) - 1, int(t * len(ramp)))]
    return "\n".join("".join(row) for row in canvas), (lo, hi)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=300)
    parser.add_argument("--rayleigh", type=float, default=5e4)
    parser.add_argument("--aspect", type=float, default=1.0,
                        help="cell diameter/height (paper production: 0.1)")
    args = parser.parse_args()

    config = rbc_cylinder_case(
        args.rayleigh,
        aspect=args.aspect,
        n_square=2,
        n_ring=2,
        n_z=6,
        lx=5,
        perturbation_amplitude=0.1,
    )
    sim = Simulation(config)
    print(f"case: {config.name}, {sim.space.nelv} elements, {sim.space.n_dofs} unique dofs")
    sim.run(n_steps=args.steps, stats_interval=25, print_interval=max(1, args.steps // 6))

    s = sim.sample_statistics()
    print()
    print(f"Nu (volume) = {s.nusselt.volume:.3f}, Re = {s.reynolds:.1f}")

    # Cross-section AA close to the heated bottom wall (as in Fig. 1).
    z_aa = 0.15
    art_t, (tlo, thi) = ascii_slice(sim, sim.temperature, z_aa, radius=args.aspect / 2)
    print(f"\ncross-section AA at z = {z_aa}: temperature [{tlo:.2f}, {thi:.2f}]")
    print(art_t)
    umag = np.sqrt(sum(c**2 for c in sim.velocity))
    art_u, (ulo, uhi) = ascii_slice(sim, umag, z_aa, radius=args.aspect / 2)
    print(f"\ncross-section AA at z = {z_aa}: |u| [{ulo:.3f}, {uhi:.3f}]")
    print(art_u)

    z, t_mean = mean_profile(sim.space, sim.temperature)
    print("\nmean temperature profile (z, <T>):")
    step = max(1, len(z) // 12)
    for zi, ti in zip(z[::step], t_mean[::step]):
        bar = "*" * int((ti + 0.5) * 40)
        print(f"  z={zi:5.3f}  T={ti:+.3f} |{bar}")


if __name__ == "__main__":
    main()
