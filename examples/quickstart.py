#!/usr/bin/env python
"""Quickstart: Rayleigh-Benard convection between parallel plates.

Runs a laptop-scale DNS at Ra = 1e5 (Pr = 1) in a doubly-periodic box with
the full production configuration of the framework -- P_N-P_N splitting,
BDF3/EXT3, 3/2-rule dealiasing, GMRES + hybrid Schwarz multigrid pressure
solve -- and prints the Nusselt-number estimators, the wall-time
distribution over solver phases and the boundary-layer thickness.

Run:  python examples/quickstart.py [--steps N]
"""

import argparse
import time

from repro.analysis import mean_profile, thermal_bl_thickness
from repro.core import Simulation, rbc_box_case


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=400, help="time steps to run")
    parser.add_argument("--rayleigh", type=float, default=1e5)
    args = parser.parse_args()

    config = rbc_box_case(
        args.rayleigh,
        n=(4, 4, 4),
        lx=6,
        aspect=2.0,
        perturbation_amplitude=0.1,
    )
    sim = Simulation(config)
    print(f"case: {config.name}")
    print(f"space: {sim.space}")
    print(f"dt = {config.dt:g}, nu = {config.viscosity:.3e}, kappa = {config.conductivity:.3e}")
    print()

    t0 = time.perf_counter()
    sim.run(n_steps=args.steps, stats_interval=20, print_interval=max(1, args.steps // 8))
    elapsed = time.perf_counter() - t0

    nu = sim.time_averaged_nusselt(discard_fraction=0.5)
    print()
    print(f"ran {args.steps} steps ({sim.time:.2f} free-fall times) in {elapsed:.1f} s")
    print(f"Nusselt (volume flux):        {nu.volume:7.3f}")
    print(f"Nusselt (bottom plate):       {nu.plate_bottom:7.3f}")
    print(f"Nusselt (top plate):          {nu.plate_top:7.3f}")
    print(f"Nusselt (thermal dissipation):{nu.dissipation:7.3f}")
    print(f"estimator spread:             {nu.spread:7.1%}")

    z, t_mean = mean_profile(sim.space, sim.temperature)
    lam = thermal_bl_thickness(z, t_mean, "bottom")
    print(f"thermal BL thickness:         {lam:7.4f}  (1/(2 Nu) = {1 / (2 * nu.mean):.4f})")
    print()
    print("wall-time distribution (the measured Fig. 4 analogue):")
    print(sim.timers.report())


if __name__ == "__main__":
    main()
