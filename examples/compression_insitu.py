#!/usr/bin/env python
"""In-situ compression and streaming POD during a live simulation.

Reproduces the Section 5.2 workflow at laptop scale: while the RBC solver
advances, snapshots stream through the asynchronous in-situ pipeline into
(1) the error-bounded lossy spectral compressor, (2) a streaming POD of
the temperature field, and (3) running statistics -- all on a worker
thread, with the producer-side overhead measured.

Run:  python examples/compression_insitu.py [--steps N]
"""

import argparse

import numpy as np

from repro.compression import SpectralCompressor
from repro.core import Simulation, rbc_box_case
from repro.insitu import (
    CompressionProcessor,
    InSituPipeline,
    PODProcessor,
    RunningStatsProcessor,
    StreamingPOD,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=300)
    parser.add_argument("--error-bound", type=float, default=0.025,
                        help="relative L2 truncation budget (paper: 2.5%% error at 97%% reduction)")
    parser.add_argument("--sample-every", type=int, default=10)
    args = parser.parse_args()

    config = rbc_box_case(1e5, n=(4, 4, 4), lx=6, aspect=2.0, perturbation_amplitude=0.1)
    sim = Simulation(config)

    compressor = SpectralCompressor(sim.space, error_bound=args.error_bound)
    comp_proc = CompressionProcessor(compressor)
    pod = StreamingPOD(n_modes=6, batch_size=4, weight=sim.space.coef.mass.reshape(-1))
    pod_proc = PODProcessor(pod, tag="temperature")
    stats_proc = RunningStatsProcessor()
    pipeline = InSituPipeline([comp_proc, pod_proc, stats_proc], max_queue=8)

    originals = []

    def stream_fields(s: Simulation) -> None:
        ux, uy, uz = s.velocity
        pipeline.put("ux", ux, s.time)
        pipeline.put("uz", uz, s.time)
        pipeline.put("temperature", s.temperature, s.time)
        originals.append(("uz", uz.copy()))

    sim.callbacks.append(stream_fields)

    with pipeline:
        sim.run(n_steps=args.steps, callback_interval=args.sample_every,
                print_interval=max(1, args.steps // 5))

    print()
    print("=== in-situ pipeline ===")
    print(pipeline.stats.summary())
    print()
    print("=== compression (Fig. 5 workflow) ===")
    print(f"snapshots compressed:  {len(comp_proc.compressed)}")
    print(f"overall reduction:     {comp_proc.overall_reduction:.1%}")
    errs = []
    for (tag, orig), cf in zip(originals, [c for c in comp_proc.compressed if c.name == "uz"]):
        errs.append(compressor.reconstruction_error(orig, cf))
    print(f"uz reconstruction error: mean {np.mean(errs):.3%}, max {np.max(errs):.3%}")
    print()
    print("=== streaming POD of the temperature ===")
    sv = pod.singular_values
    print(f"modes retained: {len(sv)}")
    print("normalized singular values:", np.round(sv / sv[0], 4))
    print()
    print("=== running statistics ===")
    mean_t = stats_proc.mean("temperature")
    print(f"<T> range over samples: [{mean_t.min():.3f}, {mean_t.max():.3f}] "
          f"({stats_proc.count('temperature')} samples)")


if __name__ == "__main__":
    main()
