#!/usr/bin/env python
"""The paper's performance study end-to-end (Table 1, Figs. 2-4).

1. Prints the Table 1 platform description from the machine registry.
2. Runs the discrete-event GPU simulation of the serial vs task-parallel
   additive Schwarz preconditioner (Fig. 2) and renders the timelines.
3. Produces the strong-scaling series of Fig. 3 for LUMI and Leonardo,
   with the no-overlap ablation.
4. Prints the Fig. 4 wall-time distribution at 16,384 GCDs.

Run:  python examples/strong_scaling_study.py
"""

from repro.gpu import A100, MI250X_GCD, SchwarzOverlapStudy
from repro.perfmodel import (
    LEONARDO,
    LUMI,
    SEMWorkModel,
    StrongScalingStudy,
    platform_table,
    walltime_breakdown,
)
from repro.perfmodel.breakdown import render_breakdown


def main() -> None:
    print("=" * 72)
    print("Table 1: experimental platforms")
    print("=" * 72)
    print(platform_table())

    print()
    print("=" * 72)
    print("Fig. 2: serial vs task-parallel additive Schwarz (DES)")
    print("=" * 72)
    for device in (A100, MI250X_GCD):
        study = SchwarzOverlapStudy(device)
        r = study.reduction(applications=50)
        print(f"\n{device.name}:")
        print(f"  serial phase:          {r['serial_us'] / 1e3:9.2f} ms")
        print(f"  overlapped phase:      {r['overlap_us'] / 1e3:9.2f} ms")
        print(f"  wall-time reduction:   {r['reduction']:.1%}   (paper: ~20% on A100)")
        print(f"  without priorities:    {r['reduction_nopriority']:.1%}")
        print(f"  device utilization:    {r['serial_utilization']:.1%} -> {r['overlap_utilization']:.1%}")

    study = SchwarzOverlapStudy(A100)
    ser = study.run_serial(applications=1)
    ovl = study.run_overlapped(applications=1)
    print("\nA100 timeline, serial (one application):")
    print(ser.simulator.render_timeline(width=90))
    print("\nA100 timeline, task-parallel (one application):")
    print(ovl.simulator.render_timeline(width=90))

    print()
    print("=" * 72)
    print("Fig. 3: strong scaling of the 108M-element RBC case")
    print("=" * 72)
    for machine in (LUMI, LEONARDO):
        st = StrongScalingStudy(machine)
        print()
        print(st.render(st.paper_series()))
        st_off = StrongScalingStudy(machine, work=SEMWorkModel(overlap_preconditioner=False))
        print(st_off.render(st_off.paper_series()))

    print()
    print("=" * 72)
    print("Fig. 4: wall-time distribution of one step")
    print("=" * 72)
    print(render_breakdown(walltime_breakdown(LUMI, 16384), "LUMI, 16,384 GCDs:"))
    print(render_breakdown(walltime_breakdown(LEONARDO, 6912), "Leonardo, 6,912 GPUs:"))


if __name__ == "__main__":
    main()
