"""End-to-end observability: an instrumented RBC run and the bridges.

The headline acceptance test lives here: a 3-step box RBC run exports a
Chrome trace containing nested spans for every Fig. 4 phase.
"""

import json

import numpy as np
import pytest

from repro.core import Simulation, rbc_box_case
from repro.insitu.pipeline import InSituPipeline, Processor
from repro.observability import (
    MetricsRegistry,
    Tracer,
    text_report,
    write_chrome_trace,
)
from repro.observability.bridge import (
    TracedEventLog,
    publish_gather_scatter,
    record_solver_monitor,
)
from repro.solvers.monitor import SolverMonitor

# The Fig. 4 wall-time taxonomy (see EXPERIMENTS.md, "Observability").
FIG4_PHASES = {
    "advection",
    "pressure",
    "velocity",
    "temperature",
    "gather_scatter",
    "insitu",
}


@pytest.fixture(scope="module")
def instrumented_run():
    tracer = Tracer()
    metrics = MetricsRegistry()
    config = rbc_box_case(1e4, n=(2, 2, 2), lx=4, aspect=1.0, perturbation_amplitude=0.1)
    sim = Simulation(config, tracer=tracer, metrics=metrics)
    sim.callbacks.append(lambda s: None)
    sim.run(n_steps=3, callback_interval=1, stats_interval=2)
    return sim, tracer, metrics


class TestInstrumentedRun:
    def test_chrome_trace_has_every_fig4_phase(self, instrumented_run, tmp_path):
        _, tracer, metrics = instrumented_run
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer, metrics)
        trace = json.loads(path.read_text())  # chrome://tracing-loadable JSON
        names = {e["name"] for e in trace["traceEvents"]}
        assert FIG4_PHASES <= names
        # Spans must be *nested*: phase events sit inside a step event.
        events = {e["name"]: e for e in trace["traceEvents"] if e.get("ph") == "X"}
        step = events["step"]
        for phase in ("advection", "pressure", "velocity", "gather_scatter"):
            ev = events[phase]
            assert step["ts"] - 1e-6 <= ev["ts"]
            assert ev["ts"] + ev["dur"] <= step["ts"] + step["dur"] + 1e-6

    def test_step_spans_one_per_step(self, instrumented_run):
        _, tracer, _ = instrumented_run
        assert len(tracer.spans_named("step")) == 3
        # Krylov solve spans nest under their phase region.
        (pressure_solve,) = {s.parent.name for s in tracer.spans_named("krylov.pressure")}
        assert pressure_solve == "pressure"

    def test_metrics_capture_solver_and_traffic(self, instrumented_run):
        _, _, metrics = instrumented_run
        assert metrics.counter("sim.steps").value == 3
        assert metrics.histogram("solver.pressure.iterations").count == 3
        assert metrics.counter("gs.calls").value > 0
        assert metrics.counter("gs.bytes_moved").value > 0

    def test_text_report_breaks_down_phases(self, instrumented_run):
        _, tracer, metrics = instrumented_run
        report = text_report(tracer, metrics)
        for phase in ("pressure", "velocity", "advection"):
            assert phase in report

    def test_uninstrumented_run_records_no_spans(self):
        config = rbc_box_case(1e4, n=(2, 2, 2), lx=4, aspect=1.0)
        sim = Simulation(config)
        sim.run(n_steps=1)
        assert not sim.tracer.enabled
        assert list(sim.tracer.walk()) == []
        # Metrics still accumulate (they are cheap and always on).
        assert sim.metrics.counter("sim.steps").value == 1


class TestBridges:
    def test_traced_event_log_mirrors_into_tracer(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        log = TracedEventLog(tracer, metrics)
        log.record("rollback", step=7, detail="dt reduced")
        assert log.count("rollback") == 1  # still a full EventLog
        (ev,) = tracer.spans_named("resilience.rollback")
        assert ev.instant and ev.tags["step"] == 7
        assert metrics.counter("resilience.rollback").value == 1

    def test_record_solver_monitor(self):
        metrics = MetricsRegistry()
        mon = SolverMonitor(tol=1e-8, name="pressure")
        mon.start(1.0)
        mon.step(0.5)
        mon.step(1e-9)
        record_solver_monitor(mon, metrics)
        assert metrics.histogram("solver.pressure.iterations").count == 1
        assert metrics.counter("solver.pressure.solves").value == 1
        assert "solver.pressure.unconverged" not in metrics

    def test_unconverged_solve_counted(self):
        metrics = MetricsRegistry()
        mon = SolverMonitor(tol=1e-8, name="pressure")
        mon.start(1.0)
        mon.step(0.9)
        record_solver_monitor(mon, metrics)
        assert metrics.counter("solver.pressure.unconverged").value == 1

    def test_publish_traffic_stats_via_simworld(self):
        from repro.comm.simworld import SimWorld

        metrics = MetricsRegistry()
        world = SimWorld(4)
        world.allreduce_scalar([1.0, 2.0, 3.0, 4.0])
        world.barrier()
        world.publish_metrics(metrics)
        assert metrics.gauge("comm.allreduce_calls").value == 1
        assert metrics.gauge("comm.allreduce_bytes").value == 32
        assert metrics.gauge("comm.barrier_calls").value == 1

    def test_publish_gather_scatter(self, instrumented_run):
        sim, _, _ = instrumented_run
        metrics = MetricsRegistry()
        publish_gather_scatter(sim.space.gs, metrics)
        assert metrics.gauge("gs.calls").value > 0
        assert metrics.gauge("gs.bytes_moved").value > 0
        assert metrics.gauge("gs.seconds").value >= 0


class TestPipelineMetrics:
    def test_queue_depth_and_close_publish(self):
        class Sink(Processor):
            name = "sink"

            def process(self, tag, array, sim_time):
                pass

        metrics = MetricsRegistry()
        pipe = InSituPipeline([Sink()], metrics=metrics)
        with pipe:
            for _ in range(5):
                pipe.put("u", np.zeros(16))
        assert metrics.gauge("insitu.queue_depth").updates == 5
        assert metrics.gauge("insitu.items").value == 5
        assert metrics.gauge("insitu.bytes").value == 5 * 16 * 8
        assert metrics.gauge("insitu.processor.sink.seconds").value >= 0

    def test_quarantine_surfaces_in_metrics(self):
        class Broken(Processor):
            name = "broken"

            def process(self, tag, array, sim_time):
                raise ValueError("nope")

        metrics = MetricsRegistry()
        pipe = InSituPipeline([Broken()], quarantine_after=2, strict=False, metrics=metrics)
        with pipe:
            for _ in range(4):
                pipe.put("u", np.zeros(4))
        assert metrics.gauge("insitu.quarantined").value == 1
        assert metrics.gauge("insitu.processor.broken.failures").value >= 2
