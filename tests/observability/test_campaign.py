"""Tests for the cross-run campaign observatory (ledger, trends, reports)."""

import json
import math

import pytest

from repro.observability.campaign import (
    Ledger,
    RunRecord,
    analyze_ledger,
    campaign_report,
    write_dashboard,
)
from repro.observability.campaign.cli import main as campaign_main
from repro.observability.campaign.ledger import tuning_digest
from repro.observability.campaign.trend import (
    analyze_series,
    changepoint,
    classify,
    median,
    rolling_median,
)


def make_bench(step_ms=20.0, sha="abc1234", ts="2026-08-01T00:00:00+00:00"):
    """A minimal BENCH-style record pair (kernels + step)."""
    kernels = {
        "schema": 1,
        "tier": "smoke",
        "environment": {"git_sha": sha, "timestamp": ts},
        "results": {
            "ax_helmholtz": {"seconds": 4e-3, "bytes": 8_000_000, "gbps": 2.0},
        },
        "noop_tracer_overhead": {"overhead_fraction": 0.01},
        "profiler_overhead": {"overhead_fraction": 0.015},
    }
    step = {
        "schema": 1,
        "tier": "smoke",
        "environment": {"git_sha": sha, "timestamp": ts},
        "results": {
            "step": {"seconds": step_ms * 1e-3, "memory": {"peak_rss_bytes": 1}},
            "pressure": {"seconds": step_ms * 0.5e-3},
            "velocity": {"seconds": step_ms * 0.2e-3},
            "temperature": {"seconds": step_ms * 0.1e-3},
            "advection": {"seconds": step_ms * 0.1e-3},
            "gather_scatter": {"seconds": step_ms * 0.1e-3, "calls": 40, "bytes": 1000},
            "world4_dist_cg": {"seconds": 2 * step_ms * 1e-3, "iterations": 25, "ranks": 4},
        },
    }
    return kernels, step


def seeded_ledger(path, step_times=(20.0, 21.0, 19.5)):
    ledger = Ledger(path)
    for i, ms in enumerate(step_times):
        kernels, step = make_bench(
            step_ms=ms, sha=f"sha{i:04d}", ts=f"2026-08-0{i + 1}T00:00:00+00:00"
        )
        ledger.append(RunRecord.from_bench(kernels, step))
    return ledger


class TestLedger:
    def test_missing_ledger_reads_as_empty(self, tmp_path):
        ledger = Ledger(tmp_path / "nope.jsonl")
        assert ledger.records() == []
        assert len(ledger) == 0
        assert ledger.entry_names() == []

    def test_append_and_round_trip(self, tmp_path):
        ledger = seeded_ledger(tmp_path / "ledger.jsonl")
        runs = ledger.records()
        assert len(runs) == 3
        assert runs[0].git_sha == "sha0000"
        assert runs[0].seconds("step") == pytest.approx(20e-3)
        # The overhead blocks are folded in as entries.
        assert "noop_tracer_overhead" in runs[0].entries
        assert "profiler_overhead" in runs[0].entries
        # run ids derive from sha + injected timestamp -- no clock reads.
        assert runs[1].run_id.startswith("sha0001-2026-08-02")

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = seeded_ledger(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "run", "run_id": "torn", "entr')  # killed writer
        assert len(ledger) == 3

    def test_query_filters(self, tmp_path):
        ledger = seeded_ledger(tmp_path / "ledger.jsonl")
        assert len(ledger.query(git_sha="sha0001")) == 1
        assert len(ledger.query(entry="step")) == 3
        assert len(ledger.query(entry="no_such_entry")) == 0
        assert [r.git_sha for r in ledger.query(last=2)] == ["sha0001", "sha0002"]

    def test_series_extraction(self, tmp_path):
        ledger = seeded_ledger(tmp_path / "ledger.jsonl", step_times=(20.0, 30.0))
        series = ledger.series("step")
        assert [v for _, v in series] == pytest.approx([20e-3, 30e-3])
        iters = ledger.series("world4_dist_cg", key="iterations")
        assert [v for _, v in iters] == [25.0, 25.0]

    def test_non_finite_values_survive_strict_json(self, tmp_path):
        kernels, step = make_bench()
        step["results"]["step"]["ratio"] = math.nan
        step["results"]["step"]["bound"] = math.inf
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append(RunRecord.from_bench(kernels, step))
        # The raw file stays strict JSON (parseable by a plain json.loads):
        # NaN drops to null, infinities become the jsonio sentinels.
        raw = (tmp_path / "ledger.jsonl").read_text()
        parsed = json.loads(raw.splitlines()[0])
        assert parsed["entries"]["step"]["ratio"] is None
        assert parsed["entries"]["step"]["bound"] == "Infinity"

    def test_tuning_digest_is_stable_and_order_free(self):
        assert tuning_digest(None) is None
        d1 = tuning_digest({"a": 1, "b": 2})
        d2 = tuning_digest({"b": 2, "a": 1})
        assert d1 == d2
        assert len(d1) == 12
        assert tuning_digest({"a": 3}) != d1


class TestTrend:
    def test_median_and_rolling(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        with pytest.raises(ValueError):
            median([])
        assert rolling_median([1.0, 9.0, 2.0, 8.0], window=3) == [1.0, 5.0, 2.0, 8.0]

    def test_changepoint_finds_level_shift(self):
        flat = [1.0, 1.02, 0.98, 1.01, 0.99, 1.0]
        assert changepoint(flat) is None
        stepped = [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        cp = changepoint(stepped)
        assert cp is not None
        index, shift = cp
        assert index == 3
        assert shift == pytest.approx(1.0)
        assert changepoint([1.0, 2.0]) is None  # too short

    def test_classification_thresholds(self):
        assert classify([1.0, 1.0, 1.0]) == "stable"
        assert classify([1.0, 1.0, 1.5]) == "regression"
        assert classify([1.0, 1.0, 0.5]) == "improvement"
        assert classify([1.0, 1.5]) == "stable"  # not enough history

    def test_analyze_ledger_flags_the_regressed_entry(self, tmp_path):
        ledger = seeded_ledger(
            tmp_path / "ledger.jsonl", step_times=(20.0, 20.5, 19.8, 30.0)
        )
        trends = analyze_ledger(ledger)
        assert trends["step"].classification == "regression"
        assert trends["step"].relative_change > 0.15
        # Entries that did not move stay stable.
        assert trends["ax_helmholtz"].classification == "stable"
        assert "regression" in trends["step"].describe()

    def test_analyze_series_reports_changepoint(self):
        t = analyze_series("e", [1.0, 1.0, 1.0, 3.0, 3.0, 3.0])
        assert t.changepoint_index == 3
        assert t.changepoint_shift == pytest.approx(2.0)


class TestReportsAndDashboard:
    def test_campaign_report_has_fig3_and_fig4_views(self, tmp_path):
        ledger = seeded_ledger(tmp_path / "ledger.jsonl")
        text = campaign_report(ledger)
        assert "3 runs" in text
        assert "Fig. 3 view" in text
        assert "world4_dist_cg" in text
        assert "Fig. 4 view" in text
        for phase in ("pressure", "velocity", "temperature", "advection"):
            assert phase in text
        assert "per-entry trends" in text

    def test_empty_ledger_report_degrades_gracefully(self, tmp_path):
        text = campaign_report(Ledger(tmp_path / "none.jsonl"))
        assert "empty" in text

    def test_dashboard_is_self_contained_html(self, tmp_path):
        ledger = seeded_ledger(tmp_path / "ledger.jsonl")
        out = write_dashboard(ledger, tmp_path / "dash.html")
        html = out.read_text()
        assert html.lstrip().startswith("<!DOCTYPE html") or "<html" in html
        assert "<svg" in html  # sparklines are inline
        assert "world4_dist_cg" in html
        assert "pressure" in html
        # Self-contained: no external scripts or stylesheets.
        assert "src=\"http" not in html and "href=\"http" not in html


class TestCli:
    def test_append_query_report_round_trip(self, tmp_path, capsys):
        kernels, step = make_bench()
        kp, sp = tmp_path / "k.json", tmp_path / "s.json"
        kp.write_text(json.dumps(kernels))
        sp.write_text(json.dumps(step))
        ledger = str(tmp_path / "ledger.jsonl")
        for _ in range(3):
            assert campaign_main(["append", str(kp), str(sp), "--ledger", ledger]) == 0
        assert campaign_main(["query", "--ledger", ledger, "--entry", "step"]) == 0
        out = capsys.readouterr().out
        assert "step=20.000 ms" in out
        assert campaign_main(["report", "--ledger", ledger]) == 0
        assert "Fig. 4 view" in capsys.readouterr().out

    def test_trend_gate_exit_code(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        seeded_ledger(ledger_path, step_times=(20.0, 20.2, 19.9, 35.0))
        assert campaign_main(["trend", "--ledger", str(ledger_path)]) == 0
        assert (
            campaign_main(["trend", "--ledger", str(ledger_path), "--fail-on-regression"])
            == 1
        )
        assert "regressed" in capsys.readouterr().out

    def test_append_unreadable_input_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert (
            campaign_main(["append", str(bad), "--ledger", str(tmp_path / "l.jsonl")]) == 2
        )

    def test_dashboard_subcommand(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        seeded_ledger(ledger_path)
        out = tmp_path / "dash.html"
        assert (
            campaign_main(
                ["dashboard", "--ledger", str(ledger_path), "--output", str(out)]
            )
            == 0
        )
        assert out.exists()
