"""Flight recorder: bounded ring, atomic dumps, failure-path round trips."""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import Simulation, rbc_box_case
from repro.observability import (
    AnomalyMonitor,
    FlightBundle,
    FlightRecorder,
    Tracer,
)
from repro.observability.cli import main as cli_main
from repro.observability.fleet.flight import FLIGHT_DIR_ENV
from repro.resilience import (
    Fault,
    FaultInjector,
    ResilientRunner,
    RetryBudgetExceededError,
)

from tests.resilience.test_runner import FakeSim, fake_ring


def small_case(**overrides):
    kwargs = dict(n=(2, 2, 2), lx=4, aspect=2.0, dt=5e-3,
                  perturbation_amplitude=0.1, adaptive_cfl=0.3)
    kwargs.update(overrides)
    return rbc_box_case(2e4, **kwargs)


def fake_result(step, time=0.0):
    return SimpleNamespace(step=step, time=time, cfl=0.1)


class TestRing:
    def test_capacity_bounds_frames(self):
        rec = FlightRecorder(capacity=4)
        sim = SimpleNamespace()
        for s in range(1, 11):
            rec.record_step(sim, fake_result(s))
        assert [f.step for f in rec.frames] == [7, 8, 9, 10]

    def test_event_ring_is_bounded(self):
        rec = FlightRecorder(capacity=2, event_capacity=3)
        for i in range(10):
            rec.record_event("retry", step=i)
        assert len(rec.events) == 3
        assert [e["step"] for e in rec.events] == [7, 8, 9]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_frame_captures_monitors_metrics_and_spans(self):
        from repro.observability import MetricsRegistry
        from repro.solvers.monitor import SolverMonitor

        mon = SolverMonitor(tol=1e-8, name="pressure")
        mon.start(1.0)
        mon.step(1e-9)
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("step", step=3):
            with tracer.span("pressure"):
                pass
        metrics = MetricsRegistry()
        metrics.counter("sim.steps").inc()
        sim = SimpleNamespace(
            tracer=tracer,
            metrics=metrics,
            fluid=SimpleNamespace(monitors={"pressure": mon}),
            scalar=SimpleNamespace(monitors={}),
        )
        frame = FlightRecorder(capacity=2).record_step(sim, fake_result(3))
        assert frame.monitors[0]["name"] == "pressure"
        assert frame.monitors[0]["converged"] is True
        assert frame.metrics["sim.steps"]["value"] == 1.0
        assert [s["name"] for s in frame.spans] == ["step", "pressure"]


class TestDumpLoad:
    def test_round_trip(self, tmp_path):
        rec = FlightRecorder(capacity=8, out_dir=tmp_path)
        sim = SimpleNamespace()
        for s in range(1, 13):
            rec.record_step(sim, fake_result(s, time=s * 0.1))
        rec.record_event("anomaly.cfl", step=12, detail="spike")
        path = rec.dump(reason="manual")
        bundle = FlightBundle.load(path)
        assert bundle.header["reason"] == "manual"
        assert bundle.steps == list(range(5, 13))
        assert len(bundle.frames) >= 8
        assert bundle.events[0]["event"] == "anomaly.cfl"
        assert bundle.frames[-1].result["cfl"] == pytest.approx(0.1)

    def test_dump_is_atomic_no_tmp_left(self, tmp_path):
        rec = FlightRecorder(capacity=2, out_dir=tmp_path)
        rec.record_step(SimpleNamespace(), fake_result(1))
        path = rec.dump()
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_default_dir_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path / "flights"))
        rec = FlightRecorder(capacity=2)
        rec.record_step(SimpleNamespace(), fake_result(7))
        path = rec.dump(reason="divergence")
        assert path.parent == tmp_path / "flights"
        assert path.name == "flight_step000007_divergence.jsonl"

    def test_load_rejects_headerless_file(self, tmp_path):
        bad = tmp_path / "x.jsonl"
        bad.write_text(json.dumps({"kind": "event", "event": "e", "step": 1,
                                   "time": 0.0, "detail": "", "data": {}}) + "\n")
        with pytest.raises(ValueError, match="no header"):
            FlightBundle.load(bad)

    def test_armed_dumps_on_exception_and_reraises(self, tmp_path):
        rec = FlightRecorder(capacity=2, out_dir=tmp_path)
        rec.record_step(SimpleNamespace(), fake_result(1))
        with pytest.raises(RuntimeError, match="boom"):
            with rec.armed(reason="crash"):
                raise RuntimeError("boom")
        assert len(rec.dumps) == 1
        bundle = FlightBundle.load(rec.dumps[0])
        assert bundle.header["reason"] == "crash"
        assert any(e["event"] == "flight.exception" for e in bundle.events)


class TestSimulationDivergenceDump:
    def test_divergence_guard_dumps_last_steps(self, tmp_path):
        flight = FlightRecorder(capacity=8, out_dir=tmp_path)
        sim = Simulation(small_case(), flight=flight)
        sim.run(n_steps=3)
        sim.scalar.temperature[0, 0, 0, 0] = np.nan
        with pytest.raises(FloatingPointError):
            sim.run(n_steps=2)
        assert len(flight.dumps) == 1
        bundle = FlightBundle.load(flight.dumps[0])
        assert bundle.header["reason"] == "divergence"
        assert [e["event"] for e in bundle.events] == ["flight.divergence"]
        assert bundle.steps[-1] == 4  # the poisoned step made it into the ring
        assert bundle.frames[-1].monitors  # solver monitors rode along


class TestResilientRunnerFlight:
    def test_retry_budget_dump_and_cli_round_trip(self, tmp_path, capsys):
        # Injected rank death on every segment: the budget exhausts, the
        # black box lands on disk, and the CLI parses it back.
        flight = FlightRecorder(capacity=8, out_dir=tmp_path)
        injector = FaultInjector(
            schedule=[Fault(kind="rank_failure", at_call=c, rank=2) for c in range(50)]
        )

        def die(sim):
            return injector.on_collective("allreduce") or None

        sim = FakeSim(fail_if=lambda s: _raise_or_none(die, s))
        runner = ResilientRunner(
            sim, ring=fake_ring(), checkpoint_interval=4, max_retries=2, flight=flight
        )
        for s in range(1, 4):
            flight.record_step(sim, fake_result(s))
        with pytest.raises(RetryBudgetExceededError):
            runner.run(n_steps=12)
        assert len(flight.dumps) == 1

        bundle = FlightBundle.load(flight.dumps[0])
        assert bundle.header["reason"] == "retry_budget"
        kinds = [e["event"] for e in bundle.events]
        assert "fault_detected" in kinds
        assert "rollback" in kinds
        assert kinds[-1] == "flight.retry_budget"
        # Event-log mirroring matched the canonical record.
        assert runner.events.count("fault_detected") == kinds.count("fault_detected")

        rc = cli_main(["flight", str(flight.dumps[0])])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reason='retry_budget'" in out
        assert "[flight.retry_budget]" in out

    def test_runner_adopts_sim_flight(self, tmp_path):
        flight = FlightRecorder(capacity=4, out_dir=tmp_path)
        sim = FakeSim()
        sim.flight = flight
        runner = ResilientRunner(sim, ring=fake_ring(), checkpoint_interval=5)
        assert runner.flight is flight
        runner.run(n_steps=5)
        kinds = [e["event"] for e in flight.events]
        assert "checkpoint" in kinds and "complete" in kinds


def _raise_or_none(fn, sim):
    """Adapter: FaultInjector.on_collective raises; FakeSim wants a return."""
    try:
        fn(sim)
    except BaseException as exc:
        return exc
    return None


class TestAnomalyIntoFlight:
    def test_simulation_glues_anomalies_to_flight(self, tmp_path):
        flight = FlightRecorder(capacity=4, out_dir=tmp_path)
        anomalies = AnomalyMonitor(warmup=2)
        sim = Simulation(small_case(), anomalies=anomalies, flight=flight)
        assert anomalies.flight is flight
