"""Span tracer unit tests (deterministic via an injected clock)."""

import pytest

from repro.observability.tracer import NULL_TRACER, NullTracer, Tracer


class FakeClock:
    """Monotonic clock advanced by hand."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestSpans:
    def test_single_span_duration(self, tracer, clock):
        with tracer.span("work"):
            clock.advance(1.5)
        (root,) = tracer.roots
        assert root.name == "work"
        assert root.duration == pytest.approx(1.5)
        assert root.end is not None

    def test_nesting_builds_a_tree(self, tracer, clock):
        with tracer.span("step"):
            with tracer.span("pressure"):
                clock.advance(2.0)
            with tracer.span("velocity"):
                clock.advance(1.0)
        (step,) = tracer.roots
        assert [c.name for c in step.children] == ["pressure", "velocity"]
        assert step.duration == pytest.approx(3.0)
        assert step.children[0].parent is step
        assert step.children[0].depth == 1

    def test_self_time_excludes_children(self, tracer, clock):
        with tracer.span("step"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(4.0)
        (step,) = tracer.roots
        assert step.self_time == pytest.approx(1.0)

    def test_current_tracks_the_stack(self, tracer):
        assert tracer.current is None
        with tracer.span("a"):
            assert tracer.current.name == "a"
            with tracer.span("b"):
                assert tracer.current.name == "b"
            assert tracer.current.name == "a"
        assert tracer.current is None

    def test_span_closed_when_body_raises(self, tracer, clock):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        (sp,) = tracer.roots
        assert sp.end is not None
        assert sp.duration == pytest.approx(1.0)
        assert tracer.current is None

    def test_tags_and_counters(self, tracer):
        with tracer.span("solve", solver="cg") as sp:
            tracer.add("iterations", 7)
            tracer.add("iterations", 3)
            tracer.set_tag("converged", True)
        assert sp.tags == {"solver": "cg", "converged": True}
        assert sp.counters == {"iterations": 10.0}

    def test_add_at_top_level_is_a_noop(self, tracer):
        tracer.add("orphan", 1)
        tracer.set_tag("orphan", 1)
        assert tracer.roots == []

    def test_instant_event(self, tracer, clock):
        with tracer.span("run"):
            clock.advance(1.0)
            ev = tracer.event("fault", step=3)
        assert ev.instant
        assert ev.duration == 0.0
        assert ev.start == pytest.approx(1.0)
        (run,) = tracer.roots
        assert run.children == [ev]

    def test_record_span_aggregate(self, tracer, clock):
        with tracer.span("step"):
            clock.advance(1.0)
            sp = tracer.record_span("gather_scatter", 0.25, counters={"calls": 12})
        assert sp.duration == pytest.approx(0.25)
        assert sp.end == pytest.approx(1.0)
        assert sp.counters == {"calls": 12}

    def test_walk_and_spans_named(self, tracer, clock):
        for _ in range(3):
            with tracer.span("step"):
                with tracer.span("pressure"):
                    clock.advance(1.0)
        assert len(tracer.spans_named("pressure")) == 3
        assert tracer.total("pressure") == pytest.approx(3.0)
        assert len(list(tracer.walk())) == 6

    def test_aggregate_paths(self, tracer, clock):
        for _ in range(2):
            with tracer.span("step"):
                with tracer.span("pressure"):
                    clock.advance(1.5)
        agg = tracer.aggregate()
        assert agg["step"] == (pytest.approx(3.0), 2)
        assert agg["step/pressure"] == (pytest.approx(3.0), 2)

    def test_reset_drops_finished_spans(self, tracer, clock):
        with tracer.span("old"):
            clock.advance(1.0)
        tracer.reset()
        assert tracer.roots == []
        assert list(tracer.walk()) == []


class TestNullTracer:
    def test_api_parity_all_noops(self):
        nt = NullTracer()
        with nt.span("x", tag=1) as sp:
            sp.add("c", 1)
            nt.add("c", 1)
            nt.set_tag("t", 2)
        nt.event("e")
        nt.record_span("agg", 1.0)
        assert list(nt.walk()) == []
        assert nt.spans_named("x") == []
        assert nt.total("x") == 0.0
        assert nt.aggregate() == {}
        assert not nt.enabled
        nt.reset()

    def test_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False
