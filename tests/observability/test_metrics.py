"""Metrics registry unit tests."""

import math

import pytest

from repro.observability.metrics import MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        m = MetricsRegistry()
        c = m.counter("gs.calls")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert m.counter("gs.calls") is c  # get-or-create returns the same object

    def test_rejects_decrement(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_tracks_extrema(self):
        g = MetricsRegistry().gauge("queue_depth")
        for v in (3, 7, 1):
            g.set(v)
        assert g.value == 1
        assert g.min == 1
        assert g.max == 7
        assert g.updates == 3

    def test_unset_gauge_snapshot_is_nan(self):
        snap = MetricsRegistry().gauge("empty").snapshot()
        assert math.isnan(snap["value"])
        assert math.isnan(snap["min"])


class TestHistogram:
    def test_summary_stats(self):
        h = MetricsRegistry().histogram("iters")
        for v in (10, 20, 30):
            h.record(v)
        assert h.count == 3
        assert h.mean == pytest.approx(20.0)
        assert h.min == 10
        assert h.max == 30
        assert h.percentile(0.5) == 20

    def test_reservoir_is_bounded_but_totals_exact(self):
        h = MetricsRegistry().histogram("big", keep=16)
        for v in range(100):
            h.record(v)
        assert len(h.recent) == 16
        assert h.count == 100
        assert h.total == sum(range(100))
        assert h.min == 0 and h.max == 99

    def test_empty_percentile_nan(self):
        assert math.isnan(MetricsRegistry().histogram("h").percentile(0.5))

    def test_empty_mean_nan_matches_percentile(self):
        # Empty histograms answer NaN consistently (never raise, never 0):
        # a gap in a dashboard, not a fake data point.
        h = MetricsRegistry().histogram("h")
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(0.0))
        assert math.isnan(h.percentile(1.0))
        snap = h.snapshot()
        assert math.isnan(snap["mean"]) and math.isnan(snap["p50"])

    def test_percentile_rejects_out_of_range_q(self):
        h = MetricsRegistry().histogram("h")
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_single_observation_percentiles(self):
        h = MetricsRegistry().histogram("h")
        h.record(7.0)
        assert h.percentile(0.0) == 7.0
        assert h.percentile(0.5) == 7.0
        assert h.percentile(1.0) == 7.0
        assert h.mean == 7.0


class TestRegistry:
    def test_kind_punning_raises(self):
        m = MetricsRegistry()
        m.counter("name")
        with pytest.raises(TypeError):
            m.gauge("name")

    def test_snapshot_is_json_friendly(self):
        import json

        m = MetricsRegistry()
        m.counter("a").inc(2)
        m.gauge("b").set(1.5)
        m.histogram("c").record(3)
        snap = m.snapshot()
        assert set(snap) == {"a", "b", "c"}
        assert snap["a"] == {"type": "counter", "value": 2}
        json.dumps(snap)  # must not raise

    def test_report_and_reset(self):
        m = MetricsRegistry()
        m.counter("hits").inc()
        assert "hits" in m.report()
        assert len(m) == 1 and "hits" in m
        m.reset()
        assert len(m) == 0
