"""Exporter tests: Chrome-trace JSON, JSONL, text report."""

import json

import pytest

from repro.observability.export import (
    span_records,
    text_report,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer

from .test_tracer import FakeClock


@pytest.fixture
def traced():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("step", step=1):
        with tracer.span("pressure") as sp:
            sp.add("iterations", 12)
            clock.advance(0.5)
        tracer.event("fault", cat="resilience")
        clock.advance(0.25)
    return tracer


class TestChromeTrace:
    def test_complete_events_with_microsecond_timestamps(self, traced):
        trace = to_chrome_trace(traced)
        events = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
        assert events["step"]["dur"] == pytest.approx(0.75e6)
        assert events["pressure"]["ts"] == pytest.approx(0.0)
        assert events["pressure"]["dur"] == pytest.approx(0.5e6)
        assert events["pressure"]["args"]["iterations"] == 12

    def test_instant_events_and_metadata(self, traced):
        metrics = MetricsRegistry()
        metrics.counter("sim.steps").inc(3)
        trace = to_chrome_trace(traced, metrics)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["fault"]
        assert instants[0]["cat"] == "resilience"
        assert trace["metadata"]["metrics"]["sim.steps"]["value"] == 3

    def test_open_spans_are_skipped(self):
        tracer = Tracer(clock=FakeClock())
        cm = tracer.span("open")
        cm.__enter__()
        assert to_chrome_trace(tracer)["traceEvents"][-1]["name"] == "process_name"

    def test_written_file_is_loadable_json(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, traced)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)


class TestJsonl:
    def test_records_carry_hierarchy(self, traced):
        recs = list(span_records(traced))
        by_name = {r["name"]: r for r in recs}
        assert by_name["pressure"]["parent"] == "step"
        assert by_name["pressure"]["depth"] == 1
        assert by_name["step"]["parent"] is None
        assert by_name["fault"]["instant"] is True

    def test_written_jsonl_round_trips(self, traced, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_jsonl(path, traced)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 3
        assert lines[0]["name"] == "step"


class TestTextReport:
    def test_contains_totals_and_shares(self, traced):
        report = text_report(traced)
        assert "step" in report and "pressure" in report
        assert "% of step" in report

    def test_empty_tracer(self):
        assert "(no spans recorded)" in text_report(Tracer(clock=FakeClock()))

    def test_metrics_appended(self, traced):
        metrics = MetricsRegistry()
        metrics.counter("gs.calls").inc(9)
        assert "gs.calls" in text_report(traced, metrics)
