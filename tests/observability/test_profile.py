"""Tests for the perfmodel-grounded continuous profiler."""

import numpy as np
import pytest

from repro.core import Simulation, rbc_box_case
from repro.gpu.device import GpuModel
from repro.observability import MetricsRegistry, Tracer
from repro.observability.profile import (
    Attribution,
    ContinuousProfiler,
    KernelSample,
    ModelDriftDetector,
    kernel_roofline_report,
    profiler_report,
)
from repro.observability.profile.roofline import (
    attribute_kernel,
    calibrate_host_model,
    classify_kernel_bound,
    classify_phase_bound,
)
from repro.perfmodel.machine import LUMI
from repro.perfmodel.workmodel import PhaseCost


DEVICE = GpuModel(
    name="test-gpu",
    peak_bandwidth_gbs=1000.0,
    peak_fp64_tflops=10.0,
    launch_overhead_us=0.0,
    submit_delay_us=0.0,
    min_kernel_us=0.0,
    requires_priority_for_concurrency=False,
)


class TestRoofline:
    def test_kernel_sample_achieved_rates(self):
        s = KernelSample("k", seconds=1e-3, bytes_moved=1e6, flops=2e6)
        assert s.achieved_gbps == pytest.approx(1.0)
        assert s.achieved_gflops == pytest.approx(2.0)

    def test_bound_classification_follows_the_ridge(self):
        # 1 GB at 1000 GB/s = 1 ms bandwidth time; few flops: memory bound.
        assert classify_kernel_bound(1e9, 1e6, DEVICE) == "mem"
        # Flop time (1e12 / 10e12 = 100 ms) dwarfs bandwidth time.
        assert classify_kernel_bound(1e6, 1e12, DEVICE) == "compute"

    def test_attribution_ratio_and_efficiency(self):
        # 1 GB on a 1000 GB/s device models as exactly 1 ms.
        sample = KernelSample("k", seconds=2e-3, bytes_moved=1e9)
        a = attribute_kernel(sample, DEVICE)
        assert a.modeled_seconds == pytest.approx(1e-3)
        assert a.ratio == pytest.approx(2.0)
        assert a.efficiency == pytest.approx(50.0)
        assert a.bound == "mem"

    def test_attribution_handles_zero_model(self):
        a = Attribution("x", measured_seconds=1.0, modeled_seconds=0.0, bound="mem")
        assert np.isinf(a.ratio)
        assert Attribution("x", 0.0, 1.0, "mem").efficiency == 0.0

    def test_phase_bound_from_cost_decomposition(self):
        comm = PhaseCost("p", compute_us=10.0, launch_us=1.0, halo_us=8.0, allreduce_us=4.0)
        assert classify_phase_bound(comm) == "comm"
        latency = PhaseCost("p", compute_us=2.0, launch_us=9.0, halo_us=1.0, allreduce_us=0.0)
        assert classify_phase_bound(latency) == "compute"
        mem = PhaseCost("p", compute_us=20.0, launch_us=1.0, halo_us=1.0, allreduce_us=0.0)
        assert classify_phase_bound(mem) == "mem"

    def test_calibrated_host_peaks_at_best_kernel(self):
        results = {
            "a": {"seconds": 1e-3, "bytes": 2e6, "gbps": 2.0},
            "b": {"seconds": 1e-3, "bytes": 5e6},  # 5 GB/s, derived
            "c": {"note": "no timing"},
        }
        device = calibrate_host_model(results)
        assert device.peak_bandwidth_gbs == pytest.approx(5.0)
        # The best kernel then attributes at exactly 100 % efficiency.
        a = attribute_kernel(KernelSample("b", 1e-3, 5e6), device)
        assert a.efficiency == pytest.approx(100.0)

    def test_calibration_requires_bandwidth_figures(self):
        with pytest.raises(ValueError):
            calibrate_host_model({"a": {"note": "nothing usable"}})


class TestModelDriftDetector:
    def test_band_validation(self):
        with pytest.raises(ValueError):
            ModelDriftDetector(low=2.0, high=1.0)
        with pytest.raises(ValueError):
            ModelDriftDetector(warmup=0)

    def test_relative_mode_flags_departure_from_own_baseline(self):
        det = ModelDriftDetector(low=0.5, high=2.0, warmup=3)
        # A large but *stable* ratio (CPU host vs GPU model) never flags.
        for _ in range(6):
            assert det.observe("pressure", measured=1.0, modeled=1e-3) is None
        # A 3x excursion from the series' own baseline does.
        ev = det.observe("pressure", measured=3.0, modeled=1e-3)
        assert ev is not None
        assert ev.direction == "above"
        assert ev.normalized == pytest.approx(3.0)
        # And a 3x speed-up flags on the other side.
        ev = det.observe("pressure", measured=0.3, modeled=1e-3)
        assert ev.direction == "below"
        assert "pressure" in det.summary()

    def test_absolute_mode_uses_unit_baseline(self):
        det = ModelDriftDetector(low=0.5, high=2.0, relative=False)
        assert det.observe("s", measured=1.5, modeled=1.0) is None
        assert det.observe("s", measured=2.5, modeled=1.0) is not None

    def test_non_finite_and_non_positive_observations_are_skipped(self):
        det = ModelDriftDetector(relative=False)
        assert det.observe("s", float("nan"), 1.0) is None
        assert det.observe("s", 1.0, 0.0) is None
        assert det.observe("s", -1.0, 1.0) is None
        assert det.events == []

    def test_flagged_event_reaches_tracer_and_metrics(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        det = ModelDriftDetector(relative=False, tracer=tracer, metrics=metrics)
        det.observe("step", measured=5.0, modeled=1.0, step=7)
        names = [s.name for s in tracer.roots]
        assert "profile.drift.step" in names
        assert metrics.counter("profile.drift.step").value == 1


def _run_profiled(n_steps=3, **kwargs):
    config = rbc_box_case(1e4, n=(2, 2, 2), lx=4, aspect=1.0, perturbation_amplitude=0.1)
    profiler = ContinuousProfiler(**kwargs)
    sim = Simulation(config, profiler=profiler)
    sim.run(n_steps=n_steps)
    return sim, profiler


class TestContinuousProfiler:
    def test_observes_every_step_and_phase(self):
        sim, profiler = _run_profiled(n_steps=3)
        assert profiler.steps == 3
        names = {a.name for a in profiler.attributions()}
        # The Fig. 4 phases, the dssum traffic and the whole step all appear.
        assert {"pressure", "velocity", "temperature", "advection"} <= names
        assert "gather_scatter" in names
        assert "step" in names

    def test_attributions_are_positive_and_ranked(self):
        _, profiler = _run_profiled(n_steps=2)
        atts = profiler.attributions()
        assert all(a.measured_seconds > 0 for a in atts)
        assert all(a.modeled_seconds > 0 for a in atts)
        measured = [a.measured_seconds for a in atts]
        assert measured == sorted(measured, reverse=True)
        assert all(a.bound in ("mem", "compute", "comm") for a in atts)

    def test_metrics_and_record_round_trip(self):
        metrics = MetricsRegistry()
        _, profiler = _run_profiled(n_steps=2, metrics=metrics)
        assert metrics.counter("profile.steps").value == 2
        assert metrics.gauge("profile.gs.achieved_gbps").value > 0
        rec = profiler.attribution_record()
        assert rec["steps"] == 2
        assert rec["machine"] == LUMI.name
        for series in rec["series"].values():
            assert series["bound"] in ("mem", "compute", "comm")
            assert series["efficiency_pct"] >= 0.0

    def test_report_covers_all_series(self):
        _, profiler = _run_profiled(n_steps=2)
        text = profiler_report(profiler)
        for name in ("pressure", "gather_scatter", "step", "bound", "eff %"):
            assert name in text
        assert "model drift" in text

    def test_distributed_solve_attribution(self):
        metrics = MetricsRegistry()
        profiler = ContinuousProfiler(metrics=metrics)
        # 10 iterations -> 2 + 3*10 = 32 modeled allreduces; feed exactly that.
        profiler.observe_distributed_solve(10, 32, p2p_messages=24, n_ranks=4)
        (a,) = profiler.attributions()
        assert a.name == "dist_cg.allreduces"
        assert a.ratio == pytest.approx(1.0)
        assert metrics.gauge("profile.dist_cg.allreduces_per_iter").value == pytest.approx(3.2)
        assert metrics.gauge("profile.dist_cg.p2p_per_rank").value == pytest.approx(6.0)


class TestKernelRooflineReport:
    def test_covers_every_committed_kernel(self):
        import json
        from pathlib import Path

        bench_path = Path(__file__).resolve().parents[2] / "BENCH_kernels.json"
        bench = json.loads(bench_path.read_text())
        text = kernel_roofline_report(bench)
        for name in bench["results"]:
            assert name in text
        assert "host (calibrated)" in text
        assert "eff %" in text
        assert "mem" in text or "compute" in text

    def test_explicit_device_is_honoured(self):
        bench = {"results": {"k": {"seconds": 1e-3, "bytes": 1e6}}}
        text = kernel_roofline_report(bench, device=DEVICE)
        assert "test-gpu" in text
