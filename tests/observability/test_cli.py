"""The ``python -m repro.observability`` CLI: merge, report, flight."""

import json

import pytest

from repro.observability import FleetTelemetry, FlightRecorder, Tracer, write_chrome_trace
from repro.observability.cli import main, trace_phase_totals
from repro.observability.fleet.merge import write_merged_trace


def fake_clock(times):
    it = iter(times)
    return lambda: next(it)


def make_rank_trace(path, spans):
    """Write one single-rank Chrome trace with given (name, duration) spans."""
    ticks = [0.0]
    for _, dur in spans:
        ticks.append(ticks[-1] + dur)
    # Tracer reads the clock once at construction and twice per span.
    reads = [0.0]
    t = 0.0
    for _, dur in spans:
        reads.extend([t, t + dur])
        t += dur
    tracer = Tracer(clock=fake_clock(reads))
    for name, dur in spans:
        tracer.record_span(name, dur)
    write_chrome_trace(path, tracer)


class TestMerge:
    def test_merges_rank_files_into_pid_lanes(self, tmp_path, capsys):
        for r, dur in enumerate((0.5, 1.0)):
            make_rank_trace(tmp_path / f"rank{r}.json", [("fleet.cg.amul", dur)])
        out = tmp_path / "merged.json"
        rc = main([
            "merge", str(tmp_path / "rank0.json"), str(tmp_path / "rank1.json"),
            "-o", str(out),
        ])
        assert rc == 0
        assert "2 rank lanes" in capsys.readouterr().out
        merged = json.loads(out.read_text())
        pids = {e["pid"] for e in merged["traceEvents"] if e.get("ph") == "X"}
        assert pids == {0, 1}
        labels = {
            e["pid"]: e["args"]["name"]
            for e in merged["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert labels == {0: "rank 0", 1: "rank 1"}

    def test_unreadable_input_exits_2(self, tmp_path, capsys):
        assert main(["merge", str(tmp_path / "missing.json")]) == 2
        assert "error" in capsys.readouterr().out


class TestReport:
    def test_table_from_merged_trace(self, tmp_path, capsys):
        fleet = FleetTelemetry(2, clock=fake_clock([0.0] + [0.0] * 99))
        fleet[0].record_span("fleet.cg.amul", 1.0)
        fleet[1].record_span("fleet.cg.amul", 3.0)
        path = tmp_path / "merged.json"
        write_merged_trace(path, fleet)
        rc = main(["report", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fleet.cg.amul" in out
        assert "2 ranks" in out
        assert "parallel efficiency" in out

    def test_trace_phase_totals_inverts_export(self, tmp_path):
        fleet = FleetTelemetry(2, clock=fake_clock([0.0] * 100))
        fleet[0].record_span("fleet.gs.local", 2.0)
        fleet[1].record_span("fleet.gs.local", 4.0)
        trace = fleet.merge_traces()
        totals = trace_phase_totals(trace)
        assert totals[0]["fleet.gs.local"] == pytest.approx(2.0)
        assert totals[1]["fleet.gs.local"] == pytest.approx(4.0)

    def test_empty_trace_reports_gracefully(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert main(["report", str(path)]) == 0
        assert "no complete spans" in capsys.readouterr().out

    def test_invalid_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        assert main(["report", str(path)]) == 2


class TestFlight:
    def make_bundle(self, tmp_path):
        from types import SimpleNamespace

        rec = FlightRecorder(capacity=4, out_dir=tmp_path)
        for s in range(1, 6):
            rec.record_step(SimpleNamespace(), SimpleNamespace(step=s, time=s * 0.1, cfl=0.2))
        rec.record_event("anomaly.cfl", step=5, detail="cfl spike")
        return rec.dump(reason="manual")

    def test_summary_output(self, tmp_path, capsys):
        path = self.make_bundle(tmp_path)
        assert main(["flight", str(path)]) == 0
        out = capsys.readouterr().out
        assert "steps 2..5" in out
        assert "[anomaly.cfl]" in out

    def test_json_output_parses(self, tmp_path, capsys):
        path = self.make_bundle(tmp_path)
        assert main(["flight", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["header"]["reason"] == "manual"
        assert len(data["frames"]) == 4
        assert data["events"][0]["event"] == "anomaly.cfl"

    def test_missing_bundle_exits_2(self, tmp_path, capsys):
        assert main(["flight", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().out
