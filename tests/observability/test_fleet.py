"""Per-rank fleet telemetry: merged traces, imbalance analytics, traffic."""

import numpy as np
import pytest

from repro.comm import (
    DistributedConjugateGradient,
    DistributedGatherScatter,
    SimWorld,
    linear_partition,
)
from repro.observability import FleetTelemetry, analyze_totals
from repro.precond.jacobi import helmholtz_diagonal
from repro.sem.bc import DirichletBC
from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace


NRANKS = 4


def build_fleet_solver(nranks=NRANKS, lx=4, fleet=None):
    """The distributed Helmholtz problem of test_distributed_solver, with
    fleet telemetry attached to every layer."""
    sp = FunctionSpace(box_mesh((3, 2, 2)), lx)
    bc = DirichletBC(sp, ["bottom", "top", "x-", "x+", "y-", "y+"], 0.0)
    h1, h2 = 0.05, 20.0
    rng = np.random.default_rng(0)
    b = sp.gs.add(sp.coef.mass * rng.normal(size=sp.shape)) * bc.mask

    world = SimWorld(nranks)
    owner = linear_partition(sp.mesh.nelv, nranks)
    dgs = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, world)
    coef_chunks = {
        name: dgs.scatter_field(getattr(sp.coef, name))
        for name in ("g11", "g22", "g33", "g12", "g13", "g23", "mass")
    }

    class LocalCoef:
        pass

    def local_amul(r, chunk):
        from repro.sem.operators import ax_helmholtz

        c = LocalCoef()
        for name, chunks in coef_chunks.items():
            setattr(c, name, chunks[r])
        return ax_helmholtz(chunk, c, sp.dx, h1, h2)

    mask_chunks = dgs.scatter_field(bc.mask)
    diag = sp.gs.add(helmholtz_diagonal(sp, h1, h2))
    diag = np.where(bc.mask == 0.0, 1.0, diag)
    pd = [d * m for d, m in zip(dgs.scatter_field(1.0 / diag), mask_chunks)]
    solver = DistributedConjugateGradient(
        local_amul, dgs, world, local_mask=mask_chunks, precond_diag=pd,
        tol=1e-10, maxiter=400,
    )
    if fleet is not None:
        fleet.attach(world, dgs, solver)
    return solver, dgs, world, b


@pytest.fixture(scope="module")
def solved_fleet():
    fleet = FleetTelemetry(NRANKS)
    solver, dgs, world, b = build_fleet_solver(fleet=fleet)
    x, mon = solver.solve(dgs.scatter_field(b))
    assert mon.converged
    fleet.publish_traffic(world)
    return fleet, world, mon


class TestAttachment:
    def test_attach_sets_fleet_attribute(self):
        fleet = FleetTelemetry(NRANKS)
        solver, dgs, world, _ = build_fleet_solver(fleet=fleet)
        assert world.fleet is fleet
        assert dgs.fleet is fleet
        assert solver.fleet is fleet

    def test_constructor_injection_equivalent(self):
        fleet = FleetTelemetry(2)
        world = SimWorld(2, fleet=fleet)
        assert world.fleet is fleet

    def test_size_validation(self):
        with pytest.raises(ValueError):
            FleetTelemetry(0)


class TestMergedTrace:
    def test_one_pid_lane_per_rank(self, solved_fleet):
        fleet, world, _ = solved_fleet
        trace = fleet.merge_traces()
        pids = {e["pid"] for e in trace["traceEvents"] if e.get("ph") == "X"}
        assert pids == set(range(NRANKS))
        assert trace["metadata"]["n_ranks"] == NRANKS

    def test_per_phase_spans_in_every_lane(self, solved_fleet):
        fleet, _, _ = solved_fleet
        trace = fleet.merge_traces()
        for rank in range(NRANKS):
            names = {
                e["name"]
                for e in trace["traceEvents"]
                if e.get("ph") == "X" and e["pid"] == rank
            }
            assert {"fleet.gs.local", "fleet.cg.amul"} <= names

    def test_lanes_are_labelled_by_rank(self, solved_fleet):
        fleet, _, _ = solved_fleet
        trace = fleet.merge_traces()
        labels = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert labels[0] == "rank 0" and labels[NRANKS - 1] == f"rank {NRANKS - 1}"

    def test_metrics_ride_in_metadata(self, solved_fleet):
        fleet, _, mon = solved_fleet
        trace = fleet.merge_traces()
        per_rank = trace["metadata"]["metrics"]
        assert set(per_rank) == {str(r) for r in range(NRANKS)}
        snap = per_rank["0"]
        assert snap["fleet.cg.solves"]["value"] == 1.0
        assert snap["fleet.cg.iterations"]["mean"] == mon.iterations


class TestImbalanceReport:
    def test_fig4_style_table(self, solved_fleet):
        fleet, _, _ = solved_fleet
        report = fleet.text_report()
        assert f"({NRANKS} ranks)" in report
        for col in ("max", "mean", "min", "imbal", "strag", "cp%"):
            assert col in report
        assert "fleet.cg.amul" in report
        assert "parallel efficiency" in report

    def test_deterministic_analytics_from_recorded_spans(self):
        # Drive the per-rank tracers by hand: rank 1 is a 2x straggler in
        # the amul phase, everything else is balanced.
        fleet = FleetTelemetry(4)
        for rt in fleet:
            rt.record_span("fleet.cg.amul", 2.0 if rt.rank == 1 else 1.0)
            rt.record_span("fleet.gs.local", 0.5)
        report = fleet.imbalance()
        amul = report.phase("fleet.cg.amul")
        assert amul.max_seconds == pytest.approx(2.0)
        assert amul.mean_seconds == pytest.approx(1.25)
        assert amul.min_seconds == pytest.approx(1.0)
        assert amul.straggler == 1
        assert amul.imbalance == pytest.approx(1.6)
        # Phases are ordered by max time: the straggling phase leads.
        assert report.phases[0].name == "fleet.cg.amul"
        # critical path = 2.0 + 0.5; efficiency = (1.25 + 0.5) / 2.5.
        assert report.phases[0].critical_path_share == pytest.approx(0.8)
        assert report.parallel_efficiency == pytest.approx(1.75 / 2.5)
        assert report.straggler_counts()[1] == 1

    def test_analyze_totals_fills_missing_phases_with_zero(self):
        report = analyze_totals({0: {"a": 1.0}, 1: {}}, n_ranks=2)
        a = report.phase("a")
        assert a.per_rank == {0: 1.0, 1: 0.0}
        assert a.straggler == 0

    def test_efficiency_comparable_to_perfmodel_scaling(self):
        # Both definitions must agree on the ideal case: perfect balance
        # means 1.0 on each side.
        balanced = analyze_totals({0: {"a": 1.0}, 1: {"a": 1.0}}, n_ranks=2)
        assert balanced.parallel_efficiency == pytest.approx(1.0)

    def test_reset_clears_spans_and_metrics(self, ):
        fleet = FleetTelemetry(2)
        fleet[0].record_span("fleet.gs.local", 1.0)
        fleet[1].metrics.counter("fleet.cg.solves").inc()
        fleet.reset()
        assert fleet.imbalance().phases == []
        assert len(fleet[1].metrics) == 0


class TestTrafficAccounting:
    def test_per_rank_totals_sum_to_world_totals(self, solved_fleet):
        _, world, _ = solved_fleet
        stats = world.stats
        assert sum(stats.sent_messages.values()) == stats.p2p_messages
        assert sum(stats.recv_messages.values()) == stats.p2p_messages
        assert sum(stats.sent_bytes.values()) == stats.p2p_bytes
        assert sum(stats.recv_bytes.values()) == stats.p2p_bytes

    def test_rank_totals_shape(self, solved_fleet):
        _, world, _ = solved_fleet
        totals = world.stats.rank_totals(0)
        assert set(totals) == {
            "sent_messages", "sent_bytes", "recv_messages", "recv_bytes"
        }
        assert all(v > 0 for v in totals.values())

    def test_gather_counts_per_rank(self):
        world = SimWorld(3)
        world.gather([np.zeros(4), np.ones(4), np.ones(4)], root=0)
        assert world.stats.recv_messages.get(0) == 2
        assert world.stats.sent_messages.get(1) == 1
        assert world.stats.sent_messages.get(0, 0) == 0  # root sends nothing

    def test_reset_clears_per_rank_counters(self):
        world = SimWorld(2)
        world.exchange({(0, 1): np.zeros(8)})
        assert world.stats.sent_messages
        world.stats.reset()
        assert world.stats.p2p_messages == 0
        assert world.stats.sent_messages == {}
        assert world.stats.sent_bytes == {}
        assert world.stats.recv_messages == {}
        assert world.stats.recv_bytes == {}

    def test_publish_traffic_sets_per_rank_gauges(self, solved_fleet):
        fleet, world, _ = solved_fleet
        for rt in fleet:
            expected = world.stats.rank_totals(rt.rank)
            for key, value in expected.items():
                assert rt.metrics.gauge(f"fleet.comm.{key}").value == value


class TestNoFleetOverhead:
    def test_unattached_layers_record_nothing(self):
        solver, dgs, world, b = build_fleet_solver(fleet=None)
        x, mon = solver.solve(dgs.scatter_field(b))
        assert mon.converged
        assert world.fleet is None and dgs.fleet is None and solver.fleet is None
