"""EWMA/z-score anomaly detection and its mirroring into every sink."""

import json
import math
from types import SimpleNamespace

import pytest

from repro.observability import (
    AnomalyMonitor,
    EwmaDetector,
    FlightBundle,
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    to_chrome_trace,
)
from repro.resilience import EventLog


class TestEwmaDetector:
    def test_warmup_absorbs_transient(self):
        det = EwmaDetector("s", warmup=8)
        # A wild swing inside the warmup window must not flag.
        for v in (1.0, 50.0, 1.0, 50.0, 1.0, 1.0, 1.0, 1.0):
            assert det.observe(v) is None

    def test_spike_on_near_constant_series_flags(self):
        det = EwmaDetector("iters", warmup=4)
        for _ in range(8):
            assert det.observe(5.0) is None
        a = det.observe(15.0, step=9)
        assert a is not None
        assert a.series == "iters"
        assert a.value == 15.0
        assert a.step == 9
        assert a.zscore >= det.z_threshold

    def test_small_jitter_does_not_flag(self):
        det = EwmaDetector("iters", warmup=4)
        for _ in range(8):
            det.observe(5.0)
        assert det.observe(6.0) is None  # z = 2 with the 10% rel floor

    def test_level_shift_flags_once_then_adapts(self):
        det = EwmaDetector("s", warmup=4, alpha=0.5)
        for _ in range(8):
            det.observe(10.0)
        flags = [det.observe(30.0) is not None for _ in range(12)]
        assert flags[0] is True
        assert flags[-1] is False  # the new level became the baseline

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EwmaDetector("s", alpha=0.0)

    def test_describe_and_record(self):
        det = EwmaDetector("iters", warmup=2)
        for _ in range(6):
            det.observe(4.0)
        a = det.observe(40.0, step=7)
        rec = a.as_record()
        assert rec["series"] == "iters" and rec["step"] == 7
        assert "iters" in a.describe() and "z =" in a.describe()


class TestAnomalyMonitorSinks:
    def make_monitor(self):
        tracer = Tracer(clock=lambda: 0.0)
        metrics = MetricsRegistry()
        log = EventLog()
        flight = FlightRecorder(capacity=4)
        mon = AnomalyMonitor(
            tracer=tracer, metrics=metrics, event_log=log, flight=flight, warmup=4
        )
        return mon, tracer, metrics, log, flight

    def feed_spike(self, mon, series="krylov.pressure.iterations"):
        for _ in range(8):
            mon.observe(series, 5.0)
        return mon.observe(series, 25.0, step=9)

    def test_mirrors_into_trace_export(self):
        mon, tracer, _, _, _ = self.make_monitor()
        a = self.feed_spike(mon)
        assert a is not None
        trace = to_chrome_trace(tracer)
        instants = [e for e in trace["traceEvents"] if e.get("ph") == "i"]
        assert any(
            e["name"] == "anomaly.krylov.pressure.iterations" for e in instants
        )

    def test_mirrors_into_metrics_and_event_log(self):
        mon, _, metrics, log, _ = self.make_monitor()
        self.feed_spike(mon)
        assert metrics.counter("anomaly.krylov.pressure.iterations").value == 1.0
        assert log.count("anomaly.krylov.pressure.iterations") == 1
        ev = log.events[-1]
        assert ev.step == 9

    def test_mirrors_into_flight_event_ring(self):
        mon, _, _, _, flight = self.make_monitor()
        self.feed_spike(mon)
        evs = [e for e in flight.events if e["event"].startswith("anomaly.")]
        assert len(evs) == 1
        assert evs[0]["step"] == 9
        assert evs[0]["data"]["value"] == 25.0

    def test_kept_in_anomalies_list(self):
        mon, _, _, _, _ = self.make_monitor()
        self.feed_spike(mon)
        assert len(mon.anomalies) == 1

    def test_detectors_are_per_series(self):
        mon, _, _, _, _ = self.make_monitor()
        mon.observe("a", 1.0)
        mon.observe("b", 100.0)
        assert set(mon.detectors) == {"a", "b"}


class TestObserveStep:
    def fake_result(self, piters=5, step=1):
        return SimpleNamespace(
            step=step,
            pressure_iterations=piters,
            velocity_iterations=3,
            temperature_iterations=2,
            cfl=0.4,
        )

    def test_krylov_spike_flags(self):
        mon = AnomalyMonitor(warmup=4)
        sim = SimpleNamespace(metrics=None)
        for s in range(1, 10):
            assert mon.observe_step(sim, self.fake_result(step=s)) == []
        flagged = mon.observe_step(sim, self.fake_result(piters=40, step=10))
        assert [a.series for a in flagged] == ["krylov.pressure.iterations"]
        assert flagged[0].step == 10

    def test_step_seconds_series(self):
        mon = AnomalyMonitor(warmup=4)
        sim = SimpleNamespace(metrics=None)
        for s in range(1, 10):
            mon.observe_step(sim, self.fake_result(step=s), step_seconds=0.01)
        flagged = mon.observe_step(
            sim, self.fake_result(step=10), step_seconds=0.5
        )
        assert "step.seconds" in [a.series for a in flagged]

    def test_queue_depth_from_sim_metrics(self):
        mon = AnomalyMonitor(warmup=4)
        metrics = MetricsRegistry()
        sim = SimpleNamespace(metrics=metrics)
        for s in range(1, 10):
            metrics.gauge("insitu.queue_depth").set(1.0)
            mon.observe_step(sim, self.fake_result(step=s))
        metrics.gauge("insitu.queue_depth").set(8.0)
        flagged = mon.observe_step(sim, self.fake_result(step=10))
        assert "insitu.queue_depth" in [a.series for a in flagged]

    def test_nan_gauge_is_skipped(self):
        mon = AnomalyMonitor(warmup=2)
        metrics = MetricsRegistry()
        metrics.gauge("insitu.queue_depth")  # created but never set: NaN
        sim = SimpleNamespace(metrics=metrics)
        mon.observe_step(sim, self.fake_result())
        assert "insitu.queue_depth" not in mon.detectors


class TestPipelineIntegration:
    def test_pipeline_feeds_queue_depth(self):
        import numpy as np

        from repro.insitu import InSituPipeline, Processor

        class Sink(Processor):
            name = "sink"

            def process(self, tag, array, sim_time):
                pass

        mon = AnomalyMonitor(warmup=2)
        with InSituPipeline([Sink()], max_queue=4, anomalies=mon) as pipe:
            for _ in range(6):
                pipe.put("u", np.zeros(8))
        assert "insitu.queue_depth" in mon.detectors
        assert mon.detectors["insitu.queue_depth"].observations == 6


class TestDetectorStateAndReset:
    """Satellite: EWMA warm-up after reset, state through a flight dump."""

    def test_reset_reenters_warmup_without_false_positives(self):
        det = EwmaDetector("iters", warmup=6)
        for _ in range(12):
            det.observe(5.0)
        det.reset()
        # The first post-reset samples swing wildly (a restarted run's
        # transient); inside the fresh warm-up window none may flag.
        for v in (40.0, 2.0, 40.0, 2.0, 40.0, 2.0):
            assert det.observe(v) is None
        assert det.observations == 6

    def test_monitor_reset_keeps_series_but_rewarns(self):
        mon = AnomalyMonitor(warmup=4)
        for _ in range(10):
            mon.observe("krylov.pressure.iterations", 5.0)
        mon.reset()
        assert "krylov.pressure.iterations" in mon.detectors
        # A value that would have flagged pre-reset is absorbed as warm-up.
        assert mon.observe("krylov.pressure.iterations", 50.0) is None

    def test_detector_state_round_trip_is_behaviour_identical(self):
        a = EwmaDetector("s", warmup=4, alpha=0.5)
        b = EwmaDetector("s", warmup=4, alpha=0.5)
        for v in (4.0, 5.0, 4.5, 5.5, 4.0, 5.0):
            a.observe(v)
            b.observe(v)
        restored = EwmaDetector.from_state(json.loads(json.dumps(a.state_dict())))
        # Continue both with the same tail: flags and statistics agree.
        for v in (5.0, 4.0, 30.0, 5.0):
            ra, rb = restored.observe(v), b.observe(v)
            assert (ra is None) == (rb is None)
        assert restored.mean == pytest.approx(b.mean)
        assert restored.var == pytest.approx(b.var)
        assert restored.observations == b.observations

    def test_fresh_detector_state_round_trips_nan_mean(self):
        det = EwmaDetector("s")
        # Strict-JSON writers turn the pre-observation NaN mean into null.
        state = json.loads(json.dumps(det.state_dict(), default=lambda v: None))
        state["mean"] = None
        restored = EwmaDetector.from_state(state)
        assert math.isnan(restored.mean)
        assert restored.observations == 0

    def test_monitor_state_survives_flight_dump_reload(self, tmp_path):
        flight = FlightRecorder(capacity=4, out_dir=tmp_path)
        mon = AnomalyMonitor(warmup=4, flight=flight)
        for _ in range(10):
            mon.observe("krylov.pressure.iterations", 5.0)
        path = flight.dump(reason="statecheck")
        bundle = FlightBundle.load(path)
        assert "anomaly_monitor" in bundle.states

        restored = AnomalyMonitor.from_state(bundle.states["anomaly_monitor"])
        det = restored.detectors["krylov.pressure.iterations"]
        assert det.observations == 10
        # Past warm-up: the restored monitor flags a spike immediately --
        # no false negatives from a cold re-warm-up...
        assert restored.observe("krylov.pressure.iterations", 25.0) is not None
        # ...and a second monitor restored the same way but reset first
        # treats the same spike as warm-up data (no false positive).
        fresh = AnomalyMonitor.from_state(bundle.states["anomaly_monitor"])
        fresh.reset()
        assert fresh.observe("krylov.pressure.iterations", 25.0) is None

    def test_flight_setter_registers_state_provider(self):
        flight = FlightRecorder(capacity=2)
        mon = AnomalyMonitor()
        mon.flight = flight
        assert "anomaly_monitor" in flight.state_providers
        assert flight.state_providers["anomaly_monitor"]() == mon.state_dict()
