"""Perf-regression harness tests: comparator semantics and harness output.

The comparator tests are fully deterministic (synthetic records); the
harness tests run miniature versions of the real benchmarks so they stay
fast.  The committed repository-root baselines are validated structurally
and against the comparator's identity property.
"""

import copy
import json
from pathlib import Path

import pytest

from benchmarks.compare_bench import compare, main as compare_main
from benchmarks.perf_harness import (
    SCHEMA_VERSION,
    environment,
    kernel_benchmarks,
    noop_tracer_overhead,
    step_benchmark,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_record(**seconds) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "environment": {"git_sha": "abc"},
        "results": {k: {"seconds": v} for k, v in seconds.items()},
    }


class TestComparator:
    def test_identity_has_no_regressions(self):
        rec = make_record(ax=0.005, gs=0.0004)
        assert not any(c.regressed for c in compare(rec, rec))

    def test_2x_slowdown_regresses(self):
        base = make_record(ax=0.005, gs=0.0004)
        slow = copy.deepcopy(base)
        for entry in slow["results"].values():
            entry["seconds"] *= 2.0
        comps = compare(base, slow, threshold=0.3)
        assert all(c.regressed for c in comps)
        assert all(c.ratio == pytest.approx(2.0) for c in comps)

    def test_slowdown_within_threshold_passes(self):
        base = make_record(ax=0.005)
        cand = make_record(ax=0.005 * 1.25)
        assert not compare(base, cand, threshold=0.3)[0].regressed

    def test_missing_candidate_entry_is_a_regression(self):
        comps = compare(make_record(ax=0.005, gs=0.0004), make_record(ax=0.005))
        gone = {c.name: c for c in comps}["gs"]
        assert gone.regressed and gone.candidate_seconds is None

    def test_new_candidate_entry_is_not_a_regression(self):
        comps = compare(make_record(ax=0.005), make_record(ax=0.005, new_kernel=0.1))
        new = {c.name: c for c in comps}["new_kernel"]
        assert not new.regressed and new.baseline_seconds is None

    def test_speedup_passes(self):
        comps = compare(make_record(ax=0.010), make_record(ax=0.002))
        assert not comps[0].regressed

    def _write(self, tmp_path, name, rec):
        path = tmp_path / name
        path.write_text(json.dumps(rec))
        return str(path)

    def test_main_exit_codes(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", make_record(ax=0.005))
        same = self._write(tmp_path, "same.json", make_record(ax=0.005))
        slow = self._write(tmp_path, "slow.json", make_record(ax=0.010))
        assert compare_main([base, same]) == 0
        assert compare_main([base, slow]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "no regressions" in out

    def test_summary_table_printed_even_on_success(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", make_record(ax=0.005, gs=0.0004))
        cand = self._write(
            tmp_path, "cand.json", make_record(ax=0.005, gs=0.0004, extra=0.001)
        )
        assert compare_main([base, cand]) == 0
        out = capsys.readouterr().out
        # Every entry appears in the table with its verdict, and the
        # aggregate line reports counts and the worst ratio.
        assert "benchmark" in out and "verdict" in out
        assert "ax" in out and "gs" in out and "extra" in out
        assert "NEW" in out
        assert "3 entries, 0 regressed" in out
        assert "worst ratio" in out


class TestHarness:
    def test_environment_metadata(self):
        env = environment()
        for key in ("timestamp", "python", "numpy", "platform", "git_sha"):
            assert key in env

    def test_kernel_benchmarks_tiny(self):
        results = kernel_benchmarks(repeats=1, mesh=(2, 2, 2), lx=4)
        assert set(results) == {
            "ax_helmholtz",
            "gather_scatter",
            "dealias_convect",
            "fdm_solve",
            "hsmg_apply",
        }
        for rec in results.values():
            assert rec["seconds"] > 0
            assert rec["gbps"] > 0

    def test_step_benchmark_tiny(self):
        results = step_benchmark(n_steps=2, warmup=1, n=(2, 2, 2), lx=4)
        for phase in ("step", "advection", "pressure", "velocity", "temperature",
                      "gather_scatter"):
            assert phase in results
            assert results[phase]["seconds"] > 0
        # Phases are a decomposition of (most of) the step.
        phase_sum = sum(v["seconds"] for k, v in results.items() if k != "step")
        assert phase_sum < results["step"]["seconds"] * 1.5

    def test_noop_tracer_overhead_under_2_percent(self):
        # The acceptance criterion for the observability layer.  Timing
        # noise can spoil one measurement; best-of-three attempts must
        # land under the bound.
        best = min(
            noop_tracer_overhead(repeats=3)["overhead_fraction"] for _ in range(3)
        )
        assert best < 0.02, f"no-op tracer overhead {best:.2%} >= 2%"


class TestCommittedBaselines:
    """The repository-root BENCH_*.json files are live and self-consistent."""

    @pytest.mark.parametrize("name", ["BENCH_kernels.json", "BENCH_step.json"])
    def test_baseline_exists_and_validates(self, name):
        path = REPO_ROOT / name
        assert path.exists(), f"{name} baseline missing from repository root"
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA_VERSION
        assert data["results"], "baseline has no results"
        for rec in data["results"].values():
            assert rec["seconds"] > 0

    @pytest.mark.parametrize("name", ["BENCH_kernels.json", "BENCH_step.json"])
    def test_comparator_passes_baseline_against_itself(self, name):
        data = json.loads((REPO_ROOT / name).read_text())
        assert not any(c.regressed for c in compare(data, data))

    def test_kernel_baseline_records_noop_overhead(self):
        data = json.loads((REPO_ROOT / "BENCH_kernels.json").read_text())
        assert data["noop_tracer_overhead"]["overhead_fraction"] < 0.02
