"""Perf-regression harness tests: comparator semantics and harness output.

The comparator tests are fully deterministic (synthetic records); the
harness tests run miniature versions of the real benchmarks so they stay
fast.  The committed repository-root baselines are validated structurally
and against the comparator's identity property.
"""

import copy
import json
from pathlib import Path

import pytest

from benchmarks.compare_bench import (
    check_min_speedups,
    compare,
    main as compare_main,
    parse_min_speedups,
)
from benchmarks.perf_harness import (
    LEGACY_PRESSURE_OVERRIDES,
    SCHEMA_VERSION,
    environment,
    kernel_benchmarks,
    noop_tracer_overhead,
    pressure_fastpath_benchmark,
    step_benchmark,
    write_tuning_artifacts,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_record(**seconds) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "environment": {"git_sha": "abc"},
        "results": {k: {"seconds": v} for k, v in seconds.items()},
    }


class TestComparator:
    def test_identity_has_no_regressions(self):
        rec = make_record(ax=0.005, gs=0.0004)
        assert not any(c.regressed for c in compare(rec, rec))

    def test_2x_slowdown_regresses(self):
        base = make_record(ax=0.005, gs=0.0004)
        slow = copy.deepcopy(base)
        for entry in slow["results"].values():
            entry["seconds"] *= 2.0
        comps = compare(base, slow, threshold=0.3)
        assert all(c.regressed for c in comps)
        assert all(c.ratio == pytest.approx(2.0) for c in comps)

    def test_slowdown_within_threshold_passes(self):
        base = make_record(ax=0.005)
        cand = make_record(ax=0.005 * 1.25)
        assert not compare(base, cand, threshold=0.3)[0].regressed

    def test_missing_candidate_entry_is_a_regression(self):
        comps = compare(make_record(ax=0.005, gs=0.0004), make_record(ax=0.005))
        gone = {c.name: c for c in comps}["gs"]
        assert gone.regressed and gone.candidate_seconds is None

    def test_new_candidate_entry_is_not_a_regression(self):
        comps = compare(make_record(ax=0.005), make_record(ax=0.005, new_kernel=0.1))
        new = {c.name: c for c in comps}["new_kernel"]
        assert not new.regressed and new.baseline_seconds is None

    def test_speedup_passes(self):
        comps = compare(make_record(ax=0.010), make_record(ax=0.002))
        assert not comps[0].regressed

    def _write(self, tmp_path, name, rec):
        path = tmp_path / name
        path.write_text(json.dumps(rec))
        return str(path)

    def test_main_exit_codes(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", make_record(ax=0.005))
        same = self._write(tmp_path, "same.json", make_record(ax=0.005))
        slow = self._write(tmp_path, "slow.json", make_record(ax=0.010))
        assert compare_main([base, same]) == 0
        assert compare_main([base, slow]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "no regressions" in out

    def test_lost_subkeys_are_a_regression(self):
        """Dropping the calls/bytes accounting from an entry fails the
        comparison even when the wall time improved."""
        base = make_record(gs=0.0004)
        base["results"]["gs"].update(calls=100, bytes=123456)
        cand = make_record(gs=0.0002)  # faster, but lost the sub-keys
        comps = compare(base, cand, threshold=0.3)
        assert comps[0].regressed
        assert comps[0].lost_subkeys == ["calls", "bytes"]

    def test_subkeys_preserved_passes(self):
        base = make_record(gs=0.0004)
        base["results"]["gs"].update(calls=100, bytes=123456)
        cand = make_record(gs=0.0004)
        cand["results"]["gs"].update(calls=90, bytes=120000)
        comps = compare(base, cand, threshold=0.3)
        assert not comps[0].regressed and comps[0].lost_subkeys == []

    def test_subkeys_new_in_candidate_are_fine(self):
        base = make_record(gs=0.0004)
        cand = make_record(gs=0.0004)
        cand["results"]["gs"].update(calls=90, bytes=120000)
        assert not compare(base, cand)[0].regressed

    def test_lost_subkey_failure_via_main(self, tmp_path, capsys):
        base = make_record(gs=0.0004)
        base["results"]["gs"].update(calls=100)
        b = self._write(tmp_path, "b.json", base)
        c = self._write(tmp_path, "c.json", make_record(gs=0.0002))
        assert compare_main([b, c]) == 1
        assert "lost sub-keys: calls" in capsys.readouterr().out

    def test_summary_table_printed_even_on_success(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", make_record(ax=0.005, gs=0.0004))
        cand = self._write(
            tmp_path, "cand.json", make_record(ax=0.005, gs=0.0004, extra=0.001)
        )
        assert compare_main([base, cand]) == 0
        out = capsys.readouterr().out
        # Every entry appears in the table with its verdict, and the
        # aggregate line reports counts and the worst ratio.
        assert "benchmark" in out and "verdict" in out
        assert "ax" in out and "gs" in out and "extra" in out
        assert "NEW" in out
        assert "3 entries, 0 regressed" in out
        assert "worst ratio" in out


class TestMinSpeedup:
    """The --min-speedup ENTRY=MIN gate of the comparator."""

    def test_parse(self):
        assert parse_min_speedups(["pressure_fastpath=1.3", "ax=2"]) == {
            "pressure_fastpath": 1.3,
            "ax": 2.0,
        }

    @pytest.mark.parametrize("bad", ["nosep", "=1.3", "ax=fast"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_min_speedups([bad])

    def test_cross_file_speedup_pass_and_fail(self):
        base = make_record(ax=0.010)
        fast = make_record(ax=0.004)
        assert check_min_speedups(base, fast, {"ax": 2.0}) == []
        slow = make_record(ax=0.008)
        failures = check_min_speedups(base, slow, {"ax": 2.0})
        assert len(failures) == 1 and "ax" in failures[0]

    def test_self_contained_ab_entry_uses_its_own_ratio(self):
        """An entry with legacy_seconds gates on its internal A/B ratio,
        ignoring the baseline file entirely (machine independence)."""
        base = make_record()  # no pressure_fastpath in the baseline at all
        cand = make_record()
        cand["results"]["pressure_fastpath"] = {
            "seconds": 0.015,
            "legacy_seconds": 0.034,
            "speedup": 0.034 / 0.015,
        }
        assert check_min_speedups(base, cand, {"pressure_fastpath": 2.0}) == []
        failures = check_min_speedups(base, cand, {"pressure_fastpath": 3.0})
        assert len(failures) == 1 and "self (legacy/fast)" in failures[0]

    def test_missing_entry_fails_the_gate(self):
        failures = check_min_speedups(make_record(), make_record(), {"gone": 1.5})
        assert len(failures) == 1 and "missing" in failures[0]

    def test_main_enforces_min_speedup(self, tmp_path, capsys):
        b = tmp_path / "b.json"
        c = tmp_path / "c.json"
        b.write_text(json.dumps(make_record(ax=0.010)))
        c.write_text(json.dumps(make_record(ax=0.008)))
        args = [str(b), str(c), "--min-speedup", "ax=2.0"]
        assert compare_main(args) == 1
        assert "SPEEDUP GATE" in capsys.readouterr().out
        c.write_text(json.dumps(make_record(ax=0.004)))
        assert compare_main(args) == 0
        assert "speedup gate satisfied" in capsys.readouterr().out


class TestHarness:
    def test_environment_metadata(self):
        env = environment()
        for key in ("timestamp", "python", "numpy", "platform", "git_sha"):
            assert key in env

    def test_kernel_benchmarks_tiny(self):
        results = kernel_benchmarks(repeats=1, mesh=(2, 2, 2), lx=4)
        assert set(results) == {
            "ax_helmholtz",
            "gather_scatter",
            "dealias_convect",
            "fdm_solve",
            "hsmg_apply",
        }
        for rec in results.values():
            assert rec["seconds"] > 0
            assert rec["gbps"] > 0

    def test_step_benchmark_tiny(self):
        results = step_benchmark(n_steps=2, warmup=1, n=(2, 2, 2), lx=4)
        for phase in ("step", "advection", "pressure", "velocity", "temperature",
                      "gather_scatter"):
            assert phase in results
            assert results[phase]["seconds"] > 0
        # Phases are a decomposition of (most of) the step.
        phase_sum = sum(v["seconds"] for k, v in results.items() if k != "step")
        assert phase_sum < results["step"]["seconds"] * 1.5

    def test_pressure_fastpath_benchmark_tiny(self):
        fast, record = pressure_fastpath_benchmark(
            n_steps=2, warmup=1, n=(2, 2, 2), lx=4, repeats=1
        )
        assert record["seconds"] == fast["pressure"]["seconds"]
        assert record["legacy_seconds"] > 0
        assert record["speedup"] == pytest.approx(
            record["legacy_seconds"] / record["seconds"]
        )
        # The legacy leg restores the process-wide contraction variant.
        from repro.sem.coef import get_contraction_variant

        assert get_contraction_variant() == "batched"

    def test_legacy_overrides_are_valid_config_fields(self):
        import dataclasses

        from repro.core import rbc_box_case

        config = rbc_box_case(1e4, n=(2, 2, 2), lx=4)
        legacy = dataclasses.replace(config, **LEGACY_PRESSURE_OVERRIDES)
        assert legacy.pressure_projection_dim == 8
        assert legacy.operator_cache is False

    def test_write_tuning_artifacts(self, tmp_path):
        from repro.sem.autotune import DIMENSIONS, TuningTable

        table_path, report_path = write_tuning_artifacts(
            tmp_path, shapes=((2, 2),)
        )
        table = TuningTable.load(table_path)
        entry = table.lookup(2, 2)
        assert entry is not None
        for dim, pick in entry.selections.items():
            assert pick in DIMENSIONS[dim]
        report = json.loads(report_path.read_text())
        for key in ("hits", "misses", "entries", "hit_rate"):
            assert key in report

    def test_noop_tracer_overhead_under_2_percent(self):
        # The acceptance criterion for the observability layer.  Timing
        # noise can spoil one measurement; best-of-three attempts must
        # land under the bound.
        best = min(
            noop_tracer_overhead(repeats=3)["overhead_fraction"] for _ in range(3)
        )
        assert best < 0.02, f"no-op tracer overhead {best:.2%} >= 2%"


class TestCommittedBaselines:
    """The repository-root BENCH_*.json files are live and self-consistent."""

    @pytest.mark.parametrize("name", ["BENCH_kernels.json", "BENCH_step.json"])
    def test_baseline_exists_and_validates(self, name):
        path = REPO_ROOT / name
        assert path.exists(), f"{name} baseline missing from repository root"
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA_VERSION
        assert data["results"], "baseline has no results"
        for rec in data["results"].values():
            assert rec["seconds"] > 0

    @pytest.mark.parametrize("name", ["BENCH_kernels.json", "BENCH_step.json"])
    def test_comparator_passes_baseline_against_itself(self, name):
        data = json.loads((REPO_ROOT / name).read_text())
        assert not any(c.regressed for c in compare(data, data))

    def test_kernel_baseline_records_noop_overhead(self):
        data = json.loads((REPO_ROOT / "BENCH_kernels.json").read_text())
        assert data["noop_tracer_overhead"]["overhead_fraction"] < 0.02
