"""Tests for the in-situ pipeline, streaming POD and processors."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import SpectralCompressor
from repro.insitu import (
    CompressionProcessor,
    InSituPipeline,
    PODProcessor,
    Processor,
    RunningStatsProcessor,
    StreamingPOD,
    direct_pod,
)
from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace


class Collector(Processor):
    name = "collect"

    def __init__(self):
        self.items = []
        self.finalized = False

    def process(self, tag, array, sim_time):
        self.items.append((tag, array.copy(), sim_time))

    def finalize(self):
        self.finalized = True


class TestPipeline:
    def test_basic_flow(self):
        c = Collector()
        with InSituPipeline([c]) as pipe:
            for i in range(5):
                pipe.put("ux", np.full(3, float(i)), sim_time=i * 0.1)
        assert len(c.items) == 5
        assert c.items[3][0] == "ux"
        assert np.allclose(c.items[3][1], 3.0)
        assert c.finalized

    def test_stats_counts(self):
        c = Collector()
        pipe = InSituPipeline([c]).open()
        a = np.zeros(10)
        pipe.put("t", a)
        pipe.put("t", a)
        stats = pipe.close()
        assert stats.items == 2
        assert stats.bytes_in == 2 * a.nbytes
        assert "collect" in stats.processor_time

    def test_put_copies_data(self):
        c = Collector()
        with InSituPipeline([c]) as pipe:
            a = np.ones(4)
            pipe.put("x", a)
            a[:] = 99.0
        assert np.allclose(c.items[0][1], 1.0)

    def test_drop_on_full(self):
        class Slow(Processor):
            name = "slow"

            def process(self, tag, array, sim_time):
                time.sleep(0.05)

        pipe = InSituPipeline([Slow()], max_queue=1, drop_on_full=True).open()
        sent = sum(pipe.put("x", np.zeros(2)) for _ in range(10))
        stats = pipe.close()
        assert stats.dropped > 0
        assert sent + stats.dropped == 10

    def test_processor_error_surfaces_on_close(self):
        class Boom(Processor):
            name = "boom"

            def process(self, tag, array, sim_time):
                raise RuntimeError("bad")

        pipe = InSituPipeline([Boom()]).open()
        pipe.put("x", np.zeros(1))
        with pytest.raises(RuntimeError, match="in-situ processor failed"):
            pipe.close()

    def test_put_before_open_raises(self):
        pipe = InSituPipeline([Collector()])
        with pytest.raises(RuntimeError):
            pipe.put("x", np.zeros(1))

    def test_double_open_raises(self):
        pipe = InSituPipeline([Collector()]).open()
        with pytest.raises(RuntimeError):
            pipe.open()
        pipe.close()

    def test_worker_runs_off_thread(self):
        seen = []

        class Who(Processor):
            name = "who"

            def process(self, tag, array, sim_time):
                seen.append(threading.current_thread().name)

        with InSituPipeline([Who()]) as pipe:
            pipe.put("x", np.zeros(1))
        assert seen == ["insitu"]


def snapshots_matrix(n_dofs=60, n_snaps=25, rank=4, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    u = np.linalg.qr(rng.normal(size=(n_dofs, rank)))[0]
    coeffs = rng.normal(size=(rank, n_snaps)) * np.geomspace(10, 1, rank)[:, None]
    x = u @ coeffs
    if noise:
        x = x + noise * rng.normal(size=x.shape)
    return x


class TestStreamingPOD:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StreamingPOD(0)
        with pytest.raises(ValueError):
            StreamingPOD(2, batch_size=0)

    def test_exact_rank_recovery(self):
        x = snapshots_matrix(rank=3)
        pod = StreamingPOD(n_modes=3, batch_size=5)
        for j in range(x.shape[1]):
            pod.push(x[:, j])
        pod.finalize()
        u_ref, s_ref = direct_pod(x, 3)
        assert np.allclose(np.sort(pod.singular_values), np.sort(s_ref), rtol=1e-8)
        # Subspaces agree: projector difference is small.
        p1 = pod.modes @ pod.modes.T
        p2 = u_ref @ u_ref.T
        assert np.linalg.norm(p1 - p2) < 1e-8

    def test_noisy_data_close_to_direct(self):
        x = snapshots_matrix(rank=4, noise=0.05, n_snaps=40)
        pod = StreamingPOD(n_modes=4, batch_size=8)
        for j in range(x.shape[1]):
            pod.push(x[:, j])
        pod.finalize()
        _, s_ref = direct_pod(x, 4)
        assert np.allclose(pod.singular_values, s_ref, rtol=0.05)

    def test_weighted_orthonormality(self):
        rng = np.random.default_rng(5)
        w = rng.uniform(0.5, 2.0, size=60)
        x = snapshots_matrix(rank=3)
        pod = StreamingPOD(n_modes=3, batch_size=4, weight=w)
        for j in range(x.shape[1]):
            pod.push(x[:, j])
        pod.finalize()
        m = pod.modes
        gram = m.T @ (w[:, None] * m)
        assert np.allclose(gram, np.eye(3), atol=1e-10)

    def test_project_reconstruct_roundtrip(self):
        x = snapshots_matrix(rank=2)
        pod = StreamingPOD(n_modes=2, batch_size=25)
        for j in range(x.shape[1]):
            pod.push(x[:, j])
        pod.finalize()
        snap = x[:, 7]
        rec = pod.reconstruct(pod.project(snap))
        assert np.allclose(rec, snap, atol=1e-8)

    def test_memory_bound_rank(self):
        x = snapshots_matrix(rank=6, n_snaps=50)
        pod = StreamingPOD(n_modes=2, batch_size=5)
        for j in range(x.shape[1]):
            pod.push(x[:, j])
        pod.finalize()
        assert pod.modes.shape[1] == 2

    def test_access_before_data_raises(self):
        pod = StreamingPOD(2)
        with pytest.raises(RuntimeError):
            _ = pod.modes


@settings(max_examples=15, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=12),
    rank=st.integers(min_value=1, max_value=4),
)
def test_property_streaming_pod_matches_direct(batch, rank):
    """Property: for low-rank data the streaming result is batch-invariant."""
    x = snapshots_matrix(rank=rank, n_snaps=20, seed=rank)
    pod = StreamingPOD(n_modes=rank, batch_size=batch)
    for j in range(x.shape[1]):
        pod.push(x[:, j])
    pod.finalize()
    _, s_ref = direct_pod(x, rank)
    assert np.allclose(pod.singular_values, s_ref, rtol=1e-6)


class TestProcessors:
    @pytest.fixture(scope="class")
    def sp(self):
        return FunctionSpace(box_mesh((2, 1, 1)), 5)

    def test_compression_processor(self, sp):
        proc = CompressionProcessor(SpectralCompressor(sp, error_bound=0.02))
        u = np.sin(2 * np.pi * sp.x) * np.cos(np.pi * sp.z)
        with InSituPipeline([proc]) as pipe:
            for i in range(3):
                pipe.put("ux", u * (i + 1), sim_time=0.1 * i)
        assert len(proc.compressed) == 3
        assert proc.overall_reduction > 0.5
        assert proc.compressed[1].time == pytest.approx(0.1)

    def test_running_stats(self):
        proc = RunningStatsProcessor()
        data = [np.array([1.0, 2.0]), np.array([3.0, 4.0]), np.array([5.0, 6.0])]
        with InSituPipeline([proc]) as pipe:
            for d in data:
                pipe.put("t", d)
        assert np.allclose(proc.mean("t"), [3.0, 4.0])
        assert np.allclose(proc.variance("t"), [4.0, 4.0])
        assert proc.count("t") == 3

    def test_pod_processor_filters_by_tag(self):
        pod = StreamingPOD(n_modes=1, batch_size=2)
        proc = PODProcessor(pod, tag="temperature")
        with InSituPipeline([proc]) as pipe:
            pipe.put("temperature", np.array([1.0, 0.0]))
            pipe.put("junk", np.array([0.0, 5.0]))
            pipe.put("temperature", np.array([2.0, 0.0]))
        assert pod.n_seen == 2
        # The single mode is e_0: junk never entered.
        m = pod.modes[:, 0]
        assert abs(abs(m[0]) - 1.0) < 1e-10
