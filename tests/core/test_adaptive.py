"""Tests for adaptive (CFL-targeted) time stepping."""

import numpy as np
import pytest

from repro.core import Simulation, load_checkpoint, rbc_box_case, write_checkpoint
from repro.timeint.variable import VariableTimeScheme


@pytest.fixture(scope="module")
def adaptive_sim():
    cfg = rbc_box_case(1e5, n=(2, 2, 2), lx=5, aspect=2.0, dt=5e-3,
                       perturbation_amplitude=0.2, adaptive_cfl=0.3, dt_max=4e-2)
    sim = Simulation(cfg)
    sim.run(n_steps=120)
    return sim


class TestAdaptiveStepping:
    def test_uses_variable_scheme(self, adaptive_sim):
        assert isinstance(adaptive_sim.scheme, VariableTimeScheme)

    def test_dt_grows_when_quiescent(self, adaptive_sim):
        # Early steps (tiny velocities) must ramp dt up from the initial 5e-3.
        dts = [r.dt for r in adaptive_sim.history]
        assert max(dts[:40]) > 2 * dts[0]

    def test_cfl_tracks_target_once_active(self, adaptive_sim):
        cfls = [r.cfl for r in adaptive_sim.history[-20:]]
        # Either still below target (dt capped at dt_max) or near target.
        assert all(c < 0.45 for c in cfls)

    def test_dt_bounds_respected(self, adaptive_sim):
        dts = [r.dt for r in adaptive_sim.history]
        assert max(dts) <= adaptive_sim.config.dt_max + 1e-15
        assert min(dts) >= adaptive_sim.config.dt_min

    def test_change_rate_limited(self, adaptive_sim):
        dts = np.array([r.dt for r in adaptive_sim.history])
        ratios = dts[1:] / dts[:-1]
        assert ratios.max() <= 1.2 + 1e-12
        assert ratios.min() >= 0.75 - 1e-12

    def test_time_accumulates_actual_dts(self, adaptive_sim):
        total = sum(r.dt for r in adaptive_sim.history)
        assert adaptive_sim.time == pytest.approx(total, rel=1e-12)

    def test_physics_stays_sane(self, adaptive_sim):
        r = adaptive_sim.history[-1]
        assert np.isfinite(r.kinetic_energy)
        assert r.divergence < 1.0
        t = adaptive_sim.temperature
        assert t.max() <= 0.6 and t.min() >= -0.6

    def test_checkpoint_restart_with_adaptive(self, tmp_path):
        cfg = rbc_box_case(2e4, n=(2, 2, 2), lx=4, aspect=2.0, dt=5e-3,
                           perturbation_amplitude=0.1, adaptive_cfl=0.3)
        sim1 = Simulation(cfg)
        sim1.run(n_steps=6)
        write_checkpoint(sim1, tmp_path / "ck.npz")
        sim1.run(n_steps=4)

        cfg2 = rbc_box_case(2e4, n=(2, 2, 2), lx=4, aspect=2.0, dt=5e-3,
                            perturbation_amplitude=0.1, adaptive_cfl=0.3)
        sim2 = Simulation(cfg2)
        load_checkpoint(sim2, tmp_path / "ck.npz")
        sim2.run(n_steps=4)
        assert np.array_equal(sim1.temperature, sim2.temperature)
        assert sim1.dt == pytest.approx(sim2.dt)


class TestConstantStillDefault:
    def test_constant_dt_unchanged(self):
        cfg = rbc_box_case(2e4, n=(2, 2, 2), lx=4, aspect=2.0, dt=1e-2)
        sim = Simulation(cfg)
        sim.run(n_steps=5)
        assert all(r.dt == pytest.approx(1e-2) for r in sim.history)
        assert not sim.adaptive
