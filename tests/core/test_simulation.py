"""Integration tests of the coupled RBC solver.

These run short real simulations at laptop scale; the physics assertions
(conduction stability below onset, convection above, Nusselt-estimator
consistency) are the standard validation battery for RBC codes.
"""

import numpy as np
import pytest

from repro.core import Simulation, load_checkpoint, load_snapshot, write_checkpoint
from repro.core.output import FieldWriter
from repro.core.rbc import rbc_box_case, rbc_cylinder_case


@pytest.fixture(scope="module")
def small_sim():
    """A tiny supercritical case advanced a few steps (shared, read-only)."""
    cfg = rbc_box_case(1e4, n=(2, 2, 2), lx=5, aspect=2.0, dt=1e-2)
    sim = Simulation(cfg)
    sim.run(n_steps=5)
    return sim


class TestSetup:
    def test_initial_temperature_has_bc_values(self, small_sim):
        t = small_sim.temperature
        mask = small_sim.scalar.mask
        lift = small_sim.scalar.lift
        assert np.allclose(t[mask == 0.0], lift[mask == 0.0])

    def test_temperature_within_physical_bounds(self, small_sim):
        # Maximum principle (discretely approximate): T stays within the
        # plate values plus a small overshoot tolerance.
        t = small_sim.temperature
        assert t.max() <= 0.55
        assert t.min() >= -0.55

    def test_velocity_noslip(self, small_sim):
        mask = small_sim.fluid.vel_mask
        for comp in small_sim.velocity:
            assert np.allclose(comp[mask == 0.0], 0.0, atol=1e-14)

    def test_order_ramp_progressed(self, small_sim):
        assert small_sim.scheme.order == 3
        assert small_sim.step_count == 5

    def test_step_results_recorded(self, small_sim):
        assert len(small_sim.history) == 5
        assert small_sim.history[-1].time == pytest.approx(5e-2)
        assert np.isfinite(small_sim.history[-1].kinetic_energy)


class TestPhysics:
    def test_subcritical_conduction_decays(self):
        # Ra = 800 < Ra_c = 1708: perturbation energy must decay.
        cfg = rbc_box_case(800.0, n=(2, 2, 2), lx=5, aspect=2.0, dt=1e-2,
                           perturbation_amplitude=0.1)
        sim = Simulation(cfg)
        sim.run(n_steps=10)
        ke_early = sim.fluid.kinetic_energy()
        sim.run(n_steps=90)
        ke_late = sim.fluid.kinetic_energy()
        assert ke_late < ke_early

    def test_supercritical_nusselt_above_one(self):
        # Vigorous convection at Ra = 1e5 raises Nu well above 1.
        cfg = rbc_box_case(1e5, n=(3, 3, 3), lx=5, aspect=2.0, dt=2e-2,
                           perturbation_amplitude=0.1)
        sim = Simulation(cfg)
        sim.run(n_steps=200, stats_interval=20)
        s = sim.sample_statistics()
        assert s.nusselt.volume > 1.5
        assert s.nusselt.dissipation > 1.5
        assert sim.history[-1].kinetic_energy > 1e-3

    def test_nusselt_estimator_consistency(self):
        # In (quasi-)steady convection the three estimators agree within
        # a modest tolerance even at coarse resolution.
        cfg = rbc_box_case(5e4, n=(3, 3, 3), lx=5, aspect=2.0, dt=2e-2,
                           perturbation_amplitude=0.1)
        sim = Simulation(cfg)
        sim.run(n_steps=400, stats_interval=20)
        nu = sim.time_averaged_nusselt(discard_fraction=0.5)
        assert nu.mean > 1.5
        assert nu.spread < 0.25

    def test_divergence_stays_bounded(self, small_sim):
        assert small_sim.history[-1].divergence < 1.0

    def test_cylinder_case_runs(self):
        cfg = rbc_cylinder_case(1e4, aspect=1.0, n_square=2, n_ring=1, n_z=3,
                                lx=4, dt=1e-2)
        sim = Simulation(cfg)
        res = sim.run(n_steps=5)
        assert np.isfinite(res[-1].kinetic_energy)
        s = sim.sample_statistics()
        assert np.isfinite(s.nusselt.volume)

    def test_energy_injection_consistent_with_buoyancy(self):
        # dKE/dt ~ buoyancy work at early times (viscous losses small):
        # the sign of the energy input must be positive once convection
        # starts.
        cfg = rbc_box_case(1e5, n=(2, 2, 2), lx=5, aspect=2.0, dt=1e-2,
                           perturbation_amplitude=0.2)
        sim = Simulation(cfg)
        sim.run(n_steps=50)
        uz = sim.velocity[2]
        work = sim.space.integrate(uz * sim.temperature)
        assert work > 0.0


class TestDeterminism:
    def test_runs_are_reproducible(self):
        def run():
            cfg = rbc_box_case(2e4, n=(2, 2, 2), lx=4, aspect=2.0, dt=1e-2)
            sim = Simulation(cfg)
            sim.run(n_steps=5)
            return sim.temperature.copy()

        assert np.array_equal(run(), run())


class TestOutputCheckpoint:
    def test_field_writer_and_loader(self, small_sim, tmp_path):
        writer = FieldWriter(tmp_path)
        p = writer(small_sim)
        assert p.exists()
        snap = load_snapshot(p)
        assert snap["meta"]["step"] == small_sim.step_count
        assert np.allclose(snap["temperature"], small_sim.temperature)
        assert snap["ux"].shape == small_sim.space.shape

    def test_writer_numbering(self, small_sim, tmp_path):
        writer = FieldWriter(tmp_path, prefix="s")
        p0 = writer(small_sim)
        p1 = writer(small_sim)
        assert p0.name == "s00000.npz"
        assert p1.name == "s00001.npz"

    def test_checkpoint_restart_bitexact(self, tmp_path):
        cfg = rbc_box_case(2e4, n=(2, 2, 2), lx=4, aspect=2.0, dt=1e-2)
        sim1 = Simulation(cfg)
        sim1.run(n_steps=4)
        write_checkpoint(sim1, tmp_path / "ck.npz")
        sim1.run(n_steps=3)

        cfg2 = rbc_box_case(2e4, n=(2, 2, 2), lx=4, aspect=2.0, dt=1e-2)
        sim2 = Simulation(cfg2)
        load_checkpoint(sim2, tmp_path / "ck.npz")
        assert sim2.step_count == 4
        sim2.run(n_steps=3)
        assert np.array_equal(sim1.temperature, sim2.temperature)
        assert np.array_equal(sim1.velocity[2], sim2.velocity[2])

    def test_callbacks_fire_on_interval(self):
        cfg = rbc_box_case(2e4, n=(2, 2, 2), lx=4, aspect=2.0, dt=1e-2)
        sim = Simulation(cfg)
        calls = []
        sim.callbacks.append(lambda s: calls.append(s.step_count))
        sim.run(n_steps=6, callback_interval=2)
        assert calls == [2, 4, 6]

    def test_run_requires_termination_criterion(self, small_sim):
        with pytest.raises(ValueError):
            small_sim.run()


class TestDivergenceGuard:
    def test_nan_temperature_aborts_with_named_quantity(self):
        cfg = rbc_box_case(2e4, n=(2, 2, 2), lx=4, aspect=2.0, dt=1e-2)
        sim = Simulation(cfg)
        sim.run(n_steps=2)
        sim.scalar.temperature[0, 0, 0, 0] = np.nan  # poisons the buoyancy
        with pytest.raises(FloatingPointError, match="diverged"):
            sim.run(n_steps=3)

    def test_guard_names_each_quantity(self):
        cfg = rbc_box_case(2e4, n=(2, 2, 2), lx=4, aspect=2.0, dt=1e-2)
        sim = Simulation(cfg)
        sim.run(n_steps=1)
        res = sim.history[-1]
        assert sim._nonfinite_quantity(res) is None
        sim.scalar.temperature[0, 0, 0, 0] = np.inf
        assert sim._nonfinite_quantity(res) == "temperature field"
        sim.scalar.temperature[0, 0, 0, 0] = 0.0
        bad = type(res)(**{**res.__dict__, "divergence": np.nan})
        assert sim._nonfinite_quantity(bad) == "divergence"
        bad = type(res)(**{**res.__dict__, "kinetic_energy": np.inf})
        assert sim._nonfinite_quantity(bad) == "kinetic energy"
