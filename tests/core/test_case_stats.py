"""Tests for case configuration, statistics and region timers."""

import time

import numpy as np
import pytest

from repro.core import CaseConfig, RegionTimers
from repro.core.rbc import conductive_profile, default_perturbation, rbc_box_case, rbc_cylinder_case
from repro.core.statistics import (
    compute_nusselt,
    facet_area,
    facet_integral,
    nusselt_dissipation,
    nusselt_plate,
    nusselt_volume,
    reynolds_number,
)
from repro.sem.mesh import box_mesh, cylinder_mesh
from repro.sem.space import FunctionSpace


class TestCaseConfig:
    def test_nondimensional_groups(self):
        cfg = CaseConfig(mesh=box_mesh((1, 1, 1)), rayleigh=1e8, prandtl=1.0)
        assert cfg.viscosity == pytest.approx(1e-4)
        assert cfg.conductivity == pytest.approx(1e-4)

    def test_prandtl_asymmetry(self):
        cfg = CaseConfig(mesh=box_mesh((1, 1, 1)), rayleigh=1e4, prandtl=4.0)
        assert cfg.viscosity == pytest.approx(0.02)
        assert cfg.conductivity == pytest.approx(0.005)

    def test_validate_rejects_bad_labels(self):
        cfg = CaseConfig(mesh=box_mesh((1, 1, 1)), no_slip_labels=("wall",))
        with pytest.raises(ValueError, match="no-slip"):
            cfg.validate()

    def test_validate_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CaseConfig(mesh=box_mesh((1, 1, 1)), rayleigh=-1.0).validate()
        with pytest.raises(ValueError):
            CaseConfig(mesh=box_mesh((1, 1, 1)), dt=0.0).validate()

    def test_box_factory(self):
        cfg = rbc_box_case(1e5, n=(2, 2, 2), lx=5)
        assert cfg.temperature_bcs == {"bottom": 0.5, "top": -0.5}
        assert "bottom" in cfg.no_slip_labels
        assert cfg.dt <= 2e-2

    def test_box_factory_walls(self):
        cfg = rbc_box_case(1e4, n=(2, 2, 2), lx=4, periodic_lateral=False)
        assert set(cfg.no_slip_labels) == {"bottom", "top", "x-", "x+", "y-", "y+"}

    def test_cylinder_factory(self):
        cfg = rbc_cylinder_case(1e5, aspect=0.5, n_z=4, lx=4)
        assert set(cfg.no_slip_labels) == {"bottom", "top", "side"}
        cfg.validate()

    def test_perturbation_vanishes_at_plates(self):
        p = default_perturbation()
        x = np.linspace(0, 1, 5)
        assert np.allclose(p(x, x, np.zeros(5)), 0.0, atol=1e-12)
        assert np.allclose(p(x, x, np.ones(5)), 0.0, atol=1e-12)

    def test_conductive_profile(self):
        z = np.array([0.0, 0.5, 1.0])
        assert np.allclose(conductive_profile(z, z, z), [0.5, 0.0, -0.5])


class TestFacetIntegrals:
    @pytest.fixture(scope="class")
    def sp(self):
        return FunctionSpace(box_mesh((2, 2, 2), lengths=(2.0, 3.0, 1.0)), 5)

    def test_area_box(self, sp):
        assert facet_area(sp, "bottom") == pytest.approx(6.0, rel=1e-12)
        assert facet_area(sp, "x-") == pytest.approx(3.0, rel=1e-12)

    def test_area_cylinder(self):
        spc = FunctionSpace(cylinder_mesh(diameter=1.0, n_square=3, n_ring=3, n_z=2), 6)
        assert facet_area(spc, "bottom") == pytest.approx(np.pi * 0.25, rel=5e-4)
        assert facet_area(spc, "side") == pytest.approx(np.pi * 1.0, rel=1e-6)

    def test_integral_of_polynomial(self, sp):
        # int x over bottom [0,2]x[0,3]: 2*3 = 6... mean x = 1 -> 6.
        val = facet_integral(sp, "bottom", sp.x)
        assert val == pytest.approx(6.0, rel=1e-12)


class TestNusselt:
    @pytest.fixture(scope="class")
    def sp(self):
        return FunctionSpace(box_mesh((2, 2, 2)), 5)

    def test_conduction_state_gives_unity(self, sp):
        t = 0.5 - sp.z
        zero = np.zeros(sp.shape)
        assert nusselt_volume(sp, zero, t, 1e5, 1.0) == pytest.approx(1.0, abs=1e-10)
        assert nusselt_plate(sp, t, "bottom") == pytest.approx(1.0, abs=1e-10)
        assert nusselt_plate(sp, t, "top") == pytest.approx(1.0, abs=1e-10)
        assert nusselt_dissipation(sp, t) == pytest.approx(1.0, abs=1e-10)

    def test_compute_nusselt_bundle(self, sp):
        t = 0.5 - sp.z
        zero = np.zeros(sp.shape)
        nu = compute_nusselt(sp, zero, t, 1e5, 1.0)
        assert nu.mean == pytest.approx(1.0, abs=1e-9)
        assert nu.spread < 1e-9

    def test_convective_flux_raises_nu(self, sp):
        t = 0.5 - sp.z
        # Correlated uz and T fluctuation raises the volume Nusselt number.
        uz = np.sin(np.pi * sp.z) * np.ones(sp.shape)
        tt = t + 0.1 * np.sin(np.pi * sp.z)
        ra, pr = 1e6, 1.0
        nuv = nusselt_volume(sp, uz, tt, ra, pr)
        assert nuv > 1.5

    def test_reynolds_number(self, sp):
        u = np.ones(sp.shape)
        z = np.zeros(sp.shape)
        assert reynolds_number(sp, u, z, z, 1e6, 1.0) == pytest.approx(1e3)


class TestRegionTimers:
    def test_accumulation(self):
        t = RegionTimers()
        with t.region("a"):
            time.sleep(0.01)
        with t.region("a"):
            pass
        with t.region("b"):
            pass
        assert t.counts["a"] == 2
        assert t.totals["a"] >= 0.01
        fr = t.fractions()
        assert fr["a"] + fr["b"] == pytest.approx(1.0)

    def test_empty_fractions(self):
        assert RegionTimers().fractions() == {}

    def test_report_contains_regions(self):
        t = RegionTimers()
        with t.region("pressure"):
            pass
        rep = t.report()
        assert "pressure" in rep

    def test_reset(self):
        t = RegionTimers()
        with t.region("x"):
            pass
        t.reset()
        assert t.total() == 0.0
