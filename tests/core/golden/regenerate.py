"""Regenerate the golden RBC baseline.

Run from the repository root::

    PYTHONPATH=src python tests/core/golden/regenerate.py

Only regenerate after an *intentional* change to the numerics (operators,
time integrator, solver tolerances, statistics definitions), and commit
the refreshed ``rbc_box_golden.json`` together with a justification in
the PR description.  The case definition itself lives in
``tests/core/test_golden_rbc.py`` (``CASE`` / ``run_golden_case``) so the
test and this script can never disagree about what is being pinned.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[3]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from tests.core.test_golden_rbc import GOLDEN_PATH, run_golden_case  # noqa: E402


def main() -> int:
    data = run_golden_case()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    print(f"  {len(data['kinetic_energy'])} steps, dt={data['dt']:g}, "
          f"final KE={data['kinetic_energy'][-1]:.6e}")
    print(f"  {len(data['nusselt_volume'])} Nu samples, "
          f"last Nu_vol={data['nusselt_volume'][-1]:.6f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
