"""RegionTimers coverage: nesting, re-entrancy, reset, zero-total fractions,
and the tracer coupling added by the observability layer."""

import pytest

from repro.core.timers import RegionTimers
from repro.observability.tracer import NULL_TRACER, Tracer


class TestAccumulation:
    def test_single_region_accumulates_time_and_count(self):
        timers = RegionTimers()
        with timers.region("pressure"):
            pass
        with timers.region("pressure"):
            pass
        assert timers.counts["pressure"] == 2
        assert timers.totals["pressure"] >= 0.0

    def test_nested_regions_count_time_in_both(self):
        timers = RegionTimers()
        with timers.region("outer"):
            with timers.region("inner"):
                pass
        assert timers.counts == {"outer": 1, "inner": 1}
        # Nested time is deliberately double-counted (MPI region-timer
        # semantics): the outer region contains the inner one.
        assert timers.totals["outer"] >= timers.totals["inner"]

    def test_reentrant_same_name_nesting(self):
        timers = RegionTimers()
        with timers.region("solve"):
            with timers.region("solve"):
                pass
        assert timers.counts["solve"] == 2

    def test_exception_still_accumulates(self):
        timers = RegionTimers()
        with pytest.raises(ValueError):
            with timers.region("boom"):
                raise ValueError("nope")
        assert timers.counts["boom"] == 1
        assert timers.totals["boom"] >= 0.0

    def test_total_sums_all_regions(self):
        timers = RegionTimers()
        timers.totals = {"a": 1.0, "b": 2.0}
        assert timers.total() == pytest.approx(3.0)


class TestFractions:
    def test_fractions_sum_to_one(self):
        timers = RegionTimers()
        timers.totals = {"a": 1.0, "b": 3.0}
        fr = timers.fractions()
        assert fr["a"] == pytest.approx(0.25)
        assert fr["b"] == pytest.approx(0.75)

    def test_fractions_on_zero_total_are_zero_not_nan(self):
        timers = RegionTimers()
        timers.totals = {"a": 0.0, "b": 0.0}
        assert timers.fractions() == {"a": 0.0, "b": 0.0}

    def test_fractions_empty(self):
        assert RegionTimers().fractions() == {}


class TestReset:
    def test_reset_clears_everything(self):
        timers = RegionTimers()
        with timers.region("a"):
            pass
        timers.reset()
        assert timers.totals == {} and timers.counts == {}
        assert timers.total() == 0.0

    def test_usable_after_reset(self):
        timers = RegionTimers()
        with timers.region("a"):
            pass
        timers.reset()
        with timers.region("a"):
            pass
        assert timers.counts["a"] == 1


class TestReport:
    def test_report_lists_regions_with_counts(self):
        timers = RegionTimers()
        with timers.region("pressure"):
            pass
        report = timers.report()
        assert "pressure" in report and "(1 calls)" in report

    def test_report_on_empty_timers(self):
        assert "total measured" in RegionTimers().report()


class TestTracerCoupling:
    def test_default_tracer_is_the_null_singleton(self):
        assert RegionTimers().tracer is NULL_TRACER

    def test_regions_open_spans_when_traced(self):
        tracer = Tracer()
        timers = RegionTimers(tracer=tracer)
        with timers.region("outer"):
            with timers.region("inner"):
                pass
        (inner,) = tracer.spans_named("inner")
        assert inner.parent.name == "outer"
        # Flat accumulation still happens alongside the spans.
        assert timers.counts == {"outer": 1, "inner": 1}

    def test_span_closed_on_exception(self):
        tracer = Tracer()
        timers = RegionTimers(tracer=tracer)
        with pytest.raises(RuntimeError):
            with timers.region("boom"):
                raise RuntimeError
        assert tracer.current is None
        (span,) = tracer.spans_named("boom")
        assert span.end is not None
