"""Golden-file regression test: a deterministic tiny box RBC trajectory.

The case is bit-reproducible by construction (the initial perturbation is
a fixed set of harmonics, no RNG anywhere in the time loop), so the Nu
and kinetic-energy time series pin down the *entire* numerical pipeline:
operators, gather--scatter, preconditioners, Krylov solvers, time
integrator and statistics.  Any PR that shifts these series beyond
cross-BLAS roundoff has changed the physics, not just the code.

Regenerating the baseline (only after an *intentional* numerics change)::

    PYTHONPATH=src python tests/core/golden/regenerate.py

and commit the updated ``tests/core/golden/rbc_box_golden.json`` together
with an explanation of why the trajectory legitimately moved.

Tolerances: ``rtol=1e-4`` absorbs BLAS/architecture-dependent reduction
orderings over the short horizon; genuine numerics changes move these
series by far more.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import Simulation, rbc_box_case

GOLDEN_PATH = Path(__file__).parent / "golden" / "rbc_box_golden.json"

# Case parameters are frozen here and recorded into the golden file; the
# test cross-checks them so the baseline can never silently drift apart
# from the case definition.
CASE = {
    "rayleigh": 1e4,
    "prandtl": 1.0,
    "n": [2, 2, 2],
    "lx": 4,
    "aspect": 1.0,
    "perturbation_amplitude": 0.1,
    "n_steps": 12,
    "stats_interval": 3,
}

RTOL = 1e-4


def run_golden_case() -> dict:
    """Run the frozen case and return the comparable series."""
    config = rbc_box_case(
        CASE["rayleigh"],
        prandtl=CASE["prandtl"],
        n=tuple(CASE["n"]),
        lx=CASE["lx"],
        aspect=CASE["aspect"],
        perturbation_amplitude=CASE["perturbation_amplitude"],
    )
    sim = Simulation(config)
    results = sim.run(n_steps=CASE["n_steps"], stats_interval=CASE["stats_interval"])
    return {
        "case": dict(CASE),
        "dt": config.dt,
        "final_time": sim.time,
        "kinetic_energy": [r.kinetic_energy for r in results],
        "divergence": [r.divergence for r in results],
        "nusselt_volume": [s.nusselt.volume for s in sim.stat_samples],
        "nusselt_plate_bottom": [s.nusselt.plate_bottom for s in sim.stat_samples],
        "nusselt_dissipation": [s.nusselt.dissipation for s in sim.stat_samples],
        "sample_times": [s.time for s in sim.stat_samples],
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing -- regenerate with "
        "`PYTHONPATH=src python tests/core/golden/regenerate.py`"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def current() -> dict:
    return run_golden_case()


def test_baseline_matches_frozen_case_definition(golden):
    assert golden["case"] == CASE, (
        "golden file was generated from different case parameters -- regenerate it"
    )


def test_kinetic_energy_series(golden, current):
    assert len(current["kinetic_energy"]) == CASE["n_steps"]
    np.testing.assert_allclose(
        current["kinetic_energy"], golden["kinetic_energy"], rtol=RTOL, atol=1e-12
    )


def test_nusselt_series(golden, current):
    for key in ("nusselt_volume", "nusselt_plate_bottom", "nusselt_dissipation"):
        np.testing.assert_allclose(
            current[key], golden[key], rtol=RTOL, atol=1e-12, err_msg=key
        )


def test_time_axis(golden, current):
    assert current["dt"] == pytest.approx(golden["dt"], rel=1e-12)
    assert current["final_time"] == pytest.approx(golden["final_time"], rel=1e-12)
    np.testing.assert_allclose(current["sample_times"], golden["sample_times"], rtol=1e-12)


def test_divergence_stays_small(golden, current):
    # The projection keeps the velocity discretely divergence-free; the
    # golden values bound how much roundoff-level divergence is normal.
    ceiling = 10.0 * max(golden["divergence"]) + 1e-12
    assert max(current["divergence"]) <= ceiling


def test_trajectory_is_dynamically_alive(current):
    # Guard against a degenerate baseline: the perturbation must actually
    # evolve (growing convection at Ra an order above onset).
    ke = current["kinetic_energy"]
    assert ke[-1] != pytest.approx(ke[0], rel=1e-3)
    assert all(k > 0 for k in ke)
