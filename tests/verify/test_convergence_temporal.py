"""Temporal convergence: BDFk/EXTk design order on MMS problems.

The multistep histories are primed with exact data and the order ramp is
skipped (``prime_history`` / ``jump_start``), so the fitted slope reflects
the scheme's asymptotic order from the very first step.  The error metric
is the maximum over the trajectory of the relative L^2 error -- a
final-time-only measurement can alias the oscillatory error and report a
spurious rate.

Design-order facts asserted here (calibrated, see EXPERIMENTS.md):

* scalar advection--diffusion observes order ``k`` for ``k = 1..3``;
* the coupled Boussinesq step observes order ``k`` in the temperature and
  ``min(k, 2)`` in the velocity -- the incremental pressure-correction
  splitting caps the velocity at second order by construction.
"""

import pytest

from repro.verify.convergence import fit_algebraic_order
from repro.verify.problems import (
    BoussinesqTemporalMMSProblem,
    ScalarTemporalMMSProblem,
)

DTS = [0.01, 0.005, 0.0025]
MARGIN = 0.2


class TestScalarTemporalOrder:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_design_order(self, order):
        problem = ScalarTemporalMMSProblem()
        errs = [problem.run(order, dt) for dt in DTS]
        observed = fit_algebraic_order(DTS, errs)
        assert observed >= order - MARGIN, (
            f"BDF{order}/EXT{order} observed temporal order {observed:.2f}, "
            f"expected >= {order - MARGIN}"
        )
        # Errors must actually decrease -- a flat constant can fit anything.
        assert errs[-1] < errs[0]


class TestBoussinesqTemporalOrder:
    def test_coupled_second_order(self):
        """The production configuration: k = 2 on the full coupled step."""
        problem = BoussinesqTemporalMMSProblem()
        results = [problem.run(2, dt) for dt in DTS[:2]]
        errs_u = [r[0] for r in results]
        errs_t = [r[1] for r in results]
        rate_u = fit_algebraic_order(DTS[:2], errs_u)
        rate_t = fit_algebraic_order(DTS[:2], errs_t)
        # Calibrated slopes: velocity ~1.96, temperature ~1.76 (the
        # temperature is slightly polluted by velocity coupling error).
        assert rate_u >= 1.5
        assert rate_t >= 1.5

    def test_coupled_first_order(self):
        problem = BoussinesqTemporalMMSProblem()
        results = [problem.run(1, dt) for dt in DTS[:2]]
        rate_t = fit_algebraic_order(DTS[:2], [r[1] for r in results])
        assert rate_t >= 1 - MARGIN
