"""Report assembly and the ``python -m repro.verify`` CLI plumbing.

The expensive sweeps are covered by the dedicated convergence tests; here
the report/CLI layer is exercised with small synthetic studies plus one
real (tiny) end-to-end invocation of the CLI main with a stubbed suite.
"""

import json

import pytest

from repro.verify import cli
from repro.verify.convergence import ConvergenceStudy, StudyResult
from repro.verify.equivalence import EquivalenceResult, cross_backend_check
from repro.verify.report import VerificationReport


def synthetic_study(passed: bool) -> StudyResult:
    return StudyResult(
        name="synthetic",
        kind="h",
        parameters=[0.5, 0.25],
        errors=[1e-2, 2.5e-3],
        observed_rate=2.0,
        expected_rate=1.8 if passed else 3.0,
        passed=passed,
    )


def synthetic_equivalence(passed: bool) -> EquivalenceResult:
    return EquivalenceResult(
        chain="ax_poisson",
        backends=("cpu", "simgpu"),
        max_divergence=0.0 if passed else 1e-3,
        tolerance=1e-12,
        passed=passed,
    )


class TestVerificationReport:
    def test_passed_requires_every_component(self):
        ok = VerificationReport(
            studies=[synthetic_study(True)], equivalence=[synthetic_equivalence(True)]
        )
        assert ok.passed
        bad_study = VerificationReport(
            studies=[synthetic_study(False)], equivalence=[synthetic_equivalence(True)]
        )
        assert not bad_study.passed
        bad_equiv = VerificationReport(
            studies=[synthetic_study(True)], equivalence=[synthetic_equivalence(False)]
        )
        assert not bad_equiv.passed

    def test_json_round_trip(self):
        report = VerificationReport(
            studies=[synthetic_study(True)],
            equivalence=[synthetic_equivalence(True)],
            extra={"suite": "quick"},
        )
        rec = json.loads(report.to_json())
        assert rec["passed"] is True
        assert rec["studies"][0]["observed_rate"] == 2.0
        assert rec["equivalence"][0]["chain"] == "ax_poisson"
        assert rec["extra"] == {"suite": "quick"}

    def test_text_table_contains_verdicts(self):
        report = VerificationReport(
            studies=[synthetic_study(True)], equivalence=[synthetic_equivalence(False)]
        )
        table = report.text_table()
        assert "synthetic" in table
        assert "PASS" in table and "FAIL" in table
        assert table.strip().endswith("overall: FAIL")


def tiny_report(quick: bool = True, tracer=None) -> VerificationReport:
    """A real-but-small suite: one synthetic study + one real equivalence chain."""
    study = ConvergenceStudy("tiny-h", lambda h: 0.1 * h**2, kind="h", tracer=tracer)
    report = VerificationReport()
    report.studies.append(study.run([0.5, 0.25], expected_rate=1.8))
    report.equivalence = cross_backend_check(
        backends=("cpu", "simgpu"), chains=("gs_add",), lx=4, tracer=tracer
    )
    return report


class TestCli:
    def test_main_writes_json_and_exits_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(cli, "build_report", tiny_report)
        out = tmp_path / "verify.json"
        rc = cli.main(["--quick", "--out", str(out)])
        assert rc == 0
        rec = json.loads(out.read_text())
        assert rec["passed"] is True
        assert rec["studies"][0]["name"] == "tiny-h"
        stdout = capsys.readouterr().out
        assert "overall: PASS" in stdout

    def test_main_exit_code_reflects_failure(self, monkeypatch, capsys):
        def failing_report(quick: bool = True, tracer=None) -> VerificationReport:
            return VerificationReport(studies=[synthetic_study(False)])

        monkeypatch.setattr(cli, "build_report", failing_report)
        assert cli.main(["--quick"]) == 1
        assert "overall: FAIL" in capsys.readouterr().out

    def test_tracer_spans_use_registered_family(self):
        """verify.* spans must be in the phase registry (span hygiene)."""
        from repro.observability.phases import is_registered_metric, is_registered_span

        for name in ("verify.study", "verify.case", "verify.equivalence"):
            assert is_registered_span(name)
        assert is_registered_metric("verify.studies_passed")

    def test_spans_are_recorded(self):
        from repro.observability.tracer import Tracer

        tracer = Tracer()
        tiny_report(tracer=tracer)
        names = [s.name for s in tracer.walk()]
        assert "verify.study" in names
        assert "verify.case" in names
        assert "verify.equivalence" in names


@pytest.mark.parametrize("flag", ["--quick"])
def test_cli_parser_accepts_flags(flag, monkeypatch):
    monkeypatch.setattr(cli, "build_report", tiny_report)
    assert cli.main([flag]) in (0, 1)
