"""Cross-backend equivalence: same numbers on cpu and the simulated GPUs.

The simulated-GPU backends execute kernels on host buffers, so any nonzero
divergence is an orchestration bug (wrong kernel, stale buffer, missing
synchronize) -- the check asserts bit-identical results with a 1e-12
ceiling that would also accommodate genuinely reordered reductions.
"""

import pytest

from repro.backend.registry import available_backends, get_backend
from repro.backend.simgpu import SimulatedGpuDevice
from repro.verify.equivalence import DEFAULT_CHAINS, cross_backend_check

TOL = 1e-12


@pytest.fixture(scope="module")
def results():
    return cross_backend_check(backends=("cpu", "simgpu"), tolerance=TOL)


class TestBackendRegistry:
    def test_simgpu_alias_is_registered(self):
        assert "simgpu" in available_backends()
        assert isinstance(get_backend("simgpu"), SimulatedGpuDevice)


class TestCrossBackendEquivalence:
    def test_every_default_chain_is_covered(self, results):
        assert tuple(r.chain for r in results) == DEFAULT_CHAINS

    def test_operator_chains_are_equivalent(self, results):
        for r in results:
            assert r.passed, (
                f"{r.chain}: max divergence {r.max_divergence:.3e} "
                f"exceeds {r.tolerance:.1e}"
            )

    def test_simulated_gpu_is_bit_identical(self, results):
        # Stronger than the tolerance: the sim backend runs host NumPy.
        for r in results:
            assert r.max_divergence == 0.0

    def test_records_are_json_ready(self, results):
        import json

        for r in results:
            rec = json.loads(json.dumps(r.as_record()))
            assert rec["chain"] == r.chain
            assert rec["passed"] is True

    def test_three_way_comparison(self):
        res = cross_backend_check(
            backends=("cpu", "sim:a100", "sim:mi250x"),
            chains=("ax_poisson", "precond:jacobi"),
        )
        for r in res:
            assert r.passed
            assert set(r.detail) == {"vs_sim:a100", "vs_sim:mi250x"}

    def test_validation(self):
        with pytest.raises(ValueError, match="two backends"):
            cross_backend_check(backends=("cpu",))
        with pytest.raises(ValueError, match="unknown chain"):
            cross_backend_check(chains=("not-a-chain",))


class TestDivergenceDetection:
    def test_comparator_is_falsifiable(self):
        """A tolerance of zero must fail: the comparison is strictly '<'.

        Guards against the check degenerating into ``<=`` (which would
        wave through a hypothetical backend whose divergence exactly equals
        a zero tolerance) and proves ``passed`` actually depends on the
        tolerance rather than being hardwired.
        """
        res = cross_backend_check(
            backends=("cpu", "simgpu"), chains=("gs_add",), tolerance=0.0
        )[0]
        assert res.max_divergence == 0.0
        assert not res.passed
