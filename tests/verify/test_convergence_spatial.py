"""Spatial convergence: spectral p-decay, algebraic h-decay, patch tests.

The acceptance bar of the verification subsystem: exponential
p-convergence for Poisson and Helmholtz on affine *and* randomly deformed
meshes, h-convergence at the design algebraic order, and round-off exact
reproduction of quadratic solutions (the classic patch test isolating the
geometric factors from resolution effects).
"""

import math

import pytest

from repro.verify.convergence import (
    ConvergenceStudy,
    fit_algebraic_order,
    fit_exponential_rate,
)
from repro.verify.manufactured import polynomial_mms, trig_mms
from repro.verify.problems import (
    deformed_box_space,
    solve_helmholtz_mms,
    solve_poisson_mms,
    unit_box_space,
)

MMS = trig_mms()
P_ORDERS = [3, 4, 5, 6, 7, 8]
MIN_SPECTRAL_RATE = 2.0  # calibrated: implementation observes ~2.8


class TestRateFitting:
    def test_algebraic_fit_recovers_synthetic_order(self):
        hs = [0.5, 0.25, 0.125, 0.0625]
        errs = [0.3 * h**3.5 for h in hs]
        assert abs(fit_algebraic_order(hs, errs) - 3.5) < 1e-10

    def test_exponential_fit_recovers_synthetic_rate(self):
        lxs = [3, 4, 5, 6]
        errs = [7.0 * math.exp(-2.2 * lx) for lx in lxs]
        assert abs(fit_exponential_rate(lxs, errs) - 2.2) < 1e-10

    def test_roundoff_floor_is_excluded_from_fit(self):
        # Saturated tail at 1e-16 would flatten the slope; the fit must
        # ignore it and still report the pre-saturation rate.
        lxs = [3, 4, 5, 6, 7, 8]
        errs = [math.exp(-3.0 * lx) for lx in lxs[:4]] + [1e-16, 1e-16]
        assert fit_exponential_rate(lxs, errs) > 2.9

    def test_study_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ConvergenceStudy("x", lambda p: p, kind="q")

    def test_study_result_record_is_json_ready(self):
        study = ConvergenceStudy("synthetic", lambda h: 0.1 * h**2, kind="h")
        res = study.run([0.5, 0.25, 0.125], expected_rate=1.8)
        assert res.passed
        rec = res.as_record()
        assert rec["name"] == "synthetic"
        assert rec["observed_rate"] == pytest.approx(2.0, abs=1e-9)
        assert len(rec["errors"]) == 3


class TestPConvergence:
    """err ~ C exp(-sigma lx): the defining property of the SEM."""

    def test_poisson_affine(self):
        errs = [solve_poisson_mms(unit_box_space(2, lx), MMS).error for lx in P_ORDERS]
        assert fit_exponential_rate(P_ORDERS, errs) > MIN_SPECTRAL_RATE
        assert errs[-1] < 1e-7  # near machine precision by lx = 8

    def test_poisson_deformed(self):
        errs = [
            solve_poisson_mms(deformed_box_space(2, lx), MMS).error for lx in P_ORDERS
        ]
        assert fit_exponential_rate(P_ORDERS, errs) > MIN_SPECTRAL_RATE
        assert errs[-1] < 1e-6

    def test_helmholtz_affine(self):
        errs = [
            solve_helmholtz_mms(unit_box_space(2, lx), MMS).error for lx in P_ORDERS
        ]
        assert fit_exponential_rate(P_ORDERS, errs) > MIN_SPECTRAL_RATE

    def test_helmholtz_deformed(self):
        errs = [
            solve_helmholtz_mms(deformed_box_space(2, lx), MMS).error
            for lx in P_ORDERS
        ]
        assert fit_exponential_rate(P_ORDERS, errs) > MIN_SPECTRAL_RATE


class TestHConvergence:
    def test_poisson_h_refinement_at_design_order(self):
        # L^2 theory gives rate lx for degree lx-1 elements; assert a half
        # order of slack below (the observed rate sits slightly above lx).
        lx = 4
        ns = (1, 2, 3, 4)
        errs = [solve_poisson_mms(unit_box_space(n, lx), MMS).error for n in ns]
        hs = [1.0 / n for n in ns]
        assert fit_algebraic_order(hs, errs) > lx - 0.5
        assert errs[-1] < errs[0] / 50


class TestPatchTest:
    """Quadratics are in the space for lx >= 3: exact to round-off."""

    @pytest.mark.parametrize("make_space", [unit_box_space, deformed_box_space])
    def test_quadratic_exact(self, make_space):
        res = solve_poisson_mms(make_space(2, 4), polynomial_mms())
        assert res.converged
        assert res.error < 1e-10

    def test_helmholtz_quadratic_exact(self):
        res = solve_helmholtz_mms(deformed_box_space(2, 4), polynomial_mms())
        assert res.error < 1e-10
