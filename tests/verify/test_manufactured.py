"""The manufactured solutions verify *themselves* before verifying anything.

Every hand-derived gradient, Laplacian and forcing is checked against
central finite differences of the closed-form solution, so a sign slip in
the MMS algebra cannot masquerade as a discretization bug downstream.
"""

import numpy as np
import pytest

from repro.verify.manufactured import (
    BoussinesqMMS,
    ScalarAdvectionDiffusionMMS,
    polynomial_mms,
    trig_mms,
)

RNG = np.random.default_rng(1234)
H = 1e-5          # FD step
FD_TOL = 1e-8     # second-order central differences at H


def fd_grad(f, x, y, z):
    return (
        (f(x + H, y, z) - f(x - H, y, z)) / (2 * H),
        (f(x, y + H, z) - f(x, y - H, z)) / (2 * H),
        (f(x, y, z + H) - f(x, y, z - H)) / (2 * H),
    )


def fd_lap(f, x, y, z):
    # A larger step than the gradient's: the 1/H^2 division amplifies
    # round-off cancellation; H = 1e-4 balances it against truncation.
    h = 1e-4
    c = f(x, y, z)
    return (
        f(x + h, y, z) + f(x - h, y, z)
        + f(x, y + h, z) + f(x, y - h, z)
        + f(x, y, z + h) + f(x, y, z - h)
        - 6.0 * c
    ) / h**2


def sample_points(n=64, lo=0.1, hi=0.9):
    return (
        RNG.uniform(lo, hi, n),
        RNG.uniform(lo, hi, n),
        RNG.uniform(lo, hi, n),
    )


class TestSteadyMMS:
    @pytest.mark.parametrize("mms", [trig_mms(), trig_mms(2.5, 0.7, 1.2), polynomial_mms()])
    def test_gradient_matches_finite_differences(self, mms):
        x, y, z = sample_points()
        gx, gy, gz = mms.gradient(x, y, z)
        fx, fy, fz = fd_grad(mms.solution, x, y, z)
        assert np.max(np.abs(gx - fx)) < FD_TOL
        assert np.max(np.abs(gy - fy)) < FD_TOL
        assert np.max(np.abs(gz - fz)) < FD_TOL

    @pytest.mark.parametrize("mms", [trig_mms(), polynomial_mms()])
    def test_laplacian_matches_finite_differences(self, mms):
        x, y, z = sample_points()
        lap = mms.laplacian(x, y, z)
        # FD Laplacian carries O(H^2) * fourth-derivative error; the trig
        # solution's fourth derivatives are O(pi^4 k^4) ~ 1e3.
        assert np.max(np.abs(lap - fd_lap(mms.solution, x, y, z))) < 1e-4

    def test_forcings_are_consistent(self):
        mms = trig_mms()
        x, y, z = sample_points(8)
        f_pois = mms.poisson_forcing(x, y, z)
        np.testing.assert_allclose(f_pois, -mms.laplacian(x, y, z), rtol=1e-14)
        h1, h2 = 2.0, 5.0
        f_helm = mms.helmholtz_forcing(x, y, z, h1, h2)
        np.testing.assert_allclose(
            f_helm, h1 * f_pois + h2 * mms.solution(x, y, z), rtol=1e-13
        )

    def test_trig_default_has_nonzero_boundary_data(self):
        # Non-integer wavenumbers: the solve must exercise the lifting path.
        mms = trig_mms()
        y, z = np.array([0.37]), np.array([0.61])
        assert abs(mms.solution(np.array([1.0]), y, z)[0]) > 1e-3


class TestScalarAdvectionDiffusionMMS:
    def test_source_closes_the_pde(self):
        """s == T_t + u . grad T - kappa lap T, all by finite differences."""
        mms = ScalarAdvectionDiffusionMMS(kappa=0.05)
        x, y, z = sample_points(32, lo=0.2, hi=1.8)
        t = 0.137
        tt = (
            mms.temperature(x, y, z, t + H) - mms.temperature(x, y, z, t - H)
        ) / (2 * H)
        gx, gy, gz = fd_grad(lambda a, b, c: mms.temperature(a, b, c, t), x, y, z)
        u, v, w = mms.velocity(x, y, z, t)
        lap = fd_lap(lambda a, b, c: mms.temperature(a, b, c, t), x, y, z)
        residual = tt + u * gx + v * gy + w * gz - mms.kappa * lap
        np.testing.assert_allclose(residual, mms.source(x, y, z, t), atol=1e-4)

    def test_velocity_is_divergence_free(self):
        mms = ScalarAdvectionDiffusionMMS(kappa=0.05)
        x, y, z = sample_points(32, lo=0.2, hi=1.8)
        t = 0.71
        dudx = fd_grad(lambda a, b, c: mms.velocity(a, b, c, t)[0], x, y, z)[0]
        dvdy = fd_grad(lambda a, b, c: mms.velocity(a, b, c, t)[1], x, y, z)[1]
        dwdz = fd_grad(lambda a, b, c: mms.velocity(a, b, c, t)[2], x, y, z)[2]
        assert np.max(np.abs(dudx + dvdy + dwdz)) < FD_TOL


class TestBoussinesqMMS:
    def setup_method(self):
        self.mms = BoussinesqMMS(viscosity=0.05, conductivity=0.05)
        self.t = 0.23

    def test_momentum_forcing_closes_the_pde(self):
        """F == u_t + (u.grad)u + grad p - nu lap u - T e_z (by FD)."""
        mms, t = self.mms, self.t
        x, y, z = sample_points(32, lo=0.2, hi=1.8)
        fx, fy, fz = mms.momentum_forcing(x, y, z, t)
        u_now = mms.velocity(x, y, z, t)
        gp = fd_grad(lambda a, b, c: mms.pressure(a, b, c, t), x, y, z)
        temp = mms.temperature(x, y, z, t)
        buoy = (np.zeros_like(x), np.zeros_like(x), temp)
        for comp, f_comp in enumerate((fx, fy, fz)):
            ut = (
                mms.velocity(x, y, z, t + H)[comp]
                - mms.velocity(x, y, z, t - H)[comp]
            ) / (2 * H)
            g = fd_grad(lambda a, b, c: mms.velocity(a, b, c, t)[comp], x, y, z)
            conv = u_now[0] * g[0] + u_now[1] * g[1] + u_now[2] * g[2]
            lap = fd_lap(lambda a, b, c: mms.velocity(a, b, c, t)[comp], x, y, z)
            residual = ut + conv + gp[comp] - mms.viscosity * lap - buoy[comp]
            np.testing.assert_allclose(residual, f_comp, atol=1e-4)

    def test_temperature_source_delegates_to_scalar_mms(self):
        mms, t = self.mms, self.t
        x, y, z = sample_points(8)
        np.testing.assert_array_equal(
            mms.temperature_source(x, y, z, t), mms.scalar.source(x, y, z, t)
        )

    def test_fields_are_periodic_on_length_two_box(self):
        mms, t = self.mms, self.t
        y, z = np.array([0.3]), np.array([0.9])
        for f in (
            lambda a: mms.velocity(a, y, z, t)[0],
            lambda a: mms.pressure(a, y, z, t),
            lambda a: mms.temperature(a, y, z, t),
        ):
            np.testing.assert_allclose(
                f(np.array([0.0])), f(np.array([2.0])), atol=1e-14
            )
