"""Correctness suite for the process-wide operator/factorization cache.

The cache is only admissible if a hit is *bitwise* identical to a cold
build, keys cannot collide across meaningfully different setups, and
eviction can never corrupt a solve that still holds references to an
evicted entry (numpy arrays are kept alive by the reference, so eviction
only drops the cache's own handle).
"""

import numpy as np
import pytest

from repro.precond import (
    CacheKey,
    FastDiagonalization,
    HybridSchwarzMultigrid,
    OperatorCache,
    global_cache,
    reset_global_cache,
)
from repro.precond.cache import array_signature, resolve_cache, space_signature
from repro.precond.coarse import CoarseGridSolver
from repro.precond.schwarz import SchwarzSmoother
from repro.sem.mesh import box_mesh
from repro.sem.operators import ax_poisson
from repro.sem.space import FunctionSpace
from repro.solvers.gmres import Gmres
from repro.solvers.projection import MeanProjector


@pytest.fixture(autouse=True)
def _fresh_cache():
    reset_global_cache()
    yield
    reset_global_cache()


def make_space(lx: int = 5, shift: float = 0.0) -> FunctionSpace:
    mesh = box_mesh((2, 2, 2))
    if shift:
        mesh.corner_coords[..., 0] += shift * mesh.corner_coords[..., 0] ** 2
    return FunctionSpace(mesh, lx)


# -- hit identity -------------------------------------------------------------


def test_fdm_cache_hit_is_bitwise_identical():
    space = make_space()
    cache = OperatorCache()
    cold = FastDiagonalization(space, cache=cache)
    warm = FastDiagonalization(space, cache=cache)
    assert cache.misses == 1 and cache.hits == 1
    assert float(np.max(np.abs(cold.s - warm.s))) == 0.0
    assert float(np.max(np.abs(cold.st - warm.st))) == 0.0
    assert float(np.max(np.abs(cold.inv_d3 - warm.inv_d3))) == 0.0
    # Same storage, not merely equal values.
    assert cold.s is warm.s


def test_cache_hit_equals_cold_build_through_a_solve():
    """A full HSMG application from cached parts equals the cold result."""
    space = make_space()
    rng = np.random.default_rng(0)
    r = space.gs.add(rng.normal(size=space.shape))

    cold = HybridSchwarzMultigrid(space, cache=False)(r)
    reset_global_cache()
    first = HybridSchwarzMultigrid(space)(r)  # populates the global cache
    second = HybridSchwarzMultigrid(space)(r)  # all hits
    assert global_cache().hits > 0
    assert float(np.max(np.abs(first - cold))) == 0.0
    assert float(np.max(np.abs(second - cold))) == 0.0


def test_coarse_direct_cache_hit_reuses_factorization():
    space = make_space()
    cache = OperatorCache()
    a = CoarseGridSolver(space, method="direct", cache=cache)
    b = CoarseGridSolver(space, method="direct", cache=cache)
    assert cache.hits >= 1
    assert a._lu is b._lu
    rng = np.random.default_rng(1)
    r = space.gs.add(rng.normal(size=space.shape))
    np.testing.assert_array_equal(a(r), b(r))


# -- key separation -----------------------------------------------------------


def test_keys_differ_under_mesh_perturbation():
    """Any nodal coordinate change must miss the cache, however small."""
    sig0 = space_signature(make_space())
    sig1 = space_signature(make_space(shift=1e-12))
    sig2 = space_signature(make_space(shift=0.1))
    assert sig0 != sig1
    assert sig0 != sig2
    assert sig1 != sig2


def test_keys_differ_across_order_dtype_operator():
    space = make_space()
    base = CacheKey.for_space(space, "fdm", np.float64)
    assert base != CacheKey.for_space(space, "fdm", np.float32)
    assert base != CacheKey.for_space(space, "schwarz_weight", np.float64)
    assert base != CacheKey.for_space(make_space(lx=6), "fdm", np.float64)


def test_key_is_stable_across_equal_spaces():
    """Two independently built identical spaces share cache entries."""
    cache = OperatorCache()
    FastDiagonalization(make_space(), cache=cache)
    FastDiagonalization(make_space(), cache=cache)
    assert cache.hits == 1 and cache.misses == 1


def test_array_signature_distinguishes_dtype_shape_content():
    a = np.arange(12.0)
    assert array_signature(a) == array_signature(a.copy())
    assert array_signature(a) != array_signature(a.astype(np.float32))
    assert array_signature(a) != array_signature(a.reshape(3, 4))
    b = a.copy()
    b[5] = np.nextafter(b[5], np.inf)  # one ULP: smallest representable change
    assert array_signature(a) != array_signature(b)


# -- eviction safety ----------------------------------------------------------


def test_eviction_never_corrupts_inflight_user():
    """An evicted entry stays valid for holders of the reference."""
    space = make_space()
    cache = OperatorCache(capacity=1)
    fdm = FastDiagonalization(space, cache=cache)
    s_before = fdm.s.copy()
    # Force eviction of the fdm entry by inserting other keys.
    for lx in (4, 6):
        FastDiagonalization(make_space(lx=lx), cache=cache)
    assert cache.evictions >= 2
    # The in-flight object still solves correctly with its arrays.
    rng = np.random.default_rng(3)
    r = rng.normal(size=space.shape)
    out = fdm.solve(r)
    assert np.all(np.isfinite(out))
    np.testing.assert_array_equal(fdm.s, s_before)


def test_eviction_preserves_lru_order():
    cache = OperatorCache(capacity=2)
    cache.get_or_build(CacheKey("m", 1, "a", "f8"), lambda: np.ones(3))
    cache.get_or_build(CacheKey("m", 1, "b", "f8"), lambda: np.ones(3))
    cache.get_or_build(CacheKey("m", 1, "a", "f8"), lambda: np.zeros(3))  # refresh a
    cache.get_or_build(CacheKey("m", 1, "c", "f8"), lambda: np.ones(3))  # evicts b
    assert cache.evictions == 1
    # b rebuilds (miss) and evicts a, the least recently used of {a, c}.
    calls = []
    cache.get_or_build(CacheKey("m", 1, "b", "f8"), lambda: calls.append(1) or np.ones(3))
    assert calls == [1]
    # c was inserted after a's refresh, so it survived both evictions.
    before = cache.hits
    cache.get_or_build(CacheKey("m", 1, "c", "f8"), lambda: np.zeros(3))
    assert cache.hits == before + 1


def test_cached_arrays_are_read_only():
    """Shared entries must be immutable: a write through one user would
    silently corrupt every other holder."""
    space = make_space()
    fdm = FastDiagonalization(space)  # global cache
    with pytest.raises((ValueError, RuntimeError)):
        fdm.s[0] = 0.0


def test_solve_unaffected_by_concurrent_eviction():
    """A GMRES solve keeps converging while its preconditioner's entries
    are evicted mid-flight by other builds."""
    space = make_space()
    reset_global_cache(capacity=1)
    pc = HybridSchwarzMultigrid(space)

    def amul(u):
        return space.gs.add(ax_poisson(u, space.coef, space.dx))

    project = MeanProjector.counting(space.gs)
    evicted = {"n": 0}
    orig = pc.schwarz.__call__

    def noisy_precond(r):
        # Thrash the capacity-1 cache on every application.
        FastDiagonalization(make_space(lx=4))
        evicted["n"] += 1
        return pc(r)

    solver = Gmres(
        amul, space.gs.dot, precond=noisy_precond, tol=1e-8, maxiter=300,
        restart=60, project_out=project,
    )
    rng = np.random.default_rng(4)
    b = space.gs.add(space.coef.mass * rng.normal(size=space.shape))
    project(b)
    _, mon = solver.solve(b)
    assert mon.converged
    assert evicted["n"] > 0
    assert global_cache().evictions > 0


# -- bookkeeping --------------------------------------------------------------


def test_hit_rate_and_report():
    cache = OperatorCache()
    cache.get_or_build(CacheKey("m", 1, "a", "f8"), lambda: 1)
    cache.get_or_build(CacheKey("m", 1, "a", "f8"), lambda: 1)
    assert cache.hit_rate() == pytest.approx(0.5)
    rep = cache.report()
    assert rep["hits"] == 1 and rep["misses"] == 1 and rep["entries"] == 1


def test_disabled_cache_always_cold_builds():
    space = make_space()
    a = FastDiagonalization(space, cache=False)
    b = FastDiagonalization(space, cache=False)
    assert a.s is not b.s
    np.testing.assert_array_equal(a.s, b.s)
    assert global_cache().hits == 0 and global_cache().misses == 0


def test_resolve_cache_convention():
    cache = OperatorCache()
    assert resolve_cache(cache) is cache
    assert resolve_cache(None) is global_cache()
    assert resolve_cache(True) is global_cache()
    throwaway = resolve_cache(False)
    assert throwaway is not global_cache()
    assert throwaway.enabled is False


def test_schwarz_weight_cached_once():
    space = make_space()
    cache = OperatorCache()
    SchwarzSmoother(space, overlap=True, cache=cache)
    m0 = cache.misses
    SchwarzSmoother(space, overlap=True, cache=cache)
    assert cache.misses == m0  # both fdm and overlap weight hit
    assert cache.hits >= 2


# -- statcheck gate on the new modules ----------------------------------------


def test_new_modules_pass_statcheck_determinism():
    """The cache and autotune modules introduce no nondeterminism findings
    (perf_counter timing is allowed; wall-clock/RNG calls are not)."""
    from pathlib import Path

    from repro.statcheck import check_paths, get_rules

    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    targets = [
        src / "precond" / "cache.py",
        src / "sem" / "autotune.py",
    ]
    findings, errors = check_paths(targets, get_rules(["determinism"]))
    assert errors == []
    assert findings == [], [f.message for f in findings]
