"""Tests for Jacobi, FDM/Schwarz and the hybrid Schwarz multigrid."""

import numpy as np
import pytest

from repro.precond import (
    CoarseGridSolver,
    FastDiagonalization,
    HybridSchwarzMultigrid,
    JacobiPrecond,
    SchwarzSmoother,
    helmholtz_diagonal,
)
from repro.precond.fdm import extended_grid_operators
from repro.sem.bc import DirichletBC
from repro.sem.mesh import box_mesh, cylinder_mesh
from repro.sem.operators import ax_helmholtz, ax_poisson
from repro.sem.space import FunctionSpace
from repro.solvers import ConjugateGradient, Gmres, MeanProjector


@pytest.fixture(scope="module")
def sp():
    return FunctionSpace(box_mesh((2, 2, 2)), 5)


def assembled_poisson(space, mask=None):
    def amul(u):
        w = space.gs.add(ax_poisson(u, space.coef, space.dx))
        if mask is not None:
            w *= mask
        return w

    return amul


class TestHelmholtzDiagonal:
    def test_matches_probed_diagonal(self, sp):
        """The closed-form diagonal equals basis-vector probing of ax."""
        diag = helmholtz_diagonal(sp, 1.0, 2.0)
        rng = np.random.default_rng(0)
        # Probe a sample of entries.
        flat_idx = rng.choice(sp.n_dofs_local, size=40, replace=False)
        for fi in flat_idx:
            e = np.zeros(sp.n_dofs_local)
            e[fi] = 1.0
            e = e.reshape(sp.shape)
            w = ax_helmholtz(e, sp.coef, sp.dx, 1.0, 2.0)
            assert w.reshape(-1)[fi] == pytest.approx(diag.reshape(-1)[fi], rel=1e-10)

    def test_positive_for_positive_coefficients(self, sp):
        diag = helmholtz_diagonal(sp, 1.0, 1.0)
        assert np.all(sp.gs.add(diag) > 0)


class TestJacobi:
    def test_apply_is_diagonal_scaling(self, sp):
        pc = JacobiPrecond(sp, 1.0, 1.0)
        r = np.ones(sp.shape)
        z = pc(r)
        assert z.shape == sp.shape
        assert np.all(z > 0)

    def test_update_changes_diagonal(self, sp):
        pc = JacobiPrecond(sp, 1.0, 1.0)
        z1 = pc(np.ones(sp.shape))
        pc.update(1.0, 100.0)
        z2 = pc(np.ones(sp.shape))
        assert np.all(z2 < z1)

    def test_invalid_coefficients_raise(self, sp):
        with pytest.raises(ValueError):
            JacobiPrecond(sp, -1.0, -1.0)

    def test_masked_dofs_zeroed(self, sp):
        bc = DirichletBC(sp, ["bottom"], 0.0)
        pc = JacobiPrecond(sp, 1.0, 1.0, mask=bc.mask)
        z = pc(np.ones(sp.shape))
        assert np.all(z[bc.mask == 0.0] == 0.0)

    def test_speeds_up_helmholtz_cg(self, sp):
        bc = DirichletBC(sp, ["bottom", "top", "x-", "x+", "y-", "y+"], 0.0)
        h1, h2 = 0.01, 100.0

        def amul(u):
            return sp.gs.add(ax_helmholtz(u, sp.coef, sp.dx, h1, h2)) * bc.mask

        rng = np.random.default_rng(1)
        b = sp.gs.add(sp.coef.mass * rng.normal(size=sp.shape)) * bc.mask
        plain = ConjugateGradient(amul, sp.gs.dot, tol=1e-10, maxiter=500)
        prec = ConjugateGradient(
            amul, sp.gs.dot, precond=JacobiPrecond(sp, h1, h2, mask=bc.mask), tol=1e-10, maxiter=500
        )
        _, m1 = plain.solve(b)
        _, m2 = prec.solve(b)
        assert m2.converged
        assert m2.iterations <= m1.iterations


class TestFDM:
    def test_extended_operators_cached_and_spd(self):
        s, lam, nodes = extended_grid_operators(5)
        assert s.shape == (5, 5)
        assert np.all(lam > 0)
        assert len(nodes) == 7
        s2, _, _ = extended_grid_operators(5)
        assert s is s2  # lru_cache

    def test_eigvec_normalization(self):
        # S^T M S = I for the reduced mass matrix.
        from repro.precond.fdm import _lagrange_matrices_on_nodes

        s, lam, nodes = extended_grid_operators(4)
        k, m = _lagrange_matrices_on_nodes(nodes)
        kr, mr = k[1:-1, 1:-1], m[1:-1, 1:-1]
        assert np.allclose(s.T @ mr @ s, np.eye(4), atol=1e-10)
        assert np.allclose(s.T @ kr @ s, np.diag(lam), atol=1e-8)

    def test_solve_shape_and_linearity(self, sp):
        fdm = FastDiagonalization(sp)
        rng = np.random.default_rng(2)
        a = rng.normal(size=sp.shape)
        b = rng.normal(size=sp.shape)
        za = fdm.solve(a)
        assert za.shape == sp.shape
        zab = fdm.solve(a + 3 * b)
        assert np.allclose(zab, za + 3 * fdm.solve(b), atol=1e-10)

    def test_solve_spd(self, sp):
        fdm = FastDiagonalization(sp)
        rng = np.random.default_rng(3)
        r = rng.normal(size=sp.shape)
        assert np.sum(r * fdm.solve(r)) > 0


class TestSchwarz:
    def test_linearity(self, sp):
        sm = SchwarzSmoother(sp)
        rng = np.random.default_rng(4)
        a = sp.gs.add(rng.normal(size=sp.shape))
        b = sp.gs.add(rng.normal(size=sp.shape))
        assert np.allclose(sm(a + 2 * b), sm(a) + 2 * sm(b), atol=1e-10)

    def test_positive_on_residuals_of_smooth_fields(self, sp):
        # For residuals of actual fields, <M r, u> should be positive
        # (the smoother is an approximate inverse).
        from repro.sem.operators import ax_poisson

        sm = SchwarzSmoother(sp)
        u = np.cos(np.pi * sp.x) * np.cos(np.pi * sp.y)
        r = sp.gs.add(ax_poisson(u, sp.coef, sp.dx))
        z = sm(r)
        assert sp.gs.dot(z, u) > 0

    def test_overlap_variant_runs_and_differs(self, sp):
        sm0 = SchwarzSmoother(sp, overlap=False)
        sm1 = SchwarzSmoother(sp, overlap=True)
        rng = np.random.default_rng(12)
        r = sp.gs.add(rng.normal(size=sp.shape))
        z0, z1 = sm0(r), sm1(r)
        assert np.isfinite(z1).all()
        assert not np.allclose(z0, z1)

    def test_overlap_ghost_exchange_roundtrip(self, sp):
        # The extended residual's ghost planes must carry the neighbour's
        # depth-1 data: check against direct indexing for the box mesh.
        sm = SchwarzSmoother(sp, overlap=True)
        rng = np.random.default_rng(13)
        r = sp.gs.add(rng.normal(size=sp.shape))
        re = sm._extended_residual(r)
        assert np.allclose(re[:, 1:-1, 1:-1, 1:-1], r)
        # Element 0 of the 2x2x1 box has its r+ neighbour element 1: the
        # ghost plane at i = lx+1 of element 0 equals element 1's i = 1
        # plane (face-interior nodes only).
        lx = sp.lx
        ghost = re[0, 2:-2, 2:-2, -1]
        expected = r[1, 1:-1, 1:-1, 1]
        assert np.allclose(ghost, expected)

    def test_output_continuous(self, sp):
        sm = SchwarzSmoother(sp)
        rng = np.random.default_rng(5)
        z = sm(sp.gs.add(rng.normal(size=sp.shape)))
        assert np.allclose(sp.gs.average(z), z, atol=1e-10)

    def test_kernel_inventory(self, sp):
        sm = SchwarzSmoother(sp)
        inv = sm.kernel_inventory()
        names = [k for k, _ in inv]
        assert "fdm_apply_st" in names
        assert all(n > 0 for _, n in inv)
        inv_big = sm.kernel_inventory(n_elements=10**6)
        assert inv_big[0][1] > inv[0][1]


class TestCoarse:
    def test_restriction_prolongation_adjoint(self, sp):
        cg = CoarseGridSolver(sp)
        rng = np.random.default_rng(6)
        rf = rng.normal(size=sp.shape)
        uv = rng.normal(size=cg.n_vertices)
        lhs = np.sum(cg.restrict(rf) * uv)
        rhs = np.sum(rf * cg.prolong(uv))
        assert lhs == pytest.approx(rhs, rel=1e-11)

    def test_prolong_constant(self, sp):
        cg = CoarseGridSolver(sp)
        u = cg.prolong(np.ones(cg.n_vertices))
        assert np.allclose(u, 1.0, atol=1e-12)

    def test_coarse_operator_is_galerkin(self, sp):
        # A0 must equal J^T A J: compare the action on a random coarse
        # vector against restrict(A(prolong(u))).
        from repro.sem.operators import ax_poisson

        cg = CoarseGridSolver(sp)
        rng = np.random.default_rng(60)
        uv = rng.normal(size=cg.n_vertices)
        uf = cg.prolong(uv)
        af = sp.gs.add(ax_poisson(uf, sp.coef, sp.dx)) / sp.gs.multiplicity
        galerkin = cg.restrict(af)
        direct = cg.a0 @ uv
        assert np.allclose(galerkin, direct, atol=1e-9 * max(1.0, np.abs(direct).max()))

    def test_smooth_mode_recovery(self):
        # The coarse correction must recover a smooth global mode to ~5%.
        from repro.sem.operators import ax_poisson

        sp4 = FunctionSpace(box_mesh((4, 4, 4)), 5)
        cg = CoarseGridSolver(sp4, iterations=50)
        u = np.cos(np.pi * sp4.x)
        r = sp4.gs.add(ax_poisson(u, sp4.coef, sp4.dx))
        z = cg(r)
        um = u - sp4.mean(u)
        zm = z - sp4.mean(z)
        scale = sp4.integrate(zm * um) / sp4.integrate(um * um)
        assert scale == pytest.approx(1.0, abs=0.12)

    def test_coarse_correction_zero_mean(self, sp):
        cg = CoarseGridSolver(sp)
        rng = np.random.default_rng(7)
        r = sp.gs.add(sp.coef.mass * rng.normal(size=sp.shape))
        z = cg(r)
        assert z.shape == sp.shape
        assert np.isfinite(z).all()

    def test_kernel_inventory_scaling(self, sp):
        cg = CoarseGridSolver(sp, iterations=10)
        inv = cg.kernel_inventory()
        dots = [k for k, _ in inv if k == "allreduce_dot"]
        assert len(dots) == 20  # two reductions per CG iteration


class TestHSMG:
    def test_preconditioned_gmres_beats_plain(self):
        sp = FunctionSpace(box_mesh((3, 3, 3)), 6)
        amul = assembled_poisson(sp)
        proj = MeanProjector.counting(sp.gs)
        rng = np.random.default_rng(8)
        f = rng.normal(size=sp.shape)
        b = sp.gs.add(sp.coef.mass * (f - sp.mean(f)))
        plain = Gmres(amul, sp.gs.dot, tol=1e-6, maxiter=400, project_out=proj)
        hsmg = HybridSchwarzMultigrid(sp)
        prec = Gmres(amul, sp.gs.dot, precond=hsmg, tol=1e-6, maxiter=400, project_out=proj)
        _, m1 = plain.solve(b)
        _, m2 = prec.solve(b)
        assert m2.converged
        assert m2.iterations < m1.iterations / 2

    def test_parts_sum_to_whole(self):
        sp = FunctionSpace(box_mesh((2, 2, 1)), 4)
        hsmg = HybridSchwarzMultigrid(sp)
        rng = np.random.default_rng(9)
        r = sp.gs.add(rng.normal(size=sp.shape))
        zc, zs = hsmg.apply_parts(r)
        z = hsmg(r)
        assert np.allclose(z, zc + zs, atol=1e-12)

    def test_timing_recorded(self):
        sp = FunctionSpace(box_mesh((2, 1, 1)), 4)
        hsmg = HybridSchwarzMultigrid(sp)
        r = sp.gs.add(np.ones(sp.shape))
        hsmg(r)
        assert hsmg.timing.applications == 1
        assert hsmg.timing.coarse > 0
        assert hsmg.timing.schwarz > 0

    def test_mid_level_ladder(self):
        sp = FunctionSpace(box_mesh((2, 2, 2)), 7)
        amul = assembled_poisson(sp)
        proj = MeanProjector.counting(sp.gs)
        rng = np.random.default_rng(10)
        f = rng.normal(size=sp.shape)
        b = sp.gs.add(sp.coef.mass * (f - sp.mean(f)))
        three = HybridSchwarzMultigrid(sp, mid_orders=(4,))
        g3 = Gmres(amul, sp.gs.dot, precond=three, tol=1e-6, maxiter=300, project_out=proj)
        _, m3 = g3.solve(b)
        assert m3.converged

    def test_invalid_mid_order(self):
        sp = FunctionSpace(box_mesh((1, 1, 1)), 5)
        with pytest.raises(ValueError):
            HybridSchwarzMultigrid(sp, mid_orders=(5,))

    def test_works_on_cylinder(self):
        sp = FunctionSpace(cylinder_mesh(n_square=2, n_ring=1, n_z=2), 5)
        amul = assembled_poisson(sp)
        proj = MeanProjector.counting(sp.gs)
        rng = np.random.default_rng(11)
        f = rng.normal(size=sp.shape)
        b = sp.gs.add(sp.coef.mass * (f - sp.mean(f)))
        hsmg = HybridSchwarzMultigrid(sp)
        g = Gmres(amul, sp.gs.dot, precond=hsmg, tol=1e-6, maxiter=300, project_out=proj)
        _, mon = g.solve(b)
        assert mon.converged
        assert mon.iterations < 120
