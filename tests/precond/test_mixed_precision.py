"""Property tests for the float32 Schwarz/FDM smoother inside float64 GMRES.

The mixed-precision design (NekRS precedent: single-precision
preconditioning inside a double-precision Krylov solve) is only admissible
if (a) the outer solve still converges to the float64 tolerance, (b) the
iteration count stays within a small band of the float64-smoothed count,
and (c) the answers agree to the outer tolerance.  Hypothesis drives
random smooth mesh deformations and polynomial orders p in {3..8} through
a pure-Neumann pressure-like Poisson solve and checks all three, plus the
trip/fallback state machine of the :class:`IterationGuard`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.precond import HybridSchwarzMultigrid, IterationGuard, reset_global_cache
from repro.sem.mesh import box_mesh
from repro.sem.operators import ax_poisson
from repro.sem.space import FunctionSpace
from repro.solvers.gmres import Gmres
from repro.solvers.projection import MeanProjector

TOL = 1e-8
# The ISSUE's acceptance band: float32 smoothing may cost at most +20%
# iterations (plus 1 to absorb integer rounding on small counts).
ITER_BAND = 0.20


def deformed_space(seed: int, lx: int, amplitude: float = 0.04) -> FunctionSpace:
    mesh = box_mesh((2, 2, 2))
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=(3, 3))
    cc = mesh.corner_coords
    x, y, z = cc[..., 0].copy(), cc[..., 1].copy(), cc[..., 2].copy()
    for d in range(3):
        cc[..., d] += (
            amplitude
            * np.sin(np.pi * x + phases[d, 0])
            * np.sin(np.pi * y + phases[d, 1])
            * np.sin(np.pi * z + phases[d, 2])
        )
    space = FunctionSpace(mesh, lx)
    assert np.all(space.coef.jac > 0.0)
    return space


def poisson_solve(space: FunctionSpace, dtype: str, seed: int):
    """Pure-Neumann Poisson solve mirroring the pressure path; returns
    (solution, monitor, residual_norm)."""

    def amul(u: np.ndarray) -> np.ndarray:
        return space.gs.add(ax_poisson(u, space.coef, space.dx))

    project = MeanProjector.counting(space.gs)
    precond = HybridSchwarzMultigrid(space, smoother_dtype=dtype, cache=False)
    solver = Gmres(
        amul,
        space.gs.dot,
        precond=precond,
        tol=TOL,
        maxiter=500,
        restart=60,
        project_out=project,
        dot_weight=space.gs.inv_multiplicity,
    )
    rng = np.random.default_rng(seed)
    b = space.gs.add(space.coef.mass * rng.normal(size=space.shape))
    project(b)
    x, mon = solver.solve(b)
    res = b - amul(x)
    project(res)
    rnorm = float(np.sqrt(max(space.gs.dot(res, res), 0.0)))
    return x, mon, rnorm


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), p=st.integers(3, 8))
def test_f32_smoother_converges_within_iteration_band(seed, p):
    """float32 smoothing converges to the same tolerance within +20% iters."""
    space = deformed_space(seed, lx=p + 1)
    x64, mon64, r64 = poisson_solve(space, "float64", seed)
    x32, mon32, r32 = poisson_solve(space, "float32", seed)

    assert mon64.converged and mon32.converged
    allowed = int(np.ceil(mon64.iterations * (1.0 + ITER_BAND))) + 1
    assert mon32.iterations <= allowed, (
        f"p={p}: f32 smoother took {mon32.iterations} iters vs f64 "
        f"{mon64.iterations} (band allows {allowed})"
    )

    # Both true residuals meet the outer tolerance against the same RHS.
    bnorm = mon64.residuals[0]
    assert r64 <= 10.0 * TOL * bnorm
    assert r32 <= 10.0 * TOL * bnorm

    # The two solutions agree to the outer tolerance (up to the nullspace,
    # which both projections removed).
    diff = x64 - x32
    dnorm = float(np.sqrt(space.gs.dot(diff, diff)))
    xnorm = float(np.sqrt(space.gs.dot(x64, x64)))
    assert dnorm <= 100.0 * TOL * max(xnorm, 1.0)


def test_f32_smoother_is_actually_single_precision():
    """The f32 build really stores float32 factors (not silently f64)."""
    space = deformed_space(1, lx=5)
    pc = HybridSchwarzMultigrid(space, smoother_dtype="float32", cache=False)
    fdm = pc.smoothers[0].fdm if hasattr(pc, "smoothers") else pc.schwarz.fdm
    assert fdm.s.dtype == np.float32
    assert fdm.st.dtype == np.float32
    assert fdm.inv_d3.dtype == np.float32
    # And the guard exists only for the reduced-precision build.
    assert pc.guard is not None
    assert HybridSchwarzMultigrid(space, cache=False).guard is None


def test_f32_smoother_output_is_float64():
    """The smoother casts back up: GMRES always sees float64 vectors."""
    space = deformed_space(2, lx=5)
    pc = HybridSchwarzMultigrid(space, smoother_dtype="float32", cache=False)
    rng = np.random.default_rng(2)
    z = pc(space.gs.add(rng.normal(size=space.shape)))
    assert z.dtype == np.float64


# -- the iteration-count fallback guard --------------------------------------


def test_guard_trips_after_patience_consecutive_strikes():
    g = IterationGuard(band=0.2, patience=3)
    assert g.observe(10) is False  # establishes reference
    assert g.observe(13) is False  # strike 1 (>12)
    assert g.observe(13) is False  # strike 2
    assert g.observe(13) is True  # strike 3 -> trip
    assert g.tripped


def test_guard_strikes_reset_on_good_solve():
    g = IterationGuard(band=0.2, patience=3)
    g.observe(10)
    g.observe(13)
    g.observe(13)
    assert g.observe(10) is False  # back in band: strikes reset
    assert g.observe(13) is False
    assert g.observe(13) is False
    assert g.observe(13) is True


def test_guard_reference_is_minimum_seen():
    g = IterationGuard(band=0.5, patience=1)
    g.observe(20)
    assert g.observe(8) is False  # better solve lowers the reference
    assert g.reference == 8
    assert g.observe(13) is True  # 13 > 8 * 1.5


def test_guard_trips_exactly_once():
    g = IterationGuard(band=0.0, patience=1)
    g.observe(10)
    assert g.observe(11) is True
    assert g.observe(50) is False  # stays tripped, reports only once
    assert g.tripped


def test_hsmg_falls_back_to_f64_when_guard_trips():
    """observe_iterations rebuilds the smoothers in float64 on a trip."""
    space = deformed_space(3, lx=4)
    pc = HybridSchwarzMultigrid(
        space, smoother_dtype="float32", cache=False, guard_band=0.0, guard_patience=1
    )
    assert pc.smoother_dtype == np.dtype(np.float32)
    assert pc.observe_iterations(10) is False  # reference
    assert pc.observe_iterations(11) is True  # trip -> rebuild
    assert pc.smoother_dtype == np.dtype(np.float64)
    assert pc.schwarz.fdm.s.dtype == np.float64
    # After the fallback there is nothing left to observe.
    assert pc.observe_iterations(500) is False


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Keep the process-wide cache out of cross-test interference."""
    reset_global_cache()
    yield
    reset_global_cache()
