"""Iteration-count regression bands for the preconditioner stack.

Preconditioner strength regresses silently: the solve still converges,
just slower, and nothing fails until someone profiles.  These tests pin
the Krylov iteration counts of every preconditioner on a fixed
deformed-mesh Poisson problem (seeded geometry, fixed tolerance) inside
+-15% tolerance bands.

Reference counts on the fixed problem
(deformed 3^3 box, lx = 6, amplitude 0.08, seed 42, tol 1e-10):

    none(CG) 131,  jacobi(CG) 108,  fdm(GMRES) 78,
    schwarz(GMRES) 64,  hsmg(GMRES) 56

The schwarz/hsmg counts were re-pinned when the Schwarz counting weight
became symmetric (W^{1/2} on both sides of the local solves instead of a
one-sided post-weighting): the smoother got strictly stronger (78 -> 64,
71 -> 56) at identical MMS error.

The ordering none > jacobi > schwarz-family > hsmg is itself asserted --
that hierarchy is the entire point of the preconditioner stack.
"""

import pytest

from repro.verify.manufactured import trig_mms
from repro.verify.problems import (
    deformed_box_space,
    solve_poisson_mms_preconditioned,
)

#: (preconditioner, measured iterations) on the fixed problem below.
REFERENCE_ITERATIONS = {
    "none": 131,
    "jacobi": 108,
    "fdm": 78,
    "schwarz": 64,
    "hsmg": 56,
}
BAND = 0.15
TOL = 1e-10


@pytest.fixture(scope="module")
def results():
    space = deformed_box_space(3, 6, amplitude=0.08, seed=42)
    mms = trig_mms()
    return {
        name: solve_poisson_mms_preconditioned(space, mms, name, tol=TOL)
        for name in REFERENCE_ITERATIONS
    }


class TestIterationRegression:
    @pytest.mark.parametrize("name", sorted(REFERENCE_ITERATIONS))
    def test_count_within_band(self, results, name):
        res = results[name]
        assert res.converged, f"{name}: solve did not converge"
        ref = REFERENCE_ITERATIONS[name]
        lo, hi = int(ref * (1 - BAND)), int(ref * (1 + BAND)) + 1
        assert lo <= res.iterations <= hi, (
            f"{name}: {res.iterations} iterations, reference {ref} "
            f"(band [{lo}, {hi}]) -- preconditioner strength changed"
        )

    @pytest.mark.parametrize("name", sorted(REFERENCE_ITERATIONS))
    def test_preconditioned_solution_is_correct(self, results, name):
        # Iteration counts alone can be gamed by a wrong operator; every
        # preconditioned solve must still hit the manufactured solution.
        assert results[name].error < 1e-5

    def test_preconditioner_hierarchy(self, results):
        it = {name: results[name].iterations for name in REFERENCE_ITERATIONS}
        assert it["jacobi"] < it["none"]
        assert it["schwarz"] < it["jacobi"]
        assert it["hsmg"] <= it["schwarz"]
        assert it["fdm"] <= it["jacobi"]
