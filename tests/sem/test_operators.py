"""Tests for matrix-free tensor-product operators."""

import numpy as np
import pytest

from repro.sem.bc import DirichletBC
from repro.sem.mesh import box_mesh, cylinder_mesh
from repro.sem.operators import (
    ax_helmholtz,
    ax_poisson,
    convective_term_collocated,
    curl,
    divergence,
    local_grad,
    local_grad_transpose,
    physical_grad,
    weak_divergence,
)
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def sp():
    return FunctionSpace(box_mesh((2, 2, 2), lengths=(1.0, 1.5, 2.0)), 6)


@pytest.fixture(scope="module")
def cyl():
    return FunctionSpace(cylinder_mesh(n_square=2, n_ring=2, n_z=2), 5)


class TestGradients:
    def test_physical_grad_polynomial(self, sp):
        u = sp.x**2 * sp.y + sp.z
        gx, gy, gz = physical_grad(u, sp.coef, sp.dx)
        assert np.allclose(gx, 2 * sp.x * sp.y, atol=1e-10)
        assert np.allclose(gy, sp.x**2, atol=1e-10)
        assert np.allclose(gz, 1.0, atol=1e-10)

    def test_physical_grad_on_curved_mesh(self, cyl):
        u = cyl.x + 2 * cyl.y + 3 * cyl.z
        gx, gy, gz = physical_grad(u, cyl.coef, cyl.dx)
        assert np.allclose(gx, 1.0, atol=1e-9)
        assert np.allclose(gy, 2.0, atol=1e-9)
        assert np.allclose(gz, 3.0, atol=1e-9)

    def test_local_grad_transpose_is_adjoint(self, sp):
        rng = np.random.default_rng(0)
        u = rng.normal(size=sp.shape)
        w = tuple(rng.normal(size=sp.shape) for _ in range(3))
        gr = local_grad(u, sp.dx)
        lhs = sum(np.sum(a * b) for a, b in zip(gr, w))
        rhs = np.sum(u * local_grad_transpose(*w, sp.dx))
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestDivergenceCurl:
    def test_divergence_linear_field(self, sp):
        d = divergence(sp.x, 2 * sp.y, 3 * sp.z, sp.coef, sp.dx)
        assert np.allclose(d, 6.0, atol=1e-10)

    def test_divergence_free_field(self, sp):
        # u = (y, -x, 0) is divergence free.
        d = divergence(sp.y, -sp.x, np.zeros(sp.shape), sp.coef, sp.dx)
        assert np.allclose(d, 0.0, atol=1e-10)

    def test_weak_divergence_is_mass_times_strong(self, sp):
        ux, uy, uz = sp.x * sp.y, sp.y**2, sp.z
        wd = weak_divergence(ux, uy, uz, sp.coef, sp.dx)
        sd = divergence(ux, uy, uz, sp.coef, sp.dx)
        assert np.allclose(wd, sp.coef.mass * sd, atol=1e-12)

    def test_curl_of_gradient_vanishes(self, sp):
        p = sp.x**2 + sp.y * sp.z
        gx, gy, gz = physical_grad(p, sp.coef, sp.dx)
        cx, cy, cz = curl(gx, gy, gz, sp.coef, sp.dx)
        assert np.allclose(cx, 0.0, atol=1e-9)
        assert np.allclose(cy, 0.0, atol=1e-9)
        assert np.allclose(cz, 0.0, atol=1e-9)

    def test_curl_solid_body_rotation(self, sp):
        # u = (-y, x, 0) has curl (0, 0, 2).
        cx, cy, cz = curl(-sp.y, sp.x, np.zeros(sp.shape), sp.coef, sp.dx)
        assert np.allclose(cz, 2.0, atol=1e-10)
        assert np.allclose(cx, 0.0, atol=1e-10)


class TestAx:
    def test_ax_poisson_symmetric(self, sp):
        rng = np.random.default_rng(1)
        u = rng.normal(size=sp.shape)
        v = rng.normal(size=sp.shape)
        uv = np.sum(v * ax_poisson(u, sp.coef, sp.dx))
        vu = np.sum(u * ax_poisson(v, sp.coef, sp.dx))
        assert uv == pytest.approx(vu, rel=1e-11)

    def test_ax_poisson_positive_semidefinite(self, sp):
        rng = np.random.default_rng(2)
        u = rng.normal(size=sp.shape)
        assert np.sum(u * ax_poisson(u, sp.coef, sp.dx)) >= -1e-10

    def test_ax_poisson_kernel_contains_constants(self, sp):
        w = ax_poisson(np.ones(sp.shape), sp.coef, sp.dx)
        assert np.allclose(w, 0.0, atol=1e-10)

    def test_ax_matches_weak_laplacian_integral(self, sp):
        # v^T A u must equal int grad(v).grad(u) for polynomial data.
        u = sp.x**2
        v = sp.y
        quad = np.sum(v * ax_poisson(u, sp.coef, sp.dx))
        # grad u = (2x,0,0), grad v = (0,1,0) -> integral is 0.
        assert quad == pytest.approx(0.0, abs=1e-10)

        v2 = sp.x
        quad2 = np.sum(v2 * ax_poisson(u, sp.coef, sp.dx))
        # int 2x over box [0,1]x[0,1.5]x[0,2] = 1 * 1.5 * 2 = 3... times 2x:
        # int (2x * 1) = 2 * (1/2) * 1.5 * 2 = 3.
        assert quad2 == pytest.approx(3.0, rel=1e-10)

    def test_ax_helmholtz_reduces_to_poisson(self, sp):
        rng = np.random.default_rng(3)
        u = rng.normal(size=sp.shape)
        a = ax_helmholtz(u, sp.coef, sp.dx, 1.0, 0.0)
        b = ax_poisson(u, sp.coef, sp.dx)
        assert np.allclose(a, b, atol=1e-12)

    def test_ax_helmholtz_mass_term(self, sp):
        rng = np.random.default_rng(4)
        u = rng.normal(size=sp.shape)
        a = ax_helmholtz(u, sp.coef, sp.dx, 0.0, 2.5)
        assert np.allclose(a, 2.5 * sp.coef.mass * u, atol=1e-12)

    def test_ax_poisson_solves_manufactured_problem(self):
        # Full assembled solve on a small box against an exact solution:
        # -lap(u) = f with u = sin(pi x) sin(pi y) sin(pi z), Dirichlet 0.
        sp1 = FunctionSpace(box_mesh((2, 2, 2)), 7)
        exact = np.sin(np.pi * sp1.x) * np.sin(np.pi * sp1.y) * np.sin(np.pi * sp1.z)
        f = 3 * np.pi**2 * exact
        rhs = sp1.gs.add(sp1.coef.mass * f)
        bc = DirichletBC(sp1, ["x-", "x+", "y-", "y+", "bottom", "top"], 0.0)
        rhs *= bc.mask

        # Plain CG on the masked assembled operator.
        def amul(u):
            w = sp1.gs.add(ax_poisson(u, sp1.coef, sp1.dx))
            return w * bc.mask

        u = np.zeros(sp1.shape)
        r = rhs.copy()
        p = r.copy()
        rho = sp1.gs.dot(r, r)
        for _ in range(600):
            ap = amul(p)
            alpha = rho / sp1.gs.dot(p, ap)
            u += alpha * p
            r -= alpha * ap
            rho_new = sp1.gs.dot(r, r)
            if np.sqrt(rho_new) < 1e-12:
                break
            p = r + (rho_new / rho) * p
            rho = rho_new
        err = sp1.norm_l2(u - exact) / sp1.norm_l2(exact)
        assert err < 1e-6


class TestConvection:
    def test_convection_of_linear_by_constant(self, sp):
        one = np.ones(sp.shape)
        u = 3 * sp.x
        c = convective_term_collocated(one, 0 * one, 0 * one, u, sp.coef, sp.dx)
        assert np.allclose(c, 3.0, atol=1e-10)

    def test_convection_quadratic(self, sp):
        u = sp.x**2
        c = convective_term_collocated(sp.x, 0 * sp.x, 0 * sp.x, u, sp.coef, sp.dx)
        assert np.allclose(c, 2 * sp.x**2, atol=1e-9)
