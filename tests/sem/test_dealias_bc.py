"""Tests for dealiasing and boundary conditions."""

import numpy as np
import pytest

from repro.sem.bc import BoundaryMask, DirichletBC, combine_masks
from repro.sem.dealias import Dealiaser, interp3, interp3_transpose
from repro.sem.mesh import box_mesh, cylinder_mesh
from repro.sem.operators import convective_term_collocated
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def sp():
    return FunctionSpace(box_mesh((2, 2, 1), lengths=(1.0, 1.0, 1.0)), 5)


class TestInterp3:
    def test_shape(self, sp):
        from repro.sem.basis import lagrange_interpolation_matrix
        from repro.sem.quadrature import gll_points_weights

        xf, _ = gll_points_weights(8)
        j = lagrange_interpolation_matrix(np.asarray(xf), 5)
        u = np.ones(sp.shape)
        v = interp3(u, j)
        assert v.shape == (sp.nelv, 8, 8, 8)
        assert np.allclose(v, 1.0)

    def test_adjoint_identity(self, sp):
        from repro.sem.basis import lagrange_interpolation_matrix
        from repro.sem.quadrature import gll_points_weights

        xf, _ = gll_points_weights(8)
        j = lagrange_interpolation_matrix(np.asarray(xf), 5)
        rng = np.random.default_rng(0)
        u = rng.normal(size=sp.shape)
        w = rng.normal(size=(sp.nelv, 8, 8, 8))
        lhs = np.sum(interp3(u, j) * w)
        rhs = np.sum(u * interp3_transpose(w, j))
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestDealiaser:
    def test_default_three_halves_rule(self, sp):
        dl = Dealiaser(sp)
        assert dl.lxd == (3 * sp.lx + 1) // 2

    def test_rejects_coarser_fine_grid(self, sp):
        with pytest.raises(ValueError):
            Dealiaser(sp, lxd=3)

    def test_to_fine_polynomial_exact(self, sp):
        dl = Dealiaser(sp)
        u = sp.x**2 * sp.y
        uf = dl.to_fine(u)
        # Compare against direct evaluation of the polynomial at fine nodes.
        x_f = dl.to_fine(sp.x)
        y_f = dl.to_fine(sp.y)
        assert np.allclose(uf, x_f**2 * y_f, atol=1e-11)

    def test_grad_fine_exact_for_polynomials(self, sp):
        dl = Dealiaser(sp)
        u = sp.x**2 + sp.y * sp.z
        gx, gy, gz = dl.grad_fine(u)
        x_f, y_f, z_f = dl.to_fine(sp.x), dl.to_fine(sp.y), dl.to_fine(sp.z)
        assert np.allclose(gx, 2 * x_f, atol=1e-10)
        assert np.allclose(gy, z_f, atol=1e-10)
        assert np.allclose(gz, y_f, atol=1e-10)

    def test_convect_weak_matches_collocated_when_resolved(self, sp):
        # For low-degree data both forms agree: weak dealiased convection
        # equals B * (c . grad u) after dividing by the mass.
        dl = Dealiaser(sp)
        cx, cy, cz = sp.y, sp.x, np.zeros(sp.shape)
        u = sp.x * sp.y
        weak = dl.convect_weak(cx, cy, cz, u)
        colloc = convective_term_collocated(cx, cy, cz, u, sp.coef, sp.dx)
        ref = sp.gs.add(sp.coef.mass * colloc) * sp.inv_mass_assembled
        got = sp.gs.add(weak) * sp.inv_mass_assembled
        assert np.allclose(got, ref, atol=1e-9)

    def test_convect_reuses_fine_velocity(self, sp):
        dl = Dealiaser(sp)
        cx, cy, cz = sp.y, sp.x, sp.z
        u = sp.x**2
        cf = (dl.to_fine(cx), dl.to_fine(cy), dl.to_fine(cz))
        a = dl.convect_weak(cx, cy, cz, u)
        b = dl.convect_weak(cx, cy, cz, u, c_fine=cf)
        assert np.allclose(a, b, atol=1e-13)

    def test_energy_conservation_skewness(self, sp):
        # For a divergence-free convecting field tangent to the boundary,
        # int u (c.grad u) = 0 -- the discrete dealiased form should be small.
        dl = Dealiaser(sp)
        # c = (sin(pi x) cos(pi y), -cos(pi x) sin(pi y), 0): div-free and
        # zero normal component on the unit box boundary.
        cx = np.sin(np.pi * sp.x) * np.cos(np.pi * sp.y)
        cy = -np.cos(np.pi * sp.x) * np.sin(np.pi * sp.y)
        cz = np.zeros(sp.shape)
        u = np.cos(np.pi * sp.x) * np.cos(2 * np.pi * sp.y)
        weak = dl.convect_weak(cx, cy, cz, u)
        val = np.sum(u * weak)
        scale = np.sum(np.abs(u * weak))
        assert abs(val) < 2e-2 * scale


class TestBoundaryConditions:
    def test_unknown_label_raises(self, sp):
        with pytest.raises(KeyError, match="unknown boundary label"):
            BoundaryMask(sp, ["nope"])

    def test_mask_zero_on_face(self, sp):
        bm = BoundaryMask(sp, ["bottom"])
        assert np.all(bm.mask[:, 0][np.isclose(sp.z[:, 0], 0.0)] == 0.0)
        assert np.all(bm.mask[:, -1] == 1.0)

    def test_mask_propagates_to_neighbours(self):
        # A node on the edge of a Dirichlet face is shared with elements that
        # have no facet on that boundary; the gs-min must mask it there too.
        sp2 = FunctionSpace(box_mesh((2, 1, 2)), 4)
        bm = BoundaryMask(sp2, ["x-"])
        on_face = np.isclose(sp2.x, 0.0)
        assert np.all(bm.mask[on_face] == 0.0)
        assert np.all(bm.mask[~on_face] == 1.0)

    def test_dirichlet_constant_value(self, sp):
        bc = DirichletBC(sp, ["bottom"], 2.5)
        u = np.zeros(sp.shape)
        bc.set_values(u)
        assert np.all(u[bc.mask == 0.0] == 2.5)
        assert np.all(u[bc.mask == 1.0] == 0.0)

    def test_dirichlet_callable_value(self, sp):
        bc = DirichletBC(sp, ["top"], lambda x, y, z: x + y)
        u = np.zeros(sp.shape)
        bc.set_values(u)
        sel = bc.mask == 0.0
        assert np.allclose(u[sel], (sp.x + sp.y)[sel])

    def test_zero_method(self, sp):
        bc = DirichletBC(sp, ["bottom"], 1.0)
        u = np.ones(sp.shape)
        bc.zero(u)
        assert np.all(u[bc.mask == 0.0] == 0.0)

    def test_combine_masks(self, sp):
        b1 = DirichletBC(sp, ["bottom"], 0.0)
        b2 = DirichletBC(sp, ["top"], 0.0)
        m = combine_masks([b1, b2], sp)
        assert np.all(m[np.isclose(sp.z, 0.0)] == 0.0)
        assert np.all(m[np.isclose(sp.z, 1.0)] == 0.0)

    def test_cylinder_side_mask(self):
        spc = FunctionSpace(cylinder_mesh(n_square=2, n_ring=1, n_z=2), 4)
        bm = BoundaryMask(spc, ["side"])
        r = np.sqrt(spc.x**2 + spc.y**2)
        on_wall = np.isclose(r, 0.25, atol=1e-10)
        assert np.all(bm.mask[on_wall] == 0.0)
        assert np.all(bm.mask[~on_wall] == 1.0)
