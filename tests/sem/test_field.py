"""Tests for the Field / VectorField user-facing API."""

import numpy as np
import pytest

from repro.sem.field import Field, VectorField
from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def sp():
    return FunctionSpace(box_mesh((2, 2, 1), lengths=(1.0, 1.0, 2.0)), 4)


class TestField:
    def test_default_zero(self, sp):
        f = Field(sp, "t")
        assert f.l2 == 0.0
        assert f.name == "t"

    def test_shape_validation(self, sp):
        with pytest.raises(ValueError):
            Field(sp, data=np.zeros((1, 2, 3)))

    def test_fill_and_mean(self, sp):
        f = Field(sp).fill(3.0)
        assert f.mean == pytest.approx(3.0)
        assert f.minimum == 3.0
        assert f.maximum == 3.0

    def test_set_from(self, sp):
        f = Field(sp).set_from(lambda x, y, z: x + 2 * y)
        assert np.allclose(f.data, sp.x + 2 * sp.y)

    def test_copy_independent(self, sp):
        f = Field(sp).fill(1.0)
        g = f.copy("g")
        g.data[:] = 5.0
        assert f.maximum == 1.0
        assert g.name == "g"

    def test_l2_norm(self, sp):
        f = Field(sp).fill(1.0)
        # ||1||_L2 = sqrt(volume) = sqrt(2).
        assert f.l2 == pytest.approx(np.sqrt(2.0))


class TestVectorField:
    def test_components(self, sp):
        v = VectorField(sp, "u")
        assert v.x.name == "u_x"
        assert len(v.components) == 3

    def test_magnitude(self, sp):
        v = VectorField(sp)
        v.x.fill(3.0)
        v.y.fill(4.0)
        mag = v.magnitude()
        assert np.allclose(mag.data, 5.0)

    def test_kinetic_energy(self, sp):
        v = VectorField(sp)
        v.z.fill(2.0)
        # 0.5 * |u|^2 * V = 0.5 * 4 * 2 = 4.
        assert v.kinetic_energy() == pytest.approx(4.0)
