"""Tests for the box and butterfly-cylinder mesh generators."""

import numpy as np
import pytest

from repro.sem.mesh import box_mesh, cylinder_mesh, graded_layers


class TestGradedLayers:
    def test_uniform(self):
        z = graded_layers(4, 0.0, 1.0, beta=0.0)
        assert np.allclose(z, [0, 0.25, 0.5, 0.75, 1.0])

    def test_endpoints_exact(self):
        z = graded_layers(7, -2.0, 3.0, beta=2.0)
        assert z[0] == pytest.approx(-2.0)
        assert z[-1] == pytest.approx(3.0)

    def test_clusters_toward_both_ends(self):
        z = graded_layers(8, 0.0, 1.0, beta=2.0)
        d = np.diff(z)
        assert d[0] < d[len(d) // 2]
        assert d[-1] < d[len(d) // 2]

    def test_monotone(self):
        z = graded_layers(9, 0.0, 1.0, beta=2.5)
        assert np.all(np.diff(z) > 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            graded_layers(0, 0.0, 1.0)


class TestBoxMesh:
    def test_element_count(self):
        m = box_mesh((2, 3, 4))
        assert m.nelv == 24

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            box_mesh((0, 1, 1))

    def test_corner_coordinates_span_box(self):
        m = box_mesh((2, 2, 2), lengths=(2.0, 3.0, 4.0), origin=(-1.0, 0.0, 1.0))
        c = m.corner_coords.reshape(-1, 3)
        assert c[:, 0].min() == pytest.approx(-1.0)
        assert c[:, 0].max() == pytest.approx(1.0)
        assert c[:, 2].max() == pytest.approx(5.0)

    def test_boundary_labels(self):
        m = box_mesh((2, 2, 2))
        assert set(m.boundary_labels()) == {"x-", "x+", "y-", "y+", "bottom", "top"}
        assert m.boundary_facets["bottom"].shape == (4, 2)

    def test_periodic_drops_labels_and_wraps(self):
        m = box_mesh((2, 2, 2), periodic=(True, True, False))
        assert set(m.boundary_labels()) == {"bottom", "top"}
        pts = np.array([[1.0, 0.5, 0.5], [0.3, 1.0, 0.1]])
        img = m.periodic_image(pts)
        assert img[0, 0] == pytest.approx(0.0)
        assert img[1, 1] == pytest.approx(0.0)
        assert img[1, 0] == pytest.approx(0.3)

    def test_gll_coordinates_shape_and_range(self):
        m = box_mesh((2, 1, 1))
        x, y, z = m.gll_coordinates(5)
        assert x.shape == (2, 5, 5, 5)
        assert x.min() == pytest.approx(0.0)
        assert x.max() == pytest.approx(1.0)
        # Element interface at x=0.5 present in both elements.
        assert x[0].max() == pytest.approx(0.5)
        assert x[1].min() == pytest.approx(0.5)

    def test_gll_axis_convention(self):
        # i (last axis) is x, j is y, k is z for a box.
        m = box_mesh((1, 1, 1))
        x, y, z = m.gll_coordinates(4)
        assert np.allclose(np.diff(x[0, 0, 0, :]) > 0, True)
        assert np.allclose(np.diff(y[0, 0, :, 0]) > 0, True)
        assert np.allclose(np.diff(z[0, :, 0, 0]) > 0, True)

    def test_facet_node_index(self):
        m = box_mesh((1, 1, 1))
        lx = 4
        x, y, z = m.gll_coordinates(lx)
        idx = m.facet_node_index(4, lx)  # t- face = bottom
        assert np.allclose(z[(0, *idx)], 0.0)
        idx = m.facet_node_index(1, lx)  # r+ face
        assert np.allclose(x[(0, *idx)], 1.0)


class TestCylinderMesh:
    def test_element_count(self):
        m = cylinder_mesh(n_square=2, n_ring=2, n_z=3)
        assert m.nelv == (2 * 2 + 4 * 2 * 2) * 3

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            cylinder_mesh(diameter=-1.0)

    def test_boundary_labels(self):
        m = cylinder_mesh(n_square=2, n_ring=2, n_z=3)
        assert set(m.boundary_labels()) == {"bottom", "top", "side"}

    def test_side_nodes_on_circle(self):
        d = 0.5
        m = cylinder_mesh(diameter=d, n_square=2, n_ring=2, n_z=2)
        lx = 5
        x, y, z = m.gll_coordinates(lx)
        for e, face in m.boundary_facets["side"]:
            idx = (int(e), *m.facet_node_index(int(face), lx))
            r = np.sqrt(x[idx] ** 2 + y[idx] ** 2)
            assert np.allclose(r, d / 2, atol=1e-12)

    def test_plates_at_z_extremes(self):
        m = cylinder_mesh(height=1.0, n_square=2, n_ring=1, n_z=4)
        lx = 4
        x, y, z = m.gll_coordinates(lx)
        for e, face in m.boundary_facets["bottom"]:
            idx = (int(e), *m.facet_node_index(int(face), lx))
            assert np.allclose(z[idx], 0.0, atol=1e-14)
        for e, face in m.boundary_facets["top"]:
            idx = (int(e), *m.facet_node_index(int(face), lx))
            assert np.allclose(z[idx], 1.0, atol=1e-14)

    def test_all_nodes_inside_cylinder(self):
        d = 1.0
        m = cylinder_mesh(diameter=d, n_square=3, n_ring=2, n_z=2)
        x, y, _ = m.gll_coordinates(6)
        r = np.sqrt(x**2 + y**2)
        assert r.max() <= d / 2 + 1e-12

    def test_volume_converges_to_cylinder(self):
        # Discrete volume (sum of Jacobian-weighted quadrature) approaches
        # pi R^2 H as the outer ring resolution increases.
        from repro.sem.space import FunctionSpace

        d, h = 1.0, 1.0
        vols = []
        for n in (1, 2, 4):
            m = cylinder_mesh(diameter=d, height=h, n_square=n, n_ring=n, n_z=1)
            vols.append(FunctionSpace(m, 6).coef.volume)
        exact = np.pi * (d / 2) ** 2 * h
        errs = [abs(v - exact) / exact for v in vols]
        assert errs[-1] < 2e-3
        assert errs[-1] < errs[0]

    def test_conforming_no_hanging_nodes(self):
        # Every shared face node must coincide with a partner: the number of
        # unique nodes must equal nelv*lx^3 minus the duplicates implied by
        # internal faces (checked indirectly: multiplicity >= 2 on all
        # element-boundary nodes that are not on the domain boundary).
        from repro.sem.space import FunctionSpace

        m = cylinder_mesh(n_square=2, n_ring=2, n_z=2)
        sp = FunctionSpace(m, 4)
        # Interior-of-element nodes have multiplicity exactly 1.
        mult = sp.gs.multiplicity
        assert np.all(mult[:, 1:-1, 1:-1, 1:-1] == 1.0)
        # Face nodes strictly inside the domain have multiplicity >= 2 --
        # check one internal face (top face of a bottom-layer element).
        e = 0
        assert np.all(mult[e, -1, 1:-1, 1:-1] >= 2.0)
