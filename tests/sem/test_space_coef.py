"""Tests for the function space, metric factors and mass matrix."""

import numpy as np
import pytest

from repro.sem.mesh import box_mesh, cylinder_mesh
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def box_space():
    return FunctionSpace(box_mesh((2, 2, 2), lengths=(1.0, 2.0, 3.0)), 5)


class TestFunctionSpace:
    def test_invalid_lx(self):
        with pytest.raises(ValueError):
            FunctionSpace(box_mesh((1, 1, 1)), 1)

    def test_shapes(self, box_space):
        assert box_space.shape == (8, 5, 5, 5)
        assert box_space.x.shape == box_space.shape

    def test_unique_dof_count_box(self):
        # Box with (nx,ny,nz) elements of degree N has
        # (nx*N+1)(ny*N+1)(nz*N+1) unique nodes.
        sp = FunctionSpace(box_mesh((2, 3, 1)), 4)
        n = 3
        assert sp.n_dofs == (2 * n + 1) * (3 * n + 1) * (1 * n + 1)

    def test_volume_box(self, box_space):
        assert box_space.coef.volume == pytest.approx(6.0, rel=1e-12)

    def test_integrate_polynomial(self, box_space):
        # int x*y over [0,1]x[0,2]x[0,3] = (1/2)(2)(3) = 3
        f = box_space.x * box_space.y
        assert box_space.integrate(f) == pytest.approx(3.0, rel=1e-12)

    def test_mean_constant(self, box_space):
        assert box_space.mean(np.ones(box_space.shape)) == pytest.approx(1.0)

    def test_norm_l2(self, box_space):
        # ||1||_L2 = sqrt(V)
        assert box_space.norm_l2(np.ones(box_space.shape)) == pytest.approx(np.sqrt(6.0))

    def test_mass_assembled_positive(self, box_space):
        assert np.all(box_space.mass_assembled > 0)

    def test_interpolate(self, box_space):
        f = box_space.interpolate(lambda x, y, z: 2 * x + z)
        assert np.allclose(f, 2 * box_space.x + box_space.z)

    def test_project_continuous_idempotent_on_continuous(self, box_space):
        u = box_space.interpolate(lambda x, y, z: x * y + z**2)
        v = box_space.project_continuous(u)
        assert np.allclose(v, u, atol=1e-12)

    def test_project_continuous_makes_continuous(self, box_space):
        rng = np.random.default_rng(0)
        u = rng.normal(size=box_space.shape)
        v = box_space.project_continuous(u)
        # dssum-average is invariant on the projected field.
        w = box_space.gs.average(v)
        assert np.allclose(w, v, atol=1e-12)


class TestMetricFactors:
    def test_affine_box_metrics(self):
        sp = FunctionSpace(box_mesh((1, 1, 1), lengths=(2.0, 4.0, 8.0)), 4)
        c = sp.coef
        assert np.allclose(c.dxdr, 1.0)  # dx/dr = Lx/2
        assert np.allclose(c.dyds, 2.0)
        assert np.allclose(c.dzdt, 4.0)
        assert np.allclose(c.dxds, 0.0, atol=1e-14)
        assert np.allclose(c.jac, 8.0)
        assert np.allclose(c.drdx, 1.0)
        assert np.allclose(c.dtdz, 0.25)

    def test_mass_sums_to_volume_cylinder(self):
        sp = FunctionSpace(cylinder_mesh(diameter=1.0, n_square=3, n_ring=3, n_z=2), 6)
        exact = np.pi * 0.25
        assert sp.coef.volume == pytest.approx(exact, rel=5e-4)

    def test_g_factors_symmetric_box(self):
        sp = FunctionSpace(box_mesh((2, 2, 2)), 4)
        c = sp.coef
        # Off-diagonal metric couplings vanish for an axis-aligned box.
        assert np.allclose(c.g12, 0.0, atol=1e-13)
        assert np.allclose(c.g13, 0.0, atol=1e-13)
        assert np.allclose(c.g23, 0.0, atol=1e-13)
        assert np.all(c.g11 > 0)

    def test_cylinder_metrics_invertible(self):
        sp = FunctionSpace(cylinder_mesh(n_square=2, n_ring=2, n_z=2), 5)
        c = sp.coef
        # Forward and inverse Jacobians multiply to the identity.
        eye00 = c.dxdr * c.drdx + c.dxds * c.dsdx + c.dxdt * c.dtdx
        eye01 = c.dxdr * c.drdy + c.dxds * c.dsdy + c.dxdt * c.dtdy
        assert np.allclose(eye00, 1.0, atol=1e-12)
        assert np.allclose(eye01, 0.0, atol=1e-12)

    def test_degenerate_mesh_raises(self):
        m = box_mesh((1, 1, 1))
        m.corner_coords[0, :, :, 1] = m.corner_coords[0, :, :, 0]  # collapse x
        with pytest.raises(ValueError, match="Jacobian"):
            FunctionSpace(m, 3)
