"""Tests for the modal low-pass filter."""

import numpy as np
import pytest

from repro.compression.transform import to_modal
from repro.sem.filter import ModalFilter
from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def sp():
    return FunctionSpace(box_mesh((2, 1, 1)), 6)


class TestModalFilter:
    def test_validation(self):
        with pytest.raises(ValueError):
            ModalFilter(6, strength=1.5)
        with pytest.raises(ValueError):
            ModalFilter(6, cutoff=0)

    def test_low_modes_untouched(self, sp):
        f = ModalFilter(sp.lx, cutoff=4, strength=0.3)
        u = sp.x**2 + sp.y  # degree 2 < cutoff
        assert np.allclose(f(u), u, atol=1e-11)

    def test_top_mode_attenuated(self, sp):
        filt = ModalFilter(sp.lx, cutoff=3, strength=0.2)
        rng = np.random.default_rng(0)
        u = rng.normal(size=sp.shape)
        uh = to_modal(u)
        vh = to_modal(filt(u))
        sigma = filt.transfer_function()
        # The pure top r-mode column scales by sigma[-1] (times lower-mode
        # factors in the other directions = 1 for mode 0).
        assert vh[0, 0, 0, -1] == pytest.approx(uh[0, 0, 0, -1] * sigma[-1], rel=1e-10)
        assert vh[0, 0, 0, 1] == pytest.approx(uh[0, 0, 0, 1], rel=1e-10)

    def test_transfer_function_shape(self):
        filt = ModalFilter(8, cutoff=6, strength=0.1)
        sigma = filt.transfer_function()
        assert np.all(sigma[:6] == 1.0)
        assert sigma[-1] == pytest.approx(0.9)
        assert np.all(np.diff(sigma) <= 1e-15)

    def test_idempotent_limit(self, sp):
        # strength 0 = identity.
        filt = ModalFilter(sp.lx, strength=0.0)
        rng = np.random.default_rng(1)
        u = rng.normal(size=sp.shape)
        assert np.allclose(filt(u), u, atol=1e-11)

    def test_reduces_spectral_error_indicator(self, sp):
        from repro.analysis import spectral_error_indicator

        rng = np.random.default_rng(2)
        u = rng.normal(size=sp.shape)
        filt = ModalFilter(sp.lx, cutoff=3, strength=0.9)
        e0 = spectral_error_indicator(u)["error_fraction"].mean()
        e1 = spectral_error_indicator(filt(u))["error_fraction"].mean()
        assert e1 < e0

    def test_wrong_lx_rejected(self, sp):
        filt = ModalFilter(5)
        with pytest.raises(ValueError):
            filt(np.zeros(sp.shape))
