"""Tests for 1-D basis operators: interpolation, differentiation, modal transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sem.basis import (
    derivative_matrix,
    lagrange_interpolation_matrix,
    lagrange_weights,
    modal_transform_matrix,
)
from repro.sem.quadrature import gll_points_weights


class TestDerivativeMatrix:
    @pytest.mark.parametrize("lx", [2, 4, 7, 10])
    def test_constant_has_zero_derivative(self, lx):
        d = derivative_matrix(lx)
        assert np.allclose(d @ np.ones(lx), 0.0, atol=1e-12)

    @pytest.mark.parametrize("lx", [3, 5, 8])
    def test_differentiates_monomials_exactly(self, lx):
        x, _ = gll_points_weights(lx)
        d = derivative_matrix(lx)
        for p in range(1, lx):
            assert np.allclose(d @ x**p, p * x ** (p - 1), atol=1e-10)

    def test_rows_of_d_are_skew_structured(self):
        # D has the exact corner entries -N(N+1)/4 and +N(N+1)/4.
        lx = 8
        n = lx - 1
        d = derivative_matrix(lx)
        assert d[0, 0] == pytest.approx(-n * (n + 1) / 4.0)
        assert d[-1, -1] == pytest.approx(n * (n + 1) / 4.0)

    def test_integration_by_parts_identity(self):
        # w_i (Du)_i v_i + u_i (Dv)_i w_i = boundary terms (exact for polys).
        lx = 7
        x, w = gll_points_weights(lx)
        d = derivative_matrix(lx)
        rng = np.random.default_rng(7)
        u = rng.normal(size=lx)
        v = rng.normal(size=lx)
        lhs = np.sum(w * (d @ u) * v) + np.sum(w * u * (d @ v))
        rhs = u[-1] * v[-1] - u[0] * v[0]
        assert lhs == pytest.approx(rhs, abs=1e-12)


class TestInterpolation:
    def test_identity_on_same_grid(self):
        x, _ = gll_points_weights(6)
        j = lagrange_interpolation_matrix(np.asarray(x), 6)
        assert np.allclose(j, np.eye(6), atol=1e-12)

    @pytest.mark.parametrize("lx,lxd", [(4, 6), (6, 9), (8, 12)])
    def test_polynomial_exactness(self, lx, lxd):
        xf, _ = gll_points_weights(lxd)
        xc, _ = gll_points_weights(lx)
        j = lagrange_interpolation_matrix(np.asarray(xf), lx)
        for p in range(lx):
            assert np.allclose(j @ np.asarray(xc) ** p, np.asarray(xf) ** p, atol=1e-11)

    def test_partition_of_unity(self):
        xf = np.linspace(-1, 1, 17)
        j = lagrange_interpolation_matrix(xf, 7)
        assert np.allclose(np.sum(j, axis=1), 1.0, atol=1e-12)

    def test_exact_node_hit(self):
        xc, _ = gll_points_weights(5)
        j = lagrange_interpolation_matrix(np.array([xc[2]]), 5)
        expect = np.zeros(5)
        expect[2] = 1.0
        assert np.allclose(j[0], expect)

    def test_barycentric_weights_alternate_sign(self):
        w = lagrange_weights(8)
        assert np.all(np.sign(w) == np.sign(w[0]) * (-1.0) ** np.arange(8))


class TestModalTransform:
    @pytest.mark.parametrize("lx", [3, 5, 8, 11])
    def test_roundtrip(self, lx):
        v = modal_transform_matrix(lx)
        rng = np.random.default_rng(3)
        u = rng.normal(size=lx)
        uh = np.linalg.solve(v, u)
        assert np.allclose(v @ uh, u, atol=1e-11)

    def test_constant_maps_to_single_mode(self):
        lx = 7
        v = modal_transform_matrix(lx)
        uh = np.linalg.solve(v, np.ones(lx))
        assert uh[0] == pytest.approx(np.sqrt(2.0))
        assert np.allclose(uh[1:], 0.0, atol=1e-12)

    def test_modes_orthonormal_under_exact_integration(self):
        # Use a much finer GL rule to integrate products of modes exactly.
        lx = 6
        v_cols = modal_transform_matrix(lx)
        xq, wq = np.polynomial.legendre.leggauss(3 * lx)
        from repro.sem.basis import legendre_polynomial

        gram = np.zeros((lx, lx))
        for a in range(lx):
            pa = legendre_polynomial(a, xq) * np.sqrt((2 * a + 1) / 2)
            for b in range(lx):
                pb = legendre_polynomial(b, xq) * np.sqrt((2 * b + 1) / 2)
                gram[a, b] = np.sum(wq * pa * pb)
        assert np.allclose(gram, np.eye(lx), atol=1e-12)
        assert v_cols.shape == (lx, lx)

    def test_parseval_with_exact_inverse(self):
        # Modal energy equals the exact L2 norm of the interpolant.
        lx = 6
        v = modal_transform_matrix(lx)
        rng = np.random.default_rng(11)
        u = rng.normal(size=lx)
        uh = np.linalg.solve(v, u)
        # Exact L2 norm of the degree-(lx-1) interpolant via fine GL rule.
        xq, wq = np.polynomial.legendre.leggauss(2 * lx)
        jf = lagrange_interpolation_matrix(xq, lx)
        norm_exact = np.sum(wq * (jf @ u) ** 2)
        assert np.sum(uh**2) == pytest.approx(norm_exact, rel=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    lx=st.integers(min_value=3, max_value=9),
    coeffs=st.lists(st.floats(-5, 5), min_size=1, max_size=4),
)
def test_interpolate_then_differentiate_commutes(lx, coeffs):
    """Property: D_fine J u == J' applied to polynomial data (degree < lx)."""
    deg = min(len(coeffs) - 1, lx - 2)
    coeffs = np.asarray(coeffs[: deg + 1])
    xc, _ = gll_points_weights(lx)
    lxd = lx + 2
    xf, _ = gll_points_weights(lxd)
    u = np.polyval(coeffs, np.asarray(xc))
    j = lagrange_interpolation_matrix(np.asarray(xf), lx)
    df = derivative_matrix(lxd)
    dc = derivative_matrix(lx)
    lhs = df @ (j @ u)
    rhs = j @ (dc @ u)
    assert np.allclose(lhs, rhs, atol=1e-8)
