"""Determinism + replay suite for the startup kernel autotuner.

The tuning table is a committed artifact: the same measurements must
always produce the same selections (argmin with declaration-order
tie-break), the table must survive a JSON round trip bit-for-bit, and a
*stale* table -- one naming a variant this build no longer knows -- must
fall back to the defaults with a logged ``autotune.fallback`` event
rather than taking the solver down.  Tests inject a scripted ``clock``
into the benchmark layer so the measurements themselves are pinned.
"""

import json

import numpy as np
import pytest

from repro.observability import MetricsRegistry
from repro.sem.autotune import (
    DEFAULTS,
    DIMENSIONS,
    TABLE_VERSION,
    TuningEntry,
    TuningTable,
    apply_tuning,
    autotune,
    benchmark_contraction,
)
from repro.sem.coef import get_contraction_variant, set_contraction_variant


class ScriptedClock:
    """A fake ``time.perf_counter`` ticking a fixed amount per call.

    Every ``_time_call`` measurement becomes exactly ``step`` seconds, so
    all variants tie and the declaration-order tie-break is exposed; a
    ``biases`` map {call_index: extra} can slow down specific intervals.
    """

    def __init__(self, step: float = 1.0, biases: dict[int, float] | None = None):
        self.t = 0.0
        self.calls = 0
        self.biases = biases or {}
        self.step = step

    def __call__(self) -> float:
        self.t += self.step + self.biases.get(self.calls, 0.0)
        self.calls += 1
        return self.t


class RecordingTracer:
    def __init__(self):
        self.events: list[tuple[str, dict]] = []

    def event(self, name: str, **tags):
        self.events.append((name, tags))


@pytest.fixture(autouse=True)
def _restore_variant():
    before = get_contraction_variant()
    yield
    set_contraction_variant(before)


# -- determinism ---------------------------------------------------------------


def test_autotune_is_deterministic_under_a_fixed_clock():
    a = autotune(8, 5, repeats=2, clock=ScriptedClock())
    b = autotune(8, 5, repeats=2, clock=ScriptedClock())
    assert a.selections == b.selections
    assert a.measurements == b.measurements
    assert a.to_dict() == b.to_dict()


def test_ties_break_by_declaration_order():
    """All-equal measurements select the first (default) variant of every
    dimension -- the tie-break that makes the table reproducible."""
    entry = autotune(4, 3, repeats=1, clock=ScriptedClock())
    for dim, variants in DIMENSIONS.items():
        times = entry.measurements[dim]
        assert len(set(times.values())) == 1, f"{dim} measurements did not tie"
        assert entry.selections[dim] == variants[0]
    assert entry.selections == DEFAULTS


def test_selection_is_argmin_of_measurements():
    """Biasing one timed interval flips exactly that dimension's winner."""
    # benchmark_contraction times "batched" first: interval (calls 0,1).
    # Slowing it makes "axis" the argmin.
    clock = ScriptedClock(biases={1: 100.0})
    times = benchmark_contraction(4, 4, repeats=1, clock=clock)
    assert times["batched"] > times["axis"]
    entry = autotune(4, 3, repeats=1, clock=ScriptedClock(biases={1: 100.0}))
    assert entry.selections["contraction"] == "axis"
    # The other dimensions still tie to their defaults.
    assert entry.selections["smoother_dtype"] == DEFAULTS["smoother_dtype"]


def test_autotune_emits_sweep_event():
    tracer = RecordingTracer()
    autotune(4, 3, repeats=1, clock=ScriptedClock(), tracer=tracer)
    names = [n for n, _ in tracer.events]
    assert "autotune.sweep" in names
    _, tags = tracer.events[names.index("autotune.sweep")]
    assert tags["nelem"] == 4 and tags["p"] == 3
    assert tags["pick_contraction"] in DIMENSIONS["contraction"]


def test_real_clock_sweep_selects_known_variants():
    """An un-mocked sweep (tiny shape) still yields only known variants."""
    entry = autotune(2, 2, repeats=1)
    for dim, pick in entry.selections.items():
        assert pick in DIMENSIONS[dim]
        assert all(t >= 0.0 for t in entry.measurements[dim].values())


# -- table round trip ----------------------------------------------------------


def make_table() -> TuningTable:
    table = TuningTable()
    table.add(autotune(8, 5, repeats=1, clock=ScriptedClock()))
    table.add(autotune(27, 7, repeats=1, clock=ScriptedClock(biases={1: 9.0})))
    return table


def test_table_json_round_trip_is_exact():
    table = make_table()
    blob = table.to_json()
    again = TuningTable.from_json(blob)
    assert again.to_json() == blob
    assert [e.to_dict() for e in again.entries()] == [
        e.to_dict() for e in table.entries()
    ]


def test_table_save_load_round_trip(tmp_path):
    path = tmp_path / "tuning.json"
    table = make_table()
    table.save(path)
    # The artifact is stable text: saving twice yields identical bytes.
    first = path.read_text()
    table.save(path)
    assert path.read_text() == first
    again = TuningTable.load(path)
    assert again.to_json() == table.to_json()
    assert again.lookup(8, 5).selections == table.lookup(8, 5).selections


def test_table_lookup_is_exact_shape_match():
    table = make_table()
    assert table.lookup(8, 5) is not None
    assert table.lookup(8, 6) is None
    assert table.lookup(9, 5) is None


def test_version_mismatch_raises():
    blob = make_table().to_json()
    blob["version"] = TABLE_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        TuningTable.from_json(blob)


def test_entry_dict_round_trip():
    entry = autotune(8, 5, repeats=1, clock=ScriptedClock())
    again = TuningEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
    assert again.to_dict() == entry.to_dict()


# -- stale-table fallback ------------------------------------------------------


def test_unknown_variant_falls_back_to_default_with_event():
    tracer = RecordingTracer()
    metrics = MetricsRegistry()
    applied = apply_tuning(
        {"contraction": "simd-unrolled-v2", "smoother_dtype": "float32"},
        tracer=tracer,
        metrics=metrics,
    )
    # The stale pick is replaced, the valid pick survives, the missing
    # dimension gets its default.
    assert applied["contraction"] == DEFAULTS["contraction"]
    assert applied["smoother_dtype"] == "float32"
    assert applied["operator_cache"] == DEFAULTS["operator_cache"]
    fallbacks = [t for n, t in tracer.events if n == "autotune.fallback"]
    assert fallbacks == [
        {
            "dimension": "contraction",
            "requested": "simd-unrolled-v2",
            "used": DEFAULTS["contraction"],
        }
    ]
    assert metrics.counter("autotune.fallback").value == 1.0


def test_valid_selection_applies_without_fallback():
    tracer = RecordingTracer()
    metrics = MetricsRegistry()
    applied = apply_tuning(
        {"contraction": "axis", "smoother_dtype": "float64", "operator_cache": "off"},
        tracer=tracer,
        metrics=metrics,
    )
    assert applied == {
        "contraction": "axis",
        "smoother_dtype": "float64",
        "operator_cache": "off",
    }
    assert [n for n, _ in tracer.events] == []
    assert metrics.counter("autotune.fallback").value == 0.0
    # apply_tuning really installs the contraction variant process-wide.
    assert get_contraction_variant() == "axis"
    # And exports the applied picks as gauges for dashboards.
    idx = metrics.gauge("autotune.contraction.variant_index").value
    assert DIMENSIONS["contraction"][int(idx)] == "axis"


def test_none_selection_means_all_defaults():
    applied = apply_tuning(None)
    assert applied == DEFAULTS
    assert get_contraction_variant() == DEFAULTS["contraction"]


# -- Simulation integration ----------------------------------------------------


def _tiny_case(**overrides):
    from repro.core.rbc import rbc_box_case

    return rbc_box_case(1e4, n=(2, 2, 2), lx=4, **overrides)


def test_simulation_consults_tuning_table(tmp_path):
    from repro.core.simulation import Simulation

    config = _tiny_case()
    nelem, p = config.mesh.nelv, config.lx - 1
    table = TuningTable()
    entry = autotune(nelem, p, repeats=1, clock=ScriptedClock())
    entry.selections["smoother_dtype"] = "float32"
    entry.selections["operator_cache"] = "off"
    table.add(entry)
    path = tmp_path / "table.json"
    table.save(path)

    sim = Simulation(dataclasses_replace(config, tuning_table=str(path)))
    assert sim.tuning["smoother_dtype"] == "float32"
    assert sim.config.smoother_dtype == "float32"
    assert sim.config.operator_cache is False
    assert sim.fluid.hsmg.guard is not None


def test_simulation_missing_table_falls_back(tmp_path):
    from repro.core.simulation import Simulation

    config = _tiny_case()
    sim = Simulation(
        dataclasses_replace(config, tuning_table=str(tmp_path / "nope.json"))
    )
    assert sim.tuning == DEFAULTS
    assert sim.metrics.counter("autotune.fallback").value >= 1.0
    assert sim.config.smoother_dtype == "float64"


def dataclasses_replace(config, **kw):
    import dataclasses

    return dataclasses.replace(config, **kw)
