"""Tests for GLL/GL quadrature rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sem.quadrature import (
    gauss_legendre_points_weights,
    gll_points_weights,
    legendre_and_derivative,
    legendre_value,
)


class TestLegendre:
    def test_p0_is_one(self):
        x = np.linspace(-1, 1, 7)
        assert np.allclose(legendre_value(0, x), 1.0)

    def test_p1_is_x(self):
        x = np.linspace(-1, 1, 7)
        assert np.allclose(legendre_value(1, x), x)

    def test_p2_closed_form(self):
        x = np.linspace(-1, 1, 11)
        assert np.allclose(legendre_value(2, x), 0.5 * (3 * x**2 - 1))

    def test_p5_matches_numpy(self):
        x = np.linspace(-1, 1, 23)
        ref = np.polynomial.legendre.legval(x, [0] * 5 + [1])
        assert np.allclose(legendre_value(5, x), ref, atol=1e-13)

    def test_endpoint_values(self):
        for n in range(1, 12):
            assert legendre_value(n, np.array([1.0]))[0] == pytest.approx(1.0)
            assert legendre_value(n, np.array([-1.0]))[0] == pytest.approx((-1.0) ** n)

    def test_derivative_interior(self):
        x = np.linspace(-0.9, 0.9, 11)
        for n in range(1, 9):
            _, dp = legendre_and_derivative(n, x)
            h = 1e-6
            fd = (legendre_value(n, x + h) - legendre_value(n, x - h)) / (2 * h)
            assert np.allclose(dp, fd, atol=1e-6)

    def test_derivative_at_endpoints(self):
        for n in range(1, 10):
            _, dp = legendre_and_derivative(n, np.array([1.0, -1.0]))
            expect = n * (n + 1) / 2.0
            assert dp[0] == pytest.approx(expect)
            assert dp[1] == pytest.approx((-1.0) ** (n - 1) * expect)


class TestGLL:
    def test_minimum_points(self):
        with pytest.raises(ValueError):
            gll_points_weights(1)

    def test_two_points(self):
        x, w = gll_points_weights(2)
        assert np.allclose(x, [-1, 1])
        assert np.allclose(w, [1, 1])

    def test_three_points(self):
        x, w = gll_points_weights(3)
        assert np.allclose(x, [-1, 0, 1])
        assert np.allclose(w, [1 / 3, 4 / 3, 1 / 3])

    def test_endpoints_included(self):
        for lx in range(2, 14):
            x, _ = gll_points_weights(lx)
            assert x[0] == -1.0 and x[-1] == 1.0

    def test_points_sorted_distinct(self):
        for lx in range(2, 14):
            x, _ = gll_points_weights(lx)
            assert np.all(np.diff(x) > 0)

    def test_symmetry(self):
        for lx in range(2, 14):
            x, w = gll_points_weights(lx)
            assert np.allclose(x, -x[::-1], atol=1e-15)
            assert np.allclose(w, w[::-1], atol=1e-15)

    def test_weights_sum_to_two(self):
        for lx in range(2, 14):
            _, w = gll_points_weights(lx)
            assert np.sum(w) == pytest.approx(2.0, abs=1e-13)

    @pytest.mark.parametrize("lx", [3, 5, 8, 12])
    def test_exactness_degree(self, lx):
        # GLL with lx points integrates polynomials up to degree 2*lx - 3.
        x, w = gll_points_weights(lx)
        for deg in range(2 * lx - 2):
            exact = 2.0 / (deg + 1) if deg % 2 == 0 else 0.0
            assert np.sum(w * x**deg) == pytest.approx(exact, abs=1e-12), deg

    def test_cache_returns_readonly(self):
        x, w = gll_points_weights(6)
        with pytest.raises(ValueError):
            x[0] = 0.0
        with pytest.raises(ValueError):
            w[0] = 0.0

    def test_interior_points_are_roots_of_pn_prime(self):
        for lx in (4, 7, 10):
            x, _ = gll_points_weights(lx)
            _, dp = legendre_and_derivative(lx - 1, x[1:-1])
            assert np.max(np.abs(dp)) < 1e-10


class TestGaussLegendre:
    def test_minimum(self):
        with pytest.raises(ValueError):
            gauss_legendre_points_weights(0)

    @pytest.mark.parametrize("lx", [2, 5, 9])
    def test_exactness(self, lx):
        x, w = gauss_legendre_points_weights(lx)
        for deg in range(2 * lx):
            exact = 2.0 / (deg + 1) if deg % 2 == 0 else 0.0
            assert np.sum(w * x**deg) == pytest.approx(exact, abs=1e-12)

    def test_strictly_interior(self):
        x, _ = gauss_legendre_points_weights(8)
        assert np.all(np.abs(x) < 1.0)


@settings(max_examples=30, deadline=None)
@given(lx=st.integers(min_value=2, max_value=12), deg=st.integers(min_value=0, max_value=8))
def test_gll_integrates_random_degree(lx, deg):
    """Property: GLL exactness for any monomial within the rule's degree."""
    if deg > 2 * lx - 3:
        deg = 2 * lx - 3
    x, w = gll_points_weights(lx)
    exact = 2.0 / (deg + 1) if deg % 2 == 0 else 0.0
    assert np.sum(w * x**deg) == pytest.approx(exact, abs=1e-11)
