"""Tests for arbitrary-point field evaluation (probes)."""

import numpy as np
import pytest

from repro.sem.mesh import box_mesh, cylinder_mesh
from repro.sem.probes import FieldProbes
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def sp():
    return FunctionSpace(box_mesh((2, 2, 2), lengths=(1.0, 2.0, 1.0)), 5)


class TestProbesBox:
    def test_polynomial_exact(self, sp):
        rng = np.random.default_rng(0)
        pts = rng.uniform([0.05, 0.05, 0.05], [0.95, 1.95, 0.95], size=(20, 3))
        probes = FieldProbes(sp, pts)
        f = sp.x**2 * sp.y + 3 * sp.z
        vals = probes.evaluate(f)
        expect = pts[:, 0] ** 2 * pts[:, 1] + 3 * pts[:, 2]
        assert np.allclose(vals, expect, atol=1e-10)

    def test_gll_node_hit(self, sp):
        # Probing exactly at a GLL node returns the nodal value.
        e, k, j, i = 3, 2, 1, 4
        p = np.array([[sp.x[e, k, j, i], sp.y[e, k, j, i], sp.z[e, k, j, i]]])
        probes = FieldProbes(sp, p)
        f = np.cos(sp.x) * sp.y
        assert probes.evaluate(f)[0] == pytest.approx(f[e, k, j, i], abs=1e-11)

    def test_element_interface_point(self, sp):
        # A point exactly on an element interface is found in some element
        # and evaluates consistently.
        p = np.array([[0.5, 1.0, 0.5]])
        probes = FieldProbes(sp, p)
        f = sp.x + sp.y + sp.z
        assert probes.evaluate(f)[0] == pytest.approx(2.0, abs=1e-10)

    def test_outside_strict_raises(self, sp):
        with pytest.raises(ValueError, match="not found"):
            FieldProbes(sp, np.array([[5.0, 0.5, 0.5]]))

    def test_outside_nonstrict_nan(self, sp):
        probes = FieldProbes(sp, np.array([[5.0, 0.5, 0.5], [0.5, 0.5, 0.5]]),
                             strict=False)
        vals = probes.evaluate(np.ones(sp.shape))
        assert np.isnan(vals[0])
        assert vals[1] == pytest.approx(1.0)
        assert probes.n_found == 1

    def test_shape_check(self, sp):
        probes = FieldProbes(sp, np.array([[0.5, 0.5, 0.5]]))
        with pytest.raises(ValueError):
            probes.evaluate(np.zeros((2, 2)))


class TestProbesCylinder:
    @pytest.fixture(scope="class")
    def spc(self):
        return FunctionSpace(cylinder_mesh(diameter=1.0, n_square=2, n_ring=2, n_z=3), 5)

    def test_linear_field_exact_on_curved_elements(self, spc):
        rng = np.random.default_rng(1)
        # Random points safely inside the cylinder.
        r = rng.uniform(0.0, 0.45, 15)
        th = rng.uniform(0, 2 * np.pi, 15)
        z = rng.uniform(0.1, 0.9, 15)
        pts = np.stack([r * np.cos(th), r * np.sin(th), z], axis=1)
        probes = FieldProbes(spc, pts)
        f = spc.x + 2 * spc.y + 3 * spc.z
        vals = probes.evaluate(f)
        expect = pts[:, 0] + 2 * pts[:, 1] + 3 * pts[:, 2]
        assert np.allclose(vals, expect, atol=1e-9)

    def test_centerline(self, spc):
        pts = np.array([[0.0, 0.0, 0.5]])
        probes = FieldProbes(spc, pts)
        f = 0.5 - spc.z
        assert probes.evaluate(f)[0] == pytest.approx(0.0, abs=1e-10)

    def test_point_outside_cylinder(self, spc):
        with pytest.raises(ValueError):
            FieldProbes(spc, np.array([[0.49, 0.49, 0.5]]))  # corner outside circle
