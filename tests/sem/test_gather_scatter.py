"""Tests for the gather--scatter operation and global numbering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sem.gather_scatter import GatherScatter, build_global_numbering
from repro.sem.mesh import box_mesh, cylinder_mesh


def make_gs(mesh, lx):
    x, y, z = mesh.gll_coordinates(lx)
    coords = np.stack([x.reshape(-1), y.reshape(-1), z.reshape(-1)], axis=1)
    return GatherScatter(coords, (mesh.nelv, lx, lx, lx), periodic_image=mesh.periodic_image)


class TestGlobalNumbering:
    def test_single_element(self):
        m = box_mesh((1, 1, 1))
        x, y, z = m.gll_coordinates(4)
        coords = np.stack([x.reshape(-1), y.reshape(-1), z.reshape(-1)], axis=1)
        ids, n = build_global_numbering(coords)
        assert n == 64
        assert len(np.unique(ids)) == 64

    def test_two_elements_share_face(self):
        m = box_mesh((2, 1, 1))
        lx = 4
        x, y, z = m.gll_coordinates(lx)
        coords = np.stack([x.reshape(-1), y.reshape(-1), z.reshape(-1)], axis=1)
        _, n = build_global_numbering(coords)
        assert n == 2 * lx**3 - lx**2

    def test_periodic_wrapping_reduces_count(self):
        lx = 4
        m_per = box_mesh((2, 1, 1), periodic=(True, False, False))
        m_nop = box_mesh((2, 1, 1))
        gs_p = make_gs(m_per, lx)
        gs_n = make_gs(m_nop, lx)
        # Periodicity merges the two x-extreme faces.
        assert gs_p.n_global == gs_n.n_global - lx**2

    def test_mismatched_shape_raises(self):
        m = box_mesh((1, 1, 1))
        x, y, z = m.gll_coordinates(4)
        coords = np.stack([x.reshape(-1), y.reshape(-1), z.reshape(-1)], axis=1)
        with pytest.raises(ValueError):
            GatherScatter(coords, (1, 3, 3, 3))


class TestGatherScatterOps:
    @pytest.fixture(scope="class")
    def gs(self):
        return make_gs(box_mesh((2, 2, 1)), 4)

    def test_add_on_continuous_multiplies_by_multiplicity(self, gs):
        u = np.ones(gs.shape)
        v = gs.add(u)
        assert np.allclose(v, gs.multiplicity)

    def test_average_identity_on_continuous(self, gs):
        rng = np.random.default_rng(1)
        ug = rng.normal(size=gs.n_global)
        u = gs.scatter_unique(ug)
        assert np.allclose(gs.average(u), u, atol=1e-13)

    def test_add_is_linear(self, gs):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=gs.shape), rng.normal(size=gs.shape)
        assert np.allclose(gs.add(a + 2 * b), gs.add(a) + 2 * gs.add(b), atol=1e-12)

    def test_add_idempotent_structure(self, gs):
        # gs.add(gs.average(u)) == gs.add(u) restructured: average then add
        # equals add (both produce the assembled value at every duplicate).
        rng = np.random.default_rng(3)
        u = rng.normal(size=gs.shape)
        assert np.allclose(gs.add(gs.average(u)), gs.add(u), atol=1e-12)

    def test_min_max(self, gs):
        u = np.ones(gs.shape)
        flat = u.reshape(-1)
        # Last node of element 0 is the interior corner shared by all four
        # elements of the 2x2x1 box (multiplicity 4).
        k = 4**3 - 1
        flat[k] = -5.0
        dup = gs.global_ids == gs.global_ids[k]
        assert np.count_nonzero(dup) == 4
        v = gs.min(u)
        assert np.all(v.reshape(-1)[dup] == -5.0)
        w = gs.max(u)
        assert np.all(w.reshape(-1)[dup] == 1.0)

    def test_multiplicity_counts(self, gs):
        # Interior nodes multiplicity 1; face nodes 2; edge nodes 4 for 2x2x1.
        m = gs.multiplicity
        assert np.all(m[:, :, 1:-1, 1:-1][:, 1:-1] == 1.0)
        assert m.max() == 4.0

    def test_gather_scatter_unique_roundtrip(self, gs):
        rng = np.random.default_rng(4)
        ug = rng.normal(size=gs.n_global)
        assert np.allclose(gs.gather_unique(gs.scatter_unique(ug)), ug)

    def test_gather_unique_reduce(self, gs):
        u = np.ones(gs.shape)
        red = gs.gather_unique(u, reduce_duplicates=True)
        mult_unique = gs.gather_unique(gs.multiplicity)
        assert np.allclose(red, mult_unique)

    def test_dot_counts_unique_once(self, gs):
        u = np.ones(gs.shape)
        assert gs.dot(u, u) == pytest.approx(gs.n_global)

    def test_cylinder_gs_consistency(self):
        gs = make_gs(cylinder_mesh(n_square=2, n_ring=2, n_z=2), 4)
        rng = np.random.default_rng(5)
        ug = rng.normal(size=gs.n_global)
        u = gs.scatter_unique(ug)
        assert np.allclose(gs.average(u), u, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_average_is_projection(seed):
    """Property: averaging twice equals averaging once (projection onto C^0)."""
    gs = make_gs(box_mesh((2, 1, 1)), 3)
    rng = np.random.default_rng(seed)
    u = rng.normal(size=gs.shape)
    once = gs.average(u)
    twice = gs.average(once)
    assert np.allclose(once, twice, atol=1e-12)
