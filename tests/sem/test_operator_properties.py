"""Property-based operator identities on random deformed elements.

The batched-matmul kernels in ``repro.sem.operators`` contract specific
axes of the ``(nelv, lz, ly, lx)`` layout; an axis mix-up produces fields
that *look* plausible (right shape, right magnitude) but silently break
the discrete identities the solvers rely on.  Hypothesis drives random
smooth mesh deformations and random fields through three exact (up to
roundoff) identities:

* ``local_grad`` / ``local_grad_transpose`` adjointness under the plain
  discrete inner product (the matrix-transpose property of the tensor
  derivative);
* ``weak_gradient`` / ``weak_gradient_transpose`` adjointness -- ``cdtp``
  is by construction the discrete transpose of the weak gradient, the
  property that makes the pressure operator symmetric;
* ``ax_poisson`` symmetry, ``<u, A v> = <v, A u>``, on arbitrarily
  deformed (positive-Jacobian) elements.

The mesh deformation is a smooth global map applied to the corner
vertices, so elements stay conforming and the Jacobian stays positive for
the amplitudes drawn.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sem.mesh import box_mesh
from repro.sem.operators import (
    ax_poisson,
    divergence,
    local_grad,
    local_grad_transpose,
    weak_divergence,
    weak_gradient,
    weak_gradient_transpose,
)
from repro.sem.space import FunctionSpace

# Deformation amplitude bound: displacement gradient ~ amplitude * pi stays
# well below 1, keeping every element's Jacobian positive.
MAX_AMPLITUDE = 0.05


def deformed_space(seed: int, amplitude: float, lx: int = 4) -> FunctionSpace:
    """A 2x2x2-element unit box with a random smooth deformation."""
    mesh = box_mesh((2, 2, 2))
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=(3, 3))
    cc = mesh.corner_coords
    x, y, z = cc[..., 0].copy(), cc[..., 1].copy(), cc[..., 2].copy()
    for d in range(3):
        cc[..., d] += (
            amplitude
            * np.sin(np.pi * x + phases[d, 0])
            * np.sin(np.pi * y + phases[d, 1])
            * np.sin(np.pi * z + phases[d, 2])
        )
    space = FunctionSpace(mesh, lx)
    assert np.all(space.coef.jac > 0.0), "deformation inverted an element"
    return space


def random_field(space: FunctionSpace, rng: np.random.Generator) -> np.ndarray:
    return rng.normal(size=space.shape)


def assert_adjoint(lhs: float, rhs: float) -> None:
    scale = abs(lhs) + abs(rhs) + 1.0
    assert abs(lhs - rhs) <= 1e-10 * scale, f"{lhs} != {rhs}"


deformations = {
    "seed": st.integers(0, 2**32 - 1),
    "amplitude": st.floats(0.0, MAX_AMPLITUDE, allow_nan=False),
}


@settings(max_examples=15, deadline=None)
@given(**deformations)
def test_local_grad_transpose_is_the_adjoint(seed, amplitude):
    """<D u, w> = <u, D^T w> under the plain elementwise inner product."""
    space = deformed_space(seed, amplitude)
    rng = np.random.default_rng(seed ^ 0x5EED)
    u = random_field(space, rng)
    wr, ws, wt = (random_field(space, rng) for _ in range(3))

    ur, us, ut = local_grad(u, space.dx)
    lhs = float(np.sum(ur * wr) + np.sum(us * ws) + np.sum(ut * wt))
    rhs = float(np.sum(u * local_grad_transpose(wr, ws, wt, space.dx)))
    assert_adjoint(lhs, rhs)


@settings(max_examples=15, deadline=None)
@given(**deformations)
def test_weak_gradient_transpose_consistency(seed, amplitude):
    """``cdtp`` is the discrete transpose of the weak gradient.

    <v, (phi, grad p)> = <p, (grad phi, v)> for all fields -- the identity
    that couples the pressure gradient and the divergence constraint in
    the splitting scheme.
    """
    space = deformed_space(seed, amplitude)
    rng = np.random.default_rng(seed ^ 0xBEEF)
    p = random_field(space, rng)
    vx, vy, vz = (random_field(space, rng) for _ in range(3))

    gx, gy, gz = weak_gradient(p, space.coef, space.dx)
    lhs = float(np.sum(vx * gx) + np.sum(vy * gy) + np.sum(vz * gz))
    rhs = float(np.sum(p * weak_gradient_transpose(vx, vy, vz, space.coef, space.dx)))
    assert_adjoint(lhs, rhs)


@settings(max_examples=10, deadline=None)
@given(**deformations)
def test_weak_divergence_is_mass_weighted_divergence(seed, amplitude):
    """The collocated weak divergence is exactly ``B * div u``."""
    space = deformed_space(seed, amplitude)
    rng = np.random.default_rng(seed ^ 0xD1F)
    vx, vy, vz = (random_field(space, rng) for _ in range(3))

    weak = weak_divergence(vx, vy, vz, space.coef, space.dx)
    strong = divergence(vx, vy, vz, space.coef, space.dx)
    np.testing.assert_allclose(weak, space.coef.mass * strong, rtol=0, atol=1e-12)


@settings(max_examples=15, deadline=None)
@given(**deformations)
def test_ax_poisson_symmetry(seed, amplitude):
    """<u, A v> = <v, A u>: the stiffness matrix is symmetric on any
    deformed element (G is symmetric, A = D^T G D)."""
    space = deformed_space(seed, amplitude)
    rng = np.random.default_rng(seed ^ 0xA11CE)
    u = random_field(space, rng)
    v = random_field(space, rng)

    au = ax_poisson(u, space.coef, space.dx)
    av = ax_poisson(v, space.coef, space.dx)
    assert_adjoint(float(np.sum(u * av)), float(np.sum(v * au)))


def test_deformed_space_actually_deforms():
    """Guard the test fixture itself: a nonzero amplitude must move nodes."""
    flat = deformed_space(0, 0.0)
    bent = deformed_space(0, MAX_AMPLITUDE)
    assert not np.allclose(flat.x, bent.x)


def test_ax_poisson_positive_semidefinite_on_deformed_mesh():
    """<u, A u> >= 0 with equality only for constants (deterministic spot
    check complementing the randomized symmetry property)."""
    space = deformed_space(7, 0.04)
    rng = np.random.default_rng(7)
    u = random_field(space, rng)
    assert float(np.sum(u * ax_poisson(u, space.coef, space.dx))) > 0.0
    const = np.ones(space.shape)
    assert float(np.sum(const * ax_poisson(const, space.coef, space.dx))) == pytest.approx(
        0.0, abs=1e-9
    )
