"""Property-based operator identities on random deformed elements.

The batched-matmul kernels in ``repro.sem.operators`` contract specific
axes of the ``(nelv, lz, ly, lx)`` layout; an axis mix-up produces fields
that *look* plausible (right shape, right magnitude) but silently break
the discrete identities the solvers rely on.  Hypothesis drives random
smooth mesh deformations and random fields through three exact (up to
roundoff) identities:

* ``local_grad`` / ``local_grad_transpose`` adjointness under the plain
  discrete inner product (the matrix-transpose property of the tensor
  derivative);
* ``weak_gradient`` / ``weak_gradient_transpose`` adjointness -- ``cdtp``
  is by construction the discrete transpose of the weak gradient, the
  property that makes the pressure operator symmetric;
* ``ax_poisson`` symmetry, ``<u, A v> = <v, A u>``, on arbitrarily
  deformed (positive-Jacobian) elements.

The mesh deformation is a smooth global map applied to the corner
vertices, so elements stay conforming and the Jacobian stays positive for
the amplitudes drawn.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sem.mesh import box_mesh
from repro.sem.operators import (
    ax_poisson,
    divergence,
    local_grad,
    local_grad_transpose,
    weak_divergence,
    weak_gradient,
    weak_gradient_transpose,
)
from repro.sem.space import FunctionSpace

# Deformation amplitude bound: displacement gradient ~ amplitude * pi stays
# well below 1, keeping every element's Jacobian positive.
MAX_AMPLITUDE = 0.05


def deformed_space(seed: int, amplitude: float, lx: int = 4) -> FunctionSpace:
    """A 2x2x2-element unit box with a random smooth deformation."""
    mesh = box_mesh((2, 2, 2))
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=(3, 3))
    cc = mesh.corner_coords
    x, y, z = cc[..., 0].copy(), cc[..., 1].copy(), cc[..., 2].copy()
    for d in range(3):
        cc[..., d] += (
            amplitude
            * np.sin(np.pi * x + phases[d, 0])
            * np.sin(np.pi * y + phases[d, 1])
            * np.sin(np.pi * z + phases[d, 2])
        )
    space = FunctionSpace(mesh, lx)
    assert np.all(space.coef.jac > 0.0), "deformation inverted an element"
    return space


def random_field(space: FunctionSpace, rng: np.random.Generator) -> np.ndarray:
    return rng.normal(size=space.shape)


def assert_adjoint(lhs: float, rhs: float) -> None:
    scale = abs(lhs) + abs(rhs) + 1.0
    assert abs(lhs - rhs) <= 1e-10 * scale, f"{lhs} != {rhs}"


deformations = {
    "seed": st.integers(0, 2**32 - 1),
    "amplitude": st.floats(0.0, MAX_AMPLITUDE, allow_nan=False),
}


@settings(max_examples=15, deadline=None)
@given(**deformations)
def test_local_grad_transpose_is_the_adjoint(seed, amplitude):
    """<D u, w> = <u, D^T w> under the plain elementwise inner product."""
    space = deformed_space(seed, amplitude)
    rng = np.random.default_rng(seed ^ 0x5EED)
    u = random_field(space, rng)
    wr, ws, wt = (random_field(space, rng) for _ in range(3))

    ur, us, ut = local_grad(u, space.dx)
    lhs = float(np.sum(ur * wr) + np.sum(us * ws) + np.sum(ut * wt))
    rhs = float(np.sum(u * local_grad_transpose(wr, ws, wt, space.dx)))
    assert_adjoint(lhs, rhs)


@settings(max_examples=15, deadline=None)
@given(**deformations)
def test_weak_gradient_transpose_consistency(seed, amplitude):
    """``cdtp`` is the discrete transpose of the weak gradient.

    <v, (phi, grad p)> = <p, (grad phi, v)> for all fields -- the identity
    that couples the pressure gradient and the divergence constraint in
    the splitting scheme.
    """
    space = deformed_space(seed, amplitude)
    rng = np.random.default_rng(seed ^ 0xBEEF)
    p = random_field(space, rng)
    vx, vy, vz = (random_field(space, rng) for _ in range(3))

    gx, gy, gz = weak_gradient(p, space.coef, space.dx)
    lhs = float(np.sum(vx * gx) + np.sum(vy * gy) + np.sum(vz * gz))
    rhs = float(np.sum(p * weak_gradient_transpose(vx, vy, vz, space.coef, space.dx)))
    assert_adjoint(lhs, rhs)


@settings(max_examples=10, deadline=None)
@given(**deformations)
def test_weak_divergence_is_mass_weighted_divergence(seed, amplitude):
    """The collocated weak divergence is exactly ``B * div u``."""
    space = deformed_space(seed, amplitude)
    rng = np.random.default_rng(seed ^ 0xD1F)
    vx, vy, vz = (random_field(space, rng) for _ in range(3))

    weak = weak_divergence(vx, vy, vz, space.coef, space.dx)
    strong = divergence(vx, vy, vz, space.coef, space.dx)
    np.testing.assert_allclose(weak, space.coef.mass * strong, rtol=0, atol=1e-12)


@settings(max_examples=15, deadline=None)
@given(**deformations)
def test_ax_poisson_symmetry(seed, amplitude):
    """<u, A v> = <v, A u>: the stiffness matrix is symmetric on any
    deformed element (G is symmetric, A = D^T G D)."""
    space = deformed_space(seed, amplitude)
    rng = np.random.default_rng(seed ^ 0xA11CE)
    u = random_field(space, rng)
    v = random_field(space, rng)

    au = ax_poisson(u, space.coef, space.dx)
    av = ax_poisson(v, space.coef, space.dx)
    assert_adjoint(float(np.sum(u * av)), float(np.sum(v * au)))


def test_deformed_space_actually_deforms():
    """Guard the test fixture itself: a nonzero amplitude must move nodes."""
    flat = deformed_space(0, 0.0)
    bent = deformed_space(0, MAX_AMPLITUDE)
    assert not np.allclose(flat.x, bent.x)


def test_ax_poisson_positive_semidefinite_on_deformed_mesh():
    """<u, A u> >= 0 with equality only for constants (deterministic spot
    check complementing the randomized symmetry property)."""
    space = deformed_space(7, 0.04)
    rng = np.random.default_rng(7)
    u = random_field(space, rng)
    assert float(np.sum(u * ax_poisson(u, space.coef, space.dx))) > 0.0
    const = np.ones(space.shape)
    assert float(np.sum(const * ax_poisson(const, space.coef, space.dx))) == pytest.approx(
        0.0, abs=1e-9
    )


# -- contraction-variant equivalence and probe identities ---------------------
#
# The autotuner switches tensor contractions between the batched-matmul and
# per-axis einsum forms at runtime; these properties pin the two forms (and
# the fused geometric-factor path of ax_poisson/ax_helmholtz) to each other
# on random deformed meshes.  Probe evaluation rides the same batched
# contraction structure, so its polynomial-reproduction identities live here
# too.

from repro.sem.coef import (  # noqa: E402
    get_contraction_variant,
    set_contraction_variant,
    tensor_derivatives,
    tensor_derivatives_stacked,
)
from repro.sem.operators import ax_helmholtz  # noqa: E402
from repro.sem.probes import FieldProbes  # noqa: E402


@pytest.fixture
def restore_variant():
    """Leave the process-wide contraction variant as we found it."""
    before = get_contraction_variant()
    yield
    set_contraction_variant(before)


@settings(max_examples=10, deadline=None)
@given(**deformations)
def test_contraction_variants_agree_on_ax_poisson(seed, amplitude):
    """Batched (fused einsum) and per-axis variants produce the same A u."""
    space = deformed_space(seed, amplitude)
    rng = np.random.default_rng(seed ^ 0xC0DE)
    u = random_field(space, rng)
    before = get_contraction_variant()
    try:
        set_contraction_variant("batched")
        batched = ax_poisson(u, space.coef, space.dx)
        set_contraction_variant("axis")
        axis = ax_poisson(u, space.coef, space.dx)
    finally:
        set_contraction_variant(before)
    np.testing.assert_allclose(batched, axis, rtol=0, atol=1e-12 * np.abs(batched).max())


@settings(max_examples=10, deadline=None)
@given(**deformations)
def test_contraction_variants_agree_on_ax_helmholtz(seed, amplitude):
    space = deformed_space(seed, amplitude)
    rng = np.random.default_rng(seed ^ 0x4E1)
    u = random_field(space, rng)
    before = get_contraction_variant()
    try:
        set_contraction_variant("batched")
        batched = ax_helmholtz(u, space.coef, space.dx, 0.7, 3.0)
        set_contraction_variant("axis")
        axis = ax_helmholtz(u, space.coef, space.dx, 0.7, 3.0)
    finally:
        set_contraction_variant(before)
    np.testing.assert_allclose(batched, axis, rtol=0, atol=1e-12 * np.abs(batched).max())


def test_tensor_derivatives_stacked_matches_tuple_form(restore_variant):
    """The out=-staged stacked derivatives equal the tuple-returning form."""
    space = deformed_space(3, 0.03)
    rng = np.random.default_rng(3)
    u = random_field(space, rng)
    ur, us, ut = tensor_derivatives(u, space.dx)
    out = np.empty((3,) + u.shape)
    tensor_derivatives_stacked(u, space.dx, out)
    np.testing.assert_array_equal(out[0], ur)
    np.testing.assert_array_equal(out[1], us)
    np.testing.assert_array_equal(out[2], ut)


def test_g_stack_mirrors_components():
    """The fused G matrix is exactly the six symmetric components."""
    space = deformed_space(11, 0.04)
    g = space.coef.g_stack().reshape(3, 3, *space.shape)
    np.testing.assert_array_equal(g[0, 0], space.coef.g11)
    np.testing.assert_array_equal(g[1, 1], space.coef.g22)
    np.testing.assert_array_equal(g[2, 2], space.coef.g33)
    np.testing.assert_array_equal(g[0, 1], space.coef.g12)
    np.testing.assert_array_equal(g[1, 0], space.coef.g12)
    np.testing.assert_array_equal(g[0, 2], space.coef.g13)
    np.testing.assert_array_equal(g[1, 2], space.coef.g23)
    # And it is cached: same object on repeated access.
    assert space.coef.g_stack() is space.coef.g_stack()


@settings(max_examples=8, deadline=None)
@given(**deformations)
def test_probe_reproduces_polynomials_on_deformed_mesh(seed, amplitude):
    """Probing a polynomial of degree < lx is exact anywhere in the mesh.

    The batched-matmul evaluation path must reproduce any field in the
    polynomial space exactly (up to roundoff); a trilinear-with-cross-terms
    polynomial exercises every tensor axis.
    """
    space = deformed_space(seed, amplitude)
    rng = np.random.default_rng(seed ^ 0x9807)

    def poly(x, y, z):
        return 1.5 - 0.3 * x + 0.8 * y * z + 0.25 * x * y * z + 0.5 * z**2

    field = poly(space.x, space.y, space.z)
    pts = rng.uniform(0.12, 0.88, size=(7, 3))
    probes = FieldProbes(space, pts)
    vals = probes.evaluate(field)
    expect = poly(pts[:, 0], pts[:, 1], pts[:, 2])
    np.testing.assert_allclose(vals, expect, rtol=0, atol=1e-9)


def test_probe_geometry_inversion_roundtrip():
    """x(rst(p)) == p: the batched Newton geometry evaluation is consistent."""
    space = deformed_space(5, 0.05)
    rng = np.random.default_rng(5)
    pts = rng.uniform(0.1, 0.9, size=(5, 3))
    probes = FieldProbes(space, pts)
    assert probes.n_found == 5
    for ip in range(5):
        e = int(probes.element[ip])
        pos, jac = probes._geom_at(e, probes.rst[ip])
        np.testing.assert_allclose(pos, pts[ip], atol=1e-8)
        # The element map must stay orientation-preserving.
        assert np.linalg.det(jac) > 0.0


def test_probe_coordinate_fields_roundtrip():
    """Probing the coordinate fields returns the probe coordinates."""
    space = deformed_space(9, 0.02)
    pts = np.array([[0.2, 0.3, 0.7], [0.9, 0.1, 0.4]])
    probes = FieldProbes(space, pts)
    np.testing.assert_allclose(probes.evaluate(space.x), pts[:, 0], atol=1e-9)
    np.testing.assert_allclose(probes.evaluate(space.y), pts[:, 1], atol=1e-9)
    np.testing.assert_allclose(probes.evaluate(space.z), pts[:, 2], atol=1e-9)
