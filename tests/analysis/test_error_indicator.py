"""Tests for the spectral error indicator."""

import numpy as np
import pytest

from repro.analysis.error_indicator import spectral_error_indicator, underresolved_elements
from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def sp():
    return FunctionSpace(box_mesh((2, 2, 1)), 7)


class TestSpectralErrorIndicator:
    def test_smooth_field_resolved(self, sp):
        f = np.sin(np.pi * sp.x) * np.cos(np.pi * sp.y)
        ind = spectral_error_indicator(f)
        assert ind["resolved"].all()
        assert np.all(ind["error_fraction"] < 0.02)
        assert np.all(ind["decay_rate"] > 0.5)

    def test_rough_field_flagged(self, sp):
        rng = np.random.default_rng(0)
        f = rng.normal(size=sp.shape)  # white in modal space
        ind = spectral_error_indicator(f)
        assert np.all(ind["error_fraction"] > 0.05)
        assert np.all(ind["decay_rate"] < 0.5)

    def test_mixed_resolution_localized(self, sp):
        f = np.sin(np.pi * sp.x)
        rng = np.random.default_rng(1)
        f[0] += 0.5 * rng.normal(size=f[0].shape)  # pollute one element
        bad = underresolved_elements(f, error_threshold=0.05)
        assert 0 in bad
        assert len(bad) < sp.nelv

    def test_tail_validation(self, sp):
        with pytest.raises(ValueError):
            spectral_error_indicator(np.ones(sp.shape), tail=1)

    def test_constant_field_resolved(self, sp):
        ind = spectral_error_indicator(np.full(sp.shape, 2.5))
        assert np.all(ind["error_fraction"] < 1e-10)

    def test_indicator_monotone_in_roughness(self, sp):
        smooth = np.sin(np.pi * sp.x)
        rough = np.sin(5.5 * np.pi * sp.x * sp.y)
        e_s = spectral_error_indicator(smooth)["error_fraction"].mean()
        e_r = spectral_error_indicator(rough)["error_fraction"].mean()
        assert e_r > e_s
