"""Tests for regime fits, the GL model, spectra and profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    GrossmannLohse,
    UltimateExtension,
    classical_nu,
    detect_crossover,
    energy_spectrum,
    fit_power_law,
    kolmogorov_scale,
    local_exponents,
    mean_profile,
    sample_uniform_box,
    thermal_bl_thickness,
    ultimate_nu,
)
from repro.analysis.spectra import resolution_ratio
from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace


class TestPowerLawFits:
    def test_exact_recovery(self):
        ra = np.logspace(6, 12, 13)
        nu = 0.07 * ra**0.31
        fit = fit_power_law(ra, nu)
        assert fit.exponent == pytest.approx(0.31, abs=1e-10)
        assert fit.prefactor == pytest.approx(0.07, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_prediction(self):
        ra = np.logspace(6, 10, 9)
        fit = fit_power_law(ra, classical_nu(ra))
        assert np.allclose(fit.predict(ra), classical_nu(ra), rtol=1e-9)

    def test_noise_stderr(self):
        rng = np.random.default_rng(0)
        ra = np.logspace(6, 12, 25)
        nu = 0.05 * ra ** (1 / 3) * np.exp(0.02 * rng.normal(size=25))
        fit = fit_power_law(ra, nu)
        assert abs(fit.exponent - 1 / 3) < 3 * fit.exponent_stderr + 1e-3
        assert fit.exponent_stderr > 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1e6], [10.0])
        with pytest.raises(ValueError):
            fit_power_law([1e6, -1], [10.0, 20.0])

    def test_local_exponents_constant_for_pure_law(self):
        ra = np.logspace(6, 14, 17)
        _, gamma = local_exponents(ra, classical_nu(ra))
        assert np.allclose(gamma, 1 / 3, atol=1e-10)

    def test_crossover_detection(self):
        ra = np.logspace(8, 17, 37)
        nu = np.maximum(classical_nu(ra), ultimate_nu(ra, prefactor=0.04))
        cx = detect_crossover(ra, nu)
        assert cx is not None
        assert 1e12 < cx < 1e16

    def test_no_crossover_in_classical_data(self):
        ra = np.logspace(8, 15, 15)
        assert detect_crossover(ra, classical_nu(ra)) is None


class TestGLModel:
    @pytest.fixture(scope="class")
    def gl(self):
        return GrossmannLohse()

    def test_literature_values(self, gl):
        # GL-2013 prefactors give Nu(1e8, Pr=1) ~ 32 and Nu(1e9) ~ 64.
        nu8, re8 = gl.solve(1e8, 1.0)
        assert 25 < nu8 < 40
        assert 800 < re8 < 2500
        nu9, _ = gl.solve(1e9, 1.0)
        assert 1.7 < nu9 / nu8 < 2.3  # effective exponent near 0.3

    def test_monotone_in_ra(self, gl):
        ras = np.logspace(5, 14, 10)
        nus = gl.nusselt(ras)
        assert np.all(np.diff(nus) > 0)

    def test_effective_exponent_classical(self, gl):
        ras = np.logspace(9, 14, 11)
        _, gamma = local_exponents(ras, gl.nusselt(ras))
        assert np.all(gamma > 0.28)
        assert np.all(gamma < 0.35)

    def test_prandtl_dependence(self, gl):
        nu_lo, _ = gl.solve(1e8, 0.7)
        nu_hi, _ = gl.solve(1e8, 7.0)
        # Weak Pr dependence around Pr ~ 1.
        assert 0.5 < nu_lo / nu_hi < 2.0

    def test_invalid_inputs(self, gl):
        with pytest.raises(ValueError):
            gl.solve(10.0)
        with pytest.raises(ValueError):
            gl.solve(1e8, -1.0)

    def test_ultimate_extension_crossover(self):
        ue = UltimateExtension()
        cx = ue.crossover_ra()
        assert 1e13 < cx < 1e15
        ras = np.logspace(10, 17, 29)
        nus = ue.nusselt(ras)
        _, gamma = local_exponents(ras, nus)
        # Classical at the low end, approaching 1/2-ish at the high end.
        assert gamma[0] < 0.36
        assert gamma[-1] > 0.42

    def test_extension_reduces_to_gl_at_low_ra(self):
        ue = UltimateExtension()
        ra = np.array([1e9])
        assert ue.nusselt(ra)[0] == pytest.approx(ue.gl.nusselt(ra)[0], rel=0.02)


class TestSpectra:
    def test_sample_uniform_box_exact_for_polynomials(self):
        n_el = (2, 2, 2)
        sp = FunctionSpace(box_mesh(n_el), 5)
        f = sp.x**2 * sp.y + sp.z
        samp = sample_uniform_box(sp, f, (8, 8, 8), n_el)
        xs = (np.arange(8) + 0.5) / 8
        x3, y3, z3 = np.meshgrid(xs, xs, xs, indexing="ij")
        expect = x3**2 * y3 + z3  # note: out[kz, jy, ix]
        expect = np.transpose(expect, (2, 1, 0))
        assert np.allclose(samp, expect, atol=1e-10)

    def test_single_mode_spectrum(self):
        n_el = (2, 2, 2)
        sp = FunctionSpace(box_mesh(n_el), 7)
        f = np.sin(2 * np.pi * 3 * sp.x)
        samp = sample_uniform_box(sp, f, (32, 32, 32), n_el)
        k, ek = energy_spectrum(samp)
        peak = k[np.argmax(ek)]
        assert peak == pytest.approx(3.0, abs=0.6)

    def test_spectrum_parseval(self):
        rng = np.random.default_rng(1)
        u = rng.normal(size=(16, 16, 16))
        k, ek = energy_spectrum(u)
        # Total spectral energy is bounded by the field variance.
        assert np.sum(ek) <= 0.5 * np.mean(u**2) * 1.001

    def test_non_cubic_rejected(self):
        with pytest.raises(ValueError):
            energy_spectrum(np.zeros((4, 4, 8)))

    def test_kolmogorov_scaling(self):
        # eta/H shrinks ~ Ra^{-(1+gamma)/4}: ~Ra^{-1/3} on the classical
        # branch (gamma ~ 0.31), reaching the paper's Ra^{-3/8} only for
        # ultimate gamma = 1/2.
        gl = GrossmannLohse()
        ra1, ra2 = 1e8, 1e12
        eta1 = kolmogorov_scale(ra1, 1.0, gl.solve(ra1)[0])
        eta2 = kolmogorov_scale(ra2, 1.0, gl.solve(ra2)[0])
        measured = np.log(eta1 / eta2) / np.log(ra2 / ra1)
        assert measured == pytest.approx((1 + 0.31) / 4, abs=0.02)
        # Ultimate branch: gamma = 1/2 gives exactly 3/8.
        nu_ult = ultimate_nu(np.array([ra1, ra2]), log_correction=False)
        e1 = kolmogorov_scale(ra1, 1.0, nu_ult[0])
        e2 = kolmogorov_scale(ra2, 1.0, nu_ult[1])
        assert np.log(e1 / e2) / np.log(ra2 / ra1) == pytest.approx(3.0 / 8.0, abs=1e-3)

    def test_resolution_ratio_at_1e15(self):
        # The paper's case: 37B grid points ~ (H/eta)^3 within an order.
        gl = GrossmannLohse()
        ratio = resolution_ratio(1e15, 1.0, gl.solve(1e15)[0])
        assert 2e3 < ratio < 5e4

    def test_conduction_state_infinite_eta(self):
        assert kolmogorov_scale(1e8, 1.0, 1.0) == np.inf


class TestProfiles:
    def test_mean_profile_conduction(self):
        sp = FunctionSpace(box_mesh((2, 2, 3), grading=(0, 0, 1.5)), 5)
        t = 0.5 - sp.z
        z, prof = mean_profile(sp, t)
        assert np.all(np.diff(z) > 0)
        assert np.allclose(prof, 0.5 - z, atol=1e-12)

    def test_mean_profile_removes_horizontal_variation(self):
        sp = FunctionSpace(box_mesh((2, 2, 2)), 5)
        t = np.sin(2 * np.pi * sp.x) * np.cos(2 * np.pi * sp.y) + sp.z
        z, prof = mean_profile(sp, t)
        assert np.allclose(prof, z, atol=1e-10)

    def test_bl_thickness_tanh_profile(self):
        # T = 0.5 tanh((0.05 - z)/0.02) style profile near the bottom wall:
        # analytic tangent-intersection thickness is computable.
        z = np.linspace(0, 1, 401)
        delta = 0.05
        t = 0.5 * (1 - z / delta)
        t[z > delta] = 0.0
        lam = thermal_bl_thickness(z, 0.5 * np.ones_like(z) * 0 + t, wall="bottom")
        assert lam == pytest.approx(delta, rel=0.05)

    def test_bl_thickness_both_walls_symmetric(self):
        z = np.linspace(0, 1, 801)
        d = 0.03
        t = np.where(z < d, 0.5 * (1 - z / d), 0.0)
        t = t - np.where(z > 1 - d, 0.5 * (1 - (1 - z) / d), 0.0)
        bot = thermal_bl_thickness(z, t, "bottom")
        top = thermal_bl_thickness(z, t, "top")
        assert bot == pytest.approx(top, rel=1e-6)
        assert bot == pytest.approx(d, rel=0.05)

    def test_invalid_wall(self):
        with pytest.raises(ValueError):
            thermal_bl_thickness(np.linspace(0, 1, 10), np.linspace(0.5, -0.5, 10), "left")


@settings(max_examples=20, deadline=None)
@given(
    gamma=st.floats(min_value=0.2, max_value=0.6),
    pref=st.floats(min_value=0.01, max_value=1.0),
)
def test_property_fit_recovers_any_power_law(gamma, pref):
    ra = np.logspace(6, 14, 9)
    fit = fit_power_law(ra, pref * ra**gamma)
    assert fit.exponent == pytest.approx(gamma, abs=1e-8)
    assert fit.prefactor == pytest.approx(pref, rel=1e-6)
