"""Tests for derived fields (vorticity, Q) and energy budgets."""

import numpy as np
import pytest

from repro.analysis.derived import (
    enstrophy,
    kinetic_energy_budget,
    q_criterion,
    vorticity,
)
from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def sp():
    return FunctionSpace(box_mesh((2, 2, 2)), 6)


class TestVorticity:
    def test_solid_body_rotation(self, sp):
        # u = (-y, x, 0): omega = (0, 0, 2).
        wx, wy, wz = vorticity(sp, -sp.y, sp.x, np.zeros(sp.shape))
        assert np.allclose(wz, 2.0, atol=1e-9)
        assert np.allclose(wx, 0.0, atol=1e-9)

    def test_irrotational_flow(self, sp):
        # u = grad(x^2 - y^2) = (2x, -2y, 0): zero vorticity.
        wx, wy, wz = vorticity(sp, 2 * sp.x, -2 * sp.y, np.zeros(sp.shape))
        for w in (wx, wy, wz):
            assert np.allclose(w, 0.0, atol=1e-9)

    def test_output_continuous(self, sp):
        rng = np.random.default_rng(0)
        u = sp.project_continuous(rng.normal(size=sp.shape))
        wx, _, _ = vorticity(sp, u, u, u)
        assert np.allclose(sp.gs.average(wx), wx, atol=1e-10)


class TestQCriterion:
    def test_positive_in_rotation(self, sp):
        q = q_criterion(sp, -sp.y, sp.x, np.zeros(sp.shape))
        assert np.all(q > 0.5)  # exact Q = 1 for this flow

    def test_negative_in_pure_strain(self, sp):
        q = q_criterion(sp, sp.x, -sp.y, np.zeros(sp.shape))
        assert np.all(q < -0.5)  # exact Q = -1

    def test_zero_in_uniform_flow(self, sp):
        q = q_criterion(sp, np.ones(sp.shape), np.zeros(sp.shape), np.zeros(sp.shape))
        assert np.allclose(q, 0.0, atol=1e-10)


class TestEnstrophy:
    def test_solid_body_value(self, sp):
        # |omega| = 2 -> 0.5 * 4 * V = 2.
        e = enstrophy(sp, -sp.y, sp.x, np.zeros(sp.shape))
        assert e == pytest.approx(2.0, rel=1e-10)

    def test_zero_for_potential_flow(self, sp):
        e = enstrophy(sp, 2 * sp.x, -2 * sp.y, np.zeros(sp.shape))
        assert e == pytest.approx(0.0, abs=1e-12)


class TestEnergyBudget:
    def test_production_sign(self, sp):
        uz = np.sin(np.pi * sp.z) * np.ones(sp.shape)
        t = 0.2 * np.sin(np.pi * sp.z)
        b = kinetic_energy_budget(sp, np.zeros(sp.shape), np.zeros(sp.shape),
                                  uz, t, 1e5, 1.0)
        assert b.production > 0

    def test_dissipation_positive(self, sp):
        rng = np.random.default_rng(1)
        u = sp.project_continuous(rng.normal(size=sp.shape))
        b = kinetic_energy_budget(sp, u, u, u, np.zeros(sp.shape), 1e5, 1.0)
        assert b.dissipation > 0
        assert b.kinetic_energy > 0

    def test_exact_dissipation_relation_field(self, sp):
        b = kinetic_energy_budget(sp, sp.x * 0, sp.x * 0, sp.x * 0,
                                  np.zeros(sp.shape), 1e6, 1.0, nusselt=10.0)
        assert b.dissipation_from_nusselt == pytest.approx(9.0 / 1e3)

    def test_balance_in_steady_convection(self):
        # Run a short DNS into (quasi) steady convection and check the
        # budget closes within a modest tolerance (coarse resolution).
        from repro.core import Simulation, rbc_box_case
        from repro.core.statistics import nusselt_volume

        cfg = rbc_box_case(5e4, n=(3, 3, 3), lx=5, aspect=2.0, dt=2e-2,
                           perturbation_amplitude=0.1)
        sim = Simulation(cfg)
        sim.run(n_steps=350)
        ux, uy, uz = sim.velocity
        nu = nusselt_volume(sim.space, uz, sim.temperature, 5e4, 1.0)
        b = kinetic_energy_budget(sim.space, ux, uy, uz, sim.temperature,
                                  5e4, 1.0, nusselt=nu)
        # P ~ eps within 40% (instantaneous, coarse grid).
        assert b.balance_residual < 0.4
        # And eps consistent with the exact Nusselt relation within 50%.
        ratio = b.dissipation / b.dissipation_from_nusselt
        assert 0.5 < ratio < 1.6
