"""Tests for the machine, network and scaling models."""

import pytest

from repro.perfmodel import (
    LEONARDO,
    LUMI,
    NetworkModel,
    SEMWorkModel,
    StrongScalingStudy,
    platform_table,
    walltime_breakdown,
)
from repro.perfmodel.breakdown import render_breakdown


class TestMachineSpecs:
    def test_table1_values(self):
        # Straight from the paper's Table 1.
        assert LUMI.peak_tflops_table == 47.9
        assert LUMI.peak_bw_table == 3300.0
        assert LUMI.interconnect == "HPE Slingshot 11"
        assert LUMI.mpi == "Cray MPICH 8.1.18"
        assert LUMI.runtime == "ROCm 5.2.3"
        assert LEONARDO.peak_tflops_table == 9.7
        assert LEONARDO.peak_bw_table == 1550.0
        assert LEONARDO.n_logical_gpus == 13824
        assert LEONARDO.compiler == "GCC 8.5.0"
        assert LEONARDO.runtime == "CUDA 11.8"

    def test_rank_and_rmax(self):
        assert LUMI.top500_rank_nov22 == 3
        assert LEONARDO.top500_rank_nov22 == 4
        assert LUMI.rmax_pflops > LEONARDO.rmax_pflops

    def test_lumi_gcd_counting(self):
        # 16384 GCDs = 80% of the machine (the paper's largest run).
        assert 16384 / LUMI.n_logical_gpus == pytest.approx(0.80)
        # Leonardo runs used 25% and 50%.
        assert 3456 / LEONARDO.n_logical_gpus == pytest.approx(0.25)
        assert 6912 / LEONARDO.n_logical_gpus == pytest.approx(0.50)

    def test_machine_balance(self):
        # Both machines are strongly bandwidth-starved per flop (< 0.2 B/F),
        # the paper's argument for matrix-free methods.
        assert LUMI.machine_balance_bytes_per_flop < 0.2
        assert LEONARDO.machine_balance_bytes_per_flop < 0.2

    def test_platform_table_contains_rows(self):
        txt = platform_table()
        for token in ("LUMI", "Leonardo", "Slingshot", "Cray MPICH", "CUDA 11.8", "47.9"):
            assert token in txt


class TestNetworkModel:
    def test_message_latency_floor(self):
        net = NetworkModel(LUMI)
        assert net.message_us(0) == pytest.approx(net.alpha_us)

    def test_message_bandwidth_term(self):
        net = NetworkModel(LUMI)
        t_small = net.message_us(1e3)
        t_big = net.message_us(1e7)
        assert t_big > t_small * 10

    def test_allreduce_grows_logarithmically(self):
        net = NetworkModel(LUMI)
        t1k = net.allreduce_us(1024)
        t16k = net.allreduce_us(16384)
        assert t16k > t1k
        # log growth: 16x more ranks adds a constant, not a factor.
        assert t16k < 2 * t1k

    def test_allreduce_magnitude(self):
        # 8-byte allreduce at 16k ranks on Slingshot: O(10-20 us).
        net = NetworkModel(LUMI)
        assert 5.0 < net.allreduce_us(16384) < 40.0

    def test_single_rank_no_cost(self):
        net = NetworkModel(LUMI)
        assert net.allreduce_us(1) == 0.0

    def test_halo_intra_node_discount(self):
        full_nic = NetworkModel(LUMI, intra_node_fraction=0.0)
        blended = NetworkModel(LUMI)
        assert blended.halo_exchange_us(1e6) < full_nic.halo_exchange_us(1e6)


class TestWorkModel:
    def test_traffic_scales_linearly_with_elements(self):
        w = SEMWorkModel()
        m1, c1 = w.pressure_traffic(1000)
        m2, c2 = w.pressure_traffic(2000)
        assert m2 == pytest.approx(2 * m1)
        assert c2 == pytest.approx(2 * c1)

    def test_schwarz_extended_arrays_cost_more(self):
        w = SEMWorkModel(lx=8)
        assert w.schwarz_passes() > 11.0

    def test_step_costs_structure(self):
        w = SEMWorkModel()
        net = NetworkModel(LUMI)
        costs = w.step_costs(7000, LUMI.device, net, 16384)
        assert set(costs) >= {"pressure", "velocity", "temperature", "advection"}
        for c in costs.values():
            assert c.compute_us >= 0 and c.halo_us >= 0

    def test_overlap_reduces_pressure_time(self):
        net = NetworkModel(LUMI)
        w_on = SEMWorkModel(overlap_preconditioner=True)
        w_off = SEMWorkModel(overlap_preconditioner=False)
        t_on = w_on.step_time_us(7000, LUMI.device, net, 16384)
        t_off = w_off.step_time_us(7000, LUMI.device, net, 16384)
        assert t_on < t_off


class TestScaling:
    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            StrongScalingStudy(LUMI).time_per_step(0)

    def test_fig3_lumi_near_perfect(self):
        pts = StrongScalingStudy(LUMI).paper_series()
        assert [p.n_gpus for p in pts] == [4096, 8192, 16384]
        # Paper: "close to perfect parallel efficiency".
        assert pts[-1].parallel_efficiency > 0.85
        assert pts[1].parallel_efficiency > 0.92
        # < 7000 elements per logical GPU at the largest run.
        assert pts[-1].elements_per_gpu < 7000

    def test_fig3_leonardo_near_perfect(self):
        pts = StrongScalingStudy(LEONARDO).paper_series()
        assert [p.n_gpus for p in pts] == [3456, 6912]
        assert pts[-1].parallel_efficiency > 0.9

    def test_overlap_ablation_degrades_efficiency(self):
        on = StrongScalingStudy(LUMI).paper_series()
        off = StrongScalingStudy(
            LUMI, work=SEMWorkModel(overlap_preconditioner=False)
        ).paper_series()
        assert off[-1].parallel_efficiency < on[-1].parallel_efficiency - 0.05

    def test_times_decrease_with_gpus(self):
        pts = StrongScalingStudy(LUMI).sweep([2048, 4096, 8192, 16384])
        ts = [p.time_per_step_s for p in pts]
        assert all(a > b for a, b in zip(ts, ts[1:]))

    def test_render(self):
        st = StrongScalingStudy(LUMI)
        txt = st.render(st.sweep([4096, 8192]))
        assert "LUMI" in txt and "efficiency" in txt


class TestBreakdown:
    def test_fig4_pressure_dominates(self):
        fr = walltime_breakdown(LUMI, 16384)
        assert fr["pressure"] > 0.85  # the paper's ">85%"
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_breakdown_orders(self):
        fr = walltime_breakdown(LUMI, 16384)
        assert fr["pressure"] > fr["velocity"] > fr["temperature"]

    def test_render_breakdown(self):
        txt = render_breakdown(walltime_breakdown(LEONARDO, 6912), "Leonardo")
        assert "pressure" in txt and "%" in txt
