"""Graceful in-situ degradation: deadlock-free drain, retry, quarantine."""

import threading

import numpy as np
import pytest

from repro.insitu import InSituPipeline, Processor


class Collector(Processor):
    name = "collect"

    def __init__(self):
        self.items = []
        self.finalized = False

    def process(self, tag, array, sim_time):
        self.items.append((tag, array.copy(), sim_time))

    def finalize(self):
        self.finalized = True


class AlwaysFails(Processor):
    name = "boom"

    def __init__(self):
        self.calls = 0
        self.finalized = False

    def process(self, tag, array, sim_time):
        self.calls += 1
        raise RuntimeError("bad")

    def finalize(self):
        self.finalized = True


class FailsFirstN(Processor):
    name = "flaky"

    def __init__(self, n):
        self.n = n
        self.calls = 0
        self.processed = 0

    def process(self, tag, array, sim_time):
        self.calls += 1
        if self.calls <= self.n:
            raise RuntimeError("transient")
        self.processed += 1


class TestDeadlockFix:
    def test_producer_released_after_processor_error(self):
        """A failing processor must not leave the producer blocked on a
        full queue: the worker keeps draining and counts the items."""
        boom = AlwaysFails()
        pipe = InSituPipeline([boom], max_queue=1, quarantine_after=100).open()

        def produce():
            for _ in range(20):
                pipe.put("x", np.zeros(4))

        t = threading.Thread(target=produce)
        t.start()
        t.join(timeout=10.0)
        assert not t.is_alive(), "producer deadlocked behind a failed processor"
        with pytest.raises(RuntimeError, match="in-situ processor failed"):
            pipe.close()
        assert pipe.stats.dropped == 20
        assert pipe.stats.processor_failures["boom"] == 20

    def test_close_finalizes_healthy_before_reraising(self):
        boom = AlwaysFails()
        good = Collector()
        pipe = InSituPipeline([boom, good], quarantine_after=100).open()
        pipe.put("x", np.ones(2))
        with pytest.raises(RuntimeError, match="in-situ processor failed"):
            pipe.close()
        assert good.finalized
        assert good.items  # the healthy processor still received the data


class TestQuarantine:
    def test_failing_processor_quarantined_healthy_keep_serving(self):
        boom = AlwaysFails()
        good = Collector()
        pipe = InSituPipeline([boom, good], quarantine_after=2, strict=False).open()
        for i in range(6):
            pipe.put("x", np.full(2, float(i)))
        stats = pipe.close()
        # Quarantined after 2 consecutive failures; never called again.
        assert boom.calls == 2
        assert pipe.quarantined == {"boom"}
        assert stats.quarantined == ["boom"]
        assert stats.processor_failures["boom"] == 2
        # The healthy processor saw every snapshot.
        assert len(good.items) == 6
        assert good.finalized
        # Quarantined processors are not finalized (their state is suspect).
        assert not boom.finalized

    def test_non_strict_close_returns_stats(self):
        pipe = InSituPipeline([AlwaysFails()], quarantine_after=1, strict=False).open()
        pipe.put("x", np.zeros(1))
        stats = pipe.close()  # does not raise
        assert stats.quarantined == ["boom"]
        assert pipe.error is not None

    def test_success_resets_consecutive_count(self):
        class FailsEveryOther(Processor):
            name = "alternating"

            def __init__(self):
                self.calls = 0

            def process(self, tag, array, sim_time):
                self.calls += 1
                if self.calls % 2 == 1:
                    raise RuntimeError("odd call")

        p = FailsEveryOther()
        pipe = InSituPipeline([p], quarantine_after=2, strict=False).open()
        for _ in range(8):
            pipe.put("x", np.zeros(1))
        stats = pipe.close()
        # Never two consecutive failures, so never quarantined.
        assert stats.quarantined == []
        assert p.calls == 8


class TestRetryBackoff:
    def test_retry_recovers_transient_failure(self):
        flaky = FailsFirstN(1)
        sleeps = []
        pipe = InSituPipeline(
            [flaky], retries=2, backoff=0.5, sleep=sleeps.append, strict=False
        ).open()
        pipe.put("x", np.ones(3))
        stats = pipe.close()
        assert flaky.processed == 1  # second attempt succeeded
        assert stats.retries == 1
        assert sleeps == [0.5]
        assert stats.dropped == 0
        assert stats.quarantined == []

    def test_backoff_is_exponential_with_injected_clock(self):
        flaky = FailsFirstN(3)
        sleeps = []
        pipe = InSituPipeline(
            [flaky],
            retries=3,
            backoff=0.1,
            backoff_base=2.0,
            sleep=sleeps.append,
            strict=False,
        ).open()
        pipe.put("x", np.ones(1))
        pipe.close()
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])
        assert flaky.processed == 1

    def test_zero_backoff_never_sleeps(self):
        sleeps = []
        pipe = InSituPipeline(
            [FailsFirstN(1)], retries=1, sleep=sleeps.append, strict=False
        ).open()
        pipe.put("x", np.ones(1))
        pipe.close()
        assert sleeps == []


class TestStatsAccounting:
    def test_partial_failure_counts_item_dropped(self):
        boom = AlwaysFails()
        good = Collector()
        pipe = InSituPipeline([boom, good], quarantine_after=100, strict=False).open()
        pipe.put("x", np.zeros(1))
        stats = pipe.close()
        assert stats.dropped == 1  # not fully processed
        assert len(good.items) == 1

    def test_all_quarantined_items_count_dropped(self):
        pipe = InSituPipeline([AlwaysFails()], quarantine_after=1, strict=False).open()
        for _ in range(5):
            pipe.put("x", np.zeros(1))
        stats = pipe.close()
        # 1 failure then quarantine; remaining items have no active consumer.
        assert stats.dropped == 5

    def test_summary_mentions_quarantine(self):
        pipe = InSituPipeline([AlwaysFails()], quarantine_after=1, strict=False).open()
        pipe.put("x", np.zeros(1))
        stats = pipe.close()
        assert "quarantined: boom" in stats.summary()
        assert "1 failures" in stats.summary()
