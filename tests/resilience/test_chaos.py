"""The chaos harness: campaign coverage, survival, replay, reporting."""

import json

import pytest

from repro.resilience.chaos import (
    ChaosHarness,
    ChaosScenario,
    campaign_to_dict,
    default_campaign,
    render_report,
    write_json_report,
)
from repro.resilience.chaos.__main__ import main as chaos_main
from repro.resilience.faults import Fault, FaultInjector


class TestCampaignCatalogue:
    def test_at_least_eight_scenarios(self):
        assert len(default_campaign()) >= 8

    def test_names_unique(self):
        names = [s.name for s in default_campaign()]
        assert len(set(names)) == len(names)

    def test_covers_all_required_fault_families(self):
        kinds = set()
        for s in default_campaign():
            kinds.update(s.fault_kinds())
        # Rank kill, message drop, message delay, SDC bit flip.
        assert {"rank_failure", "drop", "delay", "collective_sdc"} <= kinds
        assert "corrupt" in kinds  # p2p SDC flavour too

    def test_both_recovery_policies_exercised(self):
        policies = {s.policy for s in default_campaign() if s.expect_recoveries}
        assert policies == {"warm_replace", "shrink"}


class TestScenarioRuns:
    def test_rank_kill_scenario_survives(self):
        harness = ChaosHarness(seed=11)
        scenario = ChaosScenario(
            name="kill",
            description="one rank death",
            schedule=(Fault("rank_failure", rank=1, at_call=40, op="allreduce"),),
            expect_recoveries=1,
        )
        result = harness.run_scenario(scenario)
        assert result.survived
        assert result.recoveries == 1
        assert result.nu_error <= harness.tol
        assert result.faults_fired == 1

    def test_unmet_recovery_expectation_fails_scenario(self):
        harness = ChaosHarness(seed=11)
        scenario = ChaosScenario(
            name="nothing-happens",
            description="no faults but one recovery expected",
            expect_recoveries=1,
        )
        result = harness.run_scenario(scenario)
        assert not result.survived
        assert result.recoveries == 0

    def test_scenario_runs_are_reproducible(self):
        def run():
            harness = ChaosHarness(seed=23)
            scenario = ChaosScenario(
                name="storm",
                description="drop storm",
                drop_rate=0.1,
                n_steps=3,
            )
            r = harness.run_scenario(scenario, index=2)
            return (r.nu_faulted, r.faults_fired, r.retransmissions, r.replay["events"])

        assert run() == run()

    def test_replay_log_rebuilds_identical_injector(self):
        harness = ChaosHarness(seed=7)
        scenario = ChaosScenario(
            name="targeted",
            description="targeted drop",
            schedule=(Fault("drop", at_call=50),),
            n_steps=2,
        )
        result = harness.run_scenario(scenario, index=3)
        rebuilt = FaultInjector.from_replay(result.replay)
        assert rebuilt.seed == harness.seed + 3
        assert [f.kind for f in rebuilt.schedule] == ["drop"]
        assert rebuilt.events == []  # fresh injector, history not replayed

    def test_harness_metrics_registered_names_only(self):
        from repro.observability.phases import is_registered_metric, is_registered_span

        harness = ChaosHarness(seed=5)
        harness.run_scenario(
            ChaosScenario(name="plain", description="fault-free", n_steps=2)
        )
        snapshot = harness.metrics.snapshot()
        assert snapshot  # counters were recorded
        assert all(is_registered_metric(name) for name in snapshot)
        assert all(
            is_registered_span(root.name) for root in harness.tracer.roots
        )


class TestCampaign:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        harness = ChaosHarness(seed=31)
        scenarios = [
            ChaosScenario(
                name="kill-warm",
                description="rank death, warm replace",
                schedule=(Fault("rank_failure", rank=2, at_call=40, op="allreduce"),),
                expect_recoveries=1,
                n_steps=4,
            ),
            ChaosScenario(
                name="drop-storm",
                description="message drops",
                drop_rate=0.1,
                n_steps=4,
            ),
            ChaosScenario(
                name="kill-shrink",
                description="rank death, shrink",
                schedule=(Fault("rank_failure", rank=1, at_call=40, op="allreduce"),),
                policy="shrink",
                expect_recoveries=1,
                n_steps=4,
            ),
        ]
        return harness.run_campaign(scenarios)

    def test_all_scenarios_survive(self, small_campaign):
        assert small_campaign.all_survived
        assert small_campaign.survived == 3

    def test_mttr_aggregation(self, small_campaign):
        assert small_campaign.total_recoveries == 2
        assert small_campaign.mttr_steps == (
            small_campaign.total_steps_replayed / small_campaign.total_recoveries
        )

    def test_report_renders_every_scenario(self, small_campaign):
        text = render_report(small_campaign)
        for name in ("kill-warm", "drop-storm", "kill-shrink"):
            assert name in text
        assert "3/3 scenarios survived" in text
        assert "MTTR" in text

    def test_json_report_round_trips(self, small_campaign, tmp_path):
        path = write_json_report(small_campaign, tmp_path / "campaign.json")
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        assert data == campaign_to_dict(small_campaign)
        assert data["all_survived"] is True
        assert len(data["results"]) == 3
        # Every row embeds a replayable injector record.
        assert all("seed" in r["replay"] for r in data["results"])

    def test_duplicate_scenario_names_rejected(self):
        harness = ChaosHarness(seed=1)
        s = ChaosScenario(name="dup", description="x", n_steps=1)
        with pytest.raises(ValueError, match="unique"):
            harness.run_campaign([s, s])


class TestCli:
    def test_single_scenario_run_exits_zero(self, tmp_path, capsys):
        code = chaos_main(
            [
                "--only",
                "targeted-drop",
                "--steps",
                "3",
                "--json",
                str(tmp_path / "report.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1/1 scenarios survived" in out
        assert (tmp_path / "report.json").exists()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            chaos_main(["--only", "no-such-scenario"])
