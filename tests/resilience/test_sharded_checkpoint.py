"""Two-phase sharded epoch commits: atomicity, checksums, fallback."""

import numpy as np
import pytest

from repro.resilience.distributed import (
    EpochManifest,
    ShardCorruptError,
    ShardedCheckpointStore,
)


def shards_for(epoch, world_size=3, n=5):
    rng = np.random.default_rng(epoch)
    return [
        {"temperature": rng.standard_normal(n), "step": np.asarray(epoch)}
        for _ in range(world_size)
    ]


class TestTwoPhaseCommit:
    def test_uncommitted_epoch_is_invisible(self, tmp_path):
        store = ShardedCheckpointStore(tmp_path)
        writer = store.begin_epoch(1, world_size=2)
        writer.write_shard(0, {"a": np.ones(3)})
        # One shard staged, nothing committed: readers see no epoch.
        assert store.epochs() == []
        assert store.latest is None

    def test_commit_refuses_missing_shards(self, tmp_path):
        store = ShardedCheckpointStore(tmp_path)
        writer = store.begin_epoch(1, world_size=3)
        writer.write_shard(0, {"a": np.ones(3)})
        writer.write_shard(2, {"a": np.ones(3)})
        with pytest.raises(ShardCorruptError, match=r"ranks \[1\]"):
            writer.commit()

    def test_commit_publishes_whole_epoch(self, tmp_path):
        store = ShardedCheckpointStore(tmp_path)
        manifest = store.save_epoch(2, shards_for(2))
        assert isinstance(manifest, EpochManifest)
        assert store.epochs() == [2]
        assert len(manifest.checksums) == 3
        loaded = store.load_epoch(2)
        for got, want in zip(loaded, shards_for(2)):
            assert np.array_equal(got["temperature"], want["temperature"])

    def test_abort_discards_staging(self, tmp_path):
        store = ShardedCheckpointStore(tmp_path)
        store.save_epoch(1, shards_for(1))
        writer = store.begin_epoch(2, world_size=3)
        writer.write_shard(0, {"a": np.ones(3)})
        writer.abort()
        assert store.epochs() == [1]
        assert list(tmp_path.glob(".staging_*")) == []

    def test_crash_mid_save_cannot_mix_epochs(self, tmp_path):
        # Epoch 1 committed; a "crash" leaves epoch 2 half-staged.  The
        # next process must restore pure epoch 1 -- never a 1/2 mixture.
        store = ShardedCheckpointStore(tmp_path)
        store.save_epoch(1, shards_for(1))
        writer = store.begin_epoch(2, world_size=3)
        writer.write_shard(0, shards_for(2)[0])
        del writer  # crash: no commit, no abort

        store2 = ShardedCheckpointStore(tmp_path)
        assert store2.aborted == [2]
        epoch, shards, skipped = store2.restore_latest()
        assert epoch == 1 and skipped == []
        for got, want in zip(shards, shards_for(1)):
            assert np.array_equal(got["temperature"], want["temperature"])

    def test_capacity_prunes_oldest(self, tmp_path):
        store = ShardedCheckpointStore(tmp_path, capacity=2)
        for epoch in (1, 2, 3):
            store.save_epoch(epoch, shards_for(epoch))
        assert store.epochs() == [2, 3]
        assert not (tmp_path / "epoch_00000001").exists()


class TestShardVerification:
    def test_corrupt_shard_fails_whole_epoch_over(self, tmp_path):
        store = ShardedCheckpointStore(tmp_path, capacity=3)
        store.save_epoch(1, shards_for(1))
        store.save_epoch(2, shards_for(2))
        # Mangle a swath of one shard of the newest epoch (a single-byte
        # flip can land in inert zip padding; a range cannot).
        victim = tmp_path / "epoch_00000002" / "shard_0001.npz"
        raw = bytearray(victim.read_bytes())
        for off in range(80, 180):
            raw[off] ^= 0xFF
        victim.write_bytes(bytes(raw))

        with pytest.raises(ShardCorruptError):
            store.verify_epoch(2)
        epoch, shards, skipped = store.restore_latest()
        # Per-epoch consistency is all-or-nothing: the epoch with one bad
        # shard is skipped whole and evicted.
        assert epoch == 1 and skipped == [2]
        assert store.epochs() == [1]

    def test_manifest_mismatch_detected(self, tmp_path):
        store = ShardedCheckpointStore(tmp_path)
        store.save_epoch(1, shards_for(1, world_size=2))
        # Swap the two shards' files: each still passes its embedded
        # checksum but disagrees with the manifest entry for its slot.
        d = tmp_path / "epoch_00000001"
        a, b = d / "shard_0000.npz", d / "shard_0001.npz"
        pa, pb = a.read_bytes(), b.read_bytes()
        a.write_bytes(pb)
        b.write_bytes(pa)
        with pytest.raises(ShardCorruptError, match="manifest"):
            store.load_shard(1, 0)

    def test_nothing_valid_raises(self):
        store = ShardedCheckpointStore()
        with pytest.raises(ShardCorruptError):
            store.restore_latest()

    def test_reserved_entry_name_rejected(self):
        store = ShardedCheckpointStore()
        writer = store.begin_epoch(0, world_size=1)
        with pytest.raises(ValueError, match="reserved"):
            writer.write_shard(0, {"checksum": np.ones(1)})


class TestInMemoryStore:
    def test_round_trip_and_pruning(self):
        store = ShardedCheckpointStore(capacity=2)
        for epoch in (1, 2, 3):
            store.save_epoch(epoch, shards_for(epoch))
        assert store.epochs() == [2, 3]
        epoch, shards, skipped = store.restore_latest()
        assert epoch == 3 and skipped == []
        for got, want in zip(shards, shards_for(3)):
            assert np.array_equal(got["temperature"], want["temperature"])

    def test_manifest_meta_round_trips(self):
        store = ShardedCheckpointStore()
        store.save_epoch(4, shards_for(4), time=0.2, note="baseline")
        manifest = store.manifest(4)
        assert manifest.meta == {"time": 0.2, "note": "baseline"}
        assert EpochManifest.from_json(manifest.to_json()) == manifest
