"""Property tests: shard round-trips are exact, recovery is idempotent."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.resilience.distributed import (
    DistributedThermalWorkload,
    ShardedCheckpointStore,
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=64, min_value=-1e12, max_value=1e12
)


def shard_arrays():
    """A shard's worth of named arrays: varied shapes, finite payloads."""
    return st.dictionaries(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x7A),
            min_size=1,
            max_size=8,
        ).filter(lambda s: s != "checksum"),
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=6),
            elements=finite_floats,
        ),
        min_size=1,
        max_size=4,
    )


class TestShardRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(shards=st.lists(shard_arrays(), min_size=1, max_size=4), epoch=st.integers(0, 10**6))
    def test_checksummed_round_trip_is_bitwise_exact(self, shards, epoch):
        store = ShardedCheckpointStore()
        manifest = store.save_epoch(epoch, shards)
        assert len(manifest.checksums) == len(shards)
        loaded = store.load_epoch(epoch)
        for got, want in zip(loaded, shards):
            assert sorted(got) == sorted(want)
            for name, arr in want.items():
                assert got[name].dtype == arr.dtype
                assert got[name].shape == arr.shape
                assert np.array_equal(got[name], arr)

    @settings(max_examples=20, deadline=None)
    @given(shards=st.lists(shard_arrays(), min_size=1, max_size=3))
    def test_checksums_are_content_addressed(self, shards):
        a = ShardedCheckpointStore()
        b = ShardedCheckpointStore()
        ma = a.save_epoch(1, shards)
        mb = b.save_epoch(1, [dict(s) for s in shards])
        # Same content, independently packed: identical digests.
        assert ma.checksums == mb.checksums


class TestRecoveryIdempotence:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16), steps=st.integers(1, 3))
    def test_second_restore_of_same_epoch_is_a_noop(self, seed, steps):
        w = DistributedThermalWorkload(nranks=3, seed=seed, checkpoint_interval=1)
        w.run(steps)
        epoch, shards, _ = w.store.restore_latest()

        w.restore_shards(shards)
        once = [c.copy() for c in w.t_chunks]
        step_once, time_once = w.step, w.time
        history_once = list(w.nu_history)

        # Restoring the same committed epoch again must change nothing.
        w.restore_shards(shards)
        assert w.step == step_once == epoch
        assert w.time == time_once
        assert w.nu_history == history_once
        for got, want in zip(w.t_chunks, once):
            assert np.array_equal(got, want)
