"""Rollback-and-retry runner: unit tests on a stand-in simulation plus the
end-to-end acceptance scenarios (seeded fault recovery, kill-and-restart)."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import Simulation, rbc_box_case
from repro.core.output import _read_checkpoint, checkpoint_digest
from repro.insitu import InSituPipeline, Processor
from repro.resilience import (
    CheckpointRing,
    Fault,
    FaultInjector,
    HealthCheck,
    RankFailedError,
    ResilientRunner,
    RetryBudgetExceededError,
)

# -- a minimal duck-typed simulation ------------------------------------------


class FakeSim:
    """Tiny checkpointable stand-in exposing the runner's interface.

    ``fail_if(sim)`` is consulted every step; returning an exception class
    makes the step raise it (once per step index, like a real transient).
    """

    def __init__(self, dt=0.1, fail_if=None):
        self.step_count = 0
        self.time = 0.0
        self.dt = dt
        self.history = []
        self.stat_samples = []
        self.adaptive = False
        self.config = SimpleNamespace(dt_min=1e-4, dt_max=1.0, adaptive_cfl=None)
        self.fluid = SimpleNamespace(set_dt=lambda dt: None)
        self.scalar = SimpleNamespace(set_dt=lambda dt: None)
        self.state = np.zeros(4)
        self.fail_if = fail_if or (lambda sim: None)

    # Health-check surface.
    @property
    def velocity(self):
        return (self.state, self.state, self.state)

    @property
    def temperature(self):
        return self.state

    @property
    def pressure(self):
        return self.state

    def run(self, n_steps=None, end_time=None, **kw):
        for _ in range(n_steps):
            if end_time is not None and self.time >= end_time - 1e-12:
                return
            exc = self.fail_if(self)
            if exc is not None:
                raise exc
            self.step_count += 1
            self.time += self.dt
            self.state = self.state + self.dt
            self.history.append(
                SimpleNamespace(
                    step=self.step_count,
                    time=self.time,
                    dt=self.dt,
                    cfl=0.1,
                    pressure_iterations=2,
                    kinetic_energy=1.0,
                    divergence=1e-8,
                )
            )


def fake_write(sim, target):
    arrays = {
        "state": sim.state,
        "step_count": np.asarray(sim.step_count),
        "time": np.asarray(sim.time),
        "dt": np.asarray(sim.dt),
    }
    arrays["checksum"] = np.asarray(checkpoint_digest(arrays))
    if hasattr(target, "write"):
        np.savez_compressed(target, **arrays)
    else:
        np.savez_compressed(open(target, "wb"), **arrays)


def fake_load(sim, source):
    data = _read_checkpoint(source)
    sim.state = data["state"].copy()
    sim.step_count = int(data["step_count"])
    sim.time = float(data["time"])
    sim.dt = float(data["dt"])


def fake_ring(**kw):
    return CheckpointRing(write_fn=fake_write, load_fn=fake_load, **kw)


class TestRunnerUnit:
    def test_clean_run_checkpoints_and_no_retries(self):
        sim = FakeSim()
        runner = ResilientRunner(sim, ring=fake_ring(), checkpoint_interval=5)
        result = runner.run(n_steps=20)
        assert sim.step_count == 20
        assert result.retries == 0
        assert result.checkpoints == 4
        assert len(result.results) == 20
        assert result.events.count("rollback") == 0

    def test_divergence_rolls_back_and_reduces_dt(self):
        def fail(sim):
            # Diverges stepping past step 10 until dt has been halved.
            if sim.step_count >= 10 and sim.dt > 0.06:
                return FloatingPointError("simulation diverged: kinetic energy")

        sim = FakeSim(dt=0.1, fail_if=fail)
        runner = ResilientRunner(
            sim, ring=fake_ring(), checkpoint_interval=5, max_retries=3, dt_factor=0.5
        )
        result = runner.run(n_steps=20)
        assert sim.step_count == 20
        assert result.retries == 1
        assert sim.dt == pytest.approx(0.05)
        assert result.events.count("rollback") == 1
        assert result.events.count("dt_reduction") == 1
        assert result.events.count("retry") == 1
        # The realized history is contiguous: no rolled-back steps remain.
        assert [r.step for r in result.results] == list(range(1, 21))

    def test_rank_failure_recovers_without_dt_reduction(self):
        fired = []

        def fail(sim):
            if sim.step_count == 7 and not fired:
                fired.append(True)
                return RankFailedError(3, "allreduce")

        sim = FakeSim(fail_if=fail)
        runner = ResilientRunner(sim, ring=fake_ring(), checkpoint_interval=4)
        result = runner.run(n_steps=12)
        assert sim.step_count == 12
        assert result.retries == 1
        assert sim.dt == pytest.approx(0.1)  # external fault: dt untouched
        assert result.events.count("dt_reduction") == 0

    def test_retry_budget_exhaustion_raises(self):
        sim = FakeSim(fail_if=lambda s: FloatingPointError("always diverges"))
        runner = ResilientRunner(
            sim, ring=fake_ring(), checkpoint_interval=5, max_retries=2
        )
        with pytest.raises(RetryBudgetExceededError) as exc_info:
            runner.run(n_steps=10)
        assert exc_info.value.events.count("retry") == 2

    def test_backoff_uses_injectable_clock(self):
        calls = []

        def fail(sim):
            if sim.step_count == 3 and len(calls) < 2:
                return FloatingPointError("diverged")

        sim = FakeSim(fail_if=fail)
        sleeps = []

        def fake_sleep(s):
            sleeps.append(s)
            calls.append(True)

        runner = ResilientRunner(
            sim,
            ring=fake_ring(),
            checkpoint_interval=5,
            max_retries=5,
            backoff=1.0,
            backoff_base=2.0,
            sleep=fake_sleep,
            dt_factor=1.0,  # keep failing on the same condition
        )
        runner.run(n_steps=6)
        assert sleeps == pytest.approx([1.0, 2.0])

    def test_health_check_triggers_rollback_on_nonfinite_state(self):
        poked = []

        class PokingInjector(FaultInjector):
            def apply_field_faults(self, sim):
                if sim.step_count >= 6 and not poked:
                    poked.append(True)
                    sim.state = sim.state.copy()
                    sim.state[1] = np.nan
                    return [self._record("sdc", sim.step_count, "poked NaN")]
                return []

        sim = FakeSim()
        runner = ResilientRunner(
            sim,
            ring=fake_ring(),
            checkpoint_interval=3,
            health=HealthCheck(),
            fault_injector=PokingInjector(),
        )
        result = runner.run(n_steps=9)
        assert sim.step_count == 9
        assert np.all(np.isfinite(sim.state))
        assert result.retries == 1
        assert result.events.count("fault") == 1
        assert result.events.count("rollback") == 1

    def test_requires_step_target(self):
        with pytest.raises(ValueError):
            ResilientRunner(FakeSim(), ring=fake_ring()).run()

    def test_end_time_target(self):
        sim = FakeSim(dt=0.1)
        ResilientRunner(sim, ring=fake_ring(), checkpoint_interval=4).run(end_time=1.0)
        assert sim.time == pytest.approx(1.0, abs=0.15)


# -- end-to-end scenarios on the real simulation -------------------------------


def constant_dt_case():
    return rbc_box_case(
        2e4, n=(2, 2, 2), lx=4, aspect=2.0, dt=1e-2, perturbation_amplitude=0.1
    )


def adaptive_case():
    return rbc_box_case(
        2e4, n=(2, 2, 2), lx=4, aspect=2.0, dt=5e-3,
        perturbation_amplitude=0.1, adaptive_cfl=0.3,
    )


class FailingProcessor(Processor):
    name = "unstable-analysis"

    def process(self, tag, array, sim_time):
        raise RuntimeError("analysis routine keeps crashing")


class Collector(Processor):
    name = "collect"

    def __init__(self):
        self.items = []

    def process(self, tag, array, sim_time):
        self.items.append(sim_time)


class TestEndToEndRecovery:
    """Acceptance: injected field corruption + failing in-situ processor."""

    def test_recovery_matches_fault_free_reference(self, tmp_path):
        n_steps = 16

        ref = Simulation(constant_dt_case())
        ref.run(n_steps=n_steps)

        sim = Simulation(constant_dt_case())
        collector = Collector()
        pipeline = InSituPipeline(
            [FailingProcessor(), collector], quarantine_after=2, strict=False
        ).open()
        sim.callbacks.append(
            lambda s: pipeline.put("temperature", s.temperature, s.time)
        )
        injector = FaultInjector(
            seed=5, schedule=[Fault("sdc", at_step=10, target="temperature", mode="nan")]
        )
        runner = ResilientRunner(
            sim,
            ring=CheckpointRing(tmp_path, capacity=3),
            checkpoint_interval=4,
            fault_injector=injector,
            max_retries=2,
        )
        result = runner.run(n_steps=n_steps, callback_interval=1)
        stats = pipeline.close()

        # The run completed through the fault...
        assert sim.step_count == n_steps
        assert result.retries == 1
        # ...the event log records the whole story...
        assert result.events.count("fault") == 1
        assert result.events.count("rollback") == 1
        assert result.events.count("retry") == 1
        assert result.events.count("checkpoint") >= 4
        # ...the failing processor was quarantined while the healthy one
        # kept receiving snapshots (including the replayed segment)...
        assert stats.quarantined == ["unstable-analysis"]
        assert len(collector.items) >= n_steps
        # ...and the transient fault was rolled back completely: the final
        # state reproduces the fault-free reference bit-for-bit.
        assert np.array_equal(sim.temperature, ref.temperature)
        assert [r.kinetic_energy for r in result.results] == [
            r.kinetic_energy for r in ref.history
        ]
        assert len(result.results) == n_steps

    def test_event_log_summary_readable(self, tmp_path):
        sim = Simulation(constant_dt_case())
        injector = FaultInjector(
            seed=1, schedule=[Fault("sdc", at_step=4, target="temperature", mode="nan")]
        )
        runner = ResilientRunner(
            sim,
            ring=CheckpointRing(tmp_path, capacity=2),
            checkpoint_interval=4,
            fault_injector=injector,
        )
        result = runner.run(n_steps=8)
        text = result.events.summary()
        assert "[fault]" in text and "[rollback]" in text and "[retry]" in text


class TestKillAndRestart:
    """Acceptance: restart from the newest valid ring entry reproduces the
    uninterrupted run's remaining StepResult sequence bit-for-bit."""

    @pytest.fixture(scope="class")
    def reference(self):
        ref = Simulation(adaptive_case())
        ref.run(n_steps=18)
        return ref

    def _interrupted_ring(self, tmp_path):
        sim1 = Simulation(adaptive_case())
        runner = ResilientRunner(
            sim1, ring=CheckpointRing(tmp_path, capacity=3), checkpoint_interval=3
        )
        runner.run(n_steps=12)
        return sim1  # "killed" here: the process state is abandoned

    def _assert_tail_matches(self, sim2, results, reference, start):
        ref_tail = reference.history[start:]
        assert [r.dt for r in results] == [r.dt for r in ref_tail]
        assert [r.time for r in results] == [r.time for r in ref_tail]
        assert [r.kinetic_energy for r in results] == [
            r.kinetic_energy for r in ref_tail
        ]
        assert np.array_equal(sim2.temperature, reference.temperature)
        ux1, _, uz1 = reference.velocity
        ux2, _, uz2 = sim2.velocity
        assert np.array_equal(ux1, ux2)
        assert np.array_equal(uz1, uz2)

    def test_restart_from_newest_checkpoint(self, tmp_path, reference):
        self._interrupted_ring(tmp_path)
        # A fresh process: new simulation, ring rescanned from disk.
        sim2 = Simulation(adaptive_case())
        ring = CheckpointRing(tmp_path, capacity=3)
        entry, skipped = ring.restore_latest(sim2)
        assert entry.step == 12 and skipped == []
        results = sim2.run(n_steps=6)
        self._assert_tail_matches(sim2, results, reference, start=12)

    def test_restart_with_truncated_newest_checkpoint(self, tmp_path, reference):
        self._interrupted_ring(tmp_path)
        ring = CheckpointRing(tmp_path, capacity=3)
        newest = ring.entries[-1]
        raw = newest.path.read_bytes()
        newest.path.write_bytes(raw[: len(raw) // 2])  # deliberate truncation

        sim2 = Simulation(adaptive_case())
        ring2 = CheckpointRing(tmp_path, capacity=3)
        entry, skipped = ring2.restore_latest(sim2)
        assert entry.step == 9
        assert [e.step for e in skipped] == [12]
        results = sim2.run(n_steps=9)
        self._assert_tail_matches(sim2, results, reference, start=9)
