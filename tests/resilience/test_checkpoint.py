"""Checkpoint integrity, the bounded ring, and kill-and-restart recovery."""

import io

import numpy as np
import pytest

from repro.core import (
    CheckpointCorruptError,
    Simulation,
    load_checkpoint,
    rbc_box_case,
    verify_checkpoint,
    write_checkpoint,
)
from repro.resilience import CheckpointRing


def small_case(**overrides):
    kwargs = dict(n=(2, 2, 2), lx=4, aspect=2.0, dt=5e-3,
                  perturbation_amplitude=0.1, adaptive_cfl=0.3)
    kwargs.update(overrides)
    return rbc_box_case(2e4, **kwargs)


@pytest.fixture(scope="module")
def warm_sim():
    sim = Simulation(small_case())
    sim.run(n_steps=5)
    return sim


class TestCheckpointIntegrity:
    def test_write_is_atomic_no_tmp_left(self, warm_sim, tmp_path):
        path = tmp_path / "ck.npz"
        write_checkpoint(warm_sim, path)
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_verify_reports_metadata(self, warm_sim, tmp_path):
        path = tmp_path / "ck.npz"
        write_checkpoint(warm_sim, path)
        meta = verify_checkpoint(path)
        assert meta["step"] == warm_sim.step_count
        assert meta["time"] == pytest.approx(warm_sim.time)
        assert meta["checksum"] is not None

    def test_truncated_file_detected(self, warm_sim, tmp_path):
        path = tmp_path / "ck.npz"
        write_checkpoint(warm_sim, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointCorruptError):
            verify_checkpoint(path)
        sim2 = Simulation(small_case())
        before = sim2.temperature.copy()
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(sim2, path)
        # A failed load leaves the simulation untouched.
        assert np.array_equal(sim2.temperature, before)
        assert sim2.step_count == 0

    def test_tampered_payload_fails_checksum(self, warm_sim, tmp_path):
        path = tmp_path / "ck.npz"
        write_checkpoint(warm_sim, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: np.asarray(data[k]).copy() for k in data.files}
        arrays["pressure"].flat[0] += 1.0  # silent corruption, stale checksum
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            verify_checkpoint(path)

    def test_missing_file_raises_corrupt_error(self, tmp_path):
        with pytest.raises(CheckpointCorruptError):
            verify_checkpoint(tmp_path / "nope.npz")

    def test_roundtrip_via_file_object(self, warm_sim):
        buf = io.BytesIO()
        write_checkpoint(warm_sim, buf)
        buf.seek(0)
        sim2 = Simulation(small_case())
        load_checkpoint(sim2, buf)
        assert sim2.step_count == warm_sim.step_count
        assert np.array_equal(sim2.temperature, warm_sim.temperature)

    def test_legacy_checkpoint_without_checksum_loads(self, warm_sim, tmp_path):
        from repro.core.output import _checkpoint_payload

        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **_checkpoint_payload(warm_sim))
        sim2 = Simulation(small_case())
        load_checkpoint(sim2, path)
        assert sim2.step_count == warm_sim.step_count


class TestCheckpointRing:
    def test_capacity_eviction(self, tmp_path):
        ring = CheckpointRing(tmp_path, capacity=2)
        sim = Simulation(small_case())
        for _ in range(4):
            sim.run(n_steps=1)
            ring.save(sim)
        assert len(ring) == 2
        assert [e.step for e in ring.entries] == [3, 4]
        assert len(list(tmp_path.glob("ck*.npz"))) == 2

    def test_in_memory_ring_roundtrip(self):
        ring = CheckpointRing(capacity=3)
        sim = Simulation(small_case())
        sim.run(n_steps=3)
        ring.save(sim)
        ref = sim.temperature.copy()
        sim.run(n_steps=2)
        entry, skipped = ring.restore_latest(sim)
        assert entry.step == 3 and skipped == []
        assert np.array_equal(sim.temperature, ref)
        assert sim.step_count == 3

    def test_fallback_skips_truncated_newest(self, tmp_path):
        ring = CheckpointRing(tmp_path, capacity=3)
        sim = Simulation(small_case())
        sim.run(n_steps=2)
        ring.save(sim)
        sim.run(n_steps=2)
        newest = ring.save(sim)
        raw = newest.path.read_bytes()
        newest.path.write_bytes(raw[: len(raw) // 3])
        entry, skipped = ring.restore_latest(sim)
        assert entry.step == 2
        assert [e.step for e in skipped] == [4]
        # The corrupt entry is evicted from ring and disk.
        assert not newest.path.exists()
        assert [e.step for e in ring.entries] == [2]

    def test_all_corrupt_raises(self, tmp_path):
        ring = CheckpointRing(tmp_path, capacity=2)
        sim = Simulation(small_case())
        sim.run(n_steps=1)
        entry = ring.save(sim)
        entry.path.write_bytes(b"garbage")
        with pytest.raises(CheckpointCorruptError):
            ring.restore_latest(sim)

    def test_rescan_adopts_existing_files(self, tmp_path):
        ring = CheckpointRing(tmp_path, capacity=3)
        sim = Simulation(small_case())
        sim.run(n_steps=2)
        ring.save(sim)
        sim.run(n_steps=2)
        ring.save(sim)
        # A fresh process building a ring over the same directory sees both.
        ring2 = CheckpointRing(tmp_path, capacity=3)
        assert [e.step for e in ring2.entries] == [2, 4]

    def test_restore_entry_targets_exact_step(self, tmp_path):
        ring = CheckpointRing(tmp_path, capacity=3)
        sim = Simulation(small_case())
        refs = {}
        for _ in range(3):
            sim.run(n_steps=1)
            ring.save(sim)
            refs[sim.step_count] = sim.temperature.copy()
        assert ring.steps == [1, 2, 3]
        entry = ring.restore_entry(sim, 2)
        assert entry.step == 2
        assert sim.step_count == 2
        assert np.array_equal(sim.temperature, refs[2])

    def test_restore_entry_unknown_step_raises_keyerror(self, tmp_path):
        ring = CheckpointRing(tmp_path, capacity=3)
        sim = Simulation(small_case())
        sim.run(n_steps=1)
        ring.save(sim)
        with pytest.raises(KeyError, match="no ring entry at step 9"):
            ring.restore_entry(sim, 9)

    def test_restore_entry_corrupt_evicts_and_raises(self, tmp_path):
        ring = CheckpointRing(tmp_path, capacity=3)
        sim = Simulation(small_case())
        sim.run(n_steps=1)
        entry = ring.save(sim)
        entry.path.write_bytes(b"garbage")
        with pytest.raises(CheckpointCorruptError):
            ring.restore_entry(sim, 1)
        assert ring.steps == []
        assert not entry.path.exists()

    def test_verify_on_save_accepts_good_writes(self, tmp_path):
        ring = CheckpointRing(tmp_path, capacity=2, verify_on_save=True)
        sim = Simulation(small_case())
        sim.run(n_steps=1)
        ring.save(sim)
        assert ring.steps == [1]

    def test_verify_on_save_catches_torn_write(self, tmp_path):
        def torn_write(sim, target):
            write_checkpoint(sim, target)
            raw = target.read_bytes()
            target.write_bytes(raw[: len(raw) // 2])

        ring = CheckpointRing(
            tmp_path, capacity=2, write_fn=torn_write, verify_on_save=True
        )
        sim = Simulation(small_case())
        sim.run(n_steps=1)
        with pytest.raises(CheckpointCorruptError):
            ring.save(sim)
        # The damaged entry never enters the ring and its file is gone.
        assert ring.steps == []
        assert list(tmp_path.glob("ck*.npz")) == []


class TestAdaptiveDtRestart:
    """Restart mid-run must reproduce the adaptive dt sequence bit-for-bit."""

    def test_dt_sequence_reproduced_exactly(self, tmp_path):
        sim1 = Simulation(small_case())
        sim1.run(n_steps=8)
        write_checkpoint(sim1, tmp_path / "mid.npz")
        sim1.run(n_steps=7)
        ref_tail = sim1.history[8:]

        sim2 = Simulation(small_case())
        load_checkpoint(sim2, tmp_path / "mid.npz")
        results = sim2.run(n_steps=7)
        assert [r.dt for r in results] == [r.dt for r in ref_tail]
        assert [r.time for r in results] == [r.time for r in ref_tail]
        assert [r.kinetic_energy for r in results] == [
            r.kinetic_energy for r in ref_tail
        ]
        assert np.array_equal(sim2.temperature, sim1.temperature)
        ux1, _, _ = sim1.velocity
        ux2, _, _ = sim2.velocity
        assert np.array_equal(ux1, ux2)
