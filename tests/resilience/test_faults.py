"""Tests for deterministic fault injection into SimWorld and field arrays."""

import numpy as np
import pytest

from repro.comm import SimWorld
from repro.resilience import Fault, FaultInjector, RankFailedError


class TestMessageFaults:
    def test_scheduled_drop_delivers_zeros(self):
        inj = FaultInjector(schedule=[Fault("drop", at_call=1)])
        w = SimWorld(2, fault_injector=inj)
        out = w.exchange({(0, 1): np.ones(3)})  # call 0: clean
        assert np.allclose(out[(0, 1)], 1.0)
        out = w.exchange({(0, 1): np.full(3, 7.0)})  # call 1: dropped
        assert np.allclose(out[(0, 1)], 0.0)
        assert [e.kind for e in inj.events] == ["drop"]
        # Traffic stats count the attempted send.
        assert w.stats.p2p_messages == 2

    def test_scheduled_corrupt_changes_buffer(self):
        inj = FaultInjector(seed=3, schedule=[Fault("corrupt", at_call=0)])
        w = SimWorld(2, fault_injector=inj)
        sent = np.ones(8)
        out = w.exchange({(0, 1): sent})
        assert not np.array_equal(out[(0, 1)], sent)
        assert np.array_equal(sent, np.ones(8))  # original untouched
        ev = inj.events[0]
        assert ev.kind == "corrupt"
        assert ev.data["src"] == 0 and ev.data["dst"] == 1

    def test_scheduled_delay_delivers_stale(self):
        inj = FaultInjector(schedule=[Fault("delay", at_call=1)])
        w = SimWorld(2, fault_injector=inj)
        w.exchange({(0, 1): np.full(2, 1.0)})
        out = w.exchange({(0, 1): np.full(2, 2.0)})  # delayed: previous buffer
        assert np.allclose(out[(0, 1)], 1.0)
        out = w.exchange({(0, 1): np.full(2, 3.0)})  # back to normal
        assert np.allclose(out[(0, 1)], 3.0)

    def test_delay_with_no_history_delivers_zeros(self):
        inj = FaultInjector(schedule=[Fault("delay", at_call=0)])
        w = SimWorld(2, fault_injector=inj)
        out = w.exchange({(0, 1): np.full(2, 9.0)})
        assert np.allclose(out[(0, 1)], 0.0)

    def test_random_faults_are_seed_deterministic(self):
        def run(seed):
            inj = FaultInjector(seed=seed, drop_rate=0.3, corrupt_rate=0.2)
            w = SimWorld(2, fault_injector=inj)
            for i in range(50):
                w.exchange({(0, 1): np.full(4, float(i + 1))})
            return [(e.kind, e.index) for e in inj.events]

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert len(run(7)) > 0


class TestRankFailure:
    def test_scheduled_collective_failure(self):
        inj = FaultInjector(schedule=[Fault("rank_failure", at_call=2, rank=1)])
        w = SimWorld(3, fault_injector=inj)
        vals = [1.0, 2.0, 3.0]
        assert w.allreduce_scalar(vals) == 6.0  # call 0
        w.barrier()  # call 1
        with pytest.raises(RankFailedError) as exc_info:
            w.allreduce_scalar(vals)  # call 2
        assert exc_info.value.rank == 1

    def test_rank_failure_is_one_shot(self):
        inj = FaultInjector(schedule=[Fault("rank_failure", at_call=0)])
        w = SimWorld(2, fault_injector=inj)
        with pytest.raises(RankFailedError):
            w.allreduce_scalar([1.0, 2.0])
        # The respawned rank participates normally afterwards.
        assert w.allreduce_scalar([1.0, 2.0]) == 3.0

    def test_gather_checks_for_failures(self):
        inj = FaultInjector(schedule=[Fault("rank_failure", at_call=0)])
        w = SimWorld(2, fault_injector=inj)
        with pytest.raises(RankFailedError):
            w.gather([1.0, 2.0])


class TestSDC:
    def test_corrupt_array_bitflip_is_catastrophic(self):
        inj = FaultInjector(seed=1)
        a = np.ones(100)
        detail = inj.corrupt_array(a)
        assert np.count_nonzero(a != 1.0) == 1
        bad = a[a != 1.0][0]
        # Top exponent bits flipped: the value is absurd, not a blip.
        assert not np.isfinite(bad) or abs(bad) > 1e4 or abs(bad) < 1e-4
        assert detail["element"] == int(np.flatnonzero(a != 1.0)[0])

    def test_corrupt_array_nan_mode(self):
        inj = FaultInjector(seed=2)
        a = np.ones(10)
        inj.corrupt_array(a, mode="nan")
        assert np.count_nonzero(np.isnan(a)) == 1

    def test_corruption_is_seed_deterministic(self):
        a1, a2 = np.ones(50), np.ones(50)
        FaultInjector(seed=9).corrupt_array(a1)
        FaultInjector(seed=9).corrupt_array(a2)
        assert np.array_equal(a1, a2, equal_nan=True)

    def test_apply_field_faults_fires_once(self):
        class FakeScalar:
            temperature = np.ones(20)

        class FakeSim:
            step_count = 5
            scalar = FakeScalar()

        sim = FakeSim()
        inj = FaultInjector(seed=0, schedule=[Fault("sdc", at_step=4, mode="nan")])
        fired = inj.apply_field_faults(sim)
        assert len(fired) == 1
        assert np.count_nonzero(np.isnan(sim.scalar.temperature)) == 1
        # Replay after rollback: the transient fault does not re-fire.
        sim.scalar.temperature[:] = 1.0
        assert inj.apply_field_faults(sim) == []
        assert not np.any(np.isnan(sim.scalar.temperature))

    def test_field_fault_waits_for_step(self):
        class FakeScalar:
            temperature = np.ones(20)

        class FakeSim:
            step_count = 2
            scalar = FakeScalar()

        sim = FakeSim()
        inj = FaultInjector(schedule=[Fault("sdc", at_step=10, mode="nan")])
        assert inj.apply_field_faults(sim) == []
        sim.step_count = 10
        assert len(inj.apply_field_faults(sim)) == 1

    def test_unknown_target_raises(self):
        inj = FaultInjector(schedule=[Fault("sdc", at_step=0, target="vorticity")])

        class FakeSim:
            step_count = 1

        with pytest.raises(ValueError, match="unknown SDC target"):
            inj.apply_field_faults(FakeSim())


class TestTargetedCollectiveFaults:
    def test_op_targeted_failure_ignores_other_collectives(self):
        # "Kill rank 1 at the third *allreduce*" regardless of barriers.
        inj = FaultInjector(
            schedule=[Fault("rank_failure", at_call=2, rank=1, op="allreduce")]
        )
        w = SimWorld(2, fault_injector=inj)
        vals = [1.0, 2.0]
        w.allreduce_scalar(vals)  # allreduce 0
        w.barrier()
        w.barrier()
        w.allreduce_scalar(vals)  # allreduce 1
        w.barrier()
        with pytest.raises(RankFailedError) as exc_info:
            w.allreduce_scalar(vals)  # allreduce 2
        assert exc_info.value.rank == 1

    def test_barrier_targeted_failure(self):
        inj = FaultInjector(schedule=[Fault("rank_failure", at_call=1, op="barrier")])
        w = SimWorld(2, fault_injector=inj)
        w.allreduce_scalar([1.0, 2.0])
        w.barrier()  # barrier 0
        w.allreduce_scalar([1.0, 2.0])
        with pytest.raises(RankFailedError):
            w.barrier()  # barrier 1

    def test_scalar_and_array_allreduce_share_the_family_counter(self):
        inj = FaultInjector(
            schedule=[Fault("rank_failure", at_call=1, op="allreduce")]
        )
        w = SimWorld(2, fault_injector=inj)
        w.allreduce_scalar([1.0, 2.0])  # allreduce 0 (scalar flavour)
        with pytest.raises(RankFailedError):
            w.allreduce_array([np.ones(2), np.ones(2)])  # allreduce 1


class TestReplayLog:
    def test_replay_round_trip_reproduces_faults(self):
        def drive(inj):
            w = SimWorld(2, fault_injector=inj)
            for i in range(30):
                w.exchange({(0, 1): np.full(4, float(i + 1))})
            return [(e.kind, e.index) for e in inj.events]

        original = FaultInjector(
            seed=11,
            schedule=[Fault("drop", at_call=3), Fault("corrupt", at_call=7)],
            drop_rate=0.1,
            delay_rate=0.1,
        )
        events = drive(original)
        replay = original.export_replay()
        assert replay["seed"] == 11
        assert len(replay["schedule"]) == 2
        assert [e["kind"] for e in replay["events"]] == [k for k, _ in events]

        rebuilt = FaultInjector.from_replay(replay)
        assert drive(rebuilt) == events

    def test_replay_is_json_serializable(self):
        import json

        inj = FaultInjector(seed=4, schedule=[Fault("drop", at_call=0)])
        w = SimWorld(2, fault_injector=inj)
        w.exchange({(0, 1): np.ones(2)})
        text = json.dumps(inj.export_replay())
        assert json.loads(text) == inj.export_replay()
