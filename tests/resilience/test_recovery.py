"""Elastic rank recovery over the distributed thermal workload."""

import numpy as np
import pytest

from repro.comm import CollectiveIntegrityError, RetryPolicy
from repro.resilience import Fault, FaultInjector
from repro.resilience.distributed import (
    DistributedThermalWorkload,
    RecoveryExhaustedError,
    ShardedCheckpointStore,
    WorldRecovery,
)

N_STEPS = 6


@pytest.fixture(scope="module")
def fault_free():
    return DistributedThermalWorkload(nranks=4, seed=3).run(N_STEPS)


def faulted_workload(schedule, policy="warm_replace", nranks=4, **kwargs):
    store = ShardedCheckpointStore()
    recovery = WorldRecovery(store, policy=policy)
    injector = FaultInjector(seed=5, schedule=list(schedule))
    return DistributedThermalWorkload(
        nranks=nranks,
        seed=3,
        store=store,
        recovery=recovery,
        fault_injector=injector,
        **kwargs,
    )


class TestWarmReplace:
    def test_kill_rank_mid_cg_matches_fault_free_nu(self, fault_free):
        # The rank dies inside the CG's allreduce stream -- mid-solve, the
        # acceptance scenario.  Recovery must reproduce the fault-free
        # Nusselt proxy within tolerance.
        w = faulted_workload(
            [Fault("rank_failure", rank=2, at_call=40, op="allreduce")]
        )
        result = w.run(N_STEPS)
        assert result.steps == N_STEPS
        assert result.recoveries == 1
        assert result.world_size == 4
        assert result.nu_final == pytest.approx(fault_free.nu_final, abs=1e-10)
        incident = result.incidents[0]
        assert incident["policy"] == "warm_replace"
        assert incident["failed_rank"] == 2

    def test_nu_history_consistent_after_rollback(self, fault_free):
        w = faulted_workload(
            [Fault("rank_failure", rank=1, at_call=200, op="allreduce")]
        )
        result = w.run(N_STEPS)
        # Replayed steps overwrite their rolled-back entries: the final
        # history has exactly one entry per step, matching fault-free.
        assert [s for s, _ in result.nu_history] == [s for s, _ in fault_free.nu_history]
        for (_, nu), (_, ref) in zip(result.nu_history, fault_free.nu_history):
            assert nu == pytest.approx(ref, abs=1e-10)


class TestShrink:
    def test_world_shrinks_and_repartitions(self, fault_free):
        w = faulted_workload(
            [Fault("rank_failure", rank=1, at_call=40, op="allreduce")],
            policy="shrink",
        )
        result = w.run(N_STEPS)
        assert result.world_size == 3
        assert w.world.size == 3
        assert len(w.t_chunks) == 3
        # Repartitioned surviving ranks own every element exactly once.
        owned = np.concatenate([w.dgs.rank_elements[r] for r in range(3)])
        assert sorted(owned.tolist()) == list(range(w.space.mesh.nelv))
        assert result.nu_final == pytest.approx(fault_free.nu_final, abs=1e-8)

    def test_double_failure_shrinks_twice(self, fault_free):
        w = faulted_workload(
            [
                Fault("rank_failure", rank=2, at_call=40, op="allreduce"),
                Fault("rank_failure", rank=0, at_call=260, op="allreduce"),
            ],
            policy="shrink",
        )
        result = w.run(N_STEPS)
        assert result.world_size == 2
        assert result.recoveries == 2
        assert result.nu_final == pytest.approx(fault_free.nu_final, abs=1e-8)

    def test_shrink_respects_min_size(self):
        store = ShardedCheckpointStore()
        recovery = WorldRecovery(store, policy="shrink", min_size=2)
        injector = FaultInjector(
            seed=5,
            schedule=[
                Fault("rank_failure", rank=0, at_call=40, op="allreduce"),
                Fault("rank_failure", rank=1, at_call=260, op="allreduce"),
            ],
        )
        w = DistributedThermalWorkload(
            nranks=3, seed=3, store=store, recovery=recovery, fault_injector=injector
        )
        result = w.run(N_STEPS)
        # 3 -> 2, then the floor holds: the second failure warm-replaces.
        assert result.world_size == 2
        assert [o.policy for o in recovery.outcomes] == ["shrink", "warm_replace"]


class TestEscalation:
    def test_checkpoint_barrier_death_aborts_staging(self, fault_free):
        # Dying inside the checkpoint's commit barrier must abort the
        # staged epoch: recovery falls back to the previous committed one.
        w = faulted_workload([Fault("rank_failure", rank=1, at_call=1, op="barrier")])
        result = w.run(N_STEPS)
        assert result.recoveries == 1
        assert result.nu_final == pytest.approx(fault_free.nu_final, abs=1e-10)
        assert w.store.aborted == []  # in-memory store: staging simply dropped

    def test_collective_integrity_error_triggers_rollback(self, fault_free):
        # Corrupt one replica of both attempts of the same allreduce so
        # the verify-recompute budget exhausts and recovery rolls back.
        w = faulted_workload(
            [
                Fault("collective_sdc", at_call=30, op="allreduce"),
                Fault("collective_sdc", at_call=32, op="allreduce"),
            ],
            verify_collectives=True,
        )
        result = w.run(N_STEPS)
        assert result.recoveries == 1
        assert result.incidents[0]["cause"] == "CollectiveIntegrityError"
        assert result.nu_final == pytest.approx(fault_free.nu_final, abs=1e-10)

    def test_without_recovery_failures_propagate(self):
        injector = FaultInjector(
            seed=5,
            schedule=[
                Fault("collective_sdc", at_call=0, op="allreduce"),
                Fault("collective_sdc", at_call=2, op="allreduce"),
            ],
        )
        w = DistributedThermalWorkload(
            nranks=2, seed=3, fault_injector=injector, verify_collectives=True
        )
        with pytest.raises(CollectiveIntegrityError):
            w.run(2)

    def test_recovery_budget_exhausts_cleanly(self):
        store = ShardedCheckpointStore()
        recovery = WorldRecovery(store, policy="warm_replace", max_recoveries=2)
        schedule = [
            Fault("rank_failure", rank=0, at_call=i, op="allreduce")
            for i in range(0, 600, 3)
        ]
        injector = FaultInjector(seed=5, schedule=schedule)
        w = DistributedThermalWorkload(
            nranks=2, seed=3, store=store, recovery=recovery, fault_injector=injector
        )
        with pytest.raises(RecoveryExhaustedError):
            w.run(N_STEPS)
        assert recovery.recoveries == 3  # the fatal third incident

    def test_comm_timeout_recovers_via_rollback(self, fault_free):
        # Drop the same logical message past the retry budget: the channel
        # raises CommTimeoutError (never hangs) and recovery rolls back.
        store = ShardedCheckpointStore()
        recovery = WorldRecovery(store, policy="warm_replace")
        schedule = [Fault("drop", at_call=i) for i in range(40, 48)]
        injector = FaultInjector(seed=5, schedule=schedule)
        w = DistributedThermalWorkload(
            nranks=4,
            seed=3,
            store=store,
            recovery=recovery,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=2),
        )
        result = w.run(N_STEPS)
        assert result.steps == N_STEPS
        assert result.stats.timeouts >= 1
        assert result.nu_final == pytest.approx(fault_free.nu_final, abs=1e-10)
