"""Tests for the lossy spectral compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    CompressedField,
    SpectralCompressor,
    decode_coefficients,
    encode_coefficients,
    modal_energy,
    to_modal,
    to_nodal,
    truncate_relative,
    truncation_mask,
)
from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def sp():
    return FunctionSpace(box_mesh((2, 2, 2)), 6)


def multiscale_field(sp, decay=2.0, seed=0):
    """A synthetic field with a power-law spectrum (turbulence-like)."""
    rng = np.random.default_rng(seed)
    u = np.zeros(sp.shape)
    for k in range(1, 9):
        amp = k ** (-decay)
        phx, phy, phz = rng.uniform(0, 2 * np.pi, 3)
        u += amp * np.sin(2 * np.pi * k * sp.x + phx) * np.cos(
            2 * np.pi * k * sp.y + phy
        ) * np.cos(np.pi * k * sp.z + phz)
    return u


class TestTransforms:
    def test_roundtrip_exact(self, sp):
        rng = np.random.default_rng(1)
        u = rng.normal(size=sp.shape)
        assert np.allclose(to_nodal(to_modal(u)), u, atol=1e-11)

    def test_constant_is_single_mode(self, sp):
        uh = to_modal(np.ones(sp.shape))
        # phi_000 = (1/sqrt(2))^3, so the coefficient of a unit constant is
        # 2 sqrt(2); everything else vanishes.
        assert np.allclose(uh[:, 0, 0, 0], 2.0 * np.sqrt(2.0), atol=1e-12)
        flat = uh.reshape(sp.nelv, -1)
        assert np.allclose(flat[:, 1:], 0.0, atol=1e-12)

    def test_polynomial_compact_support(self, sp):
        # x^2 on the reference element touches only modes 0..2 per direction.
        uh = to_modal(sp.x**2)
        assert np.allclose(uh[:, :, :, 3:], 0.0, atol=1e-10)
        assert np.allclose(uh[:, :, 3:, :], 0.0, atol=1e-10)

    def test_parseval(self, sp):
        # For an affine element of volume V, the exact physical L2 energy of
        # the interpolant is (V/8) * modal energy.  The GLL-quadrature norm
        # matches it closely for smooth fields (and only approximately for
        # data with energy in the top mode, which GLL under-integrates).
        u = multiscale_field(sp, decay=3.0)
        uh = to_modal(u)
        e = modal_energy(uh)
        assert np.all(e > 0)
        vol = sp.coef.mass.reshape(sp.nelv, -1).sum(axis=1)
        phys = (u**2 * sp.coef.mass).reshape(sp.nelv, -1).sum(axis=1)
        assert np.allclose(phys, e * vol / 8.0, rtol=0.05)

    def test_parseval_exact_against_fine_quadrature(self, sp):
        # Exact check: evaluate the interpolant's L2 norm with a much finer
        # GLL rule, where Parseval must hold to roundoff.
        from repro.sem.basis import lagrange_interpolation_matrix
        from repro.sem.dealias import interp3
        from repro.sem.quadrature import gll_points_weights

        rng = np.random.default_rng(2)
        u = rng.normal(size=sp.shape)
        uh = to_modal(u)
        e = modal_energy(uh)
        lxf = 2 * sp.lx
        xf, wf = gll_points_weights(lxf)
        j = lagrange_interpolation_matrix(np.asarray(xf), sp.lx)
        uf = interp3(u, j)
        w = np.asarray(wf)
        w3 = w[None, :, None, None] * w[None, None, :, None] * w[None, None, None, :]
        ref_energy = (uf**2 * w3).reshape(sp.nelv, -1).sum(axis=1)
        assert np.allclose(ref_energy, e, rtol=1e-10)


class TestTruncation:
    def test_zero_budget_keeps_everything_significant(self, sp):
        rng = np.random.default_rng(3)
        uh = to_modal(rng.normal(size=sp.shape))
        out, keep = truncate_relative(uh, 0.0)
        assert np.allclose(out, uh)

    def test_full_budget_drops_almost_everything(self, sp):
        uh = to_modal(multiscale_field(sp))
        _, keep = truncate_relative(uh, 0.999)
        assert keep.sum() < keep.size * 0.05

    def test_negative_budget_raises(self, sp):
        with pytest.raises(ValueError):
            truncation_mask(np.ones(sp.shape), -0.1)

    def test_error_bound_respected(self, sp):
        # The bound is exact in the interpolant (modal) L2 norm; the
        # GLL-quadrature measurement can read up to ~1.5x higher when the
        # dropped energy sits in the under-integrated top modes.
        u = multiscale_field(sp)
        uh = to_modal(u)
        vol = sp.coef.mass.reshape(sp.nelv, -1).sum(axis=1)
        for eps in (0.01, 0.05, 0.2):
            uh_t, _ = truncate_relative(uh, eps, vol)
            rec = to_nodal(uh_t)
            rel = sp.norm_l2(rec - u) / sp.norm_l2(u)
            assert rel <= eps * 1.7, (eps, rel)

    def test_error_bound_exact_in_modal_norm(self, sp):
        u = multiscale_field(sp)
        uh = to_modal(u)
        vol = sp.coef.mass.reshape(sp.nelv, -1).sum(axis=1)
        total = float((modal_energy(uh) * vol).sum())
        for eps in (0.01, 0.05, 0.2):
            uh_t, _ = truncate_relative(uh, eps, vol)
            dropped = float((modal_energy(uh - uh_t) * vol).sum())
            assert np.sqrt(dropped / total) <= eps * (1 + 1e-12), eps

    def test_smooth_field_compresses_harder(self, sp):
        smooth = multiscale_field(sp, decay=3.0)
        rough = multiscale_field(sp, decay=0.5)
        ks = truncation_mask(to_modal(smooth), 0.02).mean()
        kr = truncation_mask(to_modal(rough), 0.02).mean()
        assert ks < kr

    def test_zero_field(self, sp):
        out, keep = truncate_relative(np.zeros(sp.shape), 0.1)
        assert not keep.any()
        assert np.allclose(out, 0.0)


class TestEncoder:
    def test_roundtrip_exact_float32(self, sp):
        uh = to_modal(multiscale_field(sp))
        uh_t, keep = truncate_relative(uh, 0.01)
        blob = encode_coefficients(uh_t, keep, quant_bits=32)
        rec = decode_coefficients(blob)
        assert np.allclose(rec, uh_t, atol=1e-6 * np.abs(uh_t).max())

    def test_quantization_error_small(self, sp):
        uh = to_modal(multiscale_field(sp))
        uh_t, keep = truncate_relative(uh, 0.01)
        blob = encode_coefficients(uh_t, keep, quant_bits=16)
        rec = decode_coefficients(blob)
        scale = np.abs(uh_t).max()
        assert np.abs(rec - uh_t).max() < scale * 2.0 ** (-14)

    def test_invalid_bits(self, sp):
        uh = np.ones(sp.shape)
        with pytest.raises(ValueError):
            encode_coefficients(uh, np.ones(sp.shape, bool), quant_bits=4)

    def test_corrupt_stream_rejected(self):
        with pytest.raises(Exception):
            decode_coefficients(b"garbage")

    def test_sparser_is_smaller(self, sp):
        uh = to_modal(multiscale_field(sp))
        t1, k1 = truncate_relative(uh, 0.005)
        t2, k2 = truncate_relative(uh, 0.1)
        b1 = encode_coefficients(t1, k1)
        b2 = encode_coefficients(t2, k2)
        assert len(b2) < len(b1)

    def test_mask_positions_preserved(self, sp):
        uh = to_modal(multiscale_field(sp))
        uh_t, keep = truncate_relative(uh, 0.05)
        rec = decode_coefficients(encode_coefficients(uh_t, keep))
        assert np.array_equal(rec != 0.0, uh_t != 0.0)


class TestCompressorAPI:
    def test_shape_check(self, sp):
        c = SpectralCompressor(sp)
        with pytest.raises(ValueError):
            c.compress(np.zeros((1, 2, 3)))

    def test_reduction_and_error_tradeoff(self, sp):
        u = multiscale_field(sp, decay=2.0)
        tight = SpectralCompressor(sp, error_bound=0.001)
        loose = SpectralCompressor(sp, error_bound=0.05)
        cf_t, err_t = tight.roundtrip(u)
        cf_l, err_l = loose.roundtrip(u)
        assert err_t < err_l
        assert cf_l.reduction > cf_t.reduction
        assert err_l < 0.09  # budget x quadrature-norm slack + quantization

    def test_reduction_substantial_on_smooth_data(self, sp):
        u = multiscale_field(sp, decay=3.0)
        c = SpectralCompressor(sp, error_bound=0.025)
        cf, err = c.roundtrip(u)
        assert cf.reduction > 0.80
        assert err < 0.04

    def test_save_load(self, sp, tmp_path):
        u = multiscale_field(sp)
        c = SpectralCompressor(sp, error_bound=0.02)
        cf = c.compress(u, name="ux")
        cf.save(tmp_path / "f.rprc")
        cf2 = CompressedField.load(tmp_path / "f.rprc", name="ux")
        assert np.allclose(cf2.decompress(), cf.decompress())
        assert cf2.raw_bytes == cf.raw_bytes

    def test_kept_fraction_monotone(self, sp):
        u = multiscale_field(sp)
        k1 = SpectralCompressor(sp, error_bound=0.001).kept_fraction(u)
        k2 = SpectralCompressor(sp, error_bound=0.1).kept_fraction(u)
        assert k2 < k1


@settings(max_examples=15, deadline=None)
@given(
    eps=st.floats(min_value=0.001, max_value=0.3),
    decay=st.floats(min_value=0.5, max_value=3.0),
)
def test_property_error_within_budget(eps, decay):
    """Property: measured error <= truncation budget + quantization slack."""
    sp = FunctionSpace(box_mesh((2, 1, 1)), 5)
    u = multiscale_field(sp, decay=decay, seed=42)
    c = SpectralCompressor(sp, error_bound=eps)
    _, err = c.roundtrip(u)
    assert err <= 1.7 * eps + 2e-4
