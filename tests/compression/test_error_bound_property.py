"""Property tests: the truncation stage honours its relative-L^2 budget.

The compressor's contract (see ``SpectralCompressor``): the modal
truncation error is bounded by ``eps`` *exactly* in the volume-weighted
coefficient norm -- per element the dropped energy never exceeds
``eps^2 * E_e`` (plus the documented 1e-6 global-share guard), so globally
``||u_t - u|| <= eps * sqrt(1 + 1e-6) * ||u||``.  Hypothesis drives the
bound across random shapes, spectra and budgets; the edge cases (zero
budget keeps everything, a single populated mode survives any ``eps < 1``)
are pinned explicitly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.truncation import truncate_relative, truncation_mask
from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace

from repro.compression.api import SpectralCompressor

#: Global-share guard of the truncation budget (documented in truncation.py).
BUDGET_SLACK = np.sqrt(1.0 + 1e-6)


def modal_norm(uh, vol):
    return float(np.sqrt(np.sum(uh.reshape(uh.shape[0], -1) ** 2 * vol[:, None])))


def random_coefficients(seed: int, nelv: int, lx: int, decay: float) -> np.ndarray:
    """Seeded modal coefficients with a tunable spectral decay."""
    rng = np.random.default_rng(seed)
    uh = rng.standard_normal((nelv, lx, lx, lx))
    k = np.arange(lx)
    damp = np.exp(-decay * (k[:, None, None] + k[None, :, None] + k[None, None, :]))
    return uh * damp[None]


class TestModalTruncationBound:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        nelv=st.integers(1, 6),
        lx=st.integers(2, 6),
        decay=st.floats(0.0, 2.0),
        eps=st.floats(0.0, 0.5),
        graded=st.booleans(),
    )
    def test_relative_l2_bound_holds(self, seed, nelv, lx, decay, eps, graded):
        uh = random_coefficients(seed, nelv, lx, decay)
        vol = (
            np.linspace(1.0, 3.0, nelv)
            if graded
            else np.ones(nelv)
        )
        uh_t, keep = truncate_relative(uh, eps, vol)
        err = modal_norm(uh_t - uh, vol)
        norm = modal_norm(uh, vol)
        assert err <= eps * BUDGET_SLACK * norm + 1e-30
        # Truncation only ever zeroes coefficients, never alters kept ones.
        assert np.array_equal(uh_t[keep], uh[keep])
        assert np.all(uh_t[~keep] == 0.0)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        nelv=st.integers(1, 4),
        lx=st.integers(2, 5),
    )
    def test_zero_budget_keeps_all_populated_modes(self, seed, nelv, lx):
        """eps = 0: round-trip must be exact (all nonzero modes kept)."""
        uh = random_coefficients(seed, nelv, lx, decay=0.5)
        uh_t, keep = truncate_relative(uh, 0.0, np.ones(nelv))
        np.testing.assert_array_equal(uh_t, uh)
        assert np.all(keep[uh != 0.0])

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        lx=st.integers(2, 5),
        eps=st.floats(0.0, 0.99),
    )
    def test_single_mode_survives_any_budget_below_one(self, seed, lx, eps):
        """All energy in one mode: dropping it would violate any eps < 1."""
        rng = np.random.default_rng(seed)
        uh = np.zeros((2, lx, lx, lx))
        idx = tuple(rng.integers(0, lx, size=3))
        uh[(0,) + idx] = 1.0 + rng.random()
        uh[(1,) + idx] = -1.0 - rng.random()
        uh_t, keep = truncate_relative(uh, eps, np.ones(2))
        np.testing.assert_array_equal(uh_t, uh)
        assert keep[(0,) + idx] and keep[(1,) + idx]

    def test_all_zero_field_keeps_nothing(self):
        uh = np.zeros((3, 4, 4, 4))
        mask = truncation_mask(uh, 0.1, np.ones(3))
        assert not mask.any()


class TestFullRoundtripBound:
    """End-to-end compressor bound on nodal fields.

    The truncation bound is exact in the modal norm; the GLL-quadrature
    measurement of the nodal error can read up to ~1.5x higher (documented
    in the API), and 16-bit quantization adds a small absolute floor.
    """

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        eps=st.floats(0.005, 0.1),
    )
    def test_roundtrip_respects_documented_bound(self, seed, eps):
        space = FunctionSpace(box_mesh((2, 2, 2)), 5)
        rng = np.random.default_rng(seed)
        a = rng.uniform(0.5, 2.0, size=3)
        field = (
            np.sin(a[0] * np.pi * space.x)
            * np.cos(a[1] * np.pi * space.y)
            * np.sin(a[2] * np.pi * space.z)
            + 0.1 * rng.standard_normal(space.shape)
        )
        comp = SpectralCompressor(space, error_bound=eps)
        _, err = comp.roundtrip(field)
        assert err <= 1.6 * eps + 1e-3

    def test_zero_budget_roundtrip_is_quantization_limited(self):
        space = FunctionSpace(box_mesh((2, 2, 2)), 5)
        field = np.sin(np.pi * space.x) * np.cos(np.pi * space.y)
        comp = SpectralCompressor(space, error_bound=0.0)
        _, err = comp.roundtrip(field)
        # No truncation: only the 16-bit quantization noise remains.
        assert err < 1e-3
