"""Tests for the compressed time-series container."""

import numpy as np
import pytest

from repro.compression import SpectralCompressor
from repro.compression.timeseries import CompressedSeriesWriter, read_compressed_series
from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace


@pytest.fixture(scope="module")
def sp():
    return FunctionSpace(box_mesh((2, 1, 1)), 5)


def snapshots(sp, n=5):
    out = []
    for i in range(n):
        out.append(np.sin(2 * np.pi * sp.x + 0.3 * i) * np.cos(np.pi * sp.z))
    return out


class TestCompressedSeries:
    def test_roundtrip(self, sp, tmp_path):
        comp = SpectralCompressor(sp, error_bound=0.01)
        snaps = snapshots(sp)
        path = tmp_path / "series.rprs"
        with CompressedSeriesWriter(path, comp) as w:
            for i, s in enumerate(snaps):
                w.append(s, name="T", time=0.1 * i)
        records = read_compressed_series(path)
        assert len(records) == len(snaps)
        for i, (meta, cf) in enumerate(records):
            assert meta["name"] == "T"
            assert meta["time"] == pytest.approx(0.1 * i)
            rec = cf.decompress()
            err = sp.norm_l2(rec - snaps[i]) / sp.norm_l2(snaps[i])
            assert err < 0.02

    def test_reduction_reported(self, sp, tmp_path):
        comp = SpectralCompressor(sp, error_bound=0.02)
        w = CompressedSeriesWriter(tmp_path / "s.rprs", comp)
        for s in snapshots(sp, 4):
            w.append(s, "T")
        meta = w.close()
        assert meta["reduction"] > 0.5
        assert len(meta["records"]) == 4

    def test_double_close_raises(self, sp, tmp_path):
        w = CompressedSeriesWriter(tmp_path / "s.rprs", SpectralCompressor(sp))
        w.close()
        with pytest.raises(RuntimeError):
            w.close()
        with pytest.raises(RuntimeError):
            w.append(np.zeros(sp.shape), "T")

    def test_corrupt_file_rejected(self, tmp_path):
        p = tmp_path / "bad.rprs"
        p.write_bytes(b"not a series")
        with pytest.raises(ValueError):
            read_compressed_series(p)

    def test_mixed_fields(self, sp, tmp_path):
        comp = SpectralCompressor(sp, error_bound=0.02)
        path = tmp_path / "mixed.rprs"
        with CompressedSeriesWriter(path, comp) as w:
            w.append(np.sin(np.pi * sp.x), "ux", time=1.0)
            w.append(0.5 - sp.z, "T", time=1.0)
        recs = read_compressed_series(path)
        assert [m["name"] for m, _ in recs] == ["ux", "T"]
        t_rec = recs[1][1].decompress()
        assert np.allclose(t_rec, 0.5 - sp.z, atol=1e-3)
