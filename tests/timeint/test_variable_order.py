"""Design-order verification of the variable-step BDF/EXT scheme.

Complements ``test_variable.py`` (coefficient algebra, implicit-only ODE
ramp) with the two properties the verification subsystem needs:

* a Hypothesis sweep that equal steps of *any* magnitude reduce exactly to
  the classic fixed-dt tables at every order;
* the full implicit/explicit pairing -- BDF on the stiff part, EXT on an
  explicitly-evaluated nonlinear forcing, exactly as the fluid and scalar
  schemes use it -- observes its design order ``k`` under *smoothly
  modulated* random step sequences, with the multistep history jump-started
  from exact data so no low-order ramp pollutes the fit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeint.bdf_ext import BDF_COEFFS, EXT_COEFFS, TimeScheme
from repro.timeint.variable import VariableTimeScheme, variable_bdf, variable_ext


@settings(max_examples=40, deadline=None)
@given(
    order=st.integers(1, 3),
    dt=st.floats(min_value=1e-6, max_value=10.0),
)
def test_property_equal_steps_reduce_to_fixed_tables(order, dt):
    """The fixed-dt tables are the equal-step limit at every magnitude."""
    dts = [dt] * order
    b0, bs = variable_bdf(dts)
    b0_ref, bs_ref = BDF_COEFFS[order]
    assert b0 == pytest.approx(b0_ref, rel=1e-10)
    assert np.allclose(bs, bs_ref, rtol=1e-9, atol=1e-12)
    assert np.allclose(variable_ext(dts), EXT_COEFFS[order], rtol=1e-9, atol=1e-12)


class TestJumpStart:
    def test_fixed_scheme_skips_the_ramp(self):
        ts = TimeScheme(3)
        assert ts.order == 1
        ts.jump_start()
        assert ts.order == 3
        ts.advance()
        assert ts.order == 3

    def test_fixed_scheme_never_lowers_progress(self):
        ts = TimeScheme(2)
        for _ in range(5):
            ts.advance()
        ts.jump_start()
        assert ts.step_count == 5

    def test_variable_scheme_requires_enough_history(self):
        ts = VariableTimeScheme(3)
        with pytest.raises(ValueError, match="completed steps"):
            ts.jump_start([0.1])
        with pytest.raises(ValueError, match="positive"):
            ts.jump_start([0.1, -0.1])

    def test_variable_scheme_uses_supplied_history(self):
        ts = VariableTimeScheme(3)
        ts.jump_start([0.1, 0.2])
        assert ts.order == 3
        ts.set_step(0.05)
        b0, bs = ts.bdf
        ref_b0, ref_bs = variable_bdf([0.05, 0.1, 0.2])
        assert b0 == pytest.approx(ref_b0)
        assert np.allclose(bs, ref_bs)


def smooth_dt_sequence(n: int, seed: int, total: float = 1.0) -> np.ndarray:
    """Sinusoidally modulated steps (CFL-controller-like), summing to total."""
    rng = np.random.default_rng(seed)
    phase = rng.uniform(0.0, 2 * np.pi)
    i = np.arange(n)
    dts = 1.0 + 0.3 * np.sin(2 * np.pi * i / n + phase)
    return dts / dts.sum() * total


def integrate_imex(order: int, dts: np.ndarray) -> float:
    """IMEX integration of ``y' = -y + f(y, t)`` with an exact manufactured y.

    The linear ``-y`` goes through BDF (implicit), the nonlinear forcing
    ``f = -y^2 / 2 + s(t)`` through EXT (explicit, evaluated at previous
    levels from *computed* values) -- the same implicit/explicit split the
    fluid and scalar schemes apply to diffusion vs. advection.
    """

    def y_exact(t):
        return np.sin(2.0 * t) + 1.5

    def s(t):
        y = y_exact(t)
        return 2.0 * np.cos(2.0 * t) + y + 0.5 * y * y

    def f_expl(y, t):
        return -0.5 * y * y + s(t)

    ts = VariableTimeScheme(order)
    # Exact history at constant pre-steps dts[0]: y and f levels newest first.
    dt0 = float(dts[0])
    pre = [dt0] * (order - 1)
    y_hist = [y_exact(-j * dt0) for j in range(order)]
    f_hist = [f_expl(y_exact(-j * dt0), -j * dt0) for j in range(1, order)]
    if pre:
        ts.jump_start(pre)

    t = 0.0
    err = 0.0
    for dt in dts:
        dt = float(dt)
        ts.set_step(dt)
        b0, bs = ts.bdf
        ext = ts.ext
        f_hist.insert(0, f_expl(y_hist[0], t))
        del f_hist[order:]
        fhat = sum(aq * f_hist[q] for q, aq in enumerate(ext[: len(f_hist)]))
        bsum = sum(bj * y_hist[j] for j, bj in enumerate(bs[: len(y_hist)]))
        y_new = (bsum / dt + fhat) / (b0 / dt + 1.0)
        y_hist.insert(0, y_new)
        del y_hist[order:]
        ts.advance()
        t += dt
        err = max(err, abs(y_new - y_exact(t)))
    return err


class TestImexDesignOrder:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_design_order_under_smooth_random_steps(self, order):
        ns = (40, 80, 160)
        # Three seeded modulation phases; assert the fitted order on each.
        for seed in (0, 1, 2):
            errs = [integrate_imex(order, smooth_dt_sequence(n, seed)) for n in ns]
            slope = np.polyfit(np.log([1.0 / n for n in ns]), np.log(errs), 1)[0]
            assert slope >= order - 0.2, (
                f"BDF{order}/EXT{order} with variable steps (seed {seed}): "
                f"observed order {slope:.2f}, errors {errs}"
            )

    def test_constant_steps_match_fixed_scheme_order(self):
        # Sanity anchor: the same IMEX loop at constant dt shows the same
        # order, so any variable-step failure localizes to the coefficients.
        for order in (1, 2, 3):
            errs = [
                integrate_imex(order, np.full(n, 1.0 / n)) for n in (40, 80)
            ]
            rate = np.log2(errs[0] / errs[1])
            assert rate >= order - 0.2
