"""Tests for BDF/EXT coefficients, the order ramp and CFL estimation."""

import numpy as np
import pytest

from repro.sem.mesh import box_mesh
from repro.sem.space import FunctionSpace
from repro.timeint import BDF_COEFFS, EXT_COEFFS, TimeScheme, courant_number, max_stable_dt


class TestCoefficients:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_consistency(self, order):
        assert TimeScheme.verify_consistency(order) < 1e-13

    def test_bdf_sums(self):
        # For exactness on constants: b0 - sum(bj) == 0.
        for order, (b0, bs) in BDF_COEFFS.items():
            assert b0 - sum(bs) == pytest.approx(0.0, abs=1e-14), order

    def test_ext_sums_to_one(self):
        for order, a in EXT_COEFFS.items():
            assert sum(a) == pytest.approx(1.0, abs=1e-14), order

    def test_bdf3_values(self):
        b0, bs = BDF_COEFFS[3]
        assert b0 == pytest.approx(11 / 6)
        assert bs == pytest.approx((3.0, -1.5, 1 / 3))

    def test_order_of_accuracy_on_ode(self):
        # Integrate dy/dt = -y with BDF-k/analytic and check convergence order.
        for order in (1, 2, 3):
            errs = []
            for n in (40, 80):
                dt = 1.0 / n
                b0, bs = BDF_COEFFS[order]
                # Exact history, newest first: y(t) = e^{-t} at t = 0, -dt, ...
                hist = [np.exp(i * dt) for i in range(order)]
                t = 0.0
                while t < 1.0 - 1e-12:
                    # (b0 y_new - sum bj y_old)/dt = -y_new
                    s = sum(bj * hist[j] for j, bj in enumerate(bs[:len(hist)]))
                    y_new = s / (b0 + dt)
                    hist.insert(0, y_new)
                    del hist[order:]
                    t += dt
                errs.append(abs(hist[0] - np.exp(-1.0)))
            rate = np.log2(errs[0] / errs[1])
            assert rate > order - 0.3, (order, errs)


class TestTimeScheme:
    def test_invalid_order(self):
        with pytest.raises(ValueError):
            TimeScheme(4)

    def test_order_ramp(self):
        ts = TimeScheme(3)
        assert ts.order == 1
        ts.advance()
        assert ts.order == 2
        ts.advance()
        assert ts.order == 3
        ts.advance()
        assert ts.order == 3

    def test_target_order_one(self):
        ts = TimeScheme(1)
        ts.advance()
        ts.advance()
        assert ts.order == 1

    def test_coefficients_track_order(self):
        ts = TimeScheme(2)
        assert ts.bdf == BDF_COEFFS[1]
        ts.advance()
        assert ts.bdf == BDF_COEFFS[2]
        assert ts.ext == EXT_COEFFS[2]


class TestCFL:
    @pytest.fixture(scope="class")
    def sp(self):
        return FunctionSpace(box_mesh((2, 2, 2)), 5)

    def test_zero_velocity(self, sp):
        z = np.zeros(sp.shape)
        assert courant_number(sp, z, z, z, 0.1) == 0.0
        assert max_stable_dt(sp, z, z, z) == np.inf

    def test_linear_in_dt_and_velocity(self, sp):
        u = np.ones(sp.shape)
        z = np.zeros(sp.shape)
        c1 = courant_number(sp, u, z, z, 0.1)
        c2 = courant_number(sp, u, z, z, 0.2)
        c3 = courant_number(sp, 2 * u, z, z, 0.1)
        assert c2 == pytest.approx(2 * c1)
        assert c3 == pytest.approx(2 * c1)

    def test_magnitude_reasonable(self, sp):
        # |u| = 1 through elements of size 0.5 with lx=5: the smallest GLL
        # spacing is 0.5 * (x1-x0)/2; CFL(dt=that spacing) ~ 1.
        u = np.ones(sp.shape)
        z = np.zeros(sp.shape)
        from repro.sem.quadrature import gll_points_weights

        x, _ = gll_points_weights(5)
        dmin = (x[1] - x[0]) * 0.25  # half-element scale maps [-1,1] -> 0.5
        c = courant_number(sp, u, z, z, dmin)
        assert 0.5 < c < 2.0

    def test_max_stable_dt_inverse(self, sp):
        u = np.ones(sp.shape)
        z = np.zeros(sp.shape)
        dt = max_stable_dt(sp, u, z, z, cfl_target=0.5)
        assert courant_number(sp, u, z, z, dt) == pytest.approx(0.5)
