"""Tests for variable-step BDF/EXT coefficients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeint.bdf_ext import BDF_COEFFS, EXT_COEFFS
from repro.timeint.variable import VariableTimeScheme, variable_bdf, variable_ext


class TestVariableCoefficients:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_reduces_to_tables_for_equal_steps(self, order):
        dts = [0.1] * order
        b0, bs = variable_bdf(dts)
        b0_ref, bs_ref = BDF_COEFFS[order]
        assert b0 == pytest.approx(b0_ref, abs=1e-13)
        assert np.allclose(bs, bs_ref, atol=1e-13)
        assert np.allclose(variable_ext(dts), EXT_COEFFS[order], atol=1e-13)

    def test_validation(self):
        with pytest.raises(ValueError):
            variable_bdf([])
        with pytest.raises(ValueError):
            variable_bdf([0.1, -0.1])
        with pytest.raises(ValueError):
            variable_ext([0.0])

    @pytest.mark.parametrize("dts", [[0.1, 0.2], [0.05, 0.1, 0.2], [0.2, 0.1, 0.05]])
    def test_exact_on_polynomials(self, dts):
        # BDF differentiates and EXT extrapolates t^m exactly for m <= k-ish.
        k = len(dts)
        taus = [0.0]
        acc = 0.0
        for dt in dts:
            acc -= dt
            taus.append(acc)
        taus = np.array(taus)
        b0, bs = variable_bdf(dts)
        a = variable_ext(dts)
        dt1 = dts[0]
        for m in range(k + 1):
            vals = taus**m
            deriv = (b0 * vals[0] - sum(bj * vals[j + 1] for j, bj in enumerate(bs))) / dt1
            exact = m * 0.0 ** (m - 1) if m >= 1 else 0.0
            if m == 1:
                exact = 1.0
            if m == 0:
                exact = 0.0
            assert deriv == pytest.approx(exact, abs=1e-10), (m, dts)
        for m in range(k):
            extrap = sum(aq * taus[q + 1] ** m for q, aq in enumerate(a))
            assert extrap == pytest.approx(0.0**m if m > 0 else 1.0, abs=1e-10)


class TestVariableTimeScheme:
    def test_requires_set_step(self):
        ts = VariableTimeScheme(3)
        with pytest.raises(RuntimeError):
            _ = ts.bdf
        with pytest.raises(RuntimeError):
            ts.advance()

    def test_order_ramp(self):
        ts = VariableTimeScheme(3)
        ts.set_step(0.1)
        assert ts.order == 1
        b0, bs = ts.bdf
        assert b0 == pytest.approx(1.0)
        assert bs == pytest.approx((1.0,))
        ts.advance()
        ts.set_step(0.1)
        assert ts.order == 2
        ts.advance()
        ts.set_step(0.1)
        b0, bs = ts.bdf
        assert b0 == pytest.approx(BDF_COEFFS[3][0])

    def test_changing_steps(self):
        ts = VariableTimeScheme(2)
        ts.set_step(0.1)
        ts.advance()
        ts.set_step(0.2)  # doubled step
        b0, bs = ts.bdf
        ref = variable_bdf([0.2, 0.1])
        assert b0 == pytest.approx(ref[0])
        assert np.allclose(bs, ref[1])

    def test_ode_convergence_with_random_steps(self):
        # Integrate y' = -y over [0, 1] with randomly varying steps.
        rng = np.random.default_rng(0)
        for order in (1, 2, 3):
            errs = []
            for n in (60, 120):
                steps = rng.uniform(0.5, 1.5, size=n)
                steps = steps / steps.sum()  # total time 1
                ts = VariableTimeScheme(order)
                hist = [1.0]  # y(0), newest first
                t = 0.0
                for dt in steps:
                    ts.set_step(float(dt))
                    b0, bs = ts.bdf
                    s = sum(bj * hist[j] for j, bj in enumerate(bs[: len(hist)]))
                    y_new = s / (b0 + dt)
                    hist.insert(0, y_new)
                    del hist[order:]
                    ts.advance()
                    t += dt
                errs.append(abs(hist[0] - np.exp(-1.0)))
            rate = np.log2(errs[0] / errs[1])
            assert rate > order - 0.5, (order, errs)


@settings(max_examples=25, deadline=None)
@given(
    dts=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=3),
)
def test_property_bdf_consistency_any_steps(dts):
    """Property: variable BDF is exact on constants and linears."""
    b0, bs = variable_bdf(dts)
    # Constants: b0 - sum(bs) == 0.
    assert b0 - sum(bs) == pytest.approx(0.0, abs=1e-9)
    # Linear u(t) = t: derivative 1.
    taus = [0.0]
    acc = 0.0
    for dt in dts:
        acc -= dt
        taus.append(acc)
    deriv = (b0 * 0.0 - sum(bj * taus[j + 1] for j, bj in enumerate(bs))) / dts[0]
    assert deriv == pytest.approx(1.0, rel=1e-8)
