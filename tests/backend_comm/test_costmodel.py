"""Unit coverage of the DES comm cost model and the batched round log."""

import numpy as np
import pytest

from repro.comm import BatchedWorld, CommCostModel, CommRound, NodeTopology
from repro.perfmodel.machine import LEONARDO, LUMI


def _round(src, dst, nbytes, phase="gs.request"):
    return CommRound(
        phase=phase,
        src=np.asarray(src, dtype=np.int64),
        dst=np.asarray(dst, dtype=np.int64),
        nbytes=np.asarray(nbytes, dtype=np.int64),
    )


class TestCommRound:
    def test_counts_and_locality_split(self):
        topo = NodeTopology(8, 4)  # nodes {0..3}, {4..7}
        r = _round([0, 0, 1], [1, 4, 5], [100, 200, 300])
        assert r.n_messages == 3
        assert r.total_bytes == 600
        split = r.split_by_locality(topo)
        assert split["intra"] == (1, 100)
        assert split["inter"] == (2, 500)

    def test_empty_round(self):
        r = _round([], [], [])
        assert r.n_messages == 0
        assert r.total_bytes == 0


class TestCommCostModel:
    def test_inter_costs_more_than_intra(self):
        topo = NodeTopology(8, 4)
        model = CommCostModel(LUMI, topology=topo)
        intra = model.edge_costs_us(_round([0], [1], [1024]))
        inter = model.edge_costs_us(_round([0], [4], [1024]))
        assert inter[0] > intra[0] > 0.0

    def test_leader_edges_get_full_node_bandwidth(self):
        topo = NodeTopology(8, 4)
        aggregated = CommCostModel(LUMI, topology=topo)
        flat_nic = CommCostModel(LUMI, topology=topo, aggregate_leader_nic=False)
        # Leader-to-leader edge (0 and 4 lead their nodes), big payload so
        # the beta term dominates.
        r = _round([0], [4], [10**6])
        assert aggregated.edge_costs_us(r)[0] < flat_nic.edge_costs_us(r)[0]
        # A non-leader edge is priced identically either way.
        r2 = _round([1], [5], [10**6])
        assert aggregated.edge_costs_us(r2)[0] == flat_nic.edge_costs_us(r2)[0]

    def test_nic_message_rate_limits_small_message_floods(self):
        topo = NodeTopology(8, 4)
        model = CommCostModel(LUMI, topology=topo)
        # 16 tiny messages from distinct ranks of node 0 to node 1: each
        # rank is barely busy, but the node NIC pays 16 message slots.
        src = np.tile([0, 1, 2, 3], 4)
        dst = np.tile([4, 5, 6, 7], 4)
        flood = _round(src, dst, np.full(16, 8))
        nic = model.node_nic_us(flood)
        assert nic[0] == pytest.approx(nic[1])
        assert nic[0] >= 16 * model.nic_message_us
        assert model.round_us(flood, 8) == pytest.approx(nic[0])

    def test_intra_only_round_skips_the_nic(self):
        topo = NodeTopology(8, 4)
        model = CommCostModel(LUMI, topology=topo)
        r = _round([0, 1], [2, 3], [64, 64])
        assert model.node_nic_us(r).max() == 0.0

    def test_log_us_accumulates_per_phase(self):
        topo = NodeTopology(4, 2)
        model = CommCostModel(LEONARDO, topology=topo)
        rounds = [
            _round([0], [2], [128], phase="gs.request"),
            _round([2], [0], [128], phase="gs.reply"),
            _round([0], [2], [64], phase="gs.request"),
        ]
        log = model.log_us(rounds, 4)
        assert set(log) == {"total", "gs.request", "gs.reply"}
        assert log["total"] == pytest.approx(log["gs.request"] + log["gs.reply"])
        per_rank = model.rank_log_us(rounds, 4)
        assert per_rank.shape == (4,)
        assert per_rank[1] == 0.0 and per_rank[0] > 0.0

    def test_empty_round_prices_to_zero(self):
        model = CommCostModel(LUMI, topology=NodeTopology(4, 2))
        r = _round([], [], [])
        assert model.round_us(r, 4) == 0.0
        assert model.rank_round_us(r, 4).tolist() == [0.0] * 4

    def test_default_topology_is_the_machine_packing(self):
        model = CommCostModel(LUMI)
        assert model.topology.ranks_per_node == LUMI.gpus_per_node
        assert model.topology.n_ranks == LUMI.n_logical_gpus


class TestBatchedWorldLog:
    def test_exchange_logs_wire_messages_only(self):
        world = BatchedWorld(4)
        world.exchange_batched(
            np.array([0, 1, 2]), np.array([1, 2, 2]), np.array([16, 32, 64]),
            phase="topo.stage_up",
        )
        assert len(world.comm_log) == 1
        r = world.comm_log[0]
        assert r.phase == "topo.stage_up"
        # The 2->2 self-message never hits the wire, the log, or the stats.
        assert r.n_messages == 2
        assert r.total_bytes == 48
        assert world.stats.p2p_messages == 2

    def test_exchange_validates_rank_ranges(self):
        world = BatchedWorld(2)
        with pytest.raises(ValueError):
            world.exchange_batched(np.array([0]), np.array([5]), np.array([8]))
        with pytest.raises(ValueError):
            world.exchange_batched(np.array([0, 1]), np.array([1]), np.array([8]))
