"""Tests for the device abstraction layer."""

import numpy as np
import pytest

from repro.backend import (
    CpuDevice,
    InstrumentedDevice,
    SimulatedGpuDevice,
    available_backends,
    get_backend,
)
from repro.gpu.device import A100


def axpy(alpha):
    def kernel(x, y):
        y += alpha * x

    return kernel


class TestCpuDevice:
    def test_roundtrip(self):
        dev = CpuDevice()
        host = np.arange(6.0)
        arr = dev.to_device(host)
        host[0] = 99.0  # device copy must be independent
        back = dev.to_host(arr)
        assert back[0] == 0.0

    def test_launch_mutates_device_memory(self):
        dev = CpuDevice()
        x = dev.to_device(np.ones(4))
        y = dev.to_device(np.zeros(4))
        dev.launch("axpy", axpy(2.0), x, y)
        assert np.allclose(dev.to_host(y), 2.0)

    def test_allocation_tracking(self):
        dev = CpuDevice()
        dev.allocate((10,))
        assert dev.allocated_bytes == 80

    def test_cross_device_guard(self):
        d1, d2 = CpuDevice(), CpuDevice()
        a = d1.to_device(np.ones(3))
        with pytest.raises(ValueError, match="device"):
            d2.launch("k", lambda x: None, a)


class TestInstrumentedDevice:
    def test_records_launches(self):
        dev = InstrumentedDevice(CpuDevice())
        x = dev.to_device(np.ones(1000))
        y = dev.to_device(np.zeros(1000))
        dev.launch("axpy", axpy(1.0), x, y)
        dev.launch("axpy", axpy(1.0), x, y)
        assert len(dev.records) == 2
        n, b, t = dev.totals_by_kernel()["axpy"]
        assert n == 2
        assert b == 2 * 2 * 8000
        assert t >= 0.0
        assert np.allclose(dev.to_host(y), 2.0)

    def test_measured_bandwidth_positive(self):
        dev = InstrumentedDevice(CpuDevice())
        x = dev.to_device(np.ones(200_000))
        y = dev.to_device(np.zeros(200_000))
        dev.launch("axpy", axpy(1.0), x, y)
        assert dev.measured_bandwidth_gbs("axpy") > 0.0


class TestSimulatedGpu:
    def test_numerics_match_cpu(self):
        sim = SimulatedGpuDevice(A100)
        x = sim.to_device(np.arange(5.0))
        y = sim.to_device(np.ones(5))
        sim.launch("axpy", axpy(3.0), x, y)
        assert np.allclose(sim.to_host(y), 1.0 + 3.0 * np.arange(5.0))

    def test_clock_advances_per_launch(self):
        sim = SimulatedGpuDevice(A100)
        x = sim.to_device(np.zeros(1000))
        t0 = sim.simulated_time_us
        sim.launch("zero", lambda a: None, x)
        assert sim.simulated_time_us > t0

    def test_big_kernel_costs_bandwidth_time(self):
        sim = SimulatedGpuDevice(A100)
        n = 10_000_000
        x = sim.to_device(np.zeros(n))
        sim.reset_clock()
        sim.launch("touch", lambda a: None, x)
        sim.synchronize()
        expect = n * 8 / (A100.peak_bandwidth_gbs * 1e9) * 1e6
        assert sim.simulated_time_us >= expect

    def test_streams_overlap_in_simulated_time(self):
        sim = SimulatedGpuDevice(A100)
        n = 2_000_000
        a = sim.to_device(np.zeros(n))
        b = sim.to_device(np.zeros(n))
        sim.reset_clock()
        sim.launch("k0", lambda x: None, a, stream=0)
        sim.launch("k1", lambda x: None, b, stream=1)
        sim.synchronize()
        two_stream = sim.simulated_time_us

        sim2 = SimulatedGpuDevice(A100)
        a2 = sim2.to_device(np.zeros(n))
        b2 = sim2.to_device(np.zeros(n))
        sim2.reset_clock()
        sim2.launch("k0", lambda x: None, a2, stream=0)
        sim2.launch("k1", lambda x: None, b2, stream=0)
        sim2.synchronize()
        one_stream = sim2.simulated_time_us
        assert two_stream < one_stream

    def test_transfer_accounting(self):
        sim = SimulatedGpuDevice(A100)
        x = sim.to_device(np.zeros(100))
        sim.to_host(x)
        assert sim.h2d_bytes == 800
        assert sim.d2h_bytes == 800


class TestRegistry:
    def test_available(self):
        names = available_backends()
        assert "cpu" in names
        assert "sim:a100" in names

    def test_get_backend_constructs_fresh(self):
        d1 = get_backend("cpu")
        d2 = get_backend("cpu")
        assert d1 is not d2

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="available"):
            get_backend("nope")

    def test_sim_backend_runs(self):
        dev = get_backend("sim:mi250x")
        x = dev.to_device(np.ones(10))
        dev.launch("noop", lambda a: None, x)
        assert dev.simulated_time_us > 0
