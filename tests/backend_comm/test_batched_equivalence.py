"""Property suite: the batched comm engine is indistinguishable from the legacy one.

The tentpole contract of :class:`~repro.comm.batched.BatchedWorld` /
:class:`~repro.comm.topology.BatchedGatherScatter` is *behavioral
bit-identity*: under the same seed and inputs, every collective result,
every traffic counter and every injected-fault outcome must match the
per-rank-object :class:`~repro.comm.simworld.SimWorld` path exactly --
and the topology-staged gather--scatter must equal the flat one to 0 ulp.
Hypothesis drives random meshes, partitions, payloads and fault seeds
through both engines and compares bits, not tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    BatchedGatherScatter,
    BatchedWorld,
    DistributedGatherScatter,
    NodeTopology,
    RetryPolicy,
    SimWorld,
)
from repro.comm.campaign import structured_global_ids
from repro.resilience.faults import FaultInjector

# -- strategies ------------------------------------------------------------------

world_sizes = st.integers(min_value=1, max_value=6)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
ops = st.sampled_from(["sum", "max", "min"])

mesh_shapes = st.tuples(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)


def _mesh_and_partition(shape, lx, nranks, seed):
    """A structured mesh with a random (every-rank-used) partition."""
    ids, _cent = structured_global_ids(shape, lx)
    nelv = int(np.prod(shape))
    rng = np.random.default_rng(seed)
    owner = rng.integers(0, nranks, size=nelv)
    # Guarantee every rank owns at least one element when possible, so
    # the partition exercises the whole world.
    for r in range(min(nranks, nelv)):
        owner[r] = r
    return ids, owner, (nelv, lx, lx, lx)


def _paired_worlds(nranks, **kwargs):
    return SimWorld(nranks, **kwargs), BatchedWorld(nranks, **kwargs)


def _random_sends(nranks, rng, max_msgs=8):
    sends = {}
    for _ in range(int(rng.integers(1, max_msgs + 1))):
        src, dst = int(rng.integers(nranks)), int(rng.integers(nranks))
        sends[(src, dst)] = rng.normal(size=int(rng.integers(1, 16)))
    return sends


def _stats_dict(stats):
    out = dict(stats.__dict__)
    return out


# -- collectives -----------------------------------------------------------------


class TestCollectiveEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(nranks=world_sizes, seed=seeds, op=ops)
    def test_allreduce_scalar_bitmatch(self, nranks, seed, op):
        values = np.random.default_rng(seed).normal(size=nranks).tolist()
        legacy, batched = _paired_worlds(nranks)
        a = legacy.allreduce_scalar(list(values), op=op)
        b = batched.allreduce_scalar(list(values), op=op)
        assert a == b and np.signbit(a) == np.signbit(b)
        assert _stats_dict(legacy.stats) == _stats_dict(batched.stats)

    @settings(max_examples=25, deadline=None)
    @given(nranks=world_sizes, seed=seeds, op=ops)
    def test_allreduce_array_bitmatch(self, nranks, seed, op):
        rng = np.random.default_rng(seed)
        arrays = [rng.normal(size=(3, 2)) for _ in range(nranks)]
        legacy, batched = _paired_worlds(nranks)
        a = legacy.allreduce_array([x.copy() for x in arrays], op=op)
        b = batched.allreduce_array([x.copy() for x in arrays], op=op)
        assert a.tobytes() == b.tobytes()
        assert _stats_dict(legacy.stats) == _stats_dict(batched.stats)

    @settings(max_examples=25, deadline=None)
    @given(nranks=world_sizes, seed=seeds)
    def test_gather_and_barrier_bitmatch(self, nranks, seed):
        rng = np.random.default_rng(seed)
        values = [rng.normal(size=4) for _ in range(nranks)]
        root = int(rng.integers(nranks))
        legacy, batched = _paired_worlds(nranks)
        ga = legacy.gather([v.copy() for v in values], root=root)
        gb = batched.gather([v.copy() for v in values], root=root)
        legacy.barrier()
        batched.barrier()
        assert all(x.tobytes() == y.tobytes() for x, y in zip(ga, gb))
        assert _stats_dict(legacy.stats) == _stats_dict(batched.stats)


# -- point-to-point --------------------------------------------------------------


class TestExchangeEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(nranks=world_sizes, seed=seeds)
    def test_exchange_bitmatch(self, nranks, seed):
        rng = np.random.default_rng(seed)
        sends = _random_sends(nranks, rng)
        legacy, batched = _paired_worlds(nranks)
        da = legacy.exchange({k: v.copy() for k, v in sends.items()})
        db = batched.exchange({k: v.copy() for k, v in sends.items()})
        assert set(da) == set(db)
        for key in da:
            assert da[key].tobytes() == db[key].tobytes()
        assert _stats_dict(legacy.stats) == _stats_dict(batched.stats)

    @settings(max_examples=30, deadline=None)
    @given(nranks=world_sizes, seed=seeds)
    def test_injected_fault_outcomes_bitmatch(self, nranks, seed):
        """Same fault seed => same drops/corruptions/stats on both worlds."""
        rng = np.random.default_rng(seed)
        sends = _random_sends(nranks, rng)

        def faulted(world_cls):
            return world_cls(
                nranks,
                fault_injector=FaultInjector(
                    seed=seed, drop_rate=0.3, corrupt_rate=0.2, delay_rate=0.1
                ),
            )

        legacy = faulted(SimWorld)
        batched = faulted(BatchedWorld)
        da = legacy.exchange({k: v.copy() for k, v in sends.items()})
        db = batched.exchange({k: v.copy() for k, v in sends.items()})
        for key in da:
            assert da[key].tobytes() == db[key].tobytes()
        assert _stats_dict(legacy.stats) == _stats_dict(batched.stats)

    @settings(max_examples=20, deadline=None)
    @given(nranks=world_sizes, seed=seeds)
    def test_reliable_channel_outcomes_bitmatch(self, nranks, seed):
        """Retry policy engaged: retransmission counters must match too."""
        rng = np.random.default_rng(seed)
        sends = _random_sends(nranks, rng)

        def hardened(world_cls):
            return world_cls(
                nranks,
                fault_injector=FaultInjector(seed=seed, drop_rate=0.3),
                retry=RetryPolicy(seed=seed, max_retries=6),
            )

        def outcome(world):
            # Exhausted retries raise; the two engines must then raise
            # identically, so compare exception types as part of the outcome.
            try:
                return world.exchange({k: v.copy() for k, v in sends.items()})
            except Exception as exc:  # noqa: BLE001 -- compared, not hidden
                return type(exc).__name__

        legacy = hardened(SimWorld)
        batched = hardened(BatchedWorld)
        da = outcome(legacy)
        db = outcome(batched)
        if isinstance(da, str) or isinstance(db, str):
            assert da == db
        else:
            for key in da:
                assert da[key].tobytes() == db[key].tobytes()
        assert _stats_dict(legacy.stats) == _stats_dict(batched.stats)


# -- gather-scatter --------------------------------------------------------------


class TestGatherScatterEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        shape=mesh_shapes,
        lx=st.integers(min_value=2, max_value=4),
        nranks=st.integers(min_value=2, max_value=6),
        rpn=st.integers(min_value=1, max_value=4),
        seed=seeds,
    )
    def test_flat_equals_topology_to_zero_ulp(self, shape, lx, nranks, rpn, seed):
        ids, owner, fshape = _mesh_and_partition(shape, lx, nranks, seed)
        world = BatchedWorld(nranks)
        gs = BatchedGatherScatter(
            ids, owner, fshape, world, topology=NodeTopology(nranks, rpn)
        )
        u = np.random.default_rng(seed).normal(size=fshape)
        assert gs.add(u, "flat").tobytes() == gs.add(u, "topology").tobytes()

    @settings(max_examples=25, deadline=None)
    @given(
        shape=mesh_shapes,
        lx=st.integers(min_value=2, max_value=4),
        nranks=st.integers(min_value=2, max_value=6),
        seed=seeds,
    )
    def test_batched_bitmatches_legacy_dgs(self, shape, lx, nranks, seed):
        """Results AND TrafficStats match the per-rank object path exactly."""
        ids, owner, fshape = _mesh_and_partition(shape, lx, nranks, seed)
        u = np.random.default_rng(seed).normal(size=fshape)

        legacy_world = SimWorld(nranks)
        dgs = DistributedGatherScatter(ids, owner, fshape, legacy_world)
        legacy = dgs.add_full(u.copy())

        batched_world = BatchedWorld(nranks)
        gs = BatchedGatherScatter(ids, owner, fshape, batched_world)
        batched = gs.add(u.copy(), "flat")

        assert legacy.tobytes() == batched.tobytes()
        assert _stats_dict(legacy_world.stats) == _stats_dict(batched_world.stats)

    @settings(max_examples=20, deadline=None)
    @given(
        shape=mesh_shapes,
        lx=st.integers(min_value=2, max_value=4),
        nranks=st.integers(min_value=1, max_value=6),
        seed=seeds,
    )
    def test_matches_serial_reference(self, shape, lx, nranks, seed):
        """The distributed dssum equals a one-pass serial bincount dssum."""
        ids, owner, fshape = _mesh_and_partition(shape, lx, nranks, seed)
        u = np.random.default_rng(seed).normal(size=fshape)
        totals = np.bincount(ids, weights=u.reshape(-1))
        reference = totals[ids].reshape(fshape)
        world = BatchedWorld(nranks)
        gs = BatchedGatherScatter(ids, owner, fshape, world)
        assert np.allclose(gs.add(u, "flat"), reference, rtol=1e-13, atol=1e-13)

    def test_topology_moves_traffic_off_the_network(self):
        """Staging reduces inter-node messages without changing bytes entering ranks."""
        ids, owner, fshape = _mesh_and_partition((3, 3, 3), 3, 6, seed=7)
        world = BatchedWorld(6)
        gs = BatchedGatherScatter(ids, owner, fshape, world, topology=NodeTopology(6, 2))
        flat = gs.traffic_summary("flat")
        topo = gs.traffic_summary("topology")
        assert topo["inter_messages"] <= flat["inter_messages"]

    def test_batched_world_required(self):
        ids, owner, fshape = _mesh_and_partition((2, 2, 2), 3, 2, seed=0)
        with pytest.raises(TypeError):
            BatchedGatherScatter(ids, owner, fshape, SimWorld(2))

    def test_faulted_world_refused(self):
        ids, owner, fshape = _mesh_and_partition((2, 2, 2), 3, 2, seed=0)
        world = BatchedWorld(2, fault_injector=FaultInjector(seed=1, drop_rate=0.5))
        with pytest.raises(ValueError):
            BatchedGatherScatter(ids, owner, fshape, world)

    def test_batched_exchange_refuses_faulted_world(self):
        world = BatchedWorld(2, fault_injector=FaultInjector(seed=1, drop_rate=0.5))
        with pytest.raises(RuntimeError):
            world.exchange_batched(
                np.array([0]), np.array([1]), np.array([8])
            )
