"""Tests for the distributed CG over simulated ranks."""

import numpy as np
import pytest

from repro.comm import (
    DistributedConjugateGradient,
    DistributedGatherScatter,
    SimWorld,
    linear_partition,
    rcb_partition,
)
from repro.precond.jacobi import helmholtz_diagonal
from repro.sem.bc import DirichletBC
from repro.sem.mesh import box_mesh
from repro.sem.operators import ax_helmholtz
from repro.sem.space import FunctionSpace
from repro.solvers import ConjugateGradient
from repro.precond import JacobiPrecond


def build_distributed(sp, nranks, h1, h2, mask, partition=linear_partition):
    world = SimWorld(nranks)
    owner = (
        partition(sp.mesh.nelv, nranks)
        if partition is linear_partition
        else partition(sp.mesh, nranks)
    )
    dgs = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, world)

    coef_chunks = {}
    for name in ("g11", "g22", "g33", "g12", "g13", "g23", "mass"):
        coef_chunks[name] = dgs.scatter_field(getattr(sp.coef, name))

    class LocalCoef:
        pass

    def local_amul(r, chunk):
        c = LocalCoef()
        for name, chunks in coef_chunks.items():
            setattr(c, name, chunks[r])
        return ax_helmholtz(chunk, c, sp.dx, h1, h2)

    mask_chunks = dgs.scatter_field(mask)
    diag = sp.gs.add(helmholtz_diagonal(sp, h1, h2))
    diag = np.where(mask == 0.0, 1.0, diag)
    pd = dgs.scatter_field(1.0 / diag)
    pd = [d * m for d, m in zip(pd, mask_chunks)]
    solver = DistributedConjugateGradient(
        local_amul, dgs, world, local_mask=mask_chunks, precond_diag=pd,
        tol=1e-10, maxiter=400,
    )
    return solver, dgs, world


@pytest.fixture(scope="module")
def problem():
    sp = FunctionSpace(box_mesh((3, 2, 2)), 5)
    bc = DirichletBC(sp, ["bottom", "top", "x-", "x+", "y-", "y+"], 0.0)
    h1, h2 = 0.05, 20.0
    rng = np.random.default_rng(0)
    b = sp.gs.add(sp.coef.mass * rng.normal(size=sp.shape)) * bc.mask

    def amul(u):
        return sp.gs.add(ax_helmholtz(u, sp.coef, sp.dx, h1, h2)) * bc.mask

    ref_solver = ConjugateGradient(
        amul, sp.gs.dot, precond=JacobiPrecond(sp, h1, h2, mask=bc.mask),
        tol=1e-10, maxiter=400,
    )
    x_ref, mon_ref = ref_solver.solve(b)
    assert mon_ref.converged
    return sp, bc, h1, h2, b, x_ref, mon_ref


class TestDistributedCG:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_matches_single_rank(self, problem, nranks):
        sp, bc, h1, h2, b, x_ref, mon_ref = problem
        solver, dgs, world = build_distributed(sp, nranks, h1, h2, bc.mask)
        x_chunks, mon = solver.solve(dgs.scatter_field(b))
        assert mon.converged
        x = dgs.gather_field(x_chunks)
        assert np.allclose(x, x_ref, atol=1e-7 * max(1.0, np.abs(x_ref).max()))

    def test_iteration_count_rank_invariant(self, problem):
        sp, bc, h1, h2, b, x_ref, mon_ref = problem
        its = []
        for nranks in (1, 3):
            solver, dgs, world = build_distributed(sp, nranks, h1, h2, bc.mask)
            _, mon = solver.solve(dgs.scatter_field(b))
            its.append(mon.iterations)
        assert abs(its[0] - its[1]) <= 2

    def test_communication_pattern(self, problem):
        # Exactly the budget of the performance model: 2 allreduces per
        # iteration (+1 initial) and one halo exchange per operator
        # application.
        sp, bc, h1, h2, b, x_ref, _ = problem
        solver, dgs, world = build_distributed(sp, 2, h1, h2, bc.mask)
        world.stats.reset()
        _, mon = solver.solve(dgs.scatter_field(b))
        n_it = mon.iterations
        # allreduce calls: rho + rnorm(initial) + per it (pap, rnorm, rho).
        assert world.stats.allreduce_calls == pytest.approx(3 * n_it + 2, abs=3)
        assert world.stats.p2p_messages > 0

    def test_rcb_partition_also_works(self, problem):
        sp, bc, h1, h2, b, x_ref, _ = problem
        solver, dgs, world = build_distributed(
            sp, 4, h1, h2, bc.mask, partition=rcb_partition
        )
        x_chunks, mon = solver.solve(dgs.scatter_field(b))
        assert mon.converged
        x = dgs.gather_field(x_chunks)
        assert np.allclose(x, x_ref, atol=1e-7 * max(1.0, np.abs(x_ref).max()))
