"""Golden-file regression of the Fig. 3 scaling campaign.

``BENCH_scaling.json`` is a *committed* artifact: the campaign's DES step
times depend only on the mesh structure, the RCB partition and the
Table 1 machine constants, never on the host or a wall clock, so a fresh
run must reproduce the committed numbers exactly.  A drift here means the
simulated machine changed -- which is either a deliberate model change
(regenerate the baseline and say why) or a bug in the comm engine.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks.regen_scaling_baseline import BASELINE, regenerate
from repro.comm.campaign import (
    DEFAULT_RANKS,
    DEFAULT_SHAPE,
    MACHINES,
    ScalingCampaign,
    bench_record,
    fig3_scaling_report,
    main,
    run_fig3_campaign,
    structured_global_ids,
)


@pytest.fixture(scope="module")
def campaign_results():
    return run_fig3_campaign(DEFAULT_RANKS, shape=DEFAULT_SHAPE, lx=8)


@pytest.fixture(scope="module")
def committed():
    return json.loads(Path(BASELINE).read_text())


class TestGoldenBaseline:
    def test_fresh_campaign_matches_committed_bench(self, campaign_results, committed):
        fresh = bench_record(campaign_results, environment={})
        assert set(fresh["results"]) == set(committed["results"])
        for name, entry in fresh["results"].items():
            golden = committed["results"][name]
            for key, value in entry.items():
                if isinstance(value, float):
                    assert value == pytest.approx(golden[key], rel=1e-12), (name, key)
                else:
                    assert value == golden[key], (name, key)

    def test_committed_efficiency_anchors(self, committed):
        """Spot-check the headline numbers the docs and CI gate quote."""
        res = committed["results"]
        assert res["world16_scaling_lumi"]["efficiency"] == pytest.approx(1.0)
        assert res["world1024_scaling_lumi"]["efficiency"] < 0.05
        # Topology staging must win, and win more at scale.
        for key in MACHINES:
            speedups = [
                res[f"world{n}_scaling_{key}"]["gs_topology_speedup"]
                for n in DEFAULT_RANKS
            ]
            assert all(s > 1.0 for s in speedups)
            assert speedups[-1] > speedups[0]
        # Aggregation moves traffic off the network: far fewer inter-node
        # messages than a flat exchange would need at 1024 ranks.
        assert res["world1024_scaling_lumi"]["inter_messages"] < 2000

    def test_measured_tracks_modeled(self, committed):
        """DES efficiency and the closed-form model agree on the collapse."""
        for name, entry in committed["results"].items():
            assert entry["efficiency"] == pytest.approx(
                entry["modeled_efficiency"], rel=0.5, abs=0.02
            ), name

    def test_regeneration_round_trip(self, tmp_path, committed):
        out = regenerate(tmp_path / "BENCH_scaling.json")
        assert json.loads(out.read_text()) == committed


class TestReportStability:
    def test_report_text_stable(self, campaign_results):
        report = fig3_scaling_report(campaign_results)
        assert report.startswith(
            "fig3_scaling: simulated strong scaling, measured (DES) vs modeled"
        )
        for machine in ("LUMI", "Leonardo"):
            assert any(line.startswith(machine) for line in report.splitlines())
        # One data row per (machine, rank count), with the rank count first.
        for n in DEFAULT_RANKS:
            rows = [
                line
                for line in report.splitlines()
                if line.strip().startswith(f"{n} ")
            ]
            assert len(rows) == len(MACHINES)
        assert "msgs/dssum" in report

    def test_report_paper_scale_section(self, campaign_results):
        studies = {
            key: ScalingCampaign(machine).study for key, machine in MACHINES.items()
        }
        for study in studies.values():
            study.n_elements = 108_000_000
        report = fig3_scaling_report(campaign_results, studies=studies)
        assert "paper-scale model (Fig. 3 GPU counts, 108M-element case):" in report
        assert " 16384 GPUs" in report  # LUMI's largest Fig. 3 point


class TestCampaignPieces:
    def test_structured_ids_are_conforming(self):
        ids, cent = structured_global_ids((2, 2, 2), 3)
        assert ids.size == 8 * 27
        # A 2x2x2 grid at lx=3 is a 5^3 conforming node grid.
        assert np.unique(ids).size == 125
        assert cent.shape == (8, 3)

    def test_structured_ids_validation(self):
        with pytest.raises(ValueError):
            structured_global_ids((0, 2, 2), 3)
        with pytest.raises(ValueError):
            structured_global_ids((2, 2, 2), 1)

    def test_cli_writes_artifacts_and_ledger(self, tmp_path):
        out = tmp_path / "bench_out"
        ledger = tmp_path / "ledger.jsonl"
        rc = main(
            [
                "--out", str(out),
                "--ranks", "4,8",
                "--shape", "4x4x4",
                "--lx", "4",
                "--fleet-ranks", "4",
                "--ledger", str(ledger),
            ]
        )
        assert rc == 0
        record = json.loads((out / "BENCH_scaling.json").read_text())
        assert set(record["results"]) == {
            f"world{n}_scaling_{key}" for n in (4, 8) for key in MACHINES
        }
        assert (out / "fig3_scaling.txt").read_text().startswith("fig3_scaling:")
        imbalance = (out / "fig3_fleet_imbalance.txt").read_text()
        assert "per-rank phase breakdown" in imbalance
        assert "parallel efficiency" in imbalance
        trace = json.loads((out / "fig3_fleet_trace.json").read_text())
        assert trace["traceEvents"]
        assert ledger.read_text().count("\n") == 1

    def test_cli_rejects_bad_shape(self):
        with pytest.raises(SystemExit):
            main(["--shape", "4x4"])
