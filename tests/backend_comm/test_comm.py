"""Tests for the rank simulator, partitioning and distributed gather-scatter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    DistributedGatherScatter,
    SimWorld,
    linear_partition,
    partition_quality,
    rcb_partition,
)
from repro.sem.mesh import box_mesh, cylinder_mesh
from repro.sem.space import FunctionSpace


class TestSimWorld:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimWorld(0)

    def test_allreduce_scalar_ops(self):
        w = SimWorld(3)
        assert w.allreduce_scalar([1.0, 2.0, 3.0]) == 6.0
        assert w.allreduce_scalar([1.0, 2.0, 3.0], "max") == 3.0
        assert w.allreduce_scalar([1.0, 2.0, 3.0], "min") == 1.0
        assert w.stats.allreduce_calls == 3

    def test_allreduce_array(self):
        w = SimWorld(2)
        out = w.allreduce_array([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
        assert np.allclose(out, [4.0, 6.0])

    def test_wrong_rank_count_raises(self):
        w = SimWorld(2)
        with pytest.raises(ValueError):
            w.allreduce_scalar([1.0])

    def test_exchange_counts_offrank_only(self):
        w = SimWorld(2)
        out = w.exchange({(0, 1): np.zeros(4), (1, 1): np.zeros(4)})
        assert w.stats.p2p_messages == 1
        assert w.stats.p2p_bytes == 32
        assert set(out) == {(0, 1), (1, 1)}

    def test_exchange_copies(self):
        w = SimWorld(2)
        buf = np.ones(2)
        out = w.exchange({(0, 1): buf})
        buf[:] = 5.0
        assert np.allclose(out[(0, 1)], 1.0)

    def test_gather_counts_traffic_toward_root(self):
        w = SimWorld(4)
        vals = [np.zeros(3), np.zeros(3), np.zeros(3), np.zeros(3)]
        out = w.gather(vals, root=2)
        assert all(np.array_equal(a, b) for a, b in zip(out, vals))
        # Every rank except the root sends it one 24-byte message.
        assert w.stats.p2p_messages == 3
        assert w.stats.p2p_bytes == 3 * 24

    def test_gather_invalid_root_raises(self):
        w = SimWorld(2)
        with pytest.raises(ValueError):
            w.gather([1.0, 2.0], root=2)


class TestPartition:
    def test_linear_balance(self):
        p = linear_partition(10, 3)
        counts = np.bincount(p)
        assert counts.tolist() == [4, 3, 3]
        assert np.all(np.diff(p) >= 0)

    def test_linear_invalid(self):
        with pytest.raises(ValueError):
            linear_partition(2, 5)

    def test_rcb_balance(self):
        mesh = box_mesh((4, 4, 2))
        for nr in (2, 3, 4, 7):
            owner = rcb_partition(mesh, nr)
            counts = np.bincount(owner, minlength=nr)
            assert counts.min() >= 1
            assert counts.max() - counts.min() <= max(2, mesh.nelv // nr // 2)

    def test_rcb_spatial_compactness(self):
        # With 2 ranks on an elongated box, RCB must split along x.
        mesh = box_mesh((8, 2, 2), lengths=(8.0, 1.0, 1.0))
        owner = rcb_partition(mesh, 2)
        cent = mesh.corner_coords.reshape(mesh.nelv, 8, 3).mean(axis=1)
        x0 = cent[owner == 0, 0]
        x1 = cent[owner == 1, 0]
        assert x0.max() <= x1.min() or x1.max() <= x0.min()

    def test_quality_metrics(self):
        mesh = box_mesh((4, 2, 2))
        sp = FunctionSpace(mesh, 4)
        owner = rcb_partition(mesh, 4)
        q = partition_quality(owner, sp.gs.global_ids, mesh.nelv, sp.lx**3)
        assert q["n_ranks"] == 4
        assert q["imbalance"] >= 1.0
        assert q["shared_nodes_global"] > 0
        # RCB should not beat the theoretical minimum: one face of shared
        # nodes per cut at least.
        assert q["max_shared_per_rank"] >= sp.lx**2


class TestDistributedGS:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4])
    def test_matches_single_rank(self, nranks):
        mesh = box_mesh((3, 2, 2))
        sp = FunctionSpace(mesh, 4)
        world = SimWorld(nranks)
        owner = rcb_partition(mesh, nranks)
        dgs = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, world)
        rng = np.random.default_rng(0)
        u = rng.normal(size=sp.shape)
        got = dgs.add_full(u)
        ref = sp.gs.add(u)
        assert np.allclose(got, ref, atol=1e-12)

    def test_cylinder_mesh(self):
        mesh = cylinder_mesh(n_square=2, n_ring=1, n_z=2)
        sp = FunctionSpace(mesh, 4)
        world = SimWorld(3)
        owner = rcb_partition(mesh, 3)
        dgs = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, world)
        rng = np.random.default_rng(1)
        u = rng.normal(size=sp.shape)
        assert np.allclose(dgs.add_full(u), sp.gs.add(u), atol=1e-12)

    def test_traffic_recorded(self):
        mesh = box_mesh((2, 2, 1))
        sp = FunctionSpace(mesh, 4)
        world = SimWorld(2)
        owner = linear_partition(mesh.nelv, 2)
        dgs = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, world)
        dgs.add_full(np.ones(sp.shape))
        assert world.stats.p2p_messages > 0
        assert world.stats.p2p_bytes > 0
        assert dgs.n_shared > 0

    def test_single_rank_no_traffic(self):
        mesh = box_mesh((2, 1, 1))
        sp = FunctionSpace(mesh, 4)
        world = SimWorld(1)
        owner = linear_partition(mesh.nelv, 1)
        dgs = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, world)
        dgs.add_full(np.ones(sp.shape))
        assert world.stats.p2p_messages == 0

    def test_dot_matches_single_rank(self):
        mesh = box_mesh((2, 2, 1))
        sp = FunctionSpace(mesh, 4)
        world = SimWorld(2)
        owner = linear_partition(mesh.nelv, 2)
        dgs = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, world)
        rng = np.random.default_rng(2)
        a = rng.normal(size=sp.shape)
        b = rng.normal(size=sp.shape)
        got = dgs.dot(dgs.scatter_field(a), dgs.scatter_field(b))
        assert got == pytest.approx(sp.gs.dot(a, b), rel=1e-12)

    @pytest.mark.parametrize("nranks", [2, 3, 4])
    def test_one_sided_matches_two_phase(self, nranks):
        # The Coarray/SHMEM-style one-round algorithm must be bit-identical
        # to the owner-reduces two-phase one.
        mesh = box_mesh((3, 2, 2))
        sp = FunctionSpace(mesh, 4)
        world = SimWorld(nranks)
        owner = rcb_partition(mesh, nranks)
        dgs = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, world)
        rng = np.random.default_rng(7)
        u = rng.normal(size=sp.shape)
        two = dgs.add_full(u, algorithm="two_phase")
        one = dgs.add_full(u, algorithm="one_sided")
        assert np.array_equal(two, one)
        assert np.allclose(two, sp.gs.add(u), atol=1e-12)

    def test_one_sided_single_round_more_messages(self):
        # One-sided: one communication round, but symmetric all-to-all
        # among holders (more messages than owner-centric two-phase).
        mesh = box_mesh((2, 2, 2))
        sp = FunctionSpace(mesh, 4)
        owner = linear_partition(mesh.nelv, 4)

        w2 = SimWorld(4)
        d2 = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, w2)
        d2.add_full(np.ones(sp.shape))
        w1 = SimWorld(4)
        d1 = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, w1)
        d1.add_full(np.ones(sp.shape), algorithm="one_sided")
        assert w1.stats.p2p_messages >= w2.stats.p2p_messages

    def test_unknown_algorithm_rejected(self):
        mesh = box_mesh((2, 1, 1))
        sp = FunctionSpace(mesh, 3)
        dgs = DistributedGatherScatter(
            sp.gs.global_ids, linear_partition(2, 2), sp.shape, SimWorld(2)
        )
        with pytest.raises(ValueError, match="algorithm"):
            dgs.add(dgs.scatter_field(np.ones(sp.shape)), algorithm="magic")

    def test_too_many_ranks_rejected(self):
        mesh = box_mesh((2, 1, 1))
        sp = FunctionSpace(mesh, 4)
        with pytest.raises(ValueError):
            DistributedGatherScatter(
                sp.gs.global_ids, np.array([0, 5]), sp.shape, SimWorld(2)
            )


@settings(max_examples=10, deadline=None)
@given(nranks=st.integers(min_value=1, max_value=6), seed=st.integers(0, 100))
def test_property_distributed_gs_rank_invariant(nranks, seed):
    """Property: the dssum result is independent of the rank count."""
    mesh = box_mesh((3, 2, 1))
    sp = FunctionSpace(mesh, 3)
    rng = np.random.default_rng(seed)
    u = rng.normal(size=sp.shape)
    owner = linear_partition(mesh.nelv, nranks)
    dgs = DistributedGatherScatter(sp.gs.global_ids, owner, sp.shape, SimWorld(nranks))
    assert np.allclose(dgs.add_full(u), sp.gs.add(u), atol=1e-12)
