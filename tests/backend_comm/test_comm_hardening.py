"""The hardened communication layer: reliable p2p and verified collectives."""

import numpy as np
import pytest

from repro.comm import (
    CollectiveIntegrityError,
    CommTimeoutError,
    RetryPolicy,
    SimWorld,
    payload_checksum,
)
from repro.resilience import Fault, FaultInjector


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        p = RetryPolicy(max_retries=4, backoff=1.0, backoff_base=2.0)
        assert [p.delay(a) for a in (1, 2, 3)] == [1.0, 2.0, 4.0]

    def test_jitter_is_seeded(self):
        a = RetryPolicy(backoff=1.0, jitter=0.5, seed=3)
        b = RetryPolicy(backoff=1.0, jitter=0.5, seed=3)
        assert [a.delay(1) for _ in range(5)] == [b.delay(1) for _ in range(5)]

    def test_wait_uses_injected_sleep(self):
        slept = []
        p = RetryPolicy(backoff=0.5, sleep=slept.append)
        p.wait(1)
        p.wait(2)
        assert slept == [0.5, 1.0]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestReliableExchange:
    def test_drop_is_retransmitted(self):
        inj = FaultInjector(schedule=[Fault("drop", at_call=0)])
        w = SimWorld(2, fault_injector=inj, retry=RetryPolicy())
        out = w.exchange({(0, 1): np.full(4, 5.0)})
        # The dropped first attempt is retried and the payload arrives intact.
        assert np.allclose(out[(0, 1)], 5.0)
        assert w.stats.retransmissions == 1
        assert w.stats.p2p_messages == 1  # logical message counted once

    def test_corruption_is_retransmitted(self):
        inj = FaultInjector(seed=2, schedule=[Fault("corrupt", at_call=0)])
        w = SimWorld(2, fault_injector=inj, retry=RetryPolicy())
        sent = np.arange(6, dtype=np.float64)
        out = w.exchange({(0, 1): sent})
        assert np.array_equal(out[(0, 1)], sent)
        assert w.stats.retransmissions == 1

    def test_stale_delivery_counts_as_duplicate(self):
        inj = FaultInjector(schedule=[Fault("delay", at_call=1)])
        w = SimWorld(2, fault_injector=inj, retry=RetryPolicy())
        w.exchange({(0, 1): np.full(3, 1.0)})
        out = w.exchange({(0, 1): np.full(3, 2.0)})
        # The stale (previous-sequence) payload is recognized, discarded
        # and the current payload retransmitted.
        assert np.allclose(out[(0, 1)], 2.0)
        assert w.stats.duplicates == 1
        assert w.stats.retransmissions == 1

    def test_persistent_drop_raises_timeout_not_hang(self):
        faults = [Fault("drop", at_call=i) for i in range(10)]
        inj = FaultInjector(schedule=faults)
        w = SimWorld(2, fault_injector=inj, retry=RetryPolicy(max_retries=3))
        with pytest.raises(CommTimeoutError) as exc_info:
            w.exchange({(0, 1): np.ones(4)})
        assert exc_info.value.src == 0 and exc_info.value.dst == 1
        assert w.stats.timeouts == 1
        assert w.stats.retransmissions == 3

    def test_clean_channel_identical_to_unhardened(self):
        sends = {(0, 1): np.arange(5.0), (1, 0): np.full(3, 2.0)}
        plain = SimWorld(2).exchange({k: v.copy() for k, v in sends.items()})
        hard = SimWorld(2, retry=RetryPolicy()).exchange(
            {k: v.copy() for k, v in sends.items()}
        )
        for key in sends:
            assert np.array_equal(plain[key], hard[key])

    def test_checksum_is_content_addressed(self):
        a = np.arange(8.0)
        assert payload_checksum(a) == payload_checksum(a.copy())
        assert payload_checksum(a) != payload_checksum(a + 1.0)


class TestVerifiedCollectives:
    def test_single_sdc_is_absorbed_by_recompute(self):
        inj = FaultInjector(
            seed=1, schedule=[Fault("collective_sdc", at_call=0, op="allreduce")]
        )
        w = SimWorld(
            2, fault_injector=inj, retry=RetryPolicy(), verify_collectives=True
        )
        assert w.allreduce_scalar([1.0, 2.0]) == 3.0
        assert w.stats.integrity_failures == 1

    def test_persistent_sdc_raises_integrity_error(self):
        # Corrupt one replica of every attempt: result calls 0, 2, 4, ...
        faults = [
            Fault("collective_sdc", at_call=2 * i, op="allreduce") for i in range(8)
        ]
        inj = FaultInjector(seed=1, schedule=faults)
        w = SimWorld(
            2,
            fault_injector=inj,
            retry=RetryPolicy(max_retries=2),
            verify_collectives=True,
        )
        with pytest.raises(CollectiveIntegrityError):
            w.allreduce_scalar([1.0, 2.0])
        assert w.stats.integrity_failures >= 3

    def test_array_allreduce_verified_too(self):
        inj = FaultInjector(
            seed=5, schedule=[Fault("collective_sdc", at_call=0, op="allreduce")]
        )
        w = SimWorld(
            2, fault_injector=inj, retry=RetryPolicy(), verify_collectives=True
        )
        out = w.allreduce_array([np.ones(4), np.full(4, 2.0)])
        assert np.allclose(out, 3.0)
        assert w.stats.integrity_failures == 1

    def test_verification_off_passes_sdc_through(self):
        # The control case: without verification the corrupted result is
        # silently accepted -- which is exactly why the check exists.
        inj = FaultInjector(
            seed=1, schedule=[Fault("collective_sdc", at_call=0, op="allreduce")]
        )
        w = SimWorld(2, fault_injector=inj)
        assert w.allreduce_scalar([1.0, 2.0]) != 3.0


class TestStatsAbsorb:
    def test_absorb_folds_world_and_rank_counters(self):
        a = SimWorld(2)
        a.exchange({(0, 1): np.ones(4)})
        a.allreduce_scalar([1.0, 2.0])
        b = SimWorld(2)
        b.exchange({(1, 0): np.ones(2)})
        b.stats.absorb(a.stats)
        assert b.stats.p2p_messages == 2
        assert b.stats.allreduce_calls == 1
        assert b.stats.sent_messages == {1: 1, 0: 1}
