"""Tests for the discrete-event GPU simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    A100,
    MI250X_GCD,
    AllReduce,
    Barrier,
    DeviceSimulator,
    GpuModel,
    HostCompute,
    HostProgram,
    Launch,
    SchwarzOverlapStudy,
    StreamSync,
)

FAST = GpuModel(
    name="test-gpu",
    peak_bandwidth_gbs=1000.0,
    peak_fp64_tflops=10.0,
    launch_overhead_us=2.0,
    submit_delay_us=1.0,
    min_kernel_us=1.0,
)


class TestDeviceModel:
    def test_kernel_duration_bandwidth_bound(self):
        # 1 MB at 1000 GB/s = 1 us; above the floor.
        assert FAST.kernel_duration_us(1e6) == pytest.approx(1.0)

    def test_kernel_duration_floor(self):
        assert FAST.kernel_duration_us(10.0) == FAST.min_kernel_us

    def test_kernel_duration_flop_bound(self):
        # 1e8 flops at 10 TFlop/s = 10 us > bandwidth time.
        assert FAST.kernel_duration_us(1e3, flops=1e8) == pytest.approx(10.0)

    def test_table1_devices(self):
        assert A100.peak_bandwidth_gbs == 1550.0
        assert A100.requires_priority_for_concurrency
        assert not MI250X_GCD.requires_priority_for_concurrency
        assert MI250X_GCD.peak_fp64_tflops * 2 == pytest.approx(47.9)


class TestSimulatorBasics:
    def test_single_kernel(self):
        sim = DeviceSimulator(FAST)
        wall = sim.run([HostProgram(0, [Launch("k", 0, 10.0), StreamSync(0)])])
        # launch overhead (2) + submit (1) + duration (10).
        assert wall == pytest.approx(13.0)
        kernels = [i for i in sim.trace if i.kind == "kernel"]
        assert len(kernels) == 1
        assert kernels[0].duration_us == pytest.approx(10.0)

    def test_in_order_within_stream(self):
        sim = DeviceSimulator(FAST)
        sim.run(
            [HostProgram(0, [Launch("a", 0, 5.0), Launch("b", 0, 5.0), StreamSync(0)])]
        )
        ks = sorted((i for i in sim.trace if i.kind == "kernel"), key=lambda i: i.start_us)
        assert ks[0].name == "a"
        assert ks[1].start_us >= ks[0].end_us

    def test_cross_stream_overlap(self):
        sim = DeviceSimulator(FAST, stream_priorities={0: 0, 1: 1})
        sim.run(
            [
                HostProgram(
                    0,
                    [
                        Launch("big", 0, 100.0, occupancy=0.8),
                        Launch("small", 1, 5.0, occupancy=0.1),
                        StreamSync(0),
                        StreamSync(1),
                    ],
                )
            ]
        )
        big = next(i for i in sim.trace if i.name == "big")
        small = next(i for i in sim.trace if i.name == "small")
        # The small kernel runs inside the big one's window.
        assert small.start_us < big.end_us
        assert small.end_us <= big.end_us

    def test_capacity_limits_concurrency(self):
        sim = DeviceSimulator(FAST, stream_priorities={0: 0, 1: 0})
        sim.run(
            [
                HostProgram(
                    0,
                    [
                        Launch("a", 0, 50.0, occupancy=0.7),
                        Launch("b", 1, 50.0, occupancy=0.7),
                        StreamSync(0),
                        StreamSync(1),
                    ],
                )
            ]
        )
        a = next(i for i in sim.trace if i.name == "a")
        b = next(i for i in sim.trace if i.name == "b")
        # 0.7 + 0.7 > 1: they must serialize.
        assert b.start_us >= a.end_us or a.start_us >= b.end_us

    def test_host_compute_and_allreduce_block_host(self):
        sim = DeviceSimulator(FAST)
        wall = sim.run(
            [HostProgram(0, [HostCompute("pack", 7.0), AllReduce("dot", 3.0)])]
        )
        assert wall == pytest.approx(10.0)
        lanes = {i.lane for i in sim.trace}
        assert "host0" in lanes and "mpi0" in lanes

    def test_barrier_joins_threads(self):
        sim = DeviceSimulator(FAST)
        wall = sim.run(
            [
                HostProgram(0, [HostCompute("w0", 5.0), Barrier(), HostCompute("after", 1.0)]),
                HostProgram(1, [HostCompute("w1", 20.0), Barrier()]),
            ]
        )
        after = next(i for i in sim.trace if i.name == "after")
        assert after.start_us >= 20.0
        assert wall == pytest.approx(21.0)

    def test_sync_waits_for_kernels(self):
        sim = DeviceSimulator(FAST)
        wall = sim.run(
            [HostProgram(0, [Launch("k", 0, 50.0), StreamSync(0), HostCompute("post", 1.0)])]
        )
        post = next(i for i in sim.trace if i.name == "post")
        k = next(i for i in sim.trace if i.name == "k")
        assert post.start_us >= k.end_us
        assert wall == pytest.approx(post.end_us)

    def test_priority_vs_arrival_order(self):
        # Without priorities on an NVIDIA-like device, a later small kernel
        # cannot jump past an earlier-arrived pending big kernel.
        prog = [
            Launch("big1", 0, 100.0, occupancy=0.9),
            Launch("big2", 0, 100.0, occupancy=0.9),
            Launch("small", 1, 2.0, occupancy=0.05),
            StreamSync(0),
            StreamSync(1),
        ]
        nopri = DeviceSimulator(FAST, use_priorities=False)
        nopri.run([HostProgram(0, list(prog))])
        small_np = next(i for i in nopri.trace if i.name == "small")
        big2_np = next(i for i in nopri.trace if i.name == "big2")
        assert small_np.start_us >= big2_np.start_us

        pri = DeviceSimulator(FAST, stream_priorities={1: 1})
        pri.run([HostProgram(0, list(prog))])
        small_p = next(i for i in pri.trace if i.name == "small")
        big2_p = next(i for i in pri.trace if i.name == "big2")
        assert small_p.start_us < big2_p.start_us

    def test_device_busy_time_union(self):
        sim = DeviceSimulator(FAST, stream_priorities={0: 0, 1: 1})
        sim.run(
            [
                HostProgram(
                    0,
                    [
                        Launch("big", 0, 100.0, occupancy=0.5),
                        Launch("other", 1, 100.0, occupancy=0.5),
                        StreamSync(0),
                        StreamSync(1),
                    ],
                )
            ]
        )
        # Overlapping kernels count once.
        assert sim.device_busy_time() < 200.0

    def test_render_timeline(self):
        sim = DeviceSimulator(FAST)
        sim.run([HostProgram(0, [Launch("k", 0, 10.0), StreamSync(0)])])
        txt = sim.render_timeline(width=40)
        assert "stream0" in txt
        assert "#" in txt


class TestSchwarzStudy:
    def test_reduction_in_paper_band_a100(self):
        r = SchwarzOverlapStudy(A100).reduction(applications=10)
        # Paper: ~20% wall-time reduction on a 4x A100 node.
        assert 0.12 <= r["reduction"] <= 0.32

    def test_priorities_required_on_nvidia(self):
        r = SchwarzOverlapStudy(A100).reduction(applications=5)
        assert r["reduction_nopriority"] < r["reduction"] / 2

    def test_priorities_irrelevant_on_amd(self):
        r = SchwarzOverlapStudy(MI250X_GCD).reduction(applications=5)
        assert r["reduction_nopriority"] == pytest.approx(r["reduction"], abs=0.02)

    def test_overlap_improves_utilization(self):
        study = SchwarzOverlapStudy(A100)
        ser = study.run_serial(applications=5)
        ovl = study.run_overlapped(applications=5)
        assert ovl.utilization > ser.utilization
        assert ovl.utilization > 0.9

    def test_scaling_with_applications(self):
        study = SchwarzOverlapStudy(A100)
        r1 = study.run_serial(applications=1).wall_us
        r5 = study.run_serial(applications=5).wall_us
        assert r5 == pytest.approx(5 * r1, rel=0.02)

    def test_stream_aware_mpi_noop_when_coarse_hidden(self):
        # At production element counts the coarse path hides under the
        # smoother; removing its host syncs cannot change the makespan.
        r = SchwarzOverlapStudy(A100).reduction(applications=5)
        assert r["reduction_stream_aware"] == pytest.approx(r["reduction"], abs=0.01)

    def test_stream_aware_mpi_helps_in_strong_scaling_limit(self):
        # With few elements per GPU the latency-bound coarse solve becomes
        # the critical path; triggered operations shorten it -- the benefit
        # the paper expects from stream-aware MPI [20].
        from repro.gpu.schwarz import SchwarzWorkload

        study = SchwarzOverlapStudy(A100, SchwarzWorkload(n_elements=1000))
        r = study.reduction(applications=5)
        assert r["reduction_stream_aware"] > r["reduction"] + 0.05


@settings(max_examples=20, deadline=None)
@given(
    durations=st.lists(st.floats(min_value=1.0, max_value=50.0), min_size=1, max_size=6),
)
def test_property_serial_wall_bounds(durations):
    """Property: makespan >= sum of kernel durations on one stream, and
    <= sum of durations + per-launch overheads."""
    sim = DeviceSimulator(FAST)
    ops = [Launch(f"k{i}", 0, d) for i, d in enumerate(durations)]
    ops.append(StreamSync(0))
    wall = sim.run([HostProgram(0, ops)])
    total = sum(max(d, FAST.min_kernel_us) for d in durations)
    overhead = len(durations) * (FAST.launch_overhead_us + FAST.submit_delay_us)
    assert wall >= total - 1e-9
    assert wall <= total + overhead + 1e-9
