"""Test-suite-wide configuration.

Runtime array contracts are off by default in production runs (one flag
check per call); the test suite runs with them enabled so every test
doubles as a shape/dtype audit of the call boundaries it exercises.
"""

import pytest

from repro.statcheck.contracts import enable_contracts


@pytest.fixture(autouse=True, scope="session")
def _contracts_on():
    prev = enable_contracts(True)
    yield
    enable_contracts(prev)
