"""SARIF 2.1.0 export: structure, levels, fingerprints, baseline states."""

import json
from pathlib import Path

from repro.statcheck import get_rules, to_sarif
from repro.statcheck.analyzers import ALL_ANALYZERS
from repro.statcheck.cli import main
from repro.statcheck.finding import Finding, Severity

FIXTURES = Path(__file__).parent / "fixtures"
FIXTURES_A = Path(__file__).parent / "fixtures_analyzers"


def _finding(rule="backend-purity", severity=Severity.WARNING, line=7):
    return Finding(
        rule=rule,
        path="src/repro/sem/x.py",
        line=line,
        col=4,
        message="test message",
        severity=severity,
        source_line="        y = np.exp(x)",
    )


class TestStructure:
    def test_log_shape_and_driver(self):
        log = to_sarif([_finding()], [], checks=get_rules(None))
        assert log["version"] == "2.1.0"
        assert "sarif-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro.statcheck"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "backend-purity" in rule_ids

    def test_analyzers_appear_as_rule_descriptors(self):
        checks = list(get_rules(None)) + [cls() for cls in ALL_ANALYZERS.values()]
        log = to_sarif([], [], checks=checks)
        rule_ids = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
        for name in ("precision-flow", "collective-ordering", "hot-loop-allocation"):
            assert name in rule_ids

    def test_result_location_and_fingerprint(self):
        f = _finding()
        log = to_sarif([f], [], checks=get_rules(None))
        (result,) = log["runs"][0]["results"]
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/sem/x.py"
        assert loc["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert loc["region"] == {"startLine": 7, "startColumn": 5}  # 1-based col
        assert result["partialFingerprints"] == {
            "statcheckFingerprint/v1": f.fingerprint
        }

    def test_severity_levels_map(self):
        log = to_sarif(
            [
                _finding(severity=Severity.INFO, line=1),
                _finding(severity=Severity.WARNING, line=2),
                _finding(severity=Severity.ERROR, line=3),
            ],
            [],
        )
        levels = [r["level"] for r in log["runs"][0]["results"]]
        assert levels == ["note", "warning", "error"]

    def test_baseline_states(self):
        log = to_sarif([_finding(line=1)], [_finding(line=2)])
        states = [r["baselineState"] for r in log["runs"][0]["results"]]
        assert states == ["new", "unchanged"]


class TestCli:
    def test_sarif_output_is_valid_json(self, capsys):
        assert main([str(FIXTURES), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        results = log["runs"][0]["results"]
        assert len(results) == 13  # the fixture tree's rule findings
        assert all(r["baselineState"] == "new" for r in results)

    def test_sarif_respects_baseline_states(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(FIXTURES), "--baseline", str(baseline), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(
            [str(FIXTURES), "--baseline", str(baseline), "--format", "sarif"]
        ) == 0
        log = json.loads(capsys.readouterr().out)
        states = {r["baselineState"] for r in log["runs"][0]["results"]}
        assert states == {"unchanged"}

    def test_sarif_includes_analyzer_results(self, capsys):
        assert main([str(FIXTURES_A), "--analysis", "all", "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        rules_hit = {r["ruleId"] for r in log["runs"][0]["results"]}
        assert {
            "precision-flow",
            "collective-ordering",
            "hot-loop-allocation",
        } <= rules_hit
