"""precision-flow analyzer behaviour, driven by the committed fixture."""

from pathlib import Path

from repro.statcheck import check_project
from repro.statcheck.analyzers.precision import PrecisionFlowAnalyzer
from repro.statcheck.callgraph import Project
from repro.statcheck.finding import Severity

FIXTURE = (
    Path(__file__).parent
    / "fixtures_analyzers/src/repro/solvers/precision_case.py"
)


def _findings():
    project = Project.load([FIXTURE], root=FIXTURE.parents[3])
    return sorted(PrecisionFlowAnalyzer().check(project), key=lambda f: f.line)


class TestNarrowing:
    def test_unguarded_narrowings_are_flagged(self):
        lines = [f.line for f in _findings()]
        # astype(np.float32), np.float32(x), astype("float32"), astype("f4")
        # on a mixed value, and the suppression-demo narrowing (suppression
        # is the engine's job, not the analyzer's).
        for line in (15, 20, 25, 30, 57):
            assert line in lines

    def test_mixed_narrowing_message_is_hedged(self):
        by_line = {f.line: f for f in _findings()}
        assert "possibly-float64" in by_line[30].message
        assert "possibly-float64" not in by_line[15].message

    def test_guarded_narrowings_are_silent(self):
        # narrow_guarded (lines 62-67) and GuardedSmoother.narrow_in_method
        # (lines 74-78) both narrow f64 but reference the guard.
        lines = [f.line for f in _findings()]
        assert not any(60 <= line <= 80 for line in lines)

    def test_widening_and_unknown_inputs_are_silent(self):
        lines = [f.line for f in _findings()]
        assert not any(line >= 83 for line in lines)


class TestAccumulations:
    def test_f32_accumulations_are_flagged(self):
        by_line = {f.line: f for f in _findings()}
        assert "'dot' accumulation" in by_line[37].message
        assert "'sum' accumulation" in by_line[42].message
        assert "'norm' accumulation" in by_line[50].message  # via call summary

    def test_severity_and_rule(self):
        for f in _findings():
            assert f.rule == "precision-flow"
            assert f.severity == Severity.WARNING

    def test_exact_finding_set(self):
        assert [f.line for f in _findings()] == [15, 20, 25, 30, 37, 42, 50, 57]


class TestEngineIntegration:
    def test_suppression_filters_the_annotated_line(self):
        findings, errors = check_project(
            [FIXTURE], analyzers=[PrecisionFlowAnalyzer()], root=FIXTURE.parents[3]
        )
        assert errors == []
        lines = [f.line for f in findings]
        assert 57 not in lines  # trailing ignore[precision-flow]
        assert lines == [15, 20, 25, 30, 37, 42, 50]


class TestScope:
    def test_out_of_scope_packages_are_ignored(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "observability" / "narrow.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "import numpy as np\n"
            "\n"
            "def narrow(n):\n"
            "    return np.zeros(n).astype(np.float32)\n"
        )
        project = Project.load([tmp_path / "src"], root=tmp_path)
        assert list(PrecisionFlowAnalyzer().check(project)) == []
