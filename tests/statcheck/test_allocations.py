"""hot-loop-allocation analyzer behaviour, driven by the committed fixture."""

from pathlib import Path

from repro.statcheck import check_project
from repro.statcheck.analyzers.allocations import HotLoopAllocationAnalyzer
from repro.statcheck.callgraph import Project
from repro.statcheck.finding import Severity

FIXTURE = (
    Path(__file__).parent
    / "fixtures_analyzers/src/repro/solvers/alloc_case.py"
)


def _findings():
    project = Project.load([FIXTURE], root=FIXTURE.parents[3])
    return sorted(HotLoopAllocationAnalyzer().check(project), key=lambda f: f.line)


class TestDirectAllocations:
    def test_allocators_in_loops_are_flagged(self):
        by_line = {f.line: f for f in _findings()}
        assert "'np.zeros'" in by_line[16].message
        assert "'x.copy'" in by_line[25].message
        assert "'np.empty_like'" in by_line[33].message
        assert "'np.array'" in by_line[67].message  # suppression-demo line
        for line in (16, 25, 33, 67):
            assert by_line[line].severity == Severity.WARNING

    def test_hoisted_buffers_are_silent(self):
        lines = [f.line for f in _findings()]
        assert not any(72 <= line <= 76 for line in lines)  # hoisted_scratch


class TestRecurrences:
    def test_rebind_is_flagged_with_the_ieee_note(self):
        by_line = {f.line: f for f in _findings()}
        f = by_line[43]
        assert "loop-carried recurrence 'p = ...'" in f.message
        assert "bit-identical under IEEE addition" in f.message

    def test_in_place_form_is_silent(self):
        lines = [f.line for f in _findings()]
        assert not any(79 <= line <= 83 for line in lines)  # recurrence_in_place


class TestInterprocedural:
    def test_allocating_callee_in_loop_is_advisory(self):
        by_line = {f.line: f for f in _findings()}
        f = by_line[56]
        assert f.severity == Severity.INFO
        assert "'_fresh' allocates arrays on every loop iteration" in f.message

    def test_non_allocating_callee_is_silent(self):
        lines = [f.line for f in _findings()]
        assert not any(90 <= line <= 99 for line in lines)  # _scale driver


class TestExemptions:
    def test_comprehensions_are_not_loops(self):
        # comprehension_builds_result: list-of-chunks construction.
        lines = [f.line for f in _findings()]
        assert not any(86 <= line <= 88 for line in lines)

    def test_setup_functions_are_exempt(self):
        # Workspace.__init__ and build_operators allocate in loops freely.
        lines = [f.line for f in _findings()]
        assert not any(line >= 102 for line in lines)

    def test_exact_finding_set(self):
        assert [f.line for f in _findings()] == [16, 25, 33, 43, 56, 67]


class TestEngineIntegration:
    def test_suppression_filters_the_annotated_line(self):
        findings, errors = check_project(
            [FIXTURE],
            analyzers=[HotLoopAllocationAnalyzer()],
            root=FIXTURE.parents[3],
        )
        assert errors == []
        lines = [f.line for f in findings]
        assert 67 not in lines  # standalone ignore[hot-loop-allocation]
        assert lines == [16, 25, 33, 43, 56]


class TestBatchedExchangeScope:
    """repro.comm.batched is a hot module: its fill loops stay allocator-free."""

    FIXTURE = (
        Path(__file__).parent / "fixtures_analyzers/src/repro/comm/batched.py"
    )

    def _findings(self):
        project = Project.load([self.FIXTURE], root=self.FIXTURE.parents[3])
        return sorted(
            HotLoopAllocationAnalyzer().check(project), key=lambda f: f.line
        )

    def test_fill_loop_idiom_is_silent(self):
        lines = [f.line for f in self._findings()]
        assert not any(14 <= line <= 19 for line in lines)  # fill_loop_is_clean

    def test_per_message_allocation_is_flagged(self):
        by_line = {f.line: f for f in self._findings()}
        assert [*by_line] == [25]
        assert "'np.array'" in by_line[25].message
        assert by_line[25].severity == Severity.WARNING

    def test_setup_buffers_are_exempt(self):
        lines = [f.line for f in self._findings()]
        assert not any(line >= 29 for line in lines)  # BatchedState.__init__


class TestScope:
    def test_cold_packages_are_ignored(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "observability" / "alloc.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "import numpy as np\n"
            "\n"
            "def f(fields):\n"
            "    out = []\n"
            "    for f_ in fields:\n"
            "        out.append(np.zeros(4))\n"
            "    return out\n"
        )
        project = Project.load([tmp_path / "src"], root=tmp_path)
        assert list(HotLoopAllocationAnalyzer().check(project)) == []
