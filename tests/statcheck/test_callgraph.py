"""Call-graph construction: function registry and call-site resolution."""

from pathlib import Path

from repro.statcheck.callgraph import Project

FIXTURES_A = Path(__file__).parent / "fixtures_analyzers"


def _project(tmp_path, sources: dict[str, str]) -> Project:
    for rel, src in sources.items():
        path = tmp_path / "src" / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(src)
    return Project.load([tmp_path / "src"], root=tmp_path)


def _callee_names(graph, qname):
    return {s.callee for s in graph.callees_of(qname) if s.callee is not None}


class TestRegistry:
    def test_qnames_cover_functions_and_methods(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "solvers/mod.py": (
                    "def helper(x):\n"
                    "    return x\n"
                    "\n"
                    "class Solver:\n"
                    "    def step(self, x):\n"
                    "        return helper(x)\n"
                )
            },
        )
        graph = project.callgraph
        assert "repro.solvers.mod:helper" in graph.functions
        assert "repro.solvers.mod:Solver.step" in graph.functions
        info = graph.functions["repro.solvers.mod:Solver.step"]
        assert info.class_name == "Solver"
        assert info.params == ["self", "x"]

    def test_parse_errors_are_collected_not_raised(self, tmp_path):
        project = _project(tmp_path, {"solvers/bad.py": "def broken(:\n"})
        assert len(project.errors) == 1
        assert "SyntaxError" in project.errors[0]


class TestResolution:
    def test_module_local_function_call(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "solvers/mod.py": (
                    "def helper(x):\n"
                    "    return x\n"
                    "\n"
                    "def caller(x):\n"
                    "    return helper(x)\n"
                )
            },
        )
        graph = project.callgraph
        assert _callee_names(graph, "repro.solvers.mod:caller") == {
            "repro.solvers.mod:helper"
        }
        assert graph.callers_of("repro.solvers.mod:helper") == {
            "repro.solvers.mod:caller"
        }

    def test_self_method_call(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "solvers/mod.py": (
                    "class Solver:\n"
                    "    def inner(self, x):\n"
                    "        return x\n"
                    "    def outer(self, x):\n"
                    "        return self.inner(x)\n"
                )
            },
        )
        graph = project.callgraph
        assert _callee_names(graph, "repro.solvers.mod:Solver.outer") == {
            "repro.solvers.mod:Solver.inner"
        }

    def test_cross_module_import_call(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "solvers/lib.py": "def work(x):\n    return x\n",
                "solvers/use.py": (
                    "from repro.solvers.lib import work\n"
                    "\n"
                    "def driver(x):\n"
                    "    return work(x)\n"
                ),
            },
        )
        graph = project.callgraph
        assert _callee_names(graph, "repro.solvers.use:driver") == {
            "repro.solvers.lib:work"
        }

    def test_unique_method_name_resolves_across_classes(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "solvers/mod.py": (
                    "class Smoother:\n"
                    "    def smooth_once(self, x):\n"
                    "        return x\n"
                    "\n"
                    "def driver(sm, x):\n"
                    "    return sm.smooth_once(x)\n"
                )
            },
        )
        graph = project.callgraph
        assert graph.resolve_method("smooth_once") == "repro.solvers.mod:Smoother.smooth_once"
        assert _callee_names(graph, "repro.solvers.mod:driver") == {
            "repro.solvers.mod:Smoother.smooth_once"
        }

    def test_builtin_method_names_never_resolve(self, tmp_path):
        # A project class defining the only ``append`` method must not
        # capture list.append calls elsewhere in the tree.
        project = _project(
            tmp_path,
            {
                "solvers/mod.py": (
                    "class Writer:\n"
                    "    def append(self, x):\n"
                    "        return x\n"
                    "\n"
                    "def collect(items):\n"
                    "    out = []\n"
                    "    for i in items:\n"
                    "        out.append(i)\n"
                    "    return out\n"
                )
            },
        )
        graph = project.callgraph
        assert graph.resolve_method("append") is None
        assert _callee_names(graph, "repro.solvers.mod:collect") == set()

    def test_ambiguous_method_name_stays_opaque(self, tmp_path):
        project = _project(
            tmp_path,
            {
                "solvers/mod.py": (
                    "class A:\n"
                    "    def run_pass(self, x):\n"
                    "        return x\n"
                    "class B:\n"
                    "    def run_pass(self, x):\n"
                    "        return x\n"
                )
            },
        )
        graph = project.callgraph
        assert graph.resolve_method("run_pass") is None


class TestFixtureTree:
    def test_analyzer_fixture_tree_builds_a_graph(self):
        project = Project.load([FIXTURES_A], root=FIXTURES_A)
        graph = project.callgraph
        assert "repro.solvers.precision_case:narrow_plain" in graph.functions
        assert "repro.comm.collective_case:interproc_divergent" in graph.functions
        # The interprocedural edge the collectives analyzer splices through.
        assert "repro.comm.collective_case:_sum_then_sync" in _callee_names(
            graph, "repro.comm.collective_case:interproc_divergent"
        )
