"""CLI behaviour: exit codes, baseline gating, output formats."""

import json
import shutil
from pathlib import Path

from repro.statcheck.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
FIXTURES_A = Path(__file__).parent / "fixtures_analyzers"
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestExitCodes:
    def test_fixture_tree_without_baseline_fails(self, capsys):
        assert main([str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "new" in out and "[backend-purity]" in out

    def test_write_then_gate_is_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(FIXTURES), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert main([str(FIXTURES), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out

    def test_new_violation_breaks_the_gate(self, tmp_path, capsys):
        """The acceptance criterion: a fresh violation exits nonzero even
        with every pre-existing finding baselined."""
        tree = tmp_path / "tree"
        shutil.copytree(FIXTURES, tree)
        baseline = tmp_path / "baseline.json"
        assert main([str(tree), "--baseline", str(baseline), "--write-baseline"]) == 0

        target = tree / "src" / "repro" / "sem" / "purity_case.py"
        target.write_text(
            target.read_text()
            + "\n\ndef fresh(fields):\n"
            + "    for f in fields:\n"
            + "        f += np.exp(f)\n"
        )
        assert main([str(tree), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "np.exp" in out and "1 new" in out

    def test_fail_on_error_ignores_warnings(self, tmp_path):
        src = FIXTURES / "src/repro/sem/purity_case.py"
        # backend-purity findings are warnings: with --fail-on=error they
        # are advisory and the run passes.
        assert main([str(src), "--fail-on", "error"]) == 0
        assert main([str(src), "--fail-on", "warning"]) == 1

    def test_select_limits_rules(self, capsys):
        assert main([str(FIXTURES), "--select", "span-hygiene"]) == 1
        out = capsys.readouterr().out
        assert "span-hygiene" in out and "backend-purity" not in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main([str(FIXTURES), "--select", "bogus"]) == 2


class TestAnalysisFlag:
    def test_analyzers_off_by_default(self, capsys):
        # The analyzer fixture tree is rule-clean: without --analysis the
        # run passes and finds nothing.
        assert main([str(FIXTURES_A)]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_analysis_all_runs_every_analyzer(self, capsys):
        assert main([str(FIXTURES_A), "--analysis", "all"]) == 1
        out = capsys.readouterr().out
        for name in ("precision-flow", "collective-ordering", "hot-loop-allocation"):
            assert f"[{name}]" in out

    def test_single_analyzer_selection(self, capsys):
        assert main([str(FIXTURES_A), "--analysis", "precision"]) == 1
        out = capsys.readouterr().out
        assert "[precision-flow]" in out
        assert "[collective-ordering]" not in out
        assert "[hot-loop-allocation]" not in out

    def test_analysis_is_repeatable(self, capsys):
        assert main(
            [str(FIXTURES_A), "--analysis", "precision", "--analysis", "collectives"]
        ) == 1
        out = capsys.readouterr().out
        assert "[precision-flow]" in out
        assert "[collective-ordering]" in out
        assert "[hot-loop-allocation]" not in out

    def test_analyzer_findings_respect_the_baseline_gate(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(
            [str(FIXTURES_A), "--analysis", "all", "--baseline", str(baseline),
             "--write-baseline"]
        ) == 0
        assert main(
            [str(FIXTURES_A), "--analysis", "all", "--baseline", str(baseline)]
        ) == 0
        assert "0 new" in capsys.readouterr().out


class TestOutput:
    def test_json_format(self, capsys):
        assert main([str(FIXTURES), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["failing"] == len(data["new"]) == 13
        assert data["baselined"] == [] and data["stale_fingerprints"] == []
        sample = data["new"][0]
        assert {"rule", "path", "line", "severity", "message"} <= set(sample)

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "backend-purity",
            "determinism",
            "span-hygiene",
            "resource-discipline",
            "api-hygiene",
        ):
            assert rule in out

    def test_list_rules_includes_analyzers(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("precision-flow", "collective-ordering", "hot-loop-allocation"):
            assert name in out

    def test_stale_note_printed(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        shutil.copytree(FIXTURES, tree)
        baseline = tmp_path / "baseline.json"
        assert main([str(tree), "--baseline", str(baseline), "--write-baseline"]) == 0
        # Fix the determinism fixture outright; its entries go stale.
        (tree / "src" / "repro" / "core" / "determinism_case.py").write_text(
            '"""Fixed fixture."""\n'
        )
        assert main([str(tree), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "no longer occur" in out


class TestMeta:
    """The linter's own verdict on the real tree: the committed baseline
    covers everything, so the gate the CI runs is green at HEAD."""

    def test_src_tree_has_zero_new_findings(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        baseline = REPO_ROOT / "statcheck_baseline.json"
        assert baseline.exists(), "statcheck_baseline.json must be committed"
        assert main(["src", "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out

    def test_statcheck_package_is_clean_without_baseline(self):
        # The linter holds itself to its own rules, no baseline needed.
        assert main([str(REPO_ROOT / "src" / "repro" / "statcheck")]) == 0

    def test_src_tree_is_gate_clean_under_full_analysis(self, capsys, monkeypatch):
        # The acceptance criterion: rules AND all three interprocedural
        # analyzers pass on HEAD with the committed (empty) baseline.
        monkeypatch.chdir(REPO_ROOT)
        baseline = REPO_ROOT / "statcheck_baseline.json"
        assert main(
            ["src", "--analysis", "all", "--baseline", str(baseline)]
        ) == 0
        assert "0 new" in capsys.readouterr().out
