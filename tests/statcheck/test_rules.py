"""Per-rule behaviour of the statcheck linter, driven by committed fixtures.

The fixture tree mirrors the ``src/repro/<pkg>/`` layout so package-scoped
rules (backend-purity, resource-discipline) apply to fixture modules the
same way they apply to the real tree.
"""

from pathlib import Path

from repro.statcheck import check_paths, get_rules
from repro.statcheck.finding import Severity

FIXTURES = Path(__file__).parent / "fixtures"


def run_rule(name, path):
    findings, errors = check_paths([path], get_rules([name]))
    assert errors == []
    return findings


class TestBackendPurity:
    def test_flags_numpy_calls_in_loops(self):
        findings = run_rule("backend-purity", FIXTURES / "src/repro/sem/purity_case.py")
        assert [f.line for f in findings] == [14, 15]
        assert all(f.rule == "backend-purity" for f in findings)
        assert all(f.severity == Severity.WARNING for f in findings)
        assert "np.sum" in findings[0].message

    def test_does_not_apply_outside_kernel_packages(self):
        # Same source, but the module resolves to repro.core.* -- no findings.
        findings = run_rule("backend-purity", FIXTURES / "src/repro/core")
        assert findings == []


class TestDeterminism:
    def test_flags_rng_and_wall_clock(self):
        findings = run_rule(
            "determinism", FIXTURES / "src/repro/core/determinism_case.py"
        )
        assert [f.line for f in findings] == [9, 10, 11]
        assert all(f.severity == Severity.ERROR for f in findings)
        messages = " ".join(f.message for f in findings)
        assert "np.random.rand" in messages
        assert "default_rng" in messages
        assert "time.time" in messages

    def test_seeded_generator_is_allowed(self):
        findings = run_rule(
            "determinism", FIXTURES / "src/repro/core/determinism_case.py"
        )
        assert all(f.line != 12 for f in findings)  # default_rng(1234)


class TestSpanHygiene:
    def test_flags_unregistered_span_only(self):
        findings = run_rule("span-hygiene", FIXTURES / "src/repro/core/span_case.py")
        assert [f.line for f in findings] == [7]
        assert "made_up_phase" in findings[0].message

    def test_fleet_anomaly_flight_families_are_registered(self):
        # The PR 4 telemetry names (fleet.*, anomaly.*, flight.*) are part
        # of the registry: a module using only them is clean.
        findings = run_rule(
            "span-hygiene", FIXTURES / "src/repro/core/fleet_span_case.py"
        )
        assert findings == []

    def test_verify_family_is_registered(self):
        # The verification subsystem's spans and metrics (verify.*) are a
        # registered family: a module using only them is clean.
        findings = run_rule(
            "span-hygiene", FIXTURES / "src/repro/core/verify_span_case.py"
        )
        assert findings == []

    def test_chaos_family_is_registered(self):
        # The chaos harness's spans and metrics (chaos.*) are a registered
        # family: a module using only them is clean.
        findings = run_rule(
            "span-hygiene", FIXTURES / "src/repro/core/chaos_span_case.py"
        )
        assert findings == []

    def test_profile_family_is_registered(self):
        # The continuous profiler's drift events and roofline metrics
        # (profile.*) are a registered family: a module using only them
        # is clean.
        findings = run_rule(
            "span-hygiene", FIXTURES / "src/repro/core/profile_span_case.py"
        )
        assert findings == []

    def test_campaign_family_is_registered(self):
        # The campaign observatory's spans and metrics (campaign.*) are a
        # registered family: a module using only them is clean.
        findings = run_rule(
            "span-hygiene", FIXTURES / "src/repro/core/campaign_span_case.py"
        )
        assert findings == []

    def test_topo_and_scaling_families_are_registered(self):
        # The simulated-exascale comm engine's staged-exchange spans
        # (topo.*) and campaign metrics (scaling.*) are registered
        # families: a module using only them is clean.
        findings = run_rule(
            "span-hygiene", FIXTURES / "src/repro/core/topo_span_case.py"
        )
        assert findings == []


class TestResourceDiscipline:
    def test_flags_raw_open_and_bare_except(self):
        findings = run_rule(
            "resource-discipline", FIXTURES / "src/repro/insitu/resource_case.py"
        )
        assert [(f.line, f.severity) for f in findings] == [
            (5, Severity.WARNING),  # open() outside with
            (8, Severity.ERROR),  # bare except
        ]


class TestApiHygiene:
    def test_flags_defaults_shadowing_unreachable(self):
        findings = run_rule("api-hygiene", FIXTURES / "src/repro/api_case.py")
        by_line = {f.line: f for f in findings}
        assert by_line[4].severity == Severity.ERROR  # mutable default
        assert "mutable default" in by_line[4].message
        assert "`list`" in by_line[9].message  # shadowed parameter
        assert "`sum`" in by_line[10].message  # shadowed assignment
        assert by_line[18].severity == Severity.ERROR  # unreachable
        assert "unreachable" in by_line[18].message


class TestEngine:
    def test_all_rules_over_fixture_tree(self):
        findings, errors = check_paths([FIXTURES], get_rules(None))
        assert errors == []
        per_rule = {}
        for f in findings:
            per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
        assert per_rule == {
            "api-hygiene": 5,
            "backend-purity": 2,
            "determinism": 3,
            "resource-discipline": 2,
            "span-hygiene": 1,
        }
        # Stable ordering: sorted by (path, line, col, rule).
        keys = [(f.path, f.line, f.col, f.rule) for f in findings]
        assert keys == sorted(keys)

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings, errors = check_paths([bad], get_rules(None))
        assert findings == []
        assert len(errors) == 1 and "SyntaxError" in errors[0]

    def test_unknown_rule_selection_rejected(self):
        try:
            get_rules(["no-such-rule"])
        except ValueError as exc:
            assert "no-such-rule" in str(exc)
        else:
            raise AssertionError("expected ValueError for unknown rule")
