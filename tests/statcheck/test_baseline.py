"""Baseline round-trips: write, load, partition, count semantics."""

from pathlib import Path

from repro.statcheck import Baseline, check_paths, get_rules, partition_findings

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_findings():
    findings, errors = check_paths([FIXTURES], get_rules(None))
    assert errors == []
    return findings


class TestRoundTrip:
    def test_write_load_partition_all_baselined(self, tmp_path):
        findings = fixture_findings()
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.write(path)

        loaded = Baseline.load(path)
        assert len(loaded) == len(findings)
        new, baselined, stale = partition_findings(findings, loaded)
        assert new == []
        assert len(baselined) == len(findings)
        assert stale == []

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": {}}')
        try:
            Baseline.load(path)
        except ValueError as exc:
            assert "version" in str(exc)
        else:
            raise AssertionError("expected ValueError for wrong version")

    def test_fingerprint_survives_line_drift(self, tmp_path):
        """Moving a finding to another line keeps it baselined (count-based).

        Fingerprints hash (path, rule, stripped source line) -- NOT the line
        number -- so the baseline is built and re-checked against the same
        relative path under ``root=tmp_path``.
        """
        src = FIXTURES / "src/repro/sem/purity_case.py"
        copy = tmp_path / "src" / "repro" / "sem" / "purity_case.py"
        copy.parent.mkdir(parents=True)
        copy.write_text(src.read_text())
        baseline = Baseline.from_findings(
            check_paths([copy], get_rules(["backend-purity"]), root=tmp_path)[0]
        )

        copy.write_text("\n\n\n" + src.read_text())
        drifted = check_paths([copy], get_rules(["backend-purity"]), root=tmp_path)[0]
        assert [f.line for f in drifted] == [17, 18]  # moved by three lines

        new, baselined, stale = partition_findings(drifted, baseline)
        assert new == [] and len(baselined) == 2 and stale == []


class TestCountSemantics:
    def test_duplicated_violation_exceeds_allowance(self, tmp_path):
        """A second copy of a baselined line is NEW even though the
        fingerprint is known -- the gate is count-based."""
        src = FIXTURES / "src/repro/sem/purity_case.py"
        copy = tmp_path / "src" / "repro" / "sem" / "purity_case.py"
        copy.parent.mkdir(parents=True)
        text = src.read_text()
        copy.write_text(text)
        baseline = Baseline.from_findings(
            check_paths([copy], get_rules(["backend-purity"]), root=tmp_path)[0]
        )

        dup = "        total += np.sum(f)  # finding 1: raw numpy reduction in a hot loop\n"
        assert dup in text
        copy.write_text(text.replace(dup, dup + dup))
        findings = check_paths([copy], get_rules(["backend-purity"]), root=tmp_path)[0]
        assert len(findings) == 3

        new, baselined, stale = partition_findings(findings, baseline)
        assert len(new) == 1 and len(baselined) == 2 and stale == []

    def test_fixed_violation_reported_stale(self):
        findings = fixture_findings()
        baseline = Baseline.from_findings(findings)
        kept = [f for f in findings if f.rule != "determinism"]
        new, baselined, stale = partition_findings(kept, baseline)
        assert new == []
        assert len(baselined) == len(kept)
        assert len(stale) == 3  # the three determinism fingerprints no longer occur
