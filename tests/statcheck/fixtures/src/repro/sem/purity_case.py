"""Fixture: backend-purity violations.  Linted by tests, never imported.

The ``src/repro/sem`` layout below ``fixtures/`` makes the engine derive
the module name ``repro.sem.purity_case`` so the kernel-package scoping
of the rule applies exactly as it does to the real tree.
"""

import numpy as np


def accumulate(fields):
    total = 0.0
    for f in fields:
        total += np.sum(f)  # finding 1: raw numpy reduction in a hot loop
        total += np.dot(f, f)  # finding 2: raw numpy kernel in a hot loop
        total += np.multiply(f, f).sum()  # statcheck: ignore[backend-purity] -- fixture keep
    return total


def setup_once(fields):
    # Outside any loop: not a finding (setup-time numpy is allowed).
    return np.stack(fields)
