"""Fixture: resource-discipline violations.  Linted by tests, never imported."""


def read_header(path):
    f = open(path)  # finding: open() outside a with-statement
    try:
        return f.readline()
    except:  # noqa: E722  -- finding: bare except
        return ""


def read_safe(path):
    with open(path) as f:  # context-managed: allowed
        return f.read()
