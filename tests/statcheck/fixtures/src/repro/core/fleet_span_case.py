"""Fixture: the fleet/anomaly/flight span families are registered.

Every literal name here belongs to a prefix family added to the phase
registry (``fleet.``, ``anomaly.``, ``flight.``), so the span-hygiene rule
must produce zero findings for this module.  Linted by tests, never
imported.
"""


def run(tracer, metrics, series):
    with tracer.span("fleet.gs.local", rank=0):  # registered fleet.* span
        pass
    with tracer.span("fleet.cg.amul", rank=1):  # registered fleet.* span
        pass
    tracer.event(f"anomaly.{series}", cat="anomaly")  # registered anomaly.* event
    tracer.event("flight.divergence")  # registered flight.* event
    metrics.counter("fleet.cg.solves").inc()  # registered fleet.* metric
    metrics.counter("flight.dumps").inc()  # registered flight.* metric
