"""Fixture: the continuous-profiler span/metric family is registered.

Every literal name here belongs to the ``profile.`` prefix family added
to the phase registry by the perfmodel-grounded profiler, so the
span-hygiene rule must produce zero findings for this module.  Linted by
tests, never imported.
"""


def run(tracer, metrics, ratio):
    tracer.event("profile.drift.step", ratio=ratio)  # registered profile.* event
    tracer.sample("profile.step.ratio", ratio)  # registered profile.* counter series
    tracer.event("profile.attribution", entries=7)  # registered profile.* event
    metrics.counter("profile.steps").inc()  # registered profile.* metric
    metrics.counter("profile.drift.pressure").inc()  # registered profile.* metric
    metrics.gauge("profile.gs.achieved_gbps").set(1.3)  # registered profile.* metric
    metrics.gauge("profile.pressure.ratio").set(ratio)  # registered profile.* metric
