"""Fixture: the campaign-observatory span/metric family is registered.

Every literal name here belongs to the ``campaign.`` prefix family added
to the phase registry by the cross-run campaign ledger, so the
span-hygiene rule must produce zero findings for this module.  Linted by
tests, never imported.
"""


def run(tracer, metrics, n_runs):
    with tracer.span("campaign.append", runs=n_runs):  # registered campaign.* span
        pass
    with tracer.span("campaign.report", last=8):  # registered campaign.* span
        tracer.event("campaign.changepoint", entry="step")  # registered campaign.* event
    metrics.counter("campaign.runs").inc()  # registered campaign.* metric
    metrics.gauge("campaign.regressions").set(float(n_runs))  # registered campaign.* metric
    metrics.histogram("campaign.relative_change").record(0.02)  # registered campaign.* metric
