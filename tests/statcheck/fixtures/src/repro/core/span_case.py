"""Fixture: span-taxonomy violations.  Linted by tests, never imported."""


def run(tracer, solver_name):
    with tracer.span("pressure"):  # registered Fig. 4 phase: allowed
        pass
    with tracer.span("made_up_phase"):  # finding: not in the phase registry
        pass
    with tracer.span(f"krylov.{solver_name}"):  # registered dynamic prefix: allowed
        pass
