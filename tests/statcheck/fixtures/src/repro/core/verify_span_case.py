"""Fixture: the verification span/metric family is registered.

Every literal name here belongs to the ``verify.`` prefix family added to
the phase registry by the verification subsystem, so the span-hygiene rule
must produce zero findings for this module.  Linted by tests, never
imported.
"""


def run(tracer, metrics, study):
    with tracer.span("verify.study", study=study):  # registered verify.* span
        with tracer.span("verify.case", parameter=8):  # registered verify.* span
            pass
    with tracer.span("verify.equivalence", chain="gs_add"):  # registered verify.* span
        pass
    metrics.counter("verify.studies_passed").inc()  # registered verify.* metric
    metrics.gauge("verify.max_divergence").set(0.0)  # registered verify.* metric
