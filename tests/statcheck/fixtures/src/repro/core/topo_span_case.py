"""Fixture: the topology/scaling span+metric families are registered.

Every literal name here belongs to the ``topo.`` or ``scaling.`` prefix
families added to the phase registry by the simulated-exascale comm
engine, so the span-hygiene rule must produce zero findings for this
module.  Linted by tests, never imported.
"""


def run(tracer, metrics, n_ranks):
    with tracer.span("topo.stage_up", ranks=n_ranks):  # registered topo.* span
        pass
    with tracer.span("topo.stage_inter"):  # registered topo.* span
        tracer.event("topo.intra", direction="request")  # registered topo.* event
    with tracer.span("scaling.campaign", machine="lumi"):  # registered scaling.* span
        pass
    metrics.counter("topo.inter_messages").inc()  # registered topo.* metric
    metrics.gauge("scaling.efficiency").set(1.0)  # registered scaling.* metric
    metrics.histogram("scaling.step_us").record(2.5)  # registered scaling.* metric
