"""Fixture: the chaos-harness span/metric family is registered.

Every literal name here belongs to the ``chaos.`` prefix family added to
the phase registry by the chaos-testing harness, so the span-hygiene rule
must produce zero findings for this module.  Linted by tests, never
imported.
"""


def run(tracer, metrics, scenario):
    with tracer.span("chaos.campaign", scenarios=12):  # registered chaos.* span
        with tracer.span("chaos.scenario", scenario=scenario):  # registered chaos.* span
            pass
    metrics.counter("chaos.survived").inc()  # registered chaos.* metric
    metrics.counter("chaos.recoveries").inc(2)  # registered chaos.* metric
    metrics.histogram("chaos.steps_replayed").record(2.0)  # registered chaos.* metric
