"""Fixture: determinism violations.  Linted by tests, never imported."""

import time

import numpy as np


def sample():
    a = np.random.rand(4)  # finding: legacy global-state RNG
    rng = np.random.default_rng()  # finding: unseeded generator
    stamp = time.time()  # finding: wall-clock read
    good = np.random.default_rng(1234)  # seeded: allowed
    return a, rng, stamp, good
