"""Fixture: api-hygiene violations.  Linted by tests, never imported."""


def bad_default(x, acc=[]):  # finding: mutable default argument
    acc.append(x)
    return acc


def shadowing(values, list=None):  # finding: parameter shadows builtin
    sum = 0.0  # finding: assignment shadows builtin
    for v in values:
        sum += v
    return sum, list


def tail(x):
    return x
    x += 1  # finding: unreachable statement
