"""Inline ``# statcheck: ignore[...]`` suppression grammar and engine wiring."""

from pathlib import Path

from repro.statcheck import check_paths, get_rules
from repro.statcheck.suppress import parse_suppressions

FIXTURES = Path(__file__).parent / "fixtures"


class TestGrammar:
    def test_trailing_comment_suppresses_own_line(self):
        sup = parse_suppressions(["x = 1  # statcheck: ignore[backend-purity]"])
        assert sup.is_suppressed(1, "backend-purity")
        assert not sup.is_suppressed(1, "determinism")
        assert not sup.is_suppressed(2, "backend-purity")

    def test_multiple_rules_and_reason(self):
        sup = parse_suppressions(
            ["y = 2  # statcheck: ignore[determinism, api-hygiene] -- fixture keep"]
        )
        assert sup.is_suppressed(1, "determinism")
        assert sup.is_suppressed(1, "api-hygiene")
        assert not sup.is_suppressed(1, "backend-purity")

    def test_bare_ignore_suppresses_all_rules(self):
        sup = parse_suppressions(["z = 3  # statcheck: ignore"])
        assert sup.is_suppressed(1, "backend-purity")
        assert sup.is_suppressed(1, "anything-at-all")

    def test_standalone_comment_forwards_to_next_code_line(self):
        sup = parse_suppressions(
            [
                "# statcheck: ignore[determinism] -- clock injected upstream",
                "",
                "# another comment",
                "t = clock()",
            ]
        )
        assert sup.is_suppressed(4, "determinism")
        assert not sup.is_suppressed(1, "determinism")

    def test_unrelated_comments_do_not_suppress(self):
        sup = parse_suppressions(["x = 1  # just a comment", "y = 2"])
        assert not sup.is_suppressed(1, "backend-purity")
        assert not sup.is_suppressed(2, "backend-purity")


class TestEngineIntegration:
    def test_suppressed_fixture_line_not_reported(self):
        path = FIXTURES / "src/repro/sem/purity_case.py"
        findings, errors = check_paths([path], get_rules(["backend-purity"]))
        assert errors == []
        # Line 16 (np.multiply in the loop) carries an ignore; lines 14-15 do not.
        assert [f.line for f in findings] == [14, 15]

    def test_suppression_is_rule_scoped(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "sem" / "scoped.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "import numpy as np\n"
            "import time\n"
            "def f(xs):\n"
            "    for x in xs:\n"
            "        t = time.time()  # statcheck: ignore[backend-purity] -- wrong rule\n"
            "        s = np.sum(x)  # statcheck: ignore[backend-purity] -- right rule\n"
            "    return s, t\n"
        )
        findings, _ = check_paths([mod], get_rules(None))
        rules = sorted(f.rule for f in findings)
        # The determinism finding survives its mis-scoped ignore; the
        # backend-purity finding on the np.sum line is suppressed.
        assert rules == ["determinism"]


class TestDecoratorForwarding:
    """A suppression on a decorator line must cover the decorated def:
    findings (mutable defaults, shadowed params, ...) are reported at the
    ``def`` line, not the ``@`` line the author annotated."""

    def test_forward_copies_the_entry(self):
        sup = parse_suppressions(
            ["@cached  # statcheck: ignore[api-hygiene] -- registry pattern"]
        )
        assert sup.is_suppressed(1, "api-hygiene")
        assert not sup.is_suppressed(3, "api-hygiene")
        sup.forward(1, 3)
        assert sup.is_suppressed(3, "api-hygiene")
        # Forwarding from a line with no suppression is a no-op.
        sup.forward(2, 5)
        assert not sup.is_suppressed(5, "api-hygiene")

    def test_ignore_on_decorator_line_suppresses_the_def(self, tmp_path):
        mod = tmp_path / "deco.py"
        mod.write_text(
            "@register  # statcheck: ignore[api-hygiene] -- fixture: intentional\n"
            "def f(history=[]):\n"
            "    return history\n"
        )
        findings, errors = check_paths([mod], get_rules(["api-hygiene"]))
        assert errors == []
        assert findings == []

    def test_multiline_decorator_stack_is_covered(self, tmp_path):
        # The ignore sits on the *first* decorator; the def follows several
        # lines later.  Every line between the first decorator and the def
        # forwards, so stacked decorators behave like a single one.
        mod = tmp_path / "deco_stack.py"
        mod.write_text(
            "@outer  # statcheck: ignore[api-hygiene] -- fixture: intentional\n"
            "@inner(\n"
            "    option=1,\n"
            ")\n"
            "def f(history=[]):\n"
            "    return history\n"
        )
        findings, errors = check_paths([mod], get_rules(["api-hygiene"]))
        assert errors == []
        assert findings == []

    def test_undecorated_def_is_still_reported(self, tmp_path):
        mod = tmp_path / "plain.py"
        mod.write_text(
            "def f(history=[]):\n"
            "    return history\n"
        )
        findings, _ = check_paths([mod], get_rules(["api-hygiene"]))
        assert [f.line for f in findings] == [1]

    def test_decorator_without_ignore_does_not_suppress(self, tmp_path):
        mod = tmp_path / "deco_plain.py"
        mod.write_text(
            "@register\n"
            "def f(history=[]):\n"
            "    return history\n"
        )
        findings, _ = check_paths([mod], get_rules(["api-hygiene"]))
        assert [f.line for f in findings] == [2]
