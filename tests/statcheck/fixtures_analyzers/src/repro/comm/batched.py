"""Fixture: the batched exchange path is in the hot-loop-allocation scope.

The module name deliberately shadows ``repro.comm.batched`` -- the analyzer
matches hot *modules* exactly, so this file is linted under the real
module's rules without importing it.  The allocator-free fill-loop idiom
the production code uses must stay silent; a naive per-message allocation
must be flagged.  Linted by tests, never imported.
"""

import numpy as np


def fill_loop_is_clean(sends, buf, offsets):
    # The production idiom: one preallocated flat buffer, per-message
    # slice assignment.  No allocator inside the loop.
    for i, (key, payload) in enumerate(sends):
        start = offsets[i]
        buf[start : start + payload.size] = payload.reshape(-1)
    return buf


def per_message_allocation_is_flagged(sends):
    out = []
    for key, payload in sends:
        out.append(np.array(payload, copy=True))  # fresh array per message
    return out


class BatchedState:
    def __init__(self, n_ranks, max_bytes):
        # Setup methods may allocate freely: buffers are hoisted here.
        self.bufs = []
        for _ in range(n_ranks):
            self.bufs.append(np.zeros(max_bytes // 8))
