"""Fixture: collective-ordering cases (positive, negative, suppression).

Each function is one self-contained case; the test asserts the exact
finding lines, so keep the layout stable.  ``comm`` is duck-typed -- the
analyzer keys on method names, not types.
"""


# -- positive: collectives under rank-dependent conditionals --------------

def rank_conditional_collective(comm, rank):
    if rank == 0:
        comm.allreduce(1.0)  # line 13: only rank 0 enters


def rank_attr_conditional(comm):
    if comm.rank == 0:
        comm.bcast(1)  # line 18: rank read off the communicator


# -- positive: divergent orderings across branches ------------------------

def divergent_branches(comm, fast, x):
    if fast:  # line 24: allreduce;barrier vs barrier;allreduce
        comm.allreduce(x)
        comm.barrier()
    else:
        comm.barrier()
        comm.allreduce(x)


def _sum_then_sync(comm, x):
    comm.allreduce(x)
    comm.barrier()


def interproc_divergent(comm, fast, x):
    if fast:  # line 38: helper splices allreduce;barrier
        _sum_then_sync(comm, x)
    else:
        comm.barrier()
        comm.allreduce(x)


# -- positive: unpaired point-to-point ------------------------------------

def push_only(comm, n):  # line 47: 1 send, 0 recvs
    comm.send(0, n)


# -- suppression: flagged by the analyzer, filtered by the engine ---------

def suppressed_rank_collective(comm, rank):
    if rank == 0:
        comm.barrier()  # statcheck: ignore[collective-ordering] -- fixture: suppression demo


# -- negative: the ordinary healthy shapes --------------------------------

def exchange_ring(comm, rank, x):
    comm.send(rank + 1, x)
    comm.recv(rank - 1)


def consistent_branches(comm, use_tree, x):
    if use_tree:
        comm.allreduce(x)
    else:
        comm.allreduce(x)


def interproc_consistent(comm, fast, x):
    if fast:
        _sum_then_sync(comm, x)
    else:
        comm.allreduce(x)
        comm.barrier()


def prefix_convergence_exit(comm, vals):
    for v in vals:
        r = comm.allreduce(v)
        if r < 1.0:
            break
        comm.barrier()


def raise_path_is_error_exit(comm, n):
    if n < 0:
        raise ValueError("bad size")
    comm.allreduce(n)


def nonrank_conditional(comm, ready):
    if ready:
        comm.barrier()
