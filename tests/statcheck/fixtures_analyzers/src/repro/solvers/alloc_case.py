"""Fixture: hot-loop-allocation cases (positive, negative, suppression).

Each function is one self-contained case; the test asserts the exact
finding lines, so keep the layout stable.  The module lives under
``repro.solvers`` so every non-setup function is in the hot scope.
"""

import numpy as np


# -- positive: direct allocators inside loops -----------------------------

def alloc_in_loop(fields):
    out = []
    for f in fields:
        buf = np.zeros(f.shape)  # line 16: fresh array per iteration
        out.append(buf)
    return out


def copy_in_while(x, n):
    y = x
    i = 0
    while i < n:
        y = x.copy()  # line 25: method allocator per iteration
        i += 1
    return y


def like_in_loop(fields):
    acc = None
    for f in fields:
        t = np.empty_like(f)  # line 33: *_like allocator per iteration
        t[...] = f
        acc = t
    return acc


# -- positive: loop-carried recurrence rebind -----------------------------

def recurrence_rebind(z, p, beta, iters):
    for _ in range(iters):
        p = z + beta * p  # line 43: reallocates p every iteration
    return p


# -- positive: interprocedural allocating callee (INFO) -------------------

def _fresh(n):
    return np.empty(n)


def calls_allocator_in_loop(n, iters):
    total = 0.0
    for _ in range(iters):
        w = _fresh(n)  # line 56: callee allocates (advisory)
        total += float(w[0])
    return total


# -- suppression: flagged by the analyzer, filtered by the engine ---------

def suppressed_alloc(fields):
    out = []
    for f in fields:
        # statcheck: ignore[hot-loop-allocation] -- fixture: suppression demo
        out.append(np.array(f, copy=True))
    return out


# -- negative: hoisted buffers, in-place updates, setup functions ---------

def hoisted_scratch(fields, n):
    buf = np.zeros(n)
    for f in fields:
        buf += f
    return buf


def recurrence_in_place(z, p, beta, iters):
    for _ in range(iters):
        p *= beta
        p += z
    return p


def comprehension_builds_result(chunks):
    return [c.copy() for c in chunks]


def _scale(x, a):
    x *= a
    return x


def calls_nonallocator_in_loop(x, iters):
    for _ in range(iters):
        x = _scale(x, 0.5)
    return x


class Workspace:
    def __init__(self, shapes):
        self.bufs = []
        for s in shapes:
            self.bufs.append(np.zeros(s))


def build_operators(shapes):
    ops = []
    for s in shapes:
        ops.append(np.empty(s))
    return ops
