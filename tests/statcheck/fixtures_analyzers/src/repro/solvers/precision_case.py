"""Fixture: precision-flow cases (positive, negative, suppression).

Each function is one self-contained case; the test asserts the exact
finding lines, so keep the layout stable.  ``IterationGuard`` is only
referenced lexically -- the analyzer never imports fixture modules.
"""

import numpy as np


# -- positive: float64 narrowed outside a guard-managed region ------------

def narrow_plain(n):
    r = np.zeros(n)
    return r.astype(np.float32)  # line 15: f64 -> f32, unguarded


def narrow_scalar_cast(n):
    x = np.ones(n)
    return np.float32(x)  # line 20: constructor cast narrows f64


def narrow_string_dtype(n):
    q = np.ones(n)
    return q.astype("float32")  # line 25: string dtype spelling


def narrow_mixed(n):
    m = np.zeros(n) + np.zeros(n, dtype=np.float32)  # join -> mixed
    return m.astype("f4")  # line 30: possibly-f64 narrowed


# -- positive: float32 into an accumulation -------------------------------

def dot_of_f32(n):
    s = np.zeros(n, dtype=np.float32)
    return np.dot(s, s)  # line 37: f32 inner product


def sum_method_of_f32(n):
    s = np.full(n, 1.0, dtype="float32")
    return s.sum()  # line 42: f32 reduction via method


def _make_f32(n):
    return np.zeros(n, dtype=np.float32)


def norm_of_callee_f32(n):
    return np.linalg.norm(_make_f32(n))  # line 50: f32 via function summary


# -- suppression: flagged by the analyzer, filtered by the engine ---------

def narrow_suppressed(n):
    h = np.zeros(n)
    return h.astype(np.float32)  # statcheck: ignore[precision-flow] -- fixture: suppression demo


# -- negative: guard-managed narrowing is the sanctioned fast path --------

def narrow_guarded(n):
    guard = IterationGuard(band=0.2)  # noqa: F821 -- lexical guard marker
    w = np.zeros(n)
    w32 = w.astype(np.float32)
    guard.observe(1)
    return w32


class GuardedSmoother:
    def __init__(self):
        self.guard = IterationGuard()  # noqa: F821 -- lexical guard marker

    def narrow_in_method(self, n):
        if self.guard.tripped:
            return np.zeros(n)
        w = np.ones(n)
        return w.astype(np.float32)


# -- negative: widening, unknown inputs, float64 accumulations ------------

def widen_is_fine(n):
    s = np.zeros(n, dtype=np.float32)
    return s.astype(np.float64)


def narrow_unknown_param(field):
    return field.astype(np.float32)  # dtype of ``field`` is unknown


def dot_of_f64(n):
    r = np.zeros(n)
    return np.dot(r, r)
