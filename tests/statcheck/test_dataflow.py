"""The dataflow framework: lattice laws, interpreter joins, fixpoint solving."""

import ast

from hypothesis import given
from hypothesis import strategies as st

from repro.statcheck.analyzers.precision import (
    DtypeInterpreter,
    PrecisionFlowAnalyzer,
    make_dtype_lattice,
)
from repro.statcheck.callgraph import Project
from repro.statcheck.dataflow import FlatLattice

LATTICE = make_dtype_lattice()
ELEMENTS = st.sampled_from(["unknown", "f32", "f64", "mixed"])


class TestLatticeLaws:
    """Join-semilattice laws, property-tested over every element pair."""

    @given(a=ELEMENTS, b=ELEMENTS)
    def test_join_commutative(self, a, b):
        assert LATTICE.join(a, b) == LATTICE.join(b, a)

    @given(a=ELEMENTS, b=ELEMENTS, c=ELEMENTS)
    def test_join_associative(self, a, b, c):
        assert LATTICE.join(LATTICE.join(a, b), c) == LATTICE.join(a, LATTICE.join(b, c))

    @given(a=ELEMENTS)
    def test_join_idempotent(self, a):
        assert LATTICE.join(a, a) == a

    @given(a=ELEMENTS)
    def test_bottom_is_identity_top_absorbs(self, a):
        assert LATTICE.join("unknown", a) == a
        assert LATTICE.join("mixed", a) == "mixed"

    @given(a=ELEMENTS, b=ELEMENTS)
    def test_leq_is_join_consistency(self, a, b):
        # a <= b exactly when joining adds nothing: the defining property
        # connecting the order to the join.
        assert LATTICE.leq(a, b) == (LATTICE.join(a, b) == b)

    @given(a=ELEMENTS, b=ELEMENTS)
    def test_join_is_upper_bound(self, a, b):
        j = LATTICE.join(a, b)
        assert LATTICE.leq(a, j) and LATTICE.leq(b, j)

    @given(xs=st.lists(ELEMENTS, min_size=1, max_size=6))
    def test_join_all_matches_pairwise_fold(self, xs):
        folded = xs[0]
        for x in xs[1:]:
            folded = LATTICE.join(folded, x)
        assert LATTICE.join_all(xs) == folded

    def test_distinct_atoms_join_to_top(self):
        assert LATTICE.join("f32", "f64") == "mixed"

    def test_unknown_atom_rejected(self):
        lat = FlatLattice(atoms=("a",), bottom="bot", top="top")
        try:
            lat.join("a", "nonsense")
        except (KeyError, ValueError):
            pass
        else:
            raise AssertionError("expected invalid element to be rejected")


def _run(src: str, func: str = "f", params: dict | None = None):
    tree = ast.parse(src)
    node = next(
        n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef) and n.name == func
    )
    interp = DtypeInterpreter(LATTICE)
    return interp.run_function(node, params or {})


class TestInterpreter:
    def test_straightline_assignment(self):
        env, ret = _run(
            "def f(n):\n"
            "    x = np.zeros(n)\n"
            "    y = x\n"
            "    return y\n"
        )
        assert env["x"] == "f64" and env["y"] == "f64"
        assert ret == "f64"

    def test_branches_join(self):
        env, ret = _run(
            "def f(flag, n):\n"
            "    if flag:\n"
            "        x = np.zeros(n)\n"
            "    else:\n"
            "        x = np.zeros(n, dtype=np.float32)\n"
            "    return x\n"
        )
        assert env["x"] == "mixed"
        assert ret == "mixed"

    def test_loop_reaches_fixpoint(self):
        # The loop body narrows once; re-interpretation must converge (the
        # lattice has height 3) and the loop-carried join must hold.
        env, ret = _run(
            "def f(n, it):\n"
            "    x = np.zeros(n)\n"
            "    for _ in it:\n"
            "        x = x.astype(np.float32)\n"
            "    return x\n"
        )
        assert env["x"] == "mixed"  # f64 on entry joined with f32 in the loop
        assert ret == "mixed"

    def test_python_scalars_are_dtype_neutral(self):
        # NEP 50 weak promotion: 0.1 * f32_field stays f32.
        env, _ = _run(
            "def f(n):\n"
            "    s = np.zeros(n, dtype='float32')\n"
            "    y = 0.1 * s\n"
            "    return y\n"
        )
        assert env["y"] == "f32"

    def test_parameters_seed_the_environment(self):
        env, ret = _run(
            "def f(r):\n"
            "    return r.copy()\n",
            params={"r": "f32"},
        )
        assert ret == "f32"

    def test_augassign_joins(self):
        env, _ = _run(
            "def f(n):\n"
            "    x = np.zeros(n)\n"
            "    x += np.zeros(n, dtype=np.float32)\n"
            "    return x\n"
        )
        assert env["x"] == "mixed"


class TestFixpointSolver:
    """Interprocedural summaries terminate on cyclic call graphs."""

    def _project(self, tmp_path, source: str) -> Project:
        path = tmp_path / "src" / "repro" / "solvers" / "cyclic_case.py"
        path.parent.mkdir(parents=True)
        path.write_text(source)
        return Project.load([tmp_path / "src"], root=tmp_path)

    def test_mutual_recursion_terminates(self, tmp_path):
        project = self._project(
            tmp_path,
            "import numpy as np\n"
            "\n"
            "def ping(x, depth):\n"
            "    if depth == 0:\n"
            "        return np.zeros(4)\n"
            "    return pong(x, depth - 1)\n"
            "\n"
            "def pong(x, depth):\n"
            "    return ping(x, depth)\n",
        )
        findings = list(PrecisionFlowAnalyzer().check(project))
        assert findings == []  # nothing narrows; the point is termination

    def test_recursive_narrowing_is_still_reported(self, tmp_path):
        project = self._project(
            tmp_path,
            "import numpy as np\n"
            "\n"
            "def descend(depth):\n"
            "    r = np.ones(4)\n"
            "    if depth == 0:\n"
            "        return r.astype(np.float32)\n"
            "    return descend(depth - 1)\n",
        )
        findings = list(PrecisionFlowAnalyzer().check(project))
        assert [f.line for f in findings] == [6]
        assert "narrowed to float32" in findings[0].message

    def test_summary_flows_through_a_cycle(self, tmp_path):
        # The f32 return of the recursive pair must reach the accumulation
        # in the separate caller: the solver has to iterate to fixpoint.
        project = self._project(
            tmp_path,
            "import numpy as np\n"
            "\n"
            "def alpha(depth):\n"
            "    if depth == 0:\n"
            "        return np.zeros(4, dtype=np.float32)\n"
            "    return beta(depth - 1)\n"
            "\n"
            "def beta(depth):\n"
            "    return alpha(depth)\n"
            "\n"
            "def consume(depth):\n"
            "    return np.dot(alpha(depth), alpha(depth))\n",
        )
        findings = list(PrecisionFlowAnalyzer().check(project))
        assert len(findings) == 1
        assert findings[0].line == 12
        assert "'dot' accumulation" in findings[0].message
