"""collective-ordering analyzer behaviour, driven by the committed fixture."""

from pathlib import Path

from repro.statcheck import check_project
from repro.statcheck.analyzers.collectives import CollectiveOrderingAnalyzer
from repro.statcheck.callgraph import Project
from repro.statcheck.finding import Severity

FIXTURE = (
    Path(__file__).parent
    / "fixtures_analyzers/src/repro/comm/collective_case.py"
)


def _findings():
    project = Project.load([FIXTURE], root=FIXTURE.parents[3])
    return sorted(CollectiveOrderingAnalyzer().check(project), key=lambda f: f.line)


class TestRankConditionals:
    def test_collectives_under_rank_tests_are_errors(self):
        by_line = {f.line: f for f in _findings()}
        for line, name in ((13, "allreduce"), (18, "bcast"), (55, "barrier")):
            f = by_line[line]
            assert f.severity == Severity.ERROR
            assert f"collective '{name}'" in f.message

    def test_p2p_under_rank_tests_is_the_normal_idiom(self):
        # exchange_ring sends/recvs based on rank arithmetic: no finding.
        lines = [f.line for f in _findings()]
        assert not any(59 <= line <= 63 for line in lines)


class TestBranchDivergence:
    def test_swapped_orderings_are_flagged(self):
        by_line = {f.line: f for f in _findings()}
        assert "diverge across these branches" in by_line[24].message
        assert by_line[24].severity == Severity.WARNING

    def test_divergence_through_a_callee_is_flagged(self):
        # interproc_divergent: one branch reaches allreduce;barrier through
        # a helper, the other issues barrier;allreduce directly.
        by_line = {f.line: f for f in _findings()}
        assert "diverge across these branches" in by_line[38].message

    def test_consistent_and_prefix_shapes_are_silent(self):
        # consistent_branches, interproc_consistent, the convergence-exit
        # loop, the raise path and the non-rank conditional: all clean.
        lines = [f.line for f in _findings()]
        assert not any(line >= 59 for line in lines)


class TestP2pPairing:
    def test_unbalanced_path_is_flagged_at_the_def(self):
        by_line = {f.line: f for f in _findings()}
        f = by_line[47]
        assert "1 send(s) but 0 recv(s)" in f.message
        assert f.severity == Severity.WARNING

    def test_exact_finding_set(self):
        assert [f.line for f in _findings()] == [13, 18, 24, 38, 47, 55]


class TestEngineIntegration:
    def test_suppression_filters_the_annotated_line(self):
        findings, errors = check_project(
            [FIXTURE],
            analyzers=[CollectiveOrderingAnalyzer()],
            root=FIXTURE.parents[3],
        )
        assert errors == []
        lines = [f.line for f in findings]
        assert 55 not in lines  # trailing ignore[collective-ordering]
        assert lines == [13, 18, 24, 38, 47]


class TestScope:
    def test_only_comm_package_is_scanned(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "solvers" / "chatty.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "def f(comm, rank):\n"
            "    if rank == 0:\n"
            "        comm.allreduce(1.0)\n"
        )
        project = Project.load([tmp_path / "src"], root=tmp_path)
        assert list(CollectiveOrderingAnalyzer().check(project)) == []
