"""Runtime array contracts: specs, dimension binding, the decorator."""

import numpy as np
import pytest

from repro.statcheck.contracts import (
    FIELD,
    OPERATOR_1D,
    ArraySpec,
    ContractViolation,
    contract,
    contracts_enabled,
    enable_contracts,
)


def field(nelem=4, n=6, dtype=np.float64):
    return np.zeros((nelem, n, n, n), dtype=dtype)


class TestArraySpec:
    def test_spec_string_parsing(self):
        spec = ArraySpec("nelem, n, n, 3")
        assert spec.dims == ("nelem", "n", "n", 3)

    def test_star_matches_any_extent(self):
        ArraySpec("*,*").validate(np.zeros((2, 99)), {}, "w")

    def test_valid_field_passes_and_binds(self):
        env = {}
        FIELD.validate(field(nelem=5, n=7), env, "u")
        assert env == {"nelem": 5, "n": 7}

    def test_wrong_ndim(self):
        with pytest.raises(ContractViolation, match="4-d"):
            FIELD.validate(np.zeros((4, 6, 6)), {}, "u")

    def test_wrong_dtype(self):
        with pytest.raises(ContractViolation, match="float64"):
            FIELD.validate(field(dtype=np.float32), {}, "u")

    def test_not_an_array(self):
        with pytest.raises(ContractViolation, match="ndarray"):
            FIELD.validate([[1.0]], {}, "u")

    def test_pinned_extent(self):
        spec = ArraySpec("n,3")
        spec.validate(np.zeros((5, 3)), {}, "x")
        with pytest.raises(ContractViolation, match="extent 3"):
            spec.validate(np.zeros((5, 4)), {}, "x")

    def test_named_dim_conflict_across_specs(self):
        env = {}
        FIELD.validate(field(n=6), env, "u")
        with pytest.raises(ContractViolation, match="n=5 .* n=6|conflicts"):
            OPERATOR_1D.validate(np.zeros((5, 5)), env, "dx")


class TestDecorator:
    def test_passes_and_returns_value(self):
        @contract(u=FIELD, returns=FIELD)
        def double(u):
            return 2.0 * u

        prev = enable_contracts(True)
        try:
            out = double(field())
            assert out.shape == field().shape
        finally:
            enable_contracts(prev)

    def test_argument_violation(self):
        @contract(u=FIELD)
        def f(u):
            return u

        prev = enable_contracts(True)
        try:
            with pytest.raises(ContractViolation, match=r"f\(u\)"):
                f(np.zeros((3, 3)))
        finally:
            enable_contracts(prev)

    def test_return_shares_dimension_env(self):
        @contract(u=FIELD, returns=FIELD)
        def shrink(u):
            return u[:, :-1, :-1, :-1].copy()  # breaks n binding

        prev = enable_contracts(True)
        try:
            with pytest.raises(ContractViolation, match="return"):
                shrink(field())
        finally:
            enable_contracts(prev)

    def test_tuple_returns(self):
        @contract(u=FIELD, returns=(FIELD, FIELD))
        def split(u):
            return u.copy(), u.copy()

        @contract(u=FIELD, returns=(FIELD, FIELD))
        def bad(u):
            return (u.copy(),)

        prev = enable_contracts(True)
        try:
            split(field())
            with pytest.raises(ContractViolation, match="2-tuple"):
                bad(field())
        finally:
            enable_contracts(prev)

    def test_disabled_contracts_are_free(self):
        calls = []

        @contract(u=FIELD)
        def f(u):
            calls.append(1)
            return u

        prev = enable_contracts(False)
        try:
            assert not contracts_enabled()
            f("not an array at all")  # no validation when off
            assert calls == [1]
        finally:
            enable_contracts(prev)
            assert contracts_enabled() == prev

    def test_unknown_parameter_rejected_at_decoration(self):
        with pytest.raises(TypeError, match="nope"):

            @contract(nope=FIELD)
            def f(u):
                return u

    def test_kwargs_are_validated(self):
        @contract(dx=OPERATOR_1D)
        def apply_dx(u, dx=None):
            return u

        prev = enable_contracts(True)
        try:
            apply_dx(field(), dx=np.zeros((6, 6)))
            with pytest.raises(ContractViolation):
                apply_dx(field(), dx=np.zeros((6, 5)))
        finally:
            enable_contracts(prev)


class TestWiredSeams:
    """The decorated production functions reject malformed fields."""

    @pytest.fixture(scope="class")
    def space(self):
        from repro.sem.mesh import box_mesh
        from repro.sem.space import FunctionSpace

        return FunctionSpace(box_mesh((2, 2, 2)), 4)

    def test_courant_number_rejects_transposed_field(self, space):
        from repro.timeint.cfl import courant_number

        u = np.zeros(space.shape)
        assert courant_number(space, u, u, u, 0.1) == 0.0
        bad = np.zeros((space.shape[3], space.shape[1], space.shape[2], space.shape[0]))
        assert bad.shape != space.shape
        with pytest.raises(ContractViolation):
            courant_number(space, bad, u, u, 0.1)

    def test_ax_poisson_rejects_float32(self, space):
        from repro.sem.basis import derivative_matrix
        from repro.sem.operators import ax_poisson

        dx = derivative_matrix(space.lx)
        with pytest.raises(ContractViolation, match="float64"):
            ax_poisson(np.zeros(space.shape, dtype=np.float32), space.coef, dx)
