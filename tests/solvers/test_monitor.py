"""SolverMonitor and IterationStreakTracker edge cases.

The monitors feed both the adaptive-timestep logic and the observability
bridge, so their corner semantics (zero initial residual, iteration
exhaustion, streak resets) are load-bearing."""

import math


from repro.solvers.monitor import IterationStreakTracker, SolverMonitor


class TestSolverMonitor:
    def test_zero_initial_residual_is_immediate_convergence(self):
        mon = SolverMonitor(tol=1e-8)
        assert mon.start(0.0) is True
        assert mon.converged
        assert mon.iterations == 0
        assert mon.final_residual == 0.0

    def test_tiny_initial_residual_below_atol_converges(self):
        mon = SolverMonitor(tol=1e-8, atol=1e-30)
        assert mon.start(1e-31) is True

    def test_relative_criterion(self):
        mon = SolverMonitor(tol=1e-2)
        assert mon.start(100.0) is False
        assert mon.step(10.0) is False
        assert mon.step(0.99) is True  # 0.99 <= 1e-2 * 100
        assert mon.iterations == 2

    def test_zero_initial_residual_then_step_uses_atol_floor(self):
        # With r0 == 0 the relative target collapses; the atol floor keeps
        # the criterion meaningful instead of demanding r <= 0 exactly.
        mon = SolverMonitor(tol=1e-8, atol=1e-30)
        mon.start(0.0)
        assert mon.step(1e-31) is True
        assert mon.step(1e-20) is False

    def test_exhaustion_without_convergence(self):
        mon = SolverMonitor(tol=1e-12, name="pressure")
        mon.start(1.0)
        for _ in range(50):  # a stalled solver hitting its ceiling
            mon.step(0.5)
        assert not mon.converged
        assert mon.iterations == 50
        assert mon.final_residual == 0.5
        assert "NOT converged" in mon.summary()

    def test_empty_monitor_residuals_are_nan(self):
        mon = SolverMonitor(tol=1e-8)
        assert math.isnan(mon.initial_residual)
        assert math.isnan(mon.final_residual)
        assert mon.iterations == 0

    def test_restart_resets_history(self):
        mon = SolverMonitor(tol=1e-8)
        mon.start(1.0)
        mon.step(0.5)
        mon.start(2.0)
        assert mon.residuals == [2.0]
        assert not mon.converged

    def test_summary_names_the_solve(self):
        mon = SolverMonitor(tol=1e-1, name="temperature")
        mon.start(1.0)
        mon.step(1e-3)
        assert mon.summary().startswith("temperature: converged in 1 iters")


class TestIterationStreakTracker:
    def test_trips_after_streak_of_exhausted_solves(self):
        tracker = IterationStreakTracker(limit=10, streak=3)
        assert tracker.observe(10) is False
        assert tracker.observe(11) is False
        assert tracker.observe(10) is True

    def test_healthy_solve_resets_the_streak(self):
        tracker = IterationStreakTracker(limit=10, streak=2)
        assert tracker.observe(10) is False
        assert tracker.observe(3) is False
        assert tracker.observe(10) is False  # streak restarted
        assert tracker.observe(10) is True

    def test_unconverged_monitor_counts_as_struggling(self):
        tracker = IterationStreakTracker(limit=100, streak=2)
        mon = SolverMonitor(tol=1e-12)
        mon.start(1.0)
        mon.step(0.9)  # 1 iteration, far from the limit, but unconverged
        assert tracker.observe(mon) is False
        assert tracker.observe(mon) is True

    def test_converged_monitor_resets(self):
        tracker = IterationStreakTracker(limit=5, streak=2)
        tracker.observe(5)
        good = SolverMonitor(tol=1e-1)
        good.start(1.0)
        good.step(1e-3)
        assert tracker.observe(good) is False
        assert tracker.count == 0

    def test_reset(self):
        tracker = IterationStreakTracker(limit=1, streak=5)
        tracker.observe(1)
        tracker.reset()
        assert tracker.count == 0
