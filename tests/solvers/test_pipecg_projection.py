"""Tests for pipelined CG and the solution-projection space."""

import numpy as np
import pytest

from repro.solvers import (
    ConjugateGradient,
    PipelinedConjugateGradient,
    SolutionProjection,
)


def dense_dot(a, b):
    return float(np.dot(a.reshape(-1), b.reshape(-1)))


def make_spd(n, seed=0, cond=100.0):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    lam = np.geomspace(1.0, cond, n)
    return q @ np.diag(lam) @ q.T


class TestPipelinedCG:
    def test_identity(self):
        pcg = PipelinedConjugateGradient(lambda u: u.copy(), dense_dot)
        x, mon = pcg.solve(np.ones(7))
        assert np.allclose(x, 1.0)
        assert mon.converged

    def test_matches_classic_cg(self):
        # At moderate tolerance the pipelined recurrences track classic CG
        # iteration-for-iteration; at very tight tolerances rounding drift
        # costs pipelined CG extra iterations (the documented trade-off).
        a = make_spd(50, seed=1)
        b = np.arange(50, dtype=float)
        cg = ConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-8, maxiter=300)
        pcg = PipelinedConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-8, maxiter=300)
        x1, m1 = cg.solve(b)
        x2, m2 = pcg.solve(b)
        assert m2.converged
        assert np.allclose(x1, x2, atol=1e-5)
        # Rounding drift costs pipelined CG a handful of extra iterations.
        assert abs(m1.iterations - m2.iterations) <= 12

    def test_tight_tolerance_still_converges(self):
        # Residual replacement lets pipelined CG reach tight tolerances,
        # if with some extra iterations.
        a = make_spd(50, seed=1)
        b = np.arange(50, dtype=float)
        pcg = PipelinedConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-12, maxiter=400)
        x, mon = pcg.solve(b)
        assert mon.converged
        assert np.linalg.norm(a @ x - b) < 1e-9 * np.linalg.norm(b)

    def test_preconditioned(self):
        a = make_spd(40, seed=2, cond=1e4)
        s = np.diag(np.geomspace(1.0, 50.0, 40))
        a = s @ a @ s
        inv_diag = 1.0 / np.diag(a)
        b = np.ones(40)
        pcg = PipelinedConjugateGradient(
            lambda u: a @ u, dense_dot, precond=lambda r: inv_diag * r,
            tol=1e-10, maxiter=500,
        )
        x, mon = pcg.solve(b)
        assert mon.converged
        assert np.allclose(a @ x, b, atol=1e-5 * np.linalg.norm(b))

    def test_initial_guess(self):
        a = make_spd(20, seed=3)
        xe = np.linspace(0, 1, 20)
        b = a @ xe
        pcg = PipelinedConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-12)
        x, mon = pcg.solve(b, x0=xe * 1.001)
        assert np.allclose(x, xe, atol=1e-8)

    def test_single_fused_reduction_per_iteration(self):
        pcg = PipelinedConjugateGradient(lambda u: u.copy(), dense_dot)
        assert pcg.reductions_per_iteration == 1

    def test_on_sem_helmholtz(self):
        from repro.precond import JacobiPrecond
        from repro.sem.bc import DirichletBC
        from repro.sem.mesh import box_mesh
        from repro.sem.operators import ax_helmholtz
        from repro.sem.space import FunctionSpace

        sp = FunctionSpace(box_mesh((2, 2, 2)), 5)
        bc = DirichletBC(sp, ["bottom", "top", "x-", "x+", "y-", "y+"], 0.0)
        h1, h2 = 0.01, 50.0

        def amul(u):
            return sp.gs.add(ax_helmholtz(u, sp.coef, sp.dx, h1, h2)) * bc.mask

        rng = np.random.default_rng(4)
        b = sp.gs.add(sp.coef.mass * rng.normal(size=sp.shape)) * bc.mask
        pc = JacobiPrecond(sp, h1, h2, mask=bc.mask)
        cg = ConjugateGradient(amul, sp.gs.dot, precond=pc, tol=1e-10)
        pcg = PipelinedConjugateGradient(amul, sp.gs.dot, precond=pc, tol=1e-10)
        x1, m1 = cg.solve(b)
        x2, m2 = pcg.solve(b)
        assert m2.converged
        assert np.allclose(x1, x2, atol=1e-7 * np.abs(x1).max())


class TestSolutionProjection:
    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            SolutionProjection(lambda u: u, dense_dot, max_dim=0)

    def test_exact_for_repeated_rhs(self):
        a = make_spd(30, seed=5)
        proj = SolutionProjection(lambda u: a @ u, dense_dot, max_dim=5)
        cg = ConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-12, maxiter=200)
        b = np.ones(30)
        x1, m1 = proj.solve_with(cg, b)
        assert m1.iterations > 0
        # Second solve with the same rhs: the guess is already exact.
        x2, m2 = proj.solve_with(cg, b)
        assert np.allclose(x2, x1, atol=1e-8)
        assert m2.iterations <= 1

    def test_guess_quality_tracked(self):
        a = make_spd(25, seed=6)
        proj = SolutionProjection(lambda u: a @ u, dense_dot, max_dim=5)
        cg = ConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-12, maxiter=200)
        b = np.ones(25)
        proj.solve_with(cg, b)
        proj.initial_guess(b)
        assert proj.last_guess_norm_fraction > 0.99

    def test_rolling_window(self):
        a = make_spd(20, seed=7)
        proj = SolutionProjection(lambda u: a @ u, dense_dot, max_dim=3)
        cg = ConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-12, maxiter=100)
        rng = np.random.default_rng(8)
        for _ in range(6):
            proj.solve_with(cg, rng.normal(size=20))
        assert proj.dim <= 3

    def test_reduces_iterations_for_slowly_varying_rhs(self):
        # The saving equals the digits removed by deflation: the deflated
        # residual is ~||perturbation|| and only needs reducing to
        # tol * ||b|| (the absolute floor), not tol * ||r_deflated||.
        a = make_spd(40, seed=9, cond=1e3)
        cg = ConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-10, maxiter=500)
        proj = SolutionProjection(lambda u: a @ u, dense_dot, max_dim=8)
        rng = np.random.default_rng(10)
        base = rng.normal(size=40)
        its_plain, its_proj = [], []
        for k in range(8):
            b = base + 1e-3 * rng.normal(size=40)
            _, m_plain = cg.solve(b)
            its_plain.append(m_plain.iterations)
            _, m_proj = proj.solve_with(cg, b)
            its_proj.append(m_proj.iterations)
        # Deflation removes ~99.9% of the right-hand side...
        assert proj.last_guess_norm_fraction > 0.995
        # ...and strictly reduces the iteration count after warmup (the
        # tail digits converge slowly on this ill-conditioned matrix, so
        # the saving is a solid margin rather than the full digit ratio).
        assert np.mean(its_proj[2:]) < 0.97 * np.mean(its_plain[2:])

    def test_basis_a_orthonormal(self):
        a = make_spd(15, seed=11)
        proj = SolutionProjection(lambda u: a @ u, dense_dot, max_dim=4)
        cg = ConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-13, maxiter=60)
        rng = np.random.default_rng(12)
        for _ in range(4):
            proj.solve_with(cg, rng.normal(size=15))
        for i, xi in enumerate(proj._x):
            for j, xj in enumerate(proj._x):
                val = dense_dot(xi, a @ xj)
                expect = 1.0 if i == j else 0.0
                assert val == pytest.approx(expect, abs=1e-6)

    def test_clear(self):
        a = make_spd(10, seed=13)
        proj = SolutionProjection(lambda u: a @ u, dense_dot)
        cg = ConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-12)
        proj.solve_with(cg, np.ones(10))
        assert proj.dim == 1
        proj.clear()
        assert proj.dim == 0

    def test_degenerate_direction_discarded(self):
        a = make_spd(10, seed=14)
        proj = SolutionProjection(lambda u: a @ u, dense_dot)
        proj.update(np.ones(10))
        # The same direction again contributes nothing.
        proj.update(np.ones(10))
        assert proj.dim == 1
