"""Tests for CG and GMRES against dense references and SEM operators."""

import numpy as np
import pytest

from repro.solvers import ConjugateGradient, Gmres, MeanProjector, SolverMonitor


def dense_dot(a, b):
    return float(np.dot(a.reshape(-1), b.reshape(-1)))


def make_spd(n, seed=0, cond=100.0):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    lam = np.geomspace(1.0, cond, n)
    return q @ np.diag(lam) @ q.T


class TestMonitor:
    def test_initial_convergence(self):
        m = SolverMonitor(tol=1e-8)
        assert m.start(0.0) is True
        assert m.iterations == 0

    def test_relative_criterion(self):
        m = SolverMonitor(tol=1e-2)
        m.start(1.0)
        assert m.step(0.5) is False
        assert m.step(0.009) is True
        assert m.iterations == 2

    def test_summary_format(self):
        m = SolverMonitor(tol=1e-3, name="p")
        m.start(1.0)
        m.step(1e-4)
        assert "converged" in m.summary()
        assert "p" in m.summary()


class TestCG:
    def test_identity(self):
        b = np.ones(10)
        cg = ConjugateGradient(lambda u: u, dense_dot)
        x, mon = cg.solve(b)
        assert np.allclose(x, b)
        assert mon.converged

    def test_spd_system(self):
        a = make_spd(40, seed=1)
        b = np.arange(40, dtype=float)
        cg = ConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-12, maxiter=200)
        x, mon = cg.solve(b)
        assert mon.converged
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_jacobi_preconditioner_reduces_iterations(self):
        a = make_spd(60, seed=2, cond=1e4)
        # Scale rows/cols to create wildly varying diagonal.
        s = np.diag(np.geomspace(1.0, 100.0, 60))
        a = s @ a @ s
        b = np.ones(60)
        inv_diag = 1.0 / np.diag(a)
        plain = ConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-10, maxiter=2000)
        prec = ConjugateGradient(
            lambda u: a @ u, dense_dot, precond=lambda r: inv_diag * r, tol=1e-10, maxiter=2000
        )
        _, m1 = plain.solve(b)
        _, m2 = prec.solve(b)
        assert m2.converged
        assert m2.iterations < m1.iterations

    def test_nonzero_initial_guess(self):
        a = make_spd(20, seed=3)
        xexact = np.linspace(0, 1, 20)
        b = a @ xexact
        cg = ConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-12)
        x, mon = cg.solve(b, x0=xexact + 1e-3)
        assert np.allclose(x, xexact, atol=1e-8)
        assert mon.iterations <= 30

    def test_fixed_iterations_mode(self):
        a = make_spd(30, seed=4)
        b = np.ones(30)
        cg = ConjugateGradient(lambda u: a @ u, dense_dot, fixed_iterations=10)
        x, mon = cg.solve(b)
        assert mon.iterations >= 1
        r = b - a @ x
        # 10 iterations must reduce the residual substantially.
        assert np.linalg.norm(r) < 0.5 * np.linalg.norm(b)

    def test_exact_in_n_iterations(self):
        # CG terminates in at most n iterations in exact arithmetic.
        a = make_spd(15, seed=5, cond=10.0)
        b = np.ones(15)
        cg = ConjugateGradient(lambda u: a @ u, dense_dot, tol=1e-13, maxiter=30)
        x, mon = cg.solve(b)
        assert mon.converged
        assert mon.iterations <= 20


class TestGmres:
    def test_identity(self):
        b = np.ones(8)
        g = Gmres(lambda u: u.copy(), dense_dot)
        x, mon = g.solve(b)
        assert np.allclose(x, b)
        assert mon.converged

    def test_nonsymmetric_system(self):
        rng = np.random.default_rng(6)
        a = np.eye(30) + 0.3 * rng.normal(size=(30, 30))
        b = rng.normal(size=30)
        g = Gmres(lambda u: a @ u, dense_dot, tol=1e-11, maxiter=200, restart=30)
        x, mon = g.solve(b)
        assert mon.converged
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_restart_still_converges(self):
        rng = np.random.default_rng(7)
        a = np.eye(50) + 0.05 * rng.normal(size=(50, 50))
        b = rng.normal(size=50)
        g = Gmres(lambda u: a @ u, dense_dot, tol=1e-10, maxiter=500, restart=7)
        x, mon = g.solve(b)
        assert mon.converged
        assert np.allclose(a @ x, b, atol=1e-7)

    def test_right_preconditioning_exact(self):
        a = make_spd(25, seed=8, cond=1e5)
        ainv = np.linalg.inv(a)
        b = np.ones(25)
        g = Gmres(lambda u: a @ u, dense_dot, precond=lambda r: ainv @ r, tol=1e-12)
        x, mon = g.solve(b)
        assert mon.converged
        assert mon.iterations <= 3

    def test_singular_consistent_with_projection(self):
        # A = Laplacian-like singular matrix (constant null space); solve the
        # projected problem.
        n = 12
        a = 2 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1)
        a[0, 0] = a[-1, -1] = 1.0  # pure Neumann 1-D Laplacian
        proj = MeanProjector(np.ones(n))
        rng = np.random.default_rng(9)
        b = proj(rng.normal(size=n))
        g = Gmres(lambda u: a @ u, dense_dot, tol=1e-11, project_out=proj, maxiter=100)
        x, mon = g.solve(b)
        assert mon.converged
        assert np.allclose(a @ x, b, atol=1e-8)
        assert abs(np.mean(x)) < 1e-10

    def test_nonzero_initial_guess(self):
        rng = np.random.default_rng(10)
        a = np.eye(20) + 0.1 * rng.normal(size=(20, 20))
        xe = rng.normal(size=20)
        b = a @ xe
        g = Gmres(lambda u: a @ u, dense_dot, tol=1e-12)
        x, mon = g.solve(b, x0=xe * 0.99)
        assert np.allclose(x, xe, atol=1e-8)


class TestMeanProjector:
    def test_removes_weighted_mean(self):
        w = np.array([1.0, 2.0, 1.0])
        p = MeanProjector(w)
        u = np.array([1.0, 1.0, 1.0])
        p(u)
        assert np.allclose(u, 0.0)

    def test_idempotent(self):
        rng = np.random.default_rng(11)
        w = rng.uniform(0.5, 2.0, size=50)
        p = MeanProjector(w)
        u = rng.normal(size=50)
        p(u)
        v = u.copy()
        p(u)
        assert np.allclose(u, v)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            MeanProjector(np.zeros(3))
