# Developer entry points.  Everything here is what CI runs, so a green
# `make lint test` locally means a green lint/tests pair upstream.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint ruff mypy statcheck sarif test verify bench

lint: ruff mypy statcheck

ruff:
	ruff check src tests benchmarks

mypy:
	mypy --strict -p repro.solvers -p repro.timeint

# The full gate: per-module rules plus all three interprocedural
# analyzers, against the committed (empty) baseline.
statcheck:
	$(PYTHON) -m repro.statcheck src/ --analysis all --baseline statcheck_baseline.json

# Code-scanning export of the same run (written to statcheck.sarif).
sarif:
	$(PYTHON) -m repro.statcheck src/ --analysis all \
	    --baseline statcheck_baseline.json --format sarif > statcheck.sarif

test:
	$(PYTHON) -m pytest -x -q

verify:
	$(PYTHON) -m repro.verify --quick --out verify_report.json

bench:
	$(PYTHON) -m benchmarks.perf_harness --out-dir bench_out --repeats 3 --steps 3
