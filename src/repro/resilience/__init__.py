"""Resilience: fault injection, checkpoint ring, rollback-and-retry.

The paper's campaign runs for weeks on 16,384 GCDs, where node failures,
transient network faults and solver blow-ups are routine; Neko survives
through checkpoint/restart and solver monitoring, and the in-situ path only
holds up at scale because it degrades gracefully instead of stalling the
solver.  This package reproduces that operational layer:

* :class:`~repro.resilience.faults.FaultInjector` -- deterministic, seeded
  fault schedules (message drop/corruption/delay in :class:`SimWorld`
  traffic, one-shot rank failures, silent-data-corruption bit flips into
  field arrays) so every recovery path is testable;
* :class:`~repro.resilience.checkpoint_ring.CheckpointRing` -- a bounded
  ring of checksummed checkpoints (on-disk or in-memory) with fallback
  across corrupt entries;
* :class:`~repro.resilience.health.HealthCheck` -- per-step finite-field
  scan, CFL ceiling and pressure-iteration streak detection;
* :class:`~repro.resilience.runner.ResilientRunner` -- wraps
  :meth:`Simulation.run` in segments: checkpoint, health-check, and on
  failure roll back to the last good ring entry, optionally reduce ``dt``,
  back off, and retry within a bounded attempt budget.  Everything that
  happens is recorded in a structured
  :class:`~repro.resilience.events.EventLog`.

Two subpackages extend this to the simulated multi-rank fleet:

* :mod:`repro.resilience.distributed` -- coordinated sharded checkpoints
  (two-phase epoch commit), elastic rank recovery (warm replacement or
  shrink-and-repartition) and the reference recoverable workload;
* :mod:`repro.resilience.chaos` -- seeded chaos campaigns (rank kills,
  message storms, SDC bit flips) with survival/MTTR reporting, runnable
  as ``python -m repro.resilience.chaos``.
"""

from repro.resilience.events import Event, EventLog
from repro.resilience.faults import Fault, FaultEvent, FaultInjector, RankFailedError
from repro.resilience.checkpoint_ring import CheckpointRing, RingEntry
from repro.resilience.health import HealthCheck, HealthIssue
from repro.resilience.runner import (
    ResilientResult,
    ResilientRunner,
    RetryBudgetExceededError,
)

__all__ = [
    "Event",
    "EventLog",
    "Fault",
    "FaultEvent",
    "FaultInjector",
    "RankFailedError",
    "CheckpointRing",
    "RingEntry",
    "HealthCheck",
    "HealthIssue",
    "ResilientResult",
    "ResilientRunner",
    "RetryBudgetExceededError",
]
