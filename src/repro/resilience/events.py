"""Structured event log of faults, rollbacks and recoveries.

Production campaigns live or die by their operational record: which step
diverged, which checkpoint was corrupt, how many retries a run needed.
:class:`EventLog` is the single structured stream all resilience
components append to; the :class:`ResilientRunner` returns it alongside
the step results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Event", "EventLog"]


@dataclass
class Event:
    """One entry in the resilience log.

    ``kind`` is a short tag: ``"fault"``, ``"rollback"``, ``"retry"``,
    ``"checkpoint"``, ``"corrupt_checkpoint"``, ``"quarantine"``,
    ``"recovery"``, ...  ``step``/``time`` locate it in the simulation;
    ``data`` carries kind-specific payload (offending quantity, dt before
    and after, fallback checkpoint step, ...).
    """

    kind: str
    step: int = -1
    time: float = 0.0
    detail: str = ""
    data: dict = field(default_factory=dict)


class EventLog:
    """Append-only list of :class:`Event` with small query helpers."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def record(
        self, kind: str, step: int = -1, time: float = 0.0, detail: str = "", **data
    ) -> Event:
        ev = Event(kind=kind, step=step, time=time, detail=detail, data=data)
        self.events.append(ev)
        return ev

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return len(self.of_kind(kind))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def summary(self) -> str:
        """Human-readable transcript, one line per event."""
        lines = []
        for e in self.events:
            loc = f"step {e.step}" if e.step >= 0 else ""
            extra = f" {e.data}" if e.data else ""
            lines.append(f"[{e.kind}] {loc} {e.detail}{extra}".rstrip())
        return "\n".join(lines)
