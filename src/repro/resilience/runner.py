"""Rollback-and-retry execution: the resilient wrapper around ``run``.

``Simulation.run`` is fail-fast: a NaN anywhere raises and the run is
lost.  At production scale that is unacceptable -- the paper's campaign
survives weeks of wall time only because failed intervals are replayed
from checkpoints.  :class:`ResilientRunner` reproduces that operational
loop:

1. advance the simulation one *segment* (``checkpoint_interval`` steps);
2. apply any scheduled injected faults (testing hook);
3. run the :class:`~repro.resilience.health.HealthCheck` over the new
   state and step results;
4. healthy: checkpoint into the :class:`CheckpointRing` and continue;
   unhealthy (or the segment raised the divergence guard / a simulated
   rank failure): roll back to the newest valid ring entry, optionally
   reduce ``dt``, back off, and retry -- up to ``max_retries``
   consecutive attempts per incident.

Every decision lands in the structured :class:`EventLog` returned with
the results.  Backoff sleeping goes through an injectable ``sleep``
callable so tests run without wall-clock delays.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.resilience.checkpoint_ring import CheckpointRing
from repro.resilience.events import EventLog
from repro.resilience.faults import FaultInjector, RankFailedError
from repro.resilience.health import HealthCheck

__all__ = ["ResilientRunner", "ResilientResult", "RetryBudgetExceededError"]


class RetryBudgetExceededError(RuntimeError):
    """The run kept failing after exhausting its retry budget."""

    def __init__(self, message: str, events: EventLog) -> None:
        super().__init__(message)
        self.events = events


@dataclass
class ResilientResult:
    """Outcome of a resilient run: the realized history plus the record."""

    results: list = field(default_factory=list)
    events: EventLog = field(default_factory=EventLog)
    retries: int = 0
    checkpoints: int = 0

    @property
    def recovered(self) -> bool:
        return self.retries > 0


class ResilientRunner:
    """Run a simulation to completion through faults.

    Parameters
    ----------
    sim:
        A :class:`~repro.core.simulation.Simulation` (or any duck-typed
        equivalent exposing ``run``, ``step_count``, ``time``, ``dt``,
        ``history`` and ``stat_samples``).
    ring:
        Checkpoint storage; defaults to an in-memory
        :class:`CheckpointRing` of capacity 3.
    checkpoint_interval:
        Steps per segment between checkpoints/health checks.
    health:
        The :class:`HealthCheck` consulted after each segment; defaults to
        a finite-field scan with a CFL ceiling of 10.
    max_retries:
        Consecutive failed attempts allowed per incident before
        :class:`RetryBudgetExceededError`; a healthy segment resets the
        counter.
    dt_factor:
        Step-size reduction applied when retrying after a *divergence*
        or *CFL-ceiling* failure (and, with ``reduce_dt_on_fault=True``,
        after any failure).  Adaptive runs scale their CFL target and ``dt_max``
        instead, since the controller would otherwise regrow ``dt``
        immediately.
    backoff, backoff_base, sleep:
        Retry ``n`` sleeps ``backoff * backoff_base**(n-1)`` seconds via
        the injectable ``sleep`` callable (tests pass a recorder; the
        default ``backoff=0`` never sleeps).
    fault_injector:
        Optional :class:`FaultInjector` whose scheduled SDC faults are
        applied between segments (each fires once -- the transient model).
    flight:
        Optional
        :class:`~repro.observability.fleet.flight.FlightRecorder`.  Every
        event recorded in the :class:`EventLog` is mirrored into its
        bounded event ring, and the bundle is dumped to disk right before
        :class:`RetryBudgetExceededError` propagates -- the black box of a
        run that did not survive.  Defaults to ``sim.flight`` when the
        simulation carries one.
    """

    def __init__(
        self,
        sim,
        ring: CheckpointRing | None = None,
        checkpoint_interval: int = 10,
        health: HealthCheck | None = None,
        event_log: EventLog | None = None,
        max_retries: int = 3,
        dt_factor: float = 0.5,
        reduce_dt_on_fault: bool = False,
        backoff: float = 0.0,
        backoff_base: float = 2.0,
        sleep=_time.sleep,
        fault_injector: FaultInjector | None = None,
        flight=None,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.sim = sim
        self.ring = ring if ring is not None else CheckpointRing(capacity=3)
        self.checkpoint_interval = checkpoint_interval
        self.health = health if health is not None else HealthCheck()
        self.events = event_log if event_log is not None else EventLog()
        self.max_retries = max_retries
        self.dt_factor = dt_factor
        self.reduce_dt_on_fault = reduce_dt_on_fault
        self.backoff = backoff
        self.backoff_base = backoff_base
        self.sleep = sleep
        self.fault_injector = fault_injector
        self.flight = flight if flight is not None else getattr(sim, "flight", None)
        # History/statistics lengths at each checkpointed step, so a
        # rollback can truncate the records the checkpoint itself does not
        # capture and the realized history stays consistent.
        self._lens: dict[int, tuple[int, int]] = {}

    def _event(self, kind: str, step: int = -1, time: float = 0.0, detail: str = "", **data):
        """Record into the event log, mirrored into the flight recorder."""
        self.events.record(kind, step=step, time=time, detail=detail, **data)
        if self.flight is not None:
            self.flight.record_event(kind, step=step, time=time, detail=detail, **data)

    # -- checkpointing ----------------------------------------------------------

    def _save(self) -> None:
        sim = self.sim
        entry = self.ring.save(sim)
        self._lens[entry.step] = (
            len(getattr(sim, "history", ())),
            len(getattr(sim, "stat_samples", ())),
        )
        self._event("checkpoint", step=entry.step, time=entry.time, detail="ring checkpoint")

    def _rollback(self) -> None:
        sim = self.sim
        entry, skipped = self.ring.restore_latest(sim)
        for bad in skipped:
            self._event(
                "corrupt_checkpoint",
                step=bad.step,
                detail="ring entry failed verification; falling back",
            )
        n_hist, n_stats = self._lens.get(entry.step, (0, 0))
        if hasattr(sim, "history"):
            del sim.history[n_hist:]
        if hasattr(sim, "stat_samples"):
            del sim.stat_samples[n_stats:]
        self.health.reset()
        self._event(
            "rollback",
            step=entry.step,
            time=entry.time,
            detail=f"restored checkpoint at step {entry.step}",
            skipped=[b.step for b in skipped],
        )

    def _reduce_dt(self, power: int = 1) -> None:
        sim = self.sim
        old_dt = sim.dt
        if getattr(sim, "adaptive", False):
            # The config survives rollback, so one scaling per failed
            # attempt compounds naturally across consecutive retries.
            cfg = sim.config
            cfg.adaptive_cfl *= self.dt_factor
            cfg.dt_max = max(cfg.dt_max * self.dt_factor, cfg.dt_min)
        # Rollback restored the *checkpoint's* dt, so consecutive retries
        # of the same incident must compound: attempt n runs at
        # dt * dt_factor**n, not the same reduced dt every time.
        new_dt = max(
            sim.dt * self.dt_factor**power, getattr(sim.config, "dt_min", 0.0)
        )
        sim.dt = new_dt
        sim.fluid.set_dt(new_dt)
        sim.scalar.set_dt(new_dt)
        self._event(
            "dt_reduction",
            step=sim.step_count,
            time=sim.time,
            detail=f"dt {old_dt:.3e} -> {new_dt:.3e}",
            old_dt=old_dt,
            new_dt=new_dt,
        )

    # -- the loop ---------------------------------------------------------------

    def run(
        self,
        n_steps: int | None = None,
        end_time: float | None = None,
        callback_interval: int = 0,
        stats_interval: int = 0,
        print_interval: int = 0,
    ) -> ResilientResult:
        """Advance until ``n_steps`` more steps or ``end_time``, surviving faults."""
        if n_steps is None and end_time is None:
            raise ValueError("give n_steps or end_time")
        sim = self.sim
        start_hist = len(getattr(sim, "history", ()))
        target_step = sim.step_count + n_steps if n_steps is not None else None
        attempts = 0
        retries_total = 0
        checkpoints = 0
        self._save()  # baseline: rollback works even before the first segment

        while True:
            if target_step is not None and sim.step_count >= target_step:
                break
            if end_time is not None and sim.time >= end_time - 1e-12:
                break
            seg = self.checkpoint_interval
            if target_step is not None:
                seg = min(seg, target_step - sim.step_count)

            failure: tuple[str, str] | None = None
            try:
                sim.run(
                    n_steps=seg,
                    end_time=end_time,
                    callback_interval=callback_interval,
                    stats_interval=stats_interval,
                    print_interval=print_interval,
                )
            except FloatingPointError as exc:
                failure = ("divergence", str(exc))
            except RankFailedError as exc:
                failure = ("rank_failure", str(exc))

            if failure is None and self.fault_injector is not None:
                for ev in self.fault_injector.apply_field_faults(sim):
                    self._event(
                        "fault",
                        step=sim.step_count,
                        time=sim.time,
                        detail=ev.detail,
                        **ev.data,
                    )
            if failure is None:
                new_results = sim.history[self._checked_len(start_hist):]
                issues = self.health.check(sim, new_results)
                if issues:
                    failure = (
                        issues[0].kind,
                        "; ".join(i.message for i in issues),
                    )

            if failure is None:
                attempts = 0
                self._save()
                checkpoints += 1
                continue

            kind, message = failure
            self._event(
                "fault_detected",
                step=sim.step_count,
                time=sim.time,
                detail=message,
                cause=kind,
            )
            attempts += 1
            retries_total += 1
            if attempts > self.max_retries:
                if self.flight is not None:
                    self._event(
                        "flight.retry_budget",
                        step=sim.step_count,
                        time=sim.time,
                        detail=f"retry budget exhausted: {message}",
                        cause=kind,
                        attempts=attempts - 1,
                    )
                    self.flight.dump(reason="retry_budget")
                raise RetryBudgetExceededError(
                    f"giving up after {attempts - 1} retries: {message}", self.events
                )
            self._rollback()
            # Divergence and CFL-ceiling failures are the "dt too large"
            # class: replaying them at the same dt fails deterministically,
            # so the retry must shrink the step.  Transient faults (SDC,
            # rank death) replay cleanly and keep dt unless asked.
            if kind in ("divergence", "cfl") or self.reduce_dt_on_fault:
                self._reduce_dt(attempts)
            delay = self.backoff * self.backoff_base ** (attempts - 1)
            if delay > 0:
                self.sleep(delay)
            self._event(
                "retry",
                step=sim.step_count,
                time=sim.time,
                detail=f"attempt {attempts}/{self.max_retries} (backoff {delay:.3g}s)",
                attempt=attempts,
                backoff=delay,
            )

        result = ResilientResult(
            results=list(sim.history[start_hist:]),
            events=self.events,
            retries=retries_total,
            checkpoints=checkpoints,
        )
        self._event(
            "complete",
            step=sim.step_count,
            time=sim.time,
            detail=f"run complete with {retries_total} retries",
        )
        return result

    def _checked_len(self, start_hist: int) -> int:
        """History length already covered by health checks.

        Everything up to the newest checkpoint passed its check; only the
        steps after it are new.
        """
        latest = self.ring.latest
        if latest is None:
            return start_hist
        n_hist, _ = self._lens.get(latest.step, (start_hist, 0))
        return n_hist
