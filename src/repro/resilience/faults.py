"""Deterministic fault injection for testing recovery paths.

Every failure mode the resilience layer claims to survive must be
producible on demand, bit-for-bit reproducibly.  A :class:`FaultInjector`
carries a seeded RNG plus an explicit :class:`Fault` schedule and exposes
three hook surfaces:

* **message faults** -- :meth:`deliver` is called by
  :meth:`SimWorld.exchange` for every point-to-point buffer and may drop
  it (zeros delivered), corrupt it (seeded bit flip in one element) or
  delay it (the *previous* buffer sent on that edge is delivered instead);
* **rank failures** -- :meth:`on_collective` is called at the top of every
  :class:`SimWorld` collective and raises :class:`RankFailedError` when a
  scheduled one-shot failure fires (modelling a failed-then-respawned
  rank, as in shrink/recover MPI practice);
* **silent data corruption** -- :meth:`apply_field_faults` flips bits (or
  plants NaN / huge values) directly into a simulation's field arrays at
  scheduled step numbers, the classic SDC scenario.

Scheduled faults fire exactly once, so a rollback that replays the same
steps does not re-trigger them -- the transient-fault model.

Two additions serve the chaos harness (:mod:`repro.resilience.chaos`):

* **targeted collective faults** -- a ``rank_failure`` (or
  ``collective_sdc``) entry with ``op="allreduce"`` indexes the Nth
  *allreduce* rather than the Nth collective of any kind, so "kill rank 2
  at its 5th allreduce" is expressible independent of how many barriers
  interleave;
* **replay logs** -- :meth:`FaultInjector.export_replay` captures the
  seed, rates, schedule and every fired event as a JSON-able dict, and
  :meth:`FaultInjector.from_replay` rebuilds an injector that reproduces
  the identical fault sequence, so any chaos run can be replayed from its
  report.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = ["Fault", "FaultEvent", "FaultInjector", "RankFailedError"]


class RankFailedError(RuntimeError):
    """A simulated rank died during a collective."""

    def __init__(self, rank: int, op: str = "") -> None:
        self.rank = rank
        self.op = op
        super().__init__(f"rank {rank} failed during {op or 'collective'}")


@dataclass
class Fault:
    """One scheduled fault.

    ``kind`` selects the mechanism and which trigger field applies:

    ============== ============ =========================================
    kind            trigger      effect
    ============== ============ =========================================
    drop            at_call      p2p message ``at_call`` delivers zeros
    corrupt         at_call      p2p message ``at_call`` gets a bit flip
    delay           at_call      p2p message ``at_call`` delivers stale data
    rank_failure    at_call      collective ``at_call`` raises RankFailedError
    collective_sdc  at_call      collective *result* ``at_call`` gets a bit flip
    sdc             at_step      field ``target`` corrupted once step >= at_step
    ============== ============ =========================================

    ``at_call`` indexes the injector's own per-surface call counters
    (p2p messages for drop/corrupt/delay, collective entries for
    rank_failure, collective results for collective_sdc).  For the two
    collective kinds, ``op`` narrows the counter to one collective family
    (``"allreduce"``, ``"barrier"``, ``"gather"``): ``op="allreduce",
    at_call=4`` fires at the fifth *allreduce* regardless of interleaved
    barriers, while ``op=None`` keeps the legacy any-collective indexing.
    ``mode`` applies to sdc/collective_sdc: ``"bitflip"`` (seeded XOR of
    one bit in one element), ``"nan"`` or ``"huge"``.
    """

    kind: str
    at_call: int | None = None
    at_step: int | None = None
    target: str = "temperature"
    rank: int = 0
    mode: str = "bitflip"
    op: str | None = None


@dataclass
class FaultEvent:
    """Record of one fault that actually fired."""

    kind: str
    index: int
    detail: str = ""
    data: dict = field(default_factory=dict)


class FaultInjector:
    """Seeded fault source; hooks into :class:`SimWorld` and the runner.

    Parameters
    ----------
    seed:
        Seeds the RNG used for probabilistic faults, corrupted-element
        choice and bit positions; identical seeds and call sequences give
        identical faults.
    schedule:
        Explicit :class:`Fault` list; each entry fires at most once.
    drop_rate, corrupt_rate, delay_rate:
        Optional per-message probabilities for random message faults on
        top of the explicit schedule.
    """

    def __init__(
        self,
        seed: int = 0,
        schedule: list[Fault] | tuple[Fault, ...] = (),
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        delay_rate: float = 0.0,
    ) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.schedule = list(schedule)
        self.drop_rate = drop_rate
        self.corrupt_rate = corrupt_rate
        self.delay_rate = delay_rate
        self.events: list[FaultEvent] = []
        self._fired: set[int] = set()
        self._p2p_calls = 0
        self._collective_calls = 0
        self._result_calls = 0
        # Per-family collective counters ("allreduce", "barrier", "gather")
        # for op-targeted faults; separate entry/result counters mirror the
        # two hook surfaces.
        self._op_calls: dict[str, int] = {}
        self._op_result_calls: dict[str, int] = {}
        # Last buffer seen per (src, dst) edge, for stale ("delayed") delivery.
        self._last_sent: dict[tuple[int, int], np.ndarray] = {}

    # -- schedule matching -----------------------------------------------------

    def _take_scheduled(
        self, kinds: tuple[str, ...], *, at_call: int | None = None, at_step: int | None = None
    ) -> Fault | None:
        """Pop (mark fired) the first pending schedule entry that matches."""
        for i, f in enumerate(self.schedule):
            if i in self._fired or f.kind not in kinds:
                continue
            if at_call is not None and f.at_call == at_call:
                self._fired.add(i)
                return f
            if at_step is not None and f.at_step is not None and at_step >= f.at_step:
                self._fired.add(i)
                return f
        return None

    def _record(self, kind: str, index: int, detail: str = "", **data) -> FaultEvent:
        ev = FaultEvent(kind=kind, index=index, detail=detail, data=data)
        self.events.append(ev)
        return ev

    @staticmethod
    def _op_family(op: str) -> str:
        """Collective family of an op name: ``allreduce_scalar`` -> ``allreduce``."""
        return op.split("_", 1)[0]

    def _take_collective(
        self, kinds: tuple[str, ...], idx: int, family: str, op_idx: int
    ) -> Fault | None:
        """Pop the first pending collective fault matching this call.

        ``op=None`` entries match against the any-collective counter
        ``idx`` (legacy semantics); op-targeted entries match against the
        per-family counter ``op_idx``.
        """
        for i, f in enumerate(self.schedule):
            if i in self._fired or f.kind not in kinds:
                continue
            if f.op is None:
                if f.at_call != idx:
                    continue
            elif f.op != family or f.at_call != op_idx:
                continue
            self._fired.add(i)
            return f
        return None

    # -- collective hook (SimWorld.allreduce_* / barrier / gather) -------------

    def on_collective(self, op: str) -> None:
        """Raise :class:`RankFailedError` if a scheduled rank failure fires."""
        family = self._op_family(op)
        idx = self._collective_calls
        op_idx = self._op_calls.get(family, 0)
        self._collective_calls += 1
        self._op_calls[family] = op_idx + 1
        f = self._take_collective(("rank_failure",), idx, family, op_idx)
        if f is not None:
            where = f"{op}" if f.op is None else f"{family} #{op_idx}"
            self._record(
                "rank_failure", idx, f"rank {f.rank} died in {where}", rank=f.rank, op=op
            )
            raise RankFailedError(f.rank, op)

    # -- collective-result hook (replicated-checksum integrity check) ----------

    def deliver_collective(self, op: str, result: np.ndarray) -> np.ndarray:
        """Return the collective result a rank actually observes.

        Called once per *replica* by :class:`~repro.comm.simworld.SimWorld`
        when collective verification is enabled; a scheduled
        ``collective_sdc`` entry corrupts exactly the replica whose call
        index it names, so the replicated-checksum comparison detects it.
        """
        family = self._op_family(op)
        idx = self._result_calls
        op_idx = self._op_result_calls.get(family, 0)
        self._result_calls += 1
        self._op_result_calls[family] = op_idx + 1
        f = self._take_collective(("collective_sdc",), idx, family, op_idx)
        if f is None:
            return result
        out = np.array(result, copy=True)
        detail = self._flip_bit(out, mode=f.mode)
        self._record(
            "collective_sdc", idx, f"SDC in {op} result", op=op, **detail
        )
        return out

    # -- point-to-point hook (SimWorld.exchange) -------------------------------

    def deliver(self, src: int, dst: int, buf: np.ndarray) -> np.ndarray:
        """Return the buffer actually delivered for message ``src -> dst``."""
        idx = self._p2p_calls
        self._p2p_calls += 1
        edge = (src, dst)
        stale = self._last_sent.get(edge)
        self._last_sent[edge] = np.array(buf, copy=True)

        f = self._take_scheduled(("drop", "corrupt", "delay"), at_call=idx)
        kind = f.kind if f is not None else self._random_message_fault()
        if kind == "drop":
            self._record("drop", idx, f"message {src}->{dst} dropped", src=src, dst=dst)
            return np.zeros_like(buf)
        if kind == "corrupt":
            out = np.array(buf, copy=True)
            detail = self._flip_bit(out)
            self._record("corrupt", idx, f"message {src}->{dst} corrupted", src=src, dst=dst, **detail)
            return out
        if kind == "delay":
            self._record("delay", idx, f"message {src}->{dst} delayed (stale data)", src=src, dst=dst)
            return np.zeros_like(buf) if stale is None else stale
        return buf

    def _random_message_fault(self) -> str | None:
        if not (self.drop_rate or self.corrupt_rate or self.delay_rate):
            return None
        u = float(self.rng.uniform())
        if u < self.drop_rate:
            return "drop"
        if u < self.drop_rate + self.corrupt_rate:
            return "corrupt"
        if u < self.drop_rate + self.corrupt_rate + self.delay_rate:
            return "delay"
        return None

    # -- silent data corruption ------------------------------------------------

    def _flip_bit(self, array: np.ndarray, mode: str = "bitflip") -> dict:
        """Corrupt one element of ``array`` in place; returns a detail dict."""
        flat = array.reshape(-1)
        idx = int(self.rng.integers(flat.size))
        old = float(flat[idx])
        if mode == "nan":
            flat[idx] = np.nan
        elif mode == "huge":
            flat[idx] = np.copysign(1.0e300, old if old != 0 else 1.0)
        else:
            # Flip one of the top exponent bits so the corruption is
            # catastrophic (scale changed by >= 2^16, possibly inf/nan)
            # rather than a rounding blip.
            bit = int(self.rng.integers(56, 63))
            view = flat[idx : idx + 1].view(np.uint64)
            view[0] ^= np.uint64(1) << np.uint64(bit)
        return {"element": idx, "mode": mode, "old": old, "new": float(flat[idx])}

    def corrupt_array(self, array: np.ndarray, mode: str = "bitflip") -> dict:
        """Public SDC entry point: corrupt one seeded element in place."""
        detail = self._flip_bit(array, mode=mode)
        self._record("sdc", int(detail["element"]), f"array corrupted ({mode})", **detail)
        return detail

    def apply_field_faults(self, sim) -> list[FaultEvent]:
        """Fire pending ``sdc`` schedule entries whose ``at_step`` has passed.

        Called by the :class:`ResilientRunner` between run segments; each
        entry fires once, so replay after rollback is fault-free.
        """
        fired: list[FaultEvent] = []
        while True:
            f = self._take_scheduled(("sdc",), at_step=sim.step_count)
            if f is None:
                return fired
            arr = self._target_array(sim, f.target)
            detail = self._flip_bit(arr, mode=f.mode)
            fired.append(
                self._record(
                    "sdc",
                    sim.step_count,
                    f"SDC in {f.target} at step {sim.step_count}",
                    target=f.target,
                    **detail,
                )
            )

    @staticmethod
    def _target_array(sim, target: str) -> np.ndarray:
        if target == "temperature":
            return sim.scalar.temperature
        if target == "pressure":
            return sim.fluid.p
        if target in ("ux", "uy", "uz"):
            return {"ux": sim.fluid.u, "uy": sim.fluid.v, "uz": sim.fluid.w}[target][0]
        raise ValueError(f"unknown SDC target {target!r}")

    # -- deterministic replay ----------------------------------------------------

    def export_replay(self) -> dict:
        """JSON-able record sufficient to reproduce this injector's faults.

        Captures the constructor inputs (seed, rates, schedule) plus the
        event list of what actually fired.  An injector rebuilt with
        :meth:`from_replay` and driven through the same call sequence
        produces bit-identical faults -- the chaos harness stores one of
        these per scenario so any campaign entry is replayable.
        """
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "corrupt_rate": self.corrupt_rate,
            "delay_rate": self.delay_rate,
            "schedule": [asdict(f) for f in self.schedule],
            "events": [asdict(e) for e in self.events],
        }

    @classmethod
    def from_replay(cls, replay: dict) -> "FaultInjector":
        """Rebuild a fresh injector from an :meth:`export_replay` record.

        Only the inputs are restored (seed, rates, schedule); the event
        list in the record documents the original run and is left behind.
        """
        return cls(
            seed=int(replay.get("seed", 0)),
            schedule=[Fault(**f) for f in replay.get("schedule", [])],
            drop_rate=float(replay.get("drop_rate", 0.0)),
            corrupt_rate=float(replay.get("corrupt_rate", 0.0)),
            delay_rate=float(replay.get("delay_rate", 0.0)),
        )
