"""The chaos harness: run scenario campaigns, measure survival and MTTR.

For each :class:`~repro.resilience.chaos.scenarios.ChaosScenario` the
harness runs the reference workload twice -- once fault-free (cached per
configuration) and once with the scenario's faults armed -- and compares
the final Nusselt proxy.  A scenario *survives* when the faulted run
completes every step without an unhandled exception, performs at least
the expected number of recoveries, and lands within tolerance of the
fault-free functional.

Recovery cost is reported as *steps replayed*: the deterministic
time-to-repair of a rollback system (wall-clock MTTR would be noise at
this scale; replayed work is the quantity the checkpoint-interval
trade-off controls, and it is bit-reproducible).

Observability: every scenario runs under a ``chaos.scenario`` span,
counters and histograms land in the harness metrics registry
(``chaos.survived``, ``chaos.steps_replayed``, ...), and a scenario that
fails dumps its flight-recorder ring -- fed by the recovery event stream
-- as a post-mortem bundle.  Each result also embeds the injector's
replay log, so any campaign entry can be reproduced in isolation with
:meth:`~repro.resilience.faults.FaultInjector.from_replay`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.comm.reliable import RetryPolicy
from repro.observability.fleet.flight import FlightRecorder
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer
from repro.resilience.chaos.scenarios import ChaosScenario, default_campaign
from repro.resilience.distributed.recovery import WorldRecovery
from repro.resilience.distributed.shards import ShardedCheckpointStore
from repro.resilience.distributed.workload import DistributedThermalWorkload
from repro.resilience.faults import FaultInjector

__all__ = ["ChaosHarness", "ScenarioResult", "CampaignResult"]

#: Default |nu_faulted - nu_free| bar: recovery restores committed state
#: bit-for-bit and the reductions are rank-order deterministic, so even
#: shrink recoveries land at round-off; the bar leaves headroom only for
#: the repartitioned reduction order.
DEFAULT_TOL = 1.0e-8


@dataclass
class ScenarioResult:
    """Outcome of one scenario run (one row of the campaign report)."""

    name: str
    survived: bool
    steps: int
    nu_free: float
    nu_faulted: float
    nu_error: float
    recoveries: int
    steps_replayed: int
    faults_fired: int
    retransmissions: int
    duplicates: int
    timeouts: int
    integrity_failures: int
    final_world_size: int
    fault_kinds: tuple[str, ...] = ()
    error: str = ""
    replay: dict = field(default_factory=dict)
    incidents: list[dict] = field(default_factory=list)

    @property
    def mttr_steps(self) -> float:
        """Mean steps replayed per recovery (0 when nothing rolled back)."""
        return self.steps_replayed / self.recoveries if self.recoveries else 0.0


@dataclass
class CampaignResult:
    """All scenario rows plus campaign-level aggregates."""

    seed: int
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def survived(self) -> int:
        return sum(1 for r in self.results if r.survived)

    @property
    def failed(self) -> list[ScenarioResult]:
        return [r for r in self.results if not r.survived]

    @property
    def all_survived(self) -> bool:
        return not self.failed

    @property
    def total_recoveries(self) -> int:
        return sum(r.recoveries for r in self.results)

    @property
    def total_steps_replayed(self) -> int:
        return sum(r.steps_replayed for r in self.results)

    @property
    def mttr_steps(self) -> float:
        """Campaign MTTR: mean steps replayed per recovery incident."""
        n = self.total_recoveries
        return self.total_steps_replayed / n if n else 0.0


class ChaosHarness:
    """Runs chaos campaigns over the distributed thermal workload.

    Parameters
    ----------
    seed:
        Campaign master seed; scenario ``i`` gets injector seed
        ``seed + i`` and the workload initial condition uses ``seed``
        (identical between the fault-free baseline and the faulted run).
    shape, order, nranks, n_steps:
        Workload defaults; scenarios may override ``nranks``/``n_steps``.
    tol:
        Survival bar on ``|nu_faulted - nu_free|``.
    flight_dir:
        When set, a failing scenario dumps its flight-recorder ring as a
        JSONL bundle into this directory (the CI artifact on red).
    tracer, metrics:
        Observability sinks; fresh ones are created when omitted.
    """

    def __init__(
        self,
        seed: int = 2026,
        shape: tuple[int, int, int] = (2, 2, 2),
        order: int = 4,
        nranks: int = 4,
        n_steps: int = 6,
        checkpoint_interval: int = 2,
        tol: float = DEFAULT_TOL,
        flight_dir: "Path | str | None" = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.seed = seed
        self.shape = shape
        self.order = order
        self.nranks = nranks
        self.n_steps = n_steps
        self.checkpoint_interval = checkpoint_interval
        self.tol = tol
        self.flight_dir = Path(flight_dir) if flight_dir is not None else None
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._baselines: dict[tuple, float] = {}

    # -- baselines ---------------------------------------------------------------

    def _baseline_nu(self, scenario: ChaosScenario, n_steps: int) -> float:
        """Fault-free final nu for a configuration (cached)."""
        key = (
            scenario.nranks,
            n_steps,
            scenario.world_kind,
            scenario.shape,
            scenario.order,
        )
        if key not in self._baselines:
            w = self._workload(scenario=scenario, nranks=scenario.nranks)
            self._baselines[key] = w.run(n_steps).nu_final
        return self._baselines[key]

    def _workload(
        self, nranks: int, scenario: ChaosScenario | None = None, **kwargs: Any
    ) -> DistributedThermalWorkload:
        shape, order, world_kind = self.shape, self.order, "object"
        if scenario is not None:
            shape = scenario.shape if scenario.shape is not None else shape
            order = scenario.order if scenario.order is not None else order
            world_kind = scenario.world_kind
        return DistributedThermalWorkload(
            shape=shape,
            order=order,
            nranks=nranks,
            world_kind=world_kind,
            checkpoint_interval=self.checkpoint_interval,
            seed=self.seed,
            **kwargs,
        )

    # -- one scenario ------------------------------------------------------------

    def run_scenario(self, scenario: ChaosScenario, index: int = 0) -> ScenarioResult:
        """Run one scenario against its fault-free baseline."""
        n_steps = scenario.n_steps
        nu_free = self._baseline_nu(scenario, n_steps)
        injector = FaultInjector(
            seed=self.seed + index,
            schedule=list(scenario.schedule),
            drop_rate=scenario.drop_rate,
            corrupt_rate=scenario.corrupt_rate,
            delay_rate=scenario.delay_rate,
        )
        retry = (
            RetryPolicy(max_retries=scenario.max_retries, seed=self.seed + index)
            if scenario.retry
            else None
        )
        flight = FlightRecorder(capacity=32, out_dir=self.flight_dir)
        store = ShardedCheckpointStore()
        recovery = WorldRecovery(
            store, policy=scenario.policy, max_recoveries=8, flight=flight
        )
        workload = self._workload(
            nranks=scenario.nranks,
            scenario=scenario,
            store=store,
            recovery=recovery,
            fault_injector=injector,
            retry=retry,
            verify_collectives=scenario.verify_collectives,
            flight=flight,
        )

        error = ""
        with self.tracer.span(
            "chaos.scenario", scenario=scenario.name, policy=scenario.policy
        ):
            try:
                run = workload.run(n_steps)
            except Exception as exc:  # chaos runs must never take the harness down
                error = f"{type(exc).__name__}: {exc}"
                run = workload.result()

        completed = not error and run.steps >= n_steps
        nu_error = abs(run.nu_final - nu_free)
        survived = (
            completed
            and nu_error <= self.tol
            and run.recoveries >= scenario.expect_recoveries
        )
        result = ScenarioResult(
            name=scenario.name,
            survived=survived,
            steps=run.steps,
            nu_free=nu_free,
            nu_faulted=run.nu_final,
            nu_error=nu_error,
            recoveries=run.recoveries,
            steps_replayed=run.steps_replayed,
            faults_fired=len(injector.events),
            retransmissions=run.stats.retransmissions,
            duplicates=run.stats.duplicates,
            timeouts=run.stats.timeouts,
            integrity_failures=run.stats.integrity_failures,
            final_world_size=run.world_size,
            fault_kinds=scenario.fault_kinds(),
            error=error,
            replay=injector.export_replay(),
            incidents=list(run.incidents),
        )
        self._record(result, flight)
        return result

    def _record(self, result: ScenarioResult, flight: FlightRecorder) -> None:
        m = self.metrics
        m.counter("chaos.scenarios").inc()
        m.counter("chaos.survived" if result.survived else "chaos.failed").inc()
        m.counter("chaos.recoveries").inc(result.recoveries)
        m.counter("chaos.faults_fired").inc(result.faults_fired)
        m.histogram("chaos.steps_replayed").record(float(result.steps_replayed))
        m.histogram("chaos.nu_error").record(result.nu_error)
        if not result.survived and self.flight_dir is not None:
            flight.dump(reason=f"chaos_{result.name}")

    # -- campaigns ---------------------------------------------------------------

    def run_campaign(
        self, scenarios: list[ChaosScenario] | None = None
    ) -> CampaignResult:
        """Run a scenario list (default: the committed campaign) in order."""
        if scenarios is None:
            scenarios = default_campaign()
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ValueError("scenario names must be unique within a campaign")
        campaign = CampaignResult(seed=self.seed)
        with self.tracer.span("chaos.campaign", scenarios=len(scenarios)):
            for i, scenario in enumerate(scenarios):
                campaign.results.append(self.run_scenario(scenario, index=i))
        return campaign
