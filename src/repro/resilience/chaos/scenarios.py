"""The chaos scenario catalogue: what we break, and how, on purpose.

A :class:`ChaosScenario` is a declarative description of one faulted run
of the reference distributed workload -- which faults fire (explicit
schedule and/or random rates), which recovery policy responds, and
whether the hardened channel (retry + CRC) or the replicated-checksum
collective verification is armed.  Scenarios are pure data: the harness
(:mod:`repro.resilience.chaos.harness`) instantiates the injector, the
store and the workload from them, so the whole campaign is reproducible
from the catalogue plus one seed.

:func:`default_campaign` is the committed campaign CI runs: rank kills
(early, late, during the checkpoint barrier, repeated), ≤20% message
drop/delay storms, targeted drops, and SDC bit flips on both a p2p
exchange buffer and an allreduce result.  Every scenario in it is
designed to be survivable -- the acceptance bar is 100% survival with the
recovered Nusselt proxy matching the fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.faults import Fault

__all__ = ["ChaosScenario", "default_campaign"]


@dataclass(frozen=True)
class ChaosScenario:
    """One reproducible faulted run of the distributed workload.

    Parameters
    ----------
    name, description:
        Identification for the report; names are unique per campaign.
    schedule:
        Explicit :class:`~repro.resilience.faults.Fault` entries (targeted
        kills, bit flips); fire-once semantics.
    drop_rate, corrupt_rate, delay_rate:
        Random per-message fault probabilities (the "storm" knobs).
    policy:
        Recovery policy, ``"warm_replace"`` or ``"shrink"``.
    nranks, n_steps:
        World size and steps of the run (small on purpose: a campaign is
        dozens of runs).
    world_kind:
        ``"object"`` runs on the per-rank-object
        :class:`~repro.comm.simworld.SimWorld`; ``"batched"`` runs on the
        vectorized :class:`~repro.comm.batched.BatchedWorld`, proving the
        recovery machinery is world-implementation agnostic at widths the
        object world cannot reach.
    shape, order:
        Workload mesh overrides (``None`` keeps the harness defaults);
        wide-world scenarios size the mesh to the rank count.
    retry:
        Arm the hardened p2p channel (CRC + retransmission).  Required
        whenever message faults are injected -- without it a dropped
        message is silent corruption, not a detectable fault.
    verify_collectives:
        Arm the replicated-checksum allreduce integrity check (required
        for ``collective_sdc`` faults to be detectable).
    max_retries:
        Retransmission budget of the hardened channel per message.
    expect_recoveries:
        Minimum number of rollback recoveries the scenario must perform
        to count as exercised (0 for storms absorbed by retransmission).
    """

    name: str
    description: str
    schedule: tuple[Fault, ...] = ()
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    policy: str = "warm_replace"
    nranks: int = 4
    n_steps: int = 6
    world_kind: str = "object"
    shape: "tuple[int, int, int] | None" = None
    order: "int | None" = None
    retry: bool = True
    verify_collectives: bool = False
    max_retries: int = 6
    expect_recoveries: int = 0
    tags: tuple[str, ...] = field(default=())

    def fault_kinds(self) -> tuple[str, ...]:
        """The distinct fault mechanisms this scenario injects."""
        kinds = {f.kind for f in self.schedule}
        if self.drop_rate:
            kinds.add("drop")
        if self.corrupt_rate:
            kinds.add("corrupt")
        if self.delay_rate:
            kinds.add("delay")
        return tuple(sorted(kinds))


def default_campaign() -> list[ChaosScenario]:
    """The committed CI campaign: 13 survivable scenarios.

    Coverage matrix (the four required fault families, each hit by
    several scenarios): rank kill (1-5, 12, 13), message drop (6, 8, 12),
    message delay (7, 12), SDC bit flip (9-11).  Scenario 13 runs the
    kill-and-recover path on a 256-rank :class:`BatchedWorld`.
    """
    return [
        ChaosScenario(
            name="kill-rank-early-warm",
            description="rank 2 dies in the first step's CG; warm replacement",
            schedule=(Fault(kind="rank_failure", rank=2, at_call=12, op="allreduce"),),
            policy="warm_replace",
            expect_recoveries=1,
            tags=("rank_kill",),
        ),
        ChaosScenario(
            name="kill-rank-late-warm",
            description="rank 3 dies deep into the run; warm replacement",
            schedule=(Fault(kind="rank_failure", rank=3, at_call=200, op="allreduce"),),
            policy="warm_replace",
            expect_recoveries=1,
            tags=("rank_kill",),
        ),
        ChaosScenario(
            name="kill-rank-shrink",
            description="rank 1 dies; world shrinks 4 -> 3 and repartitions",
            schedule=(Fault(kind="rank_failure", rank=1, at_call=40, op="allreduce"),),
            policy="shrink",
            expect_recoveries=1,
            tags=("rank_kill", "shrink"),
        ),
        ChaosScenario(
            name="double-kill-shrink",
            description="two rank deaths; world shrinks 4 -> 3 -> 2",
            schedule=(
                Fault(kind="rank_failure", rank=2, at_call=40, op="allreduce"),
                Fault(kind="rank_failure", rank=0, at_call=260, op="allreduce"),
            ),
            policy="shrink",
            expect_recoveries=2,
            tags=("rank_kill", "shrink"),
        ),
        ChaosScenario(
            name="kill-in-checkpoint-barrier",
            description="rank dies inside the checkpoint commit barrier; "
            "the staged epoch aborts and the previous epoch restores",
            schedule=(Fault(kind="rank_failure", rank=1, at_call=1, op="barrier"),),
            policy="warm_replace",
            expect_recoveries=1,
            tags=("rank_kill", "two_phase_commit"),
        ),
        ChaosScenario(
            name="message-drop-storm",
            description="every p2p message dropped with p=0.15; CRC detects, "
            "retransmission recovers (timeout falls back to rollback)",
            drop_rate=0.15,
            tags=("message_drop",),
        ),
        ChaosScenario(
            name="message-delay-storm",
            description="stale (delayed) deliveries with p=0.15; checksum "
            "dedup detects the stale payload and retransmits",
            delay_rate=0.15,
            tags=("message_delay",),
        ),
        ChaosScenario(
            name="targeted-drop",
            description="one scheduled drop of a gather-scatter message",
            schedule=(Fault(kind="drop", at_call=100),),
            tags=("message_drop",),
        ),
        ChaosScenario(
            name="exchange-bitflip",
            description="SDC bit flip in one exchange buffer; payload CRC "
            "catches it and the edge retransmits",
            schedule=(Fault(kind="corrupt", at_call=120),),
            tags=("sdc", "message_corrupt"),
        ),
        ChaosScenario(
            name="collective-sdc-rollback",
            description="persistent bit flips across both attempts of one "
            "allreduce; replicated-checksum check exhausts, rollback recovers",
            schedule=(
                # Allreduce #15's attempt-1 replicas use result calls 30/31,
                # the recompute uses 32/33; corrupting one replica of each
                # attempt exhausts the integrity budget and forces rollback.
                Fault(kind="collective_sdc", at_call=30, op="allreduce"),
                Fault(kind="collective_sdc", at_call=32, op="allreduce"),
            ),
            retry=False,
            verify_collectives=True,
            expect_recoveries=1,
            tags=("sdc", "collective"),
        ),
        ChaosScenario(
            name="collective-sdc-retry",
            description="bit flip in an allreduce replica absorbed by the "
            "verify-and-recompute retry, no rollback needed",
            schedule=(Fault(kind="collective_sdc", at_call=30, op="allreduce"),),
            verify_collectives=True,
            tags=("sdc", "collective"),
        ),
        ChaosScenario(
            name="mixed-storm-shrink",
            description="drop+delay storm with a rank kill on top; shrink "
            "recovery under degraded network",
            schedule=(Fault(kind="rank_failure", rank=3, at_call=90, op="allreduce"),),
            drop_rate=0.05,
            delay_rate=0.05,
            policy="shrink",
            expect_recoveries=1,
            tags=("rank_kill", "message_drop", "message_delay", "shrink"),
        ),
        ChaosScenario(
            name="kill-rank-batched-256",
            description="rank 37 dies on a 256-rank BatchedWorld (one element "
            "per rank); warm replacement at simulated-exascale width",
            schedule=(Fault(kind="rank_failure", rank=37, at_call=12, op="allreduce"),),
            policy="warm_replace",
            nranks=256,
            n_steps=2,
            world_kind="batched",
            shape=(8, 8, 4),
            order=2,
            expect_recoveries=1,
            tags=("rank_kill", "batched"),
        ),
    ]
