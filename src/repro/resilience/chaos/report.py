"""Survival/MTTR reporting for chaos campaigns.

Renders a :class:`~repro.resilience.chaos.harness.CampaignResult` as a
fixed-width text table (what ``python -m repro.resilience.chaos`` prints
and the CI log shows) and as a JSON document (the machine-readable
artifact, embedding each scenario's injector replay log so any row can be
reproduced in isolation).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.resilience.chaos.harness import CampaignResult, ScenarioResult

__all__ = ["campaign_to_dict", "render_report", "write_json_report"]

_COLUMNS = (
    ("scenario", 26),
    ("ok", 4),
    ("faults", 7),
    ("recov", 6),
    ("replay", 7),
    ("retx", 5),
    ("world", 6),
    ("nu_err", 10),
)


def _row(r: ScenarioResult) -> tuple[str, ...]:
    return (
        r.name,
        "yes" if r.survived else "NO",
        str(r.faults_fired),
        str(r.recoveries),
        str(r.steps_replayed),
        str(r.retransmissions + r.duplicates),
        str(r.final_world_size),
        f"{r.nu_error:.2e}",
    )


def render_report(campaign: CampaignResult) -> str:
    """Human-readable survival/MTTR table plus campaign summary lines."""
    header = tuple(name for name, _ in _COLUMNS)
    widths = [w for _, w in _COLUMNS]
    rows = [_row(r) for r in campaign.results]
    for row in rows + [header]:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell) + 1)

    def fmt(row: tuple[str, ...]) -> str:
        return "".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()

    lines = [
        f"chaos campaign (seed {campaign.seed}): "
        f"{campaign.survived}/{len(campaign.results)} scenarios survived",
        "",
        fmt(header),
        fmt(tuple("-" * (w - 1) for w in widths)),
    ]
    lines.extend(fmt(row) for row in rows)
    lines.append("")
    lines.append(
        f"recoveries: {campaign.total_recoveries}   "
        f"steps replayed: {campaign.total_steps_replayed}   "
        f"MTTR: {campaign.mttr_steps:.2f} steps/recovery"
    )
    for r in campaign.failed:
        lines.append(f"FAILED {r.name}: {r.error or f'nu_error={r.nu_error:.3e}'}")
    return "\n".join(lines)


def campaign_to_dict(campaign: CampaignResult) -> dict:
    """JSON-able campaign record (includes per-scenario replay logs)."""
    return {
        "seed": campaign.seed,
        "scenarios": len(campaign.results),
        "survived": campaign.survived,
        "all_survived": campaign.all_survived,
        "total_recoveries": campaign.total_recoveries,
        "total_steps_replayed": campaign.total_steps_replayed,
        "mttr_steps": campaign.mttr_steps,
        "results": [
            {
                "name": r.name,
                "survived": r.survived,
                "steps": r.steps,
                "nu_free": r.nu_free,
                "nu_faulted": r.nu_faulted,
                "nu_error": r.nu_error,
                "recoveries": r.recoveries,
                "steps_replayed": r.steps_replayed,
                "mttr_steps": r.mttr_steps,
                "faults_fired": r.faults_fired,
                "retransmissions": r.retransmissions,
                "duplicates": r.duplicates,
                "timeouts": r.timeouts,
                "integrity_failures": r.integrity_failures,
                "final_world_size": r.final_world_size,
                "fault_kinds": list(r.fault_kinds),
                "error": r.error,
                "incidents": r.incidents,
                "replay": r.replay,
            }
            for r in campaign.results
        ],
    }


def write_json_report(campaign: CampaignResult, path: "Path | str") -> Path:
    """Write the JSON campaign record; returns the path written."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(campaign_to_dict(campaign), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return out
