"""Chaos testing for the distributed resilience layer.

Seeded fault campaigns against the reference distributed workload: kill
rank *k* at step *s*, drop up to 20% of messages, flip a bit in an
exchange buffer or an allreduce result -- then assert the run survives
and converges to the fault-free answer.  The harness emits a
survival/MTTR report, counts land in ``chaos.*`` metrics, and failing
scenarios dump flight-recorder bundles for post-mortems.

Run the committed campaign with ``python -m repro.resilience.chaos``.
"""

from repro.resilience.chaos.harness import CampaignResult, ChaosHarness, ScenarioResult
from repro.resilience.chaos.report import (
    campaign_to_dict,
    render_report,
    write_json_report,
)
from repro.resilience.chaos.scenarios import ChaosScenario, default_campaign

__all__ = [
    "CampaignResult",
    "ChaosHarness",
    "ChaosScenario",
    "ScenarioResult",
    "campaign_to_dict",
    "default_campaign",
    "render_report",
    "write_json_report",
]
