"""CLI: run the committed chaos campaign and print the survival report.

``python -m repro.resilience.chaos`` runs the default 12-scenario
campaign; exit status is nonzero when any scenario fails, so the command
doubles as the CI ``chaos-smoke`` gate.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.resilience.chaos.harness import ChaosHarness
from repro.resilience.chaos.report import render_report, write_json_report
from repro.resilience.chaos.scenarios import default_campaign


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="Run the seeded chaos campaign against the distributed workload.",
    )
    parser.add_argument("--seed", type=int, default=2026, help="campaign master seed")
    parser.add_argument(
        "--steps", type=int, default=6, help="time steps per scenario run"
    )
    parser.add_argument(
        "--tol", type=float, default=1.0e-8, help="|nu - nu_free| survival bar"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write the JSON report here"
    )
    parser.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=None,
        help="dump flight-recorder bundles for failing scenarios into DIR",
    )
    parser.add_argument(
        "--only",
        metavar="NAME",
        action="append",
        default=None,
        help="run only the named scenario(s); repeatable",
    )
    args = parser.parse_args(argv)

    scenarios = default_campaign()
    if args.only:
        wanted = set(args.only)
        unknown = wanted - {s.name for s in scenarios}
        if unknown:
            parser.error(f"unknown scenario(s): {', '.join(sorted(unknown))}")
        scenarios = [s for s in scenarios if s.name in wanted]
    if args.steps != 6:
        scenarios = [replace(s, n_steps=args.steps) for s in scenarios]

    harness = ChaosHarness(
        seed=args.seed, n_steps=args.steps, tol=args.tol, flight_dir=args.flight_dir
    )
    campaign = harness.run_campaign(scenarios)
    print(render_report(campaign))
    if args.json:
        path = write_json_report(campaign, args.json)
        print(f"json report: {path}")
    return 0 if campaign.all_survived else 1


if __name__ == "__main__":
    sys.exit(main())
