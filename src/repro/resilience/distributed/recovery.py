"""Elastic rank recovery: warm replacement or shrink-and-repartition.

When a rank dies mid-campaign the two production responses (ULFM-style
MPI practice) are:

* **warm replacement** -- a spare takes the dead rank's place, loads its
  shard from the last committed epoch, and the world continues at full
  size; cheapest when spares exist;
* **shrink** -- the world continues with one rank fewer: the surviving
  ranks repartition the dead rank's elements among themselves (here via
  :func:`~repro.comm.partition.rcb_partition`) and reload the globally
  consistent epoch onto the new partition.

:class:`WorldRecovery` implements both over a duck-typed *recoverable
application* (the reference implementation is
:class:`~repro.resilience.distributed.workload.DistributedThermalWorkload`)
exposing ``world``, ``rebuild(new_size)`` and ``restore_shards(shards)``.
Hardened-channel failures
(:class:`~repro.comm.reliable.CommTimeoutError`,
:class:`~repro.comm.reliable.CollectiveIntegrityError`) recover through
the same path with the world size unchanged -- the state still rolls back
to the last consistent epoch, which is exactly the SDC-rollback the
replicated-checksum allreduce exists to trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.resilience.distributed.shards import ShardedCheckpointStore
from repro.resilience.events import EventLog
from repro.resilience.faults import RankFailedError

__all__ = ["RecoveryExhaustedError", "RecoveryOutcome", "WorldRecovery"]

POLICIES = ("warm_replace", "shrink")


class RecoveryExhaustedError(RuntimeError):
    """More incidents than the recovery budget allows."""

    def __init__(self, message: str, events: EventLog) -> None:
        super().__init__(message)
        self.events = events


@dataclass
class RecoveryOutcome:
    """What one recovery did: which epoch, which policy, what world."""

    policy: str
    cause: str
    epoch: int
    failed_rank: int
    old_size: int
    new_size: int
    skipped_epochs: list[int] = field(default_factory=list)

    @property
    def shrunk(self) -> bool:
        return self.new_size < self.old_size


class WorldRecovery:
    """Escalation policy from comm-layer failures to a consistent restart.

    Parameters
    ----------
    store:
        The sharded checkpoint store holding committed epochs.
    policy:
        ``"warm_replace"`` keeps the world size (the dead rank is re-spawned
        from its shard); ``"shrink"`` drops one rank per rank-failure and
        repartitions.  Non-rank failures (timeouts, integrity errors)
        always restore at the current size.
    min_size:
        Shrinking stops at this world size; further rank failures fall
        back to warm replacement.
    max_recoveries:
        Incidents allowed over the application's lifetime before
        :class:`RecoveryExhaustedError` -- the bounded-attempts guarantee
        that turns fault storms into clean failures instead of livelock.
    events:
        Structured :class:`~repro.resilience.events.EventLog`; every
        recovery decision is recorded (and mirrored into ``flight``).
    flight:
        Optional :class:`~repro.observability.fleet.flight.FlightRecorder`
        whose event ring mirrors the log; dumped by the chaos harness on
        scenario failure.
    """

    def __init__(
        self,
        store: ShardedCheckpointStore,
        policy: str = "warm_replace",
        min_size: int = 1,
        max_recoveries: int = 8,
        events: EventLog | None = None,
        flight: Any = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown recovery policy {policy!r}; choose from {POLICIES}")
        if min_size < 1:
            raise ValueError("min_size must be >= 1")
        self.store = store
        self.policy = policy
        self.min_size = min_size
        self.max_recoveries = max_recoveries
        self.events = events if events is not None else EventLog()
        self.flight = flight
        self.recoveries = 0
        self.outcomes: list[RecoveryOutcome] = []

    def _event(self, kind: str, step: int = -1, detail: str = "", **data: Any) -> None:
        self.events.record(kind, step=step, detail=detail, **data)
        if self.flight is not None:
            self.flight.record_event(kind, step=step, detail=detail, **data)

    def recover(self, app: Any, failure: BaseException) -> RecoveryOutcome:
        """Roll ``app`` back to the last consistent epoch, elastically.

        ``app`` must expose ``world`` (the current
        :class:`~repro.comm.simworld.SimWorld`), ``rebuild(new_size)``
        and ``restore_shards(shards)``.  Returns the
        :class:`RecoveryOutcome`; raises :class:`RecoveryExhaustedError`
        past the incident budget and propagates
        :class:`~repro.resilience.distributed.shards.ShardCorruptError`
        when no consistent epoch survives.
        """
        cause = type(failure).__name__
        failed_rank = int(getattr(failure, "rank", -1))
        old_size = app.world.size
        self.recoveries += 1
        self._event(
            "fault_detected",
            detail=str(failure),
            cause=cause,
            rank=failed_rank,
            incident=self.recoveries,
        )
        if self.recoveries > self.max_recoveries:
            raise RecoveryExhaustedError(
                f"giving up after {self.max_recoveries} recoveries: {failure}",
                self.events,
            )

        epoch, shards, skipped = self.store.restore_latest()
        for bad in skipped:
            self._event(
                "corrupt_checkpoint",
                step=bad,
                detail=f"epoch {bad} failed shard verification; falling back",
            )

        shrink = (
            self.policy == "shrink"
            and isinstance(failure, RankFailedError)
            and old_size > self.min_size
        )
        new_size = old_size - 1 if shrink else old_size
        app.rebuild(new_size)
        app.restore_shards(shards)

        outcome = RecoveryOutcome(
            policy="shrink" if shrink else "warm_replace",
            cause=cause,
            epoch=epoch,
            failed_rank=failed_rank,
            old_size=old_size,
            new_size=new_size,
            skipped_epochs=skipped,
        )
        self.outcomes.append(outcome)
        detail = (
            f"world {old_size}->{new_size} ranks, restored epoch {epoch}"
            if shrink
            else f"rank {failed_rank} warm-replaced from epoch {epoch}"
            if failed_rank >= 0
            else f"rolled back to epoch {epoch}"
        )
        self._event(
            "recovery",
            step=epoch,
            detail=detail,
            policy=outcome.policy,
            cause=cause,
            rank=failed_rank,
            old_size=old_size,
            new_size=new_size,
            skipped=list(skipped),
        )
        return outcome
