"""The reference recoverable SPMD application: distributed heat conduction.

The recovery machinery needs a real workload to protect -- one with the
communication skeleton of the production solver (rank-local operator,
two-phase gather--scatter halo exchange, allreduce inner products) but
small enough that the chaos campaign can run dozens of faulted instances
in seconds.  :class:`DistributedThermalWorkload` is that mini-app:
implicit-Euler heat conduction between a hot bottom plate (T=1) and a
cold top plate (T=0), each step solved by
:class:`~repro.comm.distributed_solver.DistributedConjugateGradient`
over an element partition of the SEM mesh.

Every ``checkpoint_interval`` steps the per-rank temperature chunks are
saved as a two-phase committed epoch in a
:class:`~repro.resilience.distributed.shards.ShardedCheckpointStore`
(each shard also records which elements the rank owned, so a shrunken
world can reassemble the global field without the dead rank's help).
Failures escalate to the attached
:class:`~repro.resilience.distributed.recovery.WorldRecovery`, and the
run resumes from the last consistent epoch with the CG warm-started from
the restored state.

The scalar diagnostic ``nu`` is the mass-weighted volume average of the
temperature -- the deterministic stand-in for the Nusselt number that
recovery-equivalence tests assert on: a recovered run must reproduce the
fault-free functional within round-off-level tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.comm.distributed_gs import DistributedGatherScatter
from repro.comm.distributed_solver import DistributedConjugateGradient
from repro.comm.partition import linear_partition, rcb_partition
from repro.comm.reliable import (
    CollectiveIntegrityError,
    CommTimeoutError,
    RetryPolicy,
)
from repro.comm.simworld import SimWorld, TrafficStats
from repro.precond.jacobi import helmholtz_diagonal
from repro.resilience.distributed.shards import ShardedCheckpointStore
from repro.resilience.events import EventLog
from repro.resilience.faults import FaultInjector, RankFailedError
from repro.sem.bc import DirichletBC
from repro.sem.mesh import box_mesh
from repro.sem.operators import ax_helmholtz
from repro.sem.space import FunctionSpace

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.distributed.recovery import WorldRecovery

__all__ = ["DistributedThermalWorkload", "WorkloadResult"]

#: Geometric-factor / mass coefficient names scattered to each rank.
_COEF_NAMES = ("g11", "g22", "g33", "g12", "g13", "g23", "mass")

#: The failures the run loop escalates to the recovery policy.
RECOVERABLE = (RankFailedError, CommTimeoutError, CollectiveIntegrityError)


class _LocalCoef:
    """One rank's view of the geometric factors (duck-typed Coef)."""

    __slots__ = _COEF_NAMES


@dataclass
class WorkloadResult:
    """Outcome of one (possibly faulted and recovered) workload run."""

    steps: int
    time: float
    nu_final: float
    nu_history: list[tuple[int, float]] = field(default_factory=list)
    recoveries: int = 0
    incidents: list[dict] = field(default_factory=list)
    world_size: int = 0
    stats: TrafficStats = field(default_factory=TrafficStats)

    @property
    def steps_replayed(self) -> int:
        """Total steps re-run due to rollbacks (the MTTR numerator)."""
        return sum(int(i["steps_replayed"]) for i in self.incidents)


class DistributedThermalWorkload:
    """Implicit heat conduction on per-rank element chunks, with recovery.

    Parameters
    ----------
    shape, order:
        The SEM box mesh (elements per axis) and polynomial order.
    nranks:
        Initial world size.
    kappa, dt:
        Diffusivity and time step of the implicit Euler update
        ``(B/dt + kappa A) T_new = B T_old / dt``.
    checkpoint_interval:
        Steps between committed epochs.
    store, recovery:
        Sharded checkpoint store (default: in-memory) and the optional
        :class:`WorldRecovery`; without one, failures propagate.
    fault_injector, retry, verify_collectives:
        Passed to every :class:`~repro.comm.simworld.SimWorld` this
        workload builds (the injector is *kept* across rebuilds so global
        fault schedules keep counting).
    world_kind:
        ``"object"`` (default) builds :class:`~repro.comm.simworld.SimWorld`
        worlds; ``"batched"`` builds
        :class:`~repro.comm.batched.BatchedWorld` ones, so wide-world
        chaos scenarios exercise recovery on the vectorized engine.
    partition:
        ``"rcb"`` or ``"linear"`` element partitioning, reapplied on
        every world rebuild.
    fleet:
        Optional :class:`~repro.observability.fleet.rank.FleetTelemetry`;
        re-created at the new size when the world shrinks.
    flight:
        Optional flight recorder mirroring the event stream.
    seed:
        Seeds the initial interior temperature perturbation.
    """

    def __init__(
        self,
        shape: tuple[int, int, int] = (2, 2, 2),
        order: int = 4,
        nranks: int = 4,
        kappa: float = 0.08,
        dt: float = 0.05,
        checkpoint_interval: int = 2,
        store: ShardedCheckpointStore | None = None,
        recovery: "WorldRecovery | None" = None,
        fault_injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        verify_collectives: bool = False,
        world_kind: str = "object",
        partition: str = "rcb",
        fleet: Any = None,
        flight: Any = None,
        events: EventLog | None = None,
        seed: int = 7,
        tol: float = 1e-10,
        maxiter: int = 500,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if partition not in ("rcb", "linear"):
            raise ValueError(f"unknown partition {partition!r}")
        if world_kind not in ("object", "batched"):
            raise ValueError(f"unknown world_kind {world_kind!r}")
        self.world_kind = world_kind
        self.space = FunctionSpace(box_mesh(shape), order)
        self.kappa = kappa
        self.dt = dt
        self.h1 = kappa
        self.h2 = 1.0 / dt
        self.checkpoint_interval = checkpoint_interval
        self.store = store if store is not None else ShardedCheckpointStore()
        self.recovery = recovery
        self.fault_injector = fault_injector
        self.retry = retry
        self.verify_collectives = verify_collectives
        self.partition = partition
        self.fleet = fleet
        self.flight = flight
        self.events = events if events is not None else EventLog()
        self.tol = tol
        self.maxiter = maxiter

        sp = self.space
        bottom = DirichletBC(sp, ["bottom"], 1.0)
        top = DirichletBC(sp, ["top"], 0.0)
        self.mask = bottom.mask * top.mask
        self.lift = np.where(bottom.mask == 0.0, bottom.values, 0.0) + np.where(
            top.mask == 0.0, top.values, 0.0
        )
        self.volume = float(np.sum(sp.coef.mass))

        rng = np.random.default_rng(seed)
        t0 = self.lift + self.mask * (0.5 + 0.05 * rng.standard_normal(sp.shape))

        self.step = 0
        self.time = 0.0
        self.nu_history: list[tuple[int, float]] = []
        self.monitors: list[Any] = []
        self.incidents: list[dict] = []
        self._prior_stats = TrafficStats()

        self._build(nranks)
        self.t_chunks = self.dgs.scatter_field(t0)

    # -- world construction ------------------------------------------------------

    def _build(self, nranks: int) -> None:
        """(Re)build world, partition, gather--scatter and solver at ``nranks``."""
        sp = self.space
        old_world = getattr(self, "world", None)
        if old_world is not None:
            self._prior_stats.absorb(old_world.stats)
        if self.world_kind == "batched":
            from repro.comm.batched import BatchedWorld

            world_cls: type[SimWorld] = BatchedWorld
        else:
            world_cls = SimWorld
        self.world = world_cls(
            nranks,
            fault_injector=self.fault_injector,
            retry=self.retry,
            verify_collectives=self.verify_collectives,
        )
        if self.partition == "rcb" and nranks > 1:
            self.owner = rcb_partition(sp.mesh, nranks)
        else:
            self.owner = linear_partition(sp.mesh.nelv, nranks)
        self.dgs = DistributedGatherScatter(
            sp.gs.global_ids, self.owner, sp.shape, self.world
        )
        coef_chunks = {
            name: self.dgs.scatter_field(getattr(sp.coef, name)) for name in _COEF_NAMES
        }
        self.mask_chunks = self.dgs.scatter_field(self.mask)
        self.lift_chunks = self.dgs.scatter_field(self.lift)
        self._mass_chunks = coef_chunks["mass"]

        h1, h2, dx = self.h1, self.h2, sp.dx

        def local_amul(rank: int, chunk: np.ndarray) -> np.ndarray:
            c = _LocalCoef()
            for name, chunks in coef_chunks.items():
                setattr(c, name, chunks[rank])
            return ax_helmholtz(chunk, c, dx, h1, h2)

        diag = sp.gs.add(helmholtz_diagonal(sp, h1, h2))
        diag = np.where(self.mask == 0.0, 1.0, diag)
        pd = self.dgs.scatter_field(1.0 / diag)
        pd = [d * m for d, m in zip(pd, self.mask_chunks)]
        self.solver = DistributedConjugateGradient(
            local_amul,
            self.dgs,
            self.world,
            local_mask=self.mask_chunks,
            precond_diag=pd,
            tol=self.tol,
            maxiter=self.maxiter,
        )
        if self.fleet is not None:
            if len(self.fleet) != nranks:
                from repro.observability.fleet.rank import FleetTelemetry

                self.fleet = FleetTelemetry(nranks)
            self.fleet.attach(self.world, self.dgs, self.solver)

    # -- recoverable-app protocol ------------------------------------------------

    def rebuild(self, new_size: int) -> None:
        """Rebuild the communication layer at ``new_size`` ranks."""
        self._build(new_size)

    def restore_shards(self, shards: list[dict[str, np.ndarray]]) -> None:
        """Install a committed epoch's state onto the *current* partition.

        Shards carry their own element ownership, so the reassembly works
        whether the epoch was written by this world, a larger one (shrink
        recovery) or a restarted process.  Restoring the same epoch twice
        is a no-op -- the idempotence the property tests pin down.
        """
        sp = self.space
        full = np.zeros(sp.shape)
        seen = np.zeros(sp.mesh.nelv, dtype=bool)
        step = 0
        time = 0.0
        for shard in shards:
            elements = np.asarray(shard["elements"], dtype=np.int64)
            full[elements] = shard["temperature"]
            seen[elements] = True
            step = int(shard["step"])
            time = float(shard["time"])
        if not seen.all():
            missing = int((~seen).sum())
            raise ValueError(f"epoch shards cover {sp.mesh.nelv - missing} of "
                             f"{sp.mesh.nelv} elements")
        self.t_chunks = self.dgs.scatter_field(full)
        self.step = step
        self.time = time
        self.nu_history = [entry for entry in self.nu_history if entry[0] <= step]
        self._event("rollback", step=step, detail=f"state restored at epoch {step}")

    def shard_payloads(self) -> list[dict[str, np.ndarray]]:
        """The per-rank shard arrays a checkpoint of the current state writes."""
        step = np.asarray(self.step)
        time = np.asarray(self.time)
        return [
            {
                "temperature": self.t_chunks[r],
                "elements": self.dgs.rank_elements[r],
                "step": step,
                "time": time,
            }
            for r in range(self.world.size)
        ]

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self) -> None:
        """Two-phase epoch save: stage every shard, barrier, then commit."""
        writer = self.store.begin_epoch(self.step, self.world.size, time=self.time)
        try:
            for rank, arrays in enumerate(self.shard_payloads()):
                writer.write_shard(rank, arrays)
            # The commit point is a coordination point: a rank that dies
            # here aborts the epoch, leaving the previous one authoritative.
            self.world.barrier()
        except BaseException:
            writer.abort()
            raise
        writer.commit()
        self._event("checkpoint", step=self.step, detail=f"epoch {self.step} committed")

    # -- the physics -------------------------------------------------------------

    def advance(self) -> None:
        """One implicit-Euler step: assemble rhs, CG solve, diagnostics."""
        sp = self.space
        rhs_local = [
            m * t * self.h2 - self._ax_lift(r)
            for r, (m, t) in enumerate(zip(self._mass_chunks, self.t_chunks))
        ]
        rhs = self.dgs.add(rhs_local)
        rhs = [c * m for c, m in zip(rhs, self.mask_chunks)]
        x0 = [
            (t - lf) * m
            for t, lf, m in zip(self.t_chunks, self.lift_chunks, self.mask_chunks)
        ]
        theta, mon = self.solver.solve(rhs, x0=x0)
        self.t_chunks = [th + lf for th, lf in zip(theta, self.lift_chunks)]
        self.monitors.append(mon)
        self.step += 1
        self.time += self.dt
        del sp
        self.nu_history.append((self.step, self.nusselt()))

    def _ax_lift(self, rank: int) -> np.ndarray:
        """Rank-local operator applied to the Dirichlet lift."""
        return self.solver.local_amul(rank, self.lift_chunks[rank])

    def nusselt(self) -> float:
        """Mass-weighted volume average of T (the deterministic Nu proxy).

        Computed the distributed way -- local weighted sums plus one
        allreduce -- so the diagnostic itself exercises (and is protected
        by) the hardened collective path.
        """
        locals_ = [
            float(np.sum(m * t))
            for m, t in zip(self._mass_chunks, self.t_chunks)
        ]
        return self.world.allreduce_scalar(locals_) / self.volume

    # -- the run loop ------------------------------------------------------------

    def _event(self, kind: str, step: int = -1, detail: str = "", **data: Any) -> None:
        self.events.record(kind, step=step, time=self.time, detail=detail, **data)
        if self.flight is not None:
            self.flight.record_event(
                kind, step=step, time=self.time, detail=detail, **data
            )

    def run(self, n_steps: int) -> WorkloadResult:
        """Advance ``n_steps`` steps, surviving faults via the recovery policy."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        target = self.step + n_steps
        if self.store.latest is None:
            self.checkpoint()  # epoch 0: rollback works before the first step
        while self.step < target:
            step_before = self.step
            try:
                self.advance()
                if self.step % self.checkpoint_interval == 0:
                    self.checkpoint()
            except RECOVERABLE as exc:
                if self.recovery is None:
                    raise
                outcome = self.recovery.recover(self, exc)
                incident = {
                    "cause": outcome.cause,
                    "policy": outcome.policy,
                    "detected_step": step_before,
                    "epoch": outcome.epoch,
                    "steps_replayed": step_before - outcome.epoch,
                    "failed_rank": outcome.failed_rank,
                    "old_size": outcome.old_size,
                    "new_size": outcome.new_size,
                }
                self.incidents.append(incident)
        return self.result()

    def result(self) -> WorkloadResult:
        """Snapshot of the realized run (shared by run() and the harness)."""
        stats = TrafficStats()
        stats.absorb(self._prior_stats)
        stats.absorb(self.world.stats)
        return WorkloadResult(
            steps=self.step,
            time=self.time,
            nu_final=self.nu_history[-1][1] if self.nu_history else float("nan"),
            nu_history=list(self.nu_history),
            recoveries=len(self.incidents),
            incidents=list(self.incidents),
            world_size=self.world.size,
            stats=stats,
        )
