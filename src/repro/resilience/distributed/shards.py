"""Coordinated sharded checkpoints with two-phase epoch commits.

At production scale every rank writes its own shard (Neko restart files,
ADIOS2 sub-files); the failure mode that design must exclude is the
*mixed-epoch restore*: a crash while half the ranks have written epoch N
and half still hold epoch N-1 must never yield a restart that silently
mixes the two.  The classic answer -- and the one implemented here -- is
a two-phase protocol:

1. **stage**: every rank's shard is written into a staging area for the
   epoch (``.staging_epoch_NNNNNNNN/`` on disk), each shard carrying a
   SHA-256 checksum over its arrays;
2. **commit**: only when *all* ``world_size`` shards are staged is the
   epoch manifest (shard checksums, world size, metadata) written and the
   staging area atomically renamed to the committed epoch directory.

A reader only ever sees committed epochs; a crash mid-save leaves a
staging directory that the next run discards.  Restores verify each
shard against both its embedded checksum and the manifest entry, and a
corrupt shard fails the *whole epoch* over to the previous committed one
(:meth:`ShardedCheckpointStore.restore_latest`) -- per-epoch consistency
is all-or-nothing, never per-shard.

The store also runs fully in memory (``directory=None``) for the chaos
campaign's many short scenarios.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import re
import shutil
import zipfile
import zlib
from dataclasses import asdict, dataclass, field
from typing import Mapping

import numpy as np

from repro.core.output import CheckpointCorruptError, checkpoint_digest

__all__ = [
    "ShardCorruptError",
    "EpochManifest",
    "EpochWriter",
    "ShardedCheckpointStore",
]

_EPOCH_RE = re.compile(r"^epoch_(\d{8})$")
_STAGING_PREFIX = ".staging_"

SCHEMA_VERSION = 1


class ShardCorruptError(CheckpointCorruptError):
    """A shard failed its checksum, or an epoch is unreadable/incomplete."""


@dataclass
class EpochManifest:
    """The commit record of one epoch: who wrote what, verified how."""

    epoch: int
    world_size: int
    checksums: list[str]
    meta: dict = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EpochManifest":
        data = json.loads(text)
        return cls(
            epoch=int(data["epoch"]),
            world_size=int(data["world_size"]),
            checksums=[str(c) for c in data["checksums"]],
            meta=dict(data.get("meta", {})),
            schema=int(data.get("schema", SCHEMA_VERSION)),
        )


def _pack_shard(arrays: Mapping[str, np.ndarray]) -> tuple[bytes, str]:
    """Serialize one shard to npz bytes; returns (payload, checksum)."""
    named = {k: np.asarray(v) for k, v in arrays.items()}
    if "checksum" in named:
        raise ValueError("'checksum' is a reserved shard entry name")
    digest = checkpoint_digest(named)
    named["checksum"] = np.asarray(digest)
    buf = io.BytesIO()
    np.savez_compressed(buf, **named)
    return buf.getvalue(), digest


def _unpack_shard(payload: bytes, expect: str, where: str) -> dict[str, np.ndarray]:
    """Parse npz bytes, verifying embedded and manifest checksums."""
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            out = {k: np.asarray(data[k]) for k in data.files}
    except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile, zlib.error) as exc:
        raise ShardCorruptError(f"unreadable shard {where}: {exc}") from exc
    stored = str(out.pop("checksum", ""))
    actual = checkpoint_digest(out)
    if stored != actual:
        raise ShardCorruptError(
            f"shard {where} failed embedded checksum: stored {stored[:12]}..., "
            f"computed {actual[:12]}..."
        )
    if actual != expect:
        raise ShardCorruptError(
            f"shard {where} disagrees with its epoch manifest: manifest "
            f"{expect[:12]}..., shard {actual[:12]}..."
        )
    return out


class EpochWriter:
    """The stage phase of one epoch save; :meth:`commit` makes it visible.

    Obtained from :meth:`ShardedCheckpointStore.begin_epoch`.  Shards may
    be written in any order; :meth:`commit` refuses until every rank's
    shard is staged, and :meth:`abort` (or simply dropping the writer
    after a crash) leaves the committed epochs untouched.
    """

    def __init__(
        self,
        store: "ShardedCheckpointStore",
        epoch: int,
        world_size: int,
        meta: dict,
    ) -> None:
        self.store = store
        self.epoch = epoch
        self.world_size = world_size
        self.meta = meta
        self.checksums: dict[int, str] = {}
        self._payloads: dict[int, bytes] = {}
        self._staging: pathlib.Path | None = None
        self._done = False
        if store.directory is not None:
            self._staging = store.directory / f"{_STAGING_PREFIX}epoch_{epoch:08d}"
            if self._staging.exists():
                shutil.rmtree(self._staging)
            self._staging.mkdir(parents=True)

    def write_shard(self, rank: int, arrays: Mapping[str, np.ndarray]) -> str:
        """Stage rank ``rank``'s shard; returns its checksum."""
        if self._done:
            raise RuntimeError("epoch writer already committed or aborted")
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} outside world of size {self.world_size}")
        payload, digest = _pack_shard(arrays)
        if self._staging is not None:
            path = self._staging / f"shard_{rank:04d}.npz"
            with open(path, "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
        else:
            self._payloads[rank] = payload
        self.checksums[rank] = digest
        return digest

    def commit(self) -> EpochManifest:
        """Publish the epoch: write the manifest, atomically rename into place.

        Raises ``ShardCorruptError`` if any rank's shard is missing -- an
        epoch is only ever committed whole.
        """
        if self._done:
            raise RuntimeError("epoch writer already committed or aborted")
        missing = [r for r in range(self.world_size) if r not in self.checksums]
        if missing:
            raise ShardCorruptError(
                f"cannot commit epoch {self.epoch}: shards missing for ranks {missing}"
            )
        manifest = EpochManifest(
            epoch=self.epoch,
            world_size=self.world_size,
            checksums=[self.checksums[r] for r in range(self.world_size)],
            meta=self.meta,
        )
        self.store._install(manifest, self._staging, self._payloads)
        self._done = True
        return manifest

    def abort(self) -> None:
        """Discard the staged shards; committed epochs are unaffected."""
        if self._done:
            return
        self._done = True
        self._payloads.clear()
        if self._staging is not None and self._staging.exists():
            shutil.rmtree(self._staging)


class ShardedCheckpointStore:
    """Committed epochs of per-rank shards, on disk or in memory.

    Parameters
    ----------
    directory:
        Root of the epoch directories; ``None`` keeps everything in
        memory (fast, survives world rebuilds but not the process).  An
        existing directory is rescanned -- committed epochs are adopted,
        orphaned staging areas from a crashed save are discarded (and
        listed in :attr:`aborted`).
    capacity:
        Committed epochs retained; the oldest is pruned on commit.  Two
        is the floor that keeps a fallback when the newest epoch turns
        out corrupt.
    """

    def __init__(
        self, directory: str | pathlib.Path | None = None, capacity: int = 2
    ) -> None:
        if capacity < 1:
            raise ValueError("store capacity must be >= 1")
        self.directory = pathlib.Path(directory) if directory is not None else None
        self.capacity = capacity
        self.aborted: list[int] = []
        self._mem: dict[int, tuple[EpochManifest, dict[int, bytes]]] = {}
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._rescan()

    def _rescan(self) -> None:
        for path in sorted(self.directory.iterdir()):
            if not path.is_dir():
                continue
            if path.name.startswith(_STAGING_PREFIX):
                m = re.search(r"epoch_(\d+)$", path.name)
                if m is not None:
                    self.aborted.append(int(m.group(1)))
                shutil.rmtree(path)

    # -- committed-epoch bookkeeping -------------------------------------------

    def _epoch_dir(self, epoch: int) -> pathlib.Path:
        return self.directory / f"epoch_{epoch:08d}"

    def epochs(self) -> list[int]:
        """Committed epoch numbers, oldest first."""
        if self.directory is None:
            return sorted(self._mem)
        out = []
        for path in self.directory.iterdir():
            m = _EPOCH_RE.match(path.name)
            if m is not None and (path / "manifest.json").exists():
                out.append(int(m.group(1)))
        return sorted(out)

    @property
    def latest(self) -> int | None:
        committed = self.epochs()
        return committed[-1] if committed else None

    def __len__(self) -> int:
        return len(self.epochs())

    # -- the two-phase save -----------------------------------------------------

    def begin_epoch(self, epoch: int, world_size: int, **meta) -> EpochWriter:
        """Open the stage phase for ``epoch``; commit via the returned writer."""
        if epoch < 0 or world_size < 1:
            raise ValueError("need epoch >= 0 and world_size >= 1")
        return EpochWriter(self, epoch, world_size, meta)

    def save_epoch(
        self, epoch: int, shards: list[Mapping[str, np.ndarray]], **meta
    ) -> EpochManifest:
        """Convenience: stage every rank's shard and commit in one call."""
        writer = self.begin_epoch(epoch, len(shards), **meta)
        try:
            for rank, arrays in enumerate(shards):
                writer.write_shard(rank, arrays)
        except BaseException:
            writer.abort()
            raise
        return writer.commit()

    def _install(
        self,
        manifest: EpochManifest,
        staging: pathlib.Path | None,
        payloads: dict[int, bytes],
    ) -> None:
        """Commit phase: manifest write + atomic rename (called by the writer)."""
        if self.directory is None:
            self._mem[manifest.epoch] = (manifest, dict(payloads))
        else:
            mpath = staging / "manifest.json"
            with open(mpath, "w", encoding="utf-8") as fh:
                fh.write(manifest.to_json())
                fh.flush()
                os.fsync(fh.fileno())
            final = self._epoch_dir(manifest.epoch)
            if final.exists():  # re-commit of the same epoch replaces it
                shutil.rmtree(final)
            os.replace(staging, final)
        self._prune()

    def _prune(self) -> None:
        committed = self.epochs()
        for epoch in committed[: -self.capacity]:
            self._evict(epoch)

    def _evict(self, epoch: int) -> None:
        if self.directory is None:
            self._mem.pop(epoch, None)
        else:
            target = self._epoch_dir(epoch)
            if target.exists():
                shutil.rmtree(target)

    # -- reading ----------------------------------------------------------------

    def manifest(self, epoch: int) -> EpochManifest:
        """The commit record of ``epoch``; raises if not committed."""
        if self.directory is None:
            if epoch not in self._mem:
                raise ShardCorruptError(f"epoch {epoch} is not committed")
            return self._mem[epoch][0]
        mpath = self._epoch_dir(epoch) / "manifest.json"
        try:
            with open(mpath, "r", encoding="utf-8") as fh:
                return EpochManifest.from_json(fh.read())
        except (OSError, ValueError, KeyError) as exc:
            raise ShardCorruptError(f"epoch {epoch} has no readable manifest: {exc}") from exc

    def _shard_payload(self, epoch: int, rank: int) -> bytes:
        if self.directory is None:
            payloads = self._mem[epoch][1]
            if rank not in payloads:
                raise ShardCorruptError(f"epoch {epoch} shard for rank {rank} missing")
            return payloads[rank]
        path = self._epoch_dir(epoch) / f"shard_{rank:04d}.npz"
        try:
            return path.read_bytes()
        except OSError as exc:
            raise ShardCorruptError(f"epoch {epoch} shard for rank {rank}: {exc}") from exc

    def load_shard(self, epoch: int, rank: int) -> dict[str, np.ndarray]:
        """One rank's verified shard from a committed epoch."""
        manifest = self.manifest(epoch)
        if not 0 <= rank < manifest.world_size:
            raise ValueError(f"rank {rank} outside epoch {epoch}'s world")
        return _unpack_shard(
            self._shard_payload(epoch, rank),
            manifest.checksums[rank],
            f"epoch {epoch} rank {rank}",
        )

    def load_epoch(self, epoch: int) -> list[dict[str, np.ndarray]]:
        """Every rank's verified shard; raises on the first corrupt one."""
        manifest = self.manifest(epoch)
        return [self.load_shard(epoch, r) for r in range(manifest.world_size)]

    def verify_epoch(self, epoch: int) -> EpochManifest:
        """Re-read and checksum every shard of ``epoch``; returns its manifest."""
        manifest = self.manifest(epoch)
        self.load_epoch(epoch)
        return manifest

    def restore_latest(
        self,
    ) -> tuple[int, list[dict[str, np.ndarray]], list[int]]:
        """The newest fully-valid epoch's shards, falling back over corrupt ones.

        Walks committed epochs newest-to-oldest; an epoch with any corrupt
        shard is skipped *whole* (and evicted, so it cannot masquerade as
        the newest epoch later).  Returns ``(epoch, shards,
        skipped_epochs)``; raises :class:`ShardCorruptError` when nothing
        valid remains.
        """
        skipped: list[int] = []
        for epoch in reversed(self.epochs()):
            try:
                shards = self.load_epoch(epoch)
            except ShardCorruptError:
                skipped.append(epoch)
                continue
            for bad in skipped:
                self._evict(bad)
            return epoch, shards, skipped
        for bad in skipped:
            self._evict(bad)
        raise ShardCorruptError(
            f"no globally consistent epoch among {len(skipped)} committed entries"
        )
