"""Distributed fault tolerance for the simulated rank world.

The single-process resilience layer (checkpoint ring, rollback-and-retry)
protects one :class:`~repro.core.simulation.Simulation`; the paper's
production runs are SPMD jobs on thousands of GPUs, where the failure
unit is a *rank* and the checkpoint unit is a *shard*.  This package adds
the distributed half:

* :class:`~repro.resilience.distributed.shards.ShardedCheckpointStore` --
  coordinated per-rank shard checkpoints with per-shard checksums and a
  two-phase stage-then-commit epoch marker, so a crash mid-save can never
  produce a mixed-epoch restore and a corrupt shard falls back to the
  last globally consistent epoch;
* :class:`~repro.resilience.distributed.recovery.WorldRecovery` -- the
  elastic recovery policy that escalates
  :class:`~repro.resilience.faults.RankFailedError` (and the hardened
  channel's timeout/integrity errors) into either a *warm replacement* of
  the dead rank from its shard or a *shrink* of the world with
  repartitioning of the surviving elements;
* :class:`~repro.resilience.distributed.workload.DistributedThermalWorkload`
  -- the reference recoverable application (implicit heat conduction
  solved step-by-step with
  :class:`~repro.comm.distributed_solver.DistributedConjugateGradient`)
  that the chaos harness (:mod:`repro.resilience.chaos`) drives through
  fault campaigns.
"""

from repro.resilience.distributed.shards import (
    EpochManifest,
    EpochWriter,
    ShardCorruptError,
    ShardedCheckpointStore,
)
from repro.resilience.distributed.recovery import (
    RecoveryExhaustedError,
    RecoveryOutcome,
    WorldRecovery,
)
from repro.resilience.distributed.workload import (
    DistributedThermalWorkload,
    WorkloadResult,
)

__all__ = [
    "EpochManifest",
    "EpochWriter",
    "ShardCorruptError",
    "ShardedCheckpointStore",
    "RecoveryExhaustedError",
    "RecoveryOutcome",
    "WorldRecovery",
    "DistributedThermalWorkload",
    "WorkloadResult",
]
