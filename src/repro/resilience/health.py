"""Per-step health monitoring: finite fields, CFL ceiling, solver streaks.

The divergence guard inside :meth:`Simulation.run` catches a run that has
already blown up; :class:`HealthCheck` is the earlier tripwire the
:class:`~repro.resilience.runner.ResilientRunner` consults between run
segments.  It scans the *state* (every field finite, temperature inside
physical bounds) and the *trajectory* (CFL under a ceiling, pressure
iterations not pinned at the ceiling for several consecutive steps, via
:class:`~repro.solvers.monitor.IterationStreakTracker`), and returns
structured :class:`HealthIssue` records the runner turns into rollbacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.monitor import IterationStreakTracker

__all__ = ["HealthCheck", "HealthIssue"]


@dataclass
class HealthIssue:
    """One detected problem: what quantity, where, and why it trips."""

    kind: str  # "nonfinite" | "bounds" | "cfl" | "solver_streak"
    quantity: str
    message: str
    step: int = -1


class HealthCheck:
    """Configurable per-segment health scan.

    Parameters
    ----------
    cfl_max:
        Trip when a step's Courant number exceeds this (``None`` disables).
    pressure_iteration_limit, streak:
        Trip when ``streak`` consecutive steps spend at least
        ``pressure_iteration_limit`` pressure iterations (``None``
        disables) -- the non-convergence-streak detector.
    temperature_bounds:
        ``(lo, hi)`` physical bounds for the temperature field; Boussinesq
        RBC cannot exceed its plate temperatures, so values outside the
        range indicate corruption long before NaNs appear.
    scan_fields:
        Scan every prognostic field for NaN/Inf each check (on by default;
        this is the SDC detector).
    """

    def __init__(
        self,
        cfl_max: float | None = 10.0,
        pressure_iteration_limit: int | None = None,
        streak: int = 3,
        temperature_bounds: tuple[float, float] | None = None,
        scan_fields: bool = True,
    ) -> None:
        self.cfl_max = cfl_max
        self.temperature_bounds = temperature_bounds
        self.scan_fields = scan_fields
        self.streak_tracker = (
            IterationStreakTracker(limit=pressure_iteration_limit, streak=streak)
            if pressure_iteration_limit is not None
            else None
        )

    def reset(self) -> None:
        """Forget streak state (call after a rollback)."""
        if self.streak_tracker is not None:
            self.streak_tracker.reset()

    # -- scans ------------------------------------------------------------------

    def check_state(self, sim) -> list[HealthIssue]:
        """Scan the simulation's current fields."""
        issues: list[HealthIssue] = []
        step = int(getattr(sim, "step_count", -1))
        if self.scan_fields:
            ux, uy, uz = sim.velocity
            fields = {
                "ux": ux,
                "uy": uy,
                "uz": uz,
                "temperature": sim.temperature,
                "pressure": sim.pressure,
            }
            for name, arr in fields.items():
                if not np.all(np.isfinite(arr)):
                    issues.append(
                        HealthIssue(
                            "nonfinite", name, f"{name} contains NaN/Inf", step=step
                        )
                    )
        if self.temperature_bounds is not None:
            lo, hi = self.temperature_bounds
            t = sim.temperature
            # NaN comparisons are False, so also require finiteness above.
            tmin, tmax = float(np.nanmin(t)), float(np.nanmax(t))
            if tmin < lo or tmax > hi:
                issues.append(
                    HealthIssue(
                        "bounds",
                        "temperature",
                        f"temperature [{tmin:.3g}, {tmax:.3g}] outside [{lo}, {hi}]",
                        step=step,
                    )
                )
        return issues

    def check_results(self, results) -> list[HealthIssue]:
        """Scan newly produced :class:`StepResult` records."""
        issues: list[HealthIssue] = []
        for res in results:
            if self.cfl_max is not None and (
                not np.isfinite(res.cfl) or res.cfl > self.cfl_max
            ):
                issues.append(
                    HealthIssue(
                        "cfl",
                        "cfl",
                        f"CFL {res.cfl:.3g} exceeds ceiling {self.cfl_max}",
                        step=res.step,
                    )
                )
            if self.streak_tracker is not None and self.streak_tracker.observe(
                res.pressure_iterations
            ):
                issues.append(
                    HealthIssue(
                        "solver_streak",
                        "pressure_iterations",
                        f"pressure solve at >= {self.streak_tracker.limit} iterations "
                        f"for {self.streak_tracker.count} consecutive steps",
                        step=res.step,
                    )
                )
        return issues

    def check(self, sim, new_results=()) -> list[HealthIssue]:
        """Full check: state scan plus trajectory scan of ``new_results``."""
        return self.check_state(sim) + self.check_results(new_results)
