"""A bounded ring of verified checkpoints with corrupt-entry fallback.

Production runs keep the last few checkpoints, not just the newest: a
crash during a write, a bad disk block, or an undetected SDC that made it
into a checkpoint must not end the campaign.  :class:`CheckpointRing`
holds up to ``capacity`` entries -- on disk (atomic writes via
:func:`write_checkpoint`) or in memory -- and :meth:`restore_latest`
walks newest-to-oldest, skipping entries that fail their checksum, until
one loads cleanly.

The ring is storage-only: it knows how to persist and restore *via the
injected ``write_fn``/``load_fn``* but holds no opinion on when to
checkpoint or what to do after a restore -- that is the
:class:`~repro.resilience.runner.ResilientRunner`'s job (which also makes
the ring reusable for duck-typed simulation stand-ins in tests).
"""

from __future__ import annotations

import io
import pathlib
import re
from dataclasses import dataclass, field

from repro.core.output import (
    CheckpointCorruptError,
    load_checkpoint,
    verify_checkpoint,
    write_checkpoint,
)

__all__ = ["CheckpointRing", "RingEntry"]

_STEP_RE = re.compile(r"(\d+)\.npz$")


@dataclass
class RingEntry:
    """One ring slot: a checkpoint at ``step`` either on disk or in memory."""

    step: int
    time: float = 0.0
    path: pathlib.Path | None = None
    payload: bytes | None = None
    meta: dict = field(default_factory=dict)

    def source(self):
        """The object to hand to ``load_fn``: a path or a fresh byte stream."""
        if self.path is not None:
            return self.path
        return io.BytesIO(self.payload)


class CheckpointRing:
    """Bounded ring of checkpoints, newest last.

    Parameters
    ----------
    directory:
        Where to keep checkpoint files; ``None`` keeps the compressed
        payloads in memory instead (fast, survives rollback but not the
        process).  An existing directory is rescanned, so a restarted run
        can restore from the ring a previous process left behind.
    capacity:
        Maximum entries retained; the oldest is evicted (and its file
        deleted) when exceeded.
    write_fn, load_fn:
        ``write_fn(sim, target)`` / ``load_fn(sim, source)`` hooks,
        defaulting to the checksummed
        :func:`~repro.core.output.write_checkpoint` /
        :func:`~repro.core.output.load_checkpoint`.  Custom hooks must
        raise :class:`CheckpointCorruptError` on damaged input for the
        fallback walk to engage.
    verify_on_save:
        Re-read and checksum-verify every entry immediately after writing
        it (via ``verify_fn``).  Catches write-path corruption -- a bad
        disk block, a torn buffer -- at save time, when the in-memory
        state still exists, instead of at restore time when it is the
        only copy.  A failed verification evicts the fresh entry and
        raises :class:`CheckpointCorruptError`.
    verify_fn:
        ``verify_fn(source)`` used by ``verify_on_save``; defaults to
        :func:`~repro.core.output.verify_checkpoint`.
    """

    def __init__(
        self,
        directory: str | pathlib.Path | None = None,
        capacity: int = 3,
        prefix: str = "ck",
        write_fn=write_checkpoint,
        load_fn=load_checkpoint,
        verify_on_save: bool = False,
        verify_fn=verify_checkpoint,
    ) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.directory = pathlib.Path(directory) if directory is not None else None
        self.capacity = capacity
        self.prefix = prefix
        self.write_fn = write_fn
        self.load_fn = load_fn
        self.verify_on_save = verify_on_save
        self.verify_fn = verify_fn
        self.entries: list[RingEntry] = []
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._rescan()

    def _rescan(self) -> None:
        """Adopt checkpoint files already present (restart after a crash)."""
        for path in sorted(self.directory.glob(f"{self.prefix}*.npz")):
            m = _STEP_RE.search(path.name)
            if m is not None:
                self.entries.append(RingEntry(step=int(m.group(1)), path=path))
        self.entries.sort(key=lambda e: e.step)

    # -- writing ----------------------------------------------------------------

    def save(self, sim, **meta) -> RingEntry:
        """Checkpoint ``sim`` into the ring, evicting the oldest if full."""
        step = int(getattr(sim, "step_count", len(self.entries)))
        time = float(getattr(sim, "time", 0.0))
        if self.directory is not None:
            path = self.directory / f"{self.prefix}{step:08d}.npz"
            self.write_fn(sim, path)
            entry = RingEntry(step=step, time=time, path=path, meta=meta)
        else:
            buf = io.BytesIO()
            self.write_fn(sim, buf)
            entry = RingEntry(step=step, time=time, payload=buf.getvalue(), meta=meta)
        if self.verify_on_save:
            try:
                self.verify_fn(entry.source())
            except CheckpointCorruptError:
                self._evict(entry)
                raise
        # A re-save at an existing step (e.g. restart baseline) replaces it.
        self.entries = [e for e in self.entries if e.step != step]
        self.entries.append(entry)
        self.entries.sort(key=lambda e: e.step)
        while len(self.entries) > self.capacity:
            self._evict(self.entries.pop(0))
        return entry

    @staticmethod
    def _evict(entry: RingEntry) -> None:
        if entry.path is not None:
            entry.path.unlink(missing_ok=True)
        entry.payload = None

    # -- restoring --------------------------------------------------------------

    def restore_latest(self, sim) -> tuple[RingEntry, list[RingEntry]]:
        """Restore ``sim`` from the newest loadable entry.

        Walks the ring newest-to-oldest; entries raising
        :class:`CheckpointCorruptError` are skipped (and returned so the
        caller can log them).  Raises ``CheckpointCorruptError`` if no
        entry is valid.
        """
        skipped: list[RingEntry] = []
        loaded: RingEntry | None = None
        for entry in reversed(self.entries):
            try:
                self.load_fn(sim, entry.source())
            except CheckpointCorruptError:
                skipped.append(entry)
                continue
            loaded = entry
            break
        # Corrupt entries are evicted (file deleted): they cannot serve a
        # future restore and must not masquerade as the newest checkpoint.
        for bad in skipped:
            self.entries.remove(bad)
            self._evict(bad)
        if loaded is None:
            raise CheckpointCorruptError(
                f"no valid checkpoint among {len(self.entries) + len(skipped)} ring entries"
            )
        return loaded, skipped

    def restore_entry(self, sim, step: int) -> RingEntry:
        """Restore ``sim`` from the ring entry at exactly ``step``.

        The targeted counterpart of :meth:`restore_latest` -- "rewind to
        the checkpoint *before* the bad segment", not just "the newest".
        Raises :class:`KeyError` when the ring holds no such step and
        :class:`CheckpointCorruptError` (after evicting the entry) when
        it no longer loads.
        """
        for entry in self.entries:
            if entry.step == step:
                break
        else:
            steps = [e.step for e in self.entries]
            raise KeyError(f"no ring entry at step {step}; ring holds {steps}")
        try:
            self.load_fn(sim, entry.source())
        except CheckpointCorruptError:
            self.entries.remove(entry)
            self._evict(entry)
            raise
        return entry

    @property
    def latest(self) -> RingEntry | None:
        return self.entries[-1] if self.entries else None

    @property
    def steps(self) -> list[int]:
        """Steps of the retained entries, oldest first."""
        return [e.step for e in self.entries]

    def __len__(self) -> int:
        return len(self.entries)
