"""Per-region wall-clock timers.

The paper measures "MPI_Wtime timings around relevant code regions"; this
is the equivalent instrumentation for the Python solver, and the measured
counterpart of the Fig. 4 wall-time distribution.

A :class:`RegionTimers` can carry a
:class:`~repro.observability.tracer.Tracer`: every region entry then also
opens a trace span, so the flat Fig. 4 accumulation and the hierarchical
Fig. 2 style trace come from the *same* ``with timers.region(...)`` sites.
The default is the no-op tracer, which keeps the uninstrumented path
within a branch of the original code.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.observability.tracer import NULL_TRACER

__all__ = ["RegionTimers"]


class RegionTimers:
    """Accumulates wall time per named region (``pressure``, ``velocity``, ...).

    Regions may nest and re-enter: each entry is timed independently and
    accumulated under its own name (nested time is counted in both the
    outer and the inner region, as with MPI region timers).
    """

    def __init__(self, tracer=None) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @contextmanager
    def region(self, name: str):
        """Context manager timing one region entry."""
        span_cm = self.tracer.span(name) if self.tracer.enabled else None
        if span_cm is not None:
            span_cm.__enter__()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.totals[name] = self.totals.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1
            if span_cm is not None:
                span_cm.__exit__(None, None, None)

    def total(self) -> float:
        """Sum over all regions."""
        return sum(self.totals.values())

    def fractions(self) -> dict[str, float]:
        """Share of total wall time per region (the Fig. 4 quantity)."""
        tot = self.total()
        if tot == 0.0:
            return {k: 0.0 for k in self.totals}
        return {k: v / tot for k, v in self.totals.items()}

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def report(self) -> str:
        """Multi-line human-readable breakdown."""
        tot = self.total()
        lines = [f"total measured: {tot:.3f} s"]
        for k, v in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            share = 100.0 * v / tot if tot else 0.0
            lines.append(f"  {k:<14s} {v:9.3f} s  {share:5.1f}%  ({self.counts[k]} calls)")
        return "\n".join(lines)
