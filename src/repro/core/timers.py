"""Per-region wall-clock timers.

The paper measures "MPI_Wtime timings around relevant code regions"; this
is the equivalent instrumentation for the Python solver, and the measured
counterpart of the Fig. 4 wall-time distribution.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["RegionTimers"]


class RegionTimers:
    """Accumulates wall time per named region (``pressure``, ``velocity``, ...)."""

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    @contextmanager
    def region(self, name: str):
        """Context manager timing one region entry."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.totals[name] = self.totals.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self) -> float:
        """Sum over all regions."""
        return sum(self.totals.values())

    def fractions(self) -> dict[str, float]:
        """Share of total wall time per region (the Fig. 4 quantity)."""
        tot = self.total()
        if tot == 0.0:
            return {k: 0.0 for k in self.totals}
        return {k: v / tot for k, v in self.totals.items()}

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def report(self) -> str:
        """Multi-line human-readable breakdown."""
        tot = self.total()
        lines = [f"total measured: {tot:.3f} s"]
        for k, v in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            share = 100.0 * v / tot if tot else 0.0
            lines.append(f"  {k:<14s} {v:9.3f} s  {share:5.1f}%  ({self.counts[k]} calls)")
        return "\n".join(lines)
