"""The P_N-P_N splitting scheme for the incompressible momentum equations.

One step of the Karniadakis-Israeli-Orszag (1991) velocity-correction
scheme, as configured in the paper:

1. Advance the explicit terms: weak-form dealiased advection plus body
   forces (buoyancy), extrapolated with EXT-k, combined with the BDF-k
   history of the velocity.
2. Solve the consistent pressure Poisson equation with GMRES preconditioned
   by the hybrid Schwarz multigrid.  The right-hand side uses the
   integrated-by-parts form ``(grad phi, v*)`` so that the impermeability
   condition on the walls enters naturally (homogeneous Neumann on ``p``).
3. Solve one Helmholtz problem per velocity component with Jacobi-CG.

Deliberate simplification vs. Neko (documented in DESIGN.md): the pressure
uses the first-order homogeneous Neumann condition instead of the full
rotational high-order boundary term.  Integral RBC observables at the
modest Ra accessible here are insensitive to this.
"""

from __future__ import annotations

import numpy as np

from repro.core.case import CaseConfig
from repro.core.timers import RegionTimers
from repro.observability.phases import (
    PHASE_ADVECTION,
    PHASE_PRESSURE,
    PHASE_VELOCITY,
)
from repro.precond.hsmg import HybridSchwarzMultigrid
from repro.precond.jacobi import JacobiPrecond
from repro.sem.bc import BoundaryMask
from repro.sem.dealias import Dealiaser
from repro.sem.operators import (
    ax_helmholtz,
    ax_poisson,
    convective_term_collocated,
    divergence,
    physical_grad,
    weak_gradient_transpose,
)
from repro.sem.space import FunctionSpace
from repro.solvers.cg import ConjugateGradient
from repro.solvers.gmres import Gmres
from repro.solvers.monitor import SolverMonitor
from repro.solvers.projection import MeanProjector
from repro.solvers.solution_projection import SolutionProjection
from repro.timeint.bdf_ext import TimeScheme

__all__ = ["FluidScheme"]


class FluidScheme:
    """Velocity/pressure integrator on a shared function space."""

    def __init__(
        self,
        space: FunctionSpace,
        config: CaseConfig,
        scheme: TimeScheme,
        timers: RegionTimers | None = None,
    ) -> None:
        self.space = space
        self.config = config
        self.scheme = scheme
        self.timers = timers if timers is not None else RegionTimers()
        self.nu = config.viscosity
        self.dt = config.dt

        # Velocity Dirichlet mask (no-slip: all components share it).
        if config.no_slip_labels:
            self.vel_mask = BoundaryMask(space, config.no_slip_labels).mask
        else:
            self.vel_mask = np.ones(space.shape)

        self.dealiaser = Dealiaser(space) if config.dealias else None

        # Velocity histories u^{n}, u^{n-1}, u^{n-2} (index 0 = newest) and
        # explicit-term (advection + forcing, weak form) histories.
        self.u = [space.zeros() for _ in range(3)]
        self.v = [space.zeros() for _ in range(3)]
        self.w = [space.zeros() for _ in range(3)]
        self.f_hist: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

        self.p = space.zeros()

        # Pressure solver: GMRES + hybrid Schwarz multigrid, singular
        # (pure-Neumann) with the counting null-space projector.  The
        # operator cache, coarse method and smoother precision are case
        # options (autotuner/fast-path wiring lives in Simulation).
        cache_opt = None if config.operator_cache else False
        self.hsmg = HybridSchwarzMultigrid(
            space,
            mask=None,
            coarse_iterations=config.coarse_iterations,
            overlap=config.schwarz_overlap,
            smoother_dtype=config.smoother_dtype,
            coarse_method=config.coarse_method,
            cache=cache_opt,
        )
        self._pressure_project = MeanProjector.counting(space.gs)

        def p_amul(u: np.ndarray) -> np.ndarray:
            return space.gs.add(ax_poisson(u, space.coef, space.dx))

        self.pressure_solver = Gmres(
            p_amul,
            space.gs.dot,
            precond=self.hsmg,
            tol=config.pressure_tol,
            maxiter=300,
            restart=config.gmres_restart,
            project_out=self._pressure_project,
            name="pressure",
            tracer=self.timers.tracer,
            dot_weight=space.gs.inv_multiplicity,
        )
        # Previous-solutions projection space (Fischer's technique; Neko's
        # proj_pre): deflates each pressure solve against recent history.
        self.pressure_projection: SolutionProjection | None = None
        if config.pressure_projection_dim > 0:
            self.pressure_projection = SolutionProjection(
                p_amul, space.gs.dot, max_dim=config.pressure_projection_dim
            )

        # Velocity Helmholtz solver (coefficients fixed by dt and order;
        # refreshed when the BDF order ramps).
        self._helmholtz_b0: float | None = None
        self._vel_precond: JacobiPrecond | None = None
        self.monitors: dict[str, SolverMonitor] = {}
        # Times the mixed-precision guard tripped (exported by Simulation
        # as the ``autotune.precision_fallback`` event/metric).
        self.precision_fallbacks = 0

    # -- operators -----------------------------------------------------------

    def _vel_amul(self, h2: float):
        space = self.space
        nu = self.nu
        mask = self.vel_mask

        def amul(u: np.ndarray) -> np.ndarray:
            w = space.gs.add(ax_helmholtz(u, space.coef, space.dx, nu, h2))
            return w * mask

        return amul

    def set_dt(self, dt: float) -> None:
        """Change the step size (adaptive stepping); operators refresh lazily."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = dt

    def _refresh_helmholtz(self, b0: float) -> None:
        if self._helmholtz_b0 == (b0, self.dt):
            return
        h2 = b0 / self.dt
        if self._vel_precond is None:
            self._vel_precond = JacobiPrecond(
                self.space,
                self.nu,
                h2,
                mask=self.vel_mask,
                cache=None if self.config.operator_cache else False,
            )
        else:
            self._vel_precond.update(self.nu, h2)
        self._vel_solver = ConjugateGradient(
            self._vel_amul(h2),
            self.space.gs.dot,
            precond=self._vel_precond,
            tol=self.config.velocity_tol,
            maxiter=500,
            name="velocity",
            tracer=self.timers.tracer,
        )
        self._helmholtz_b0 = (b0, self.dt)

    def convective_weak(
        self,
        u: np.ndarray,
        c_fine: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Weak-form advection ``(phi, (u . grad) u_comp)`` of one component."""
        cx, cy, cz = self.u[0], self.v[0], self.w[0]
        if self.dealiaser is not None:
            return self.dealiaser.convect_weak(cx, cy, cz, u, c_fine=c_fine)
        conv = convective_term_collocated(cx, cy, cz, u, self.space.coef, self.space.dx)
        return self.space.coef.mass * conv

    def fine_velocity(self) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Current velocity interpolated to the dealiasing grid (reusable)."""
        if self.dealiaser is None:
            return None
        d = self.dealiaser
        return (d.to_fine(self.u[0]), d.to_fine(self.v[0]), d.to_fine(self.w[0]))

    # -- stepping ------------------------------------------------------------

    def set_velocity(self, ux: np.ndarray, uy: np.ndarray, uz: np.ndarray) -> None:
        """Initialize all history levels with the given field."""
        for hist, val in ((self.u, ux), (self.v, uy), (self.w, uz)):
            for lev in hist:
                lev[:] = val

    def prime_history(
        self,
        velocity_at,
        weak_forcing_at,
        t0: float,
        dt: float,
        pressure: np.ndarray | None = None,
    ) -> None:
        """Fill the multistep histories from known solution/forcing functions.

        ``velocity_at(t)`` returns the three components; ``weak_forcing_at(t)``
        the mass-weighted explicit term per component (advection plus body
        force) as a 3-tuple.  Evaluated at ``t0 - j dt``; the order ramp is
        then skipped.  ``pressure`` seeds the incremental pressure-correction
        predictor -- without it the first pressure increment carries an O(1)
        splitting transient.
        """
        for j in range(len(self.u)):
            uj, vj, wj = velocity_at(t0 - j * dt)
            self.u[j][:], self.v[j][:], self.w[j][:] = uj, vj, wj
        self.f_hist = [
            weak_forcing_at(t0 - j * dt)
            for j in range(1, self.scheme.target_order)
        ]
        if pressure is not None:
            self.p = pressure.copy()
            self._pressure_project(self.p)
        self.scheme.jump_start()

    def step(
        self,
        forcing_weak: tuple[np.ndarray, np.ndarray, np.ndarray],
        c_fine: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> dict[str, SolverMonitor]:
        """Advance the velocity/pressure one time step.

        ``forcing_weak`` is the mass-weighted explicit body force at the
        *current* time level (for RBC: buoyancy ``B * T^n e_z``); it is
        extrapolated together with the advection term.
        """
        space = self.space
        b0, bs = self.scheme.bdf
        ext = self.scheme.ext
        dt = self.dt
        self._refresh_helmholtz(b0)

        with self.timers.region(PHASE_ADVECTION):
            fx = -self.convective_weak(self.u[0], c_fine) + forcing_weak[0]
            fy = -self.convective_weak(self.v[0], c_fine) + forcing_weak[1]
            fz = -self.convective_weak(self.w[0], c_fine) + forcing_weak[2]
            self.f_hist.insert(0, (fx, fy, fz))
            del self.f_hist[3:]

            rhs = []
            for comp, hist in enumerate((self.u, self.v, self.w)):
                r = np.zeros(space.shape)
                for q, aq in enumerate(ext):
                    if q < len(self.f_hist):
                        r += aq * self.f_hist[q][comp]
                for j, bj in enumerate(bs):
                    r += (bj / dt) * space.coef.mass * hist[j]
                rhs.append(r)

        with self.timers.region(PHASE_PRESSURE):
            # Incremental pressure correction: the predictor carries the
            # previous pressure gradient, the Poisson solve yields only the
            # increment dp (second-order splitting, and a much smaller
            # right-hand side for GMRES than solving for the full pressure).
            gpx, gpy, gpz = physical_grad(self.p, space.coef, space.dx)
            vstar = [
                (space.gs.add(r) * space.inv_mass_assembled - gp) * self.vel_mask
                for r, gp in zip(rhs, (gpx, gpy, gpz))
            ]
            rhs_p = space.gs.add(
                weak_gradient_transpose(vstar[0], vstar[1], vstar[2], space.coef, space.dx)
            )
            if self.pressure_projection is not None:
                self._pressure_project(rhs_p)
                dp, mon_p = self.pressure_projection.solve_with(
                    self.pressure_solver, rhs_p
                )
            else:
                dp, mon_p = self.pressure_solver.solve(rhs_p)
            self.p = self.p + dp
            self._pressure_project(self.p)
            # Mixed-precision guard: a float32 smoother whose iteration
            # counts regress beyond the band is swapped back to float64.
            if self.hsmg.observe_iterations(mon_p.iterations):
                self.precision_fallbacks += 1

        with self.timers.region(PHASE_VELOCITY):
            px, py, pz = physical_grad(self.p, space.coef, space.dx)
            b = space.coef.mass
            mons = []
            for comp, (r, gp, hist) in enumerate(
                ((rhs[0], px, self.u), (rhs[1], py, self.v), (rhs[2], pz, self.w))
            ):
                bvec = space.gs.add(r - b * gp) * self.vel_mask
                sol, mon = self._vel_solver.solve(bvec, x0=hist[0] * self.vel_mask)
                mons.append(mon)
                hist.insert(0, sol)
                del hist[3:]

        self.monitors = {
            "pressure": mon_p,
            "velocity_x": mons[0],
            "velocity_y": mons[1],
            "velocity_z": mons[2],
        }
        return self.monitors

    # -- diagnostics -----------------------------------------------------------

    def divergence_norm(self) -> float:
        """Mass-weighted L^2 norm of ``div u`` of the current velocity."""
        d = divergence(self.u[0], self.v[0], self.w[0], self.space.coef, self.space.dx)
        return self.space.norm_l2(d)

    def kinetic_energy(self) -> float:
        """Volume-integrated kinetic energy of the current velocity."""
        sq = self.u[0] ** 2 + self.v[0] ** 2 + self.w[0] ** 2
        return 0.5 * self.space.integrate(sq)
