"""Field output and checkpoint/restart.

Snapshots are written as compressed ``.npz`` containers (the stand-in for
Neko's ``.fld``/ADIOS2 output); checkpoints capture the full multistep
state so a run restarts bit-for-bit.  The lossy-compressed alternative
lives in :mod:`repro.compression`.

Checkpoints are production-grade: written atomically (tmp file + rename,
so a crash mid-write can never leave a half-checkpoint under the final
name), carry a SHA-256 checksum over the payload arrays, and are verified
on load -- a truncated or bit-flipped file raises
:class:`CheckpointCorruptError` *before* any simulation state is mutated.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import zipfile
from typing import IO, Mapping

import numpy as np

from repro.core.simulation import Simulation

__all__ = [
    "FieldWriter",
    "CheckpointCorruptError",
    "write_checkpoint",
    "load_checkpoint",
    "verify_checkpoint",
    "checkpoint_digest",
    "load_snapshot",
]


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file is unreadable, truncated, or fails its checksum."""


class FieldWriter:
    """Writes numbered field snapshots into an output directory.

    Register as an in-situ callback: ``sim.callbacks.append(FieldWriter(dir))``.
    """

    def __init__(self, directory: str | pathlib.Path, prefix: str = "field") -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.counter = 0
        self.written: list[pathlib.Path] = []

    def __call__(self, sim: Simulation) -> pathlib.Path:
        ux, uy, uz = sim.velocity
        path = self.directory / f"{self.prefix}{self.counter:05d}.npz"
        np.savez_compressed(
            path,
            ux=ux,
            uy=uy,
            uz=uz,
            temperature=sim.temperature,
            pressure=sim.pressure,
            x=sim.space.x,
            y=sim.space.y,
            z=sim.space.z,
            meta=json.dumps(
                {
                    "time": sim.time,
                    "step": sim.step_count,
                    "rayleigh": sim.config.rayleigh,
                    "prandtl": sim.config.prandtl,
                    "lx": sim.config.lx,
                    "nelv": sim.space.nelv,
                    "case": sim.config.name,
                }
            ),
        )
        self.written.append(path)
        self.counter += 1
        return path


def load_snapshot(path: str | pathlib.Path) -> dict:
    """Load a snapshot written by :class:`FieldWriter`.

    Returns a dict with the field arrays plus the parsed ``meta`` mapping.
    """
    with np.load(path, allow_pickle=False) as data:
        out = {k: data[k] for k in data.files if k != "meta"}
        out["meta"] = json.loads(str(data["meta"]))
    return out


# -- checkpointing --------------------------------------------------------------


def checkpoint_digest(arrays: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over the payload entries (names, dtypes, shapes, bytes).

    The ``checksum`` entry itself is excluded, so the digest of a loaded
    checkpoint can be compared against the stored value.
    """
    h = hashlib.sha256()
    for name in sorted(arrays):
        if name == "checksum":
            continue
        a = np.ascontiguousarray(np.asarray(arrays[name]))
        h.update(name.encode())
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def _checkpoint_payload(sim: Simulation) -> dict[str, np.ndarray]:
    """Collect the complete multistep state as an array mapping."""
    arrays: dict[str, np.ndarray] = {}
    for i in range(3):
        arrays[f"u{i}"] = sim.fluid.u[i]
        arrays[f"v{i}"] = sim.fluid.v[i]
        arrays[f"w{i}"] = sim.fluid.w[i]
        arrays[f"t{i}"] = sim.scalar.t_hist[i]
    for i, f in enumerate(sim.fluid.f_hist):
        arrays[f"fx{i}"], arrays[f"fy{i}"], arrays[f"fz{i}"] = f
    for i, f in enumerate(sim.scalar.f_hist):
        arrays[f"ft{i}"] = f
    if sim.fluid.pressure_projection is not None:
        arrays.update(sim.fluid.pressure_projection.state_arrays())
    scheme_dts = getattr(sim.scheme, "_dts", [])
    arrays.update(
        pressure=sim.fluid.p,
        n_fluid_hist=np.asarray(len(sim.fluid.f_hist)),
        n_scalar_hist=np.asarray(len(sim.scalar.f_hist)),
        time=np.asarray(sim.time),
        dt=np.asarray(sim.dt),
        last_cfl=np.asarray(sim.last_cfl if sim.last_cfl is not None else [-1.0, -1.0]),
        step_count=np.asarray(sim.step_count),
        scheme_steps=np.asarray(sim.scheme.step_count),
        scheme_dts=np.asarray(scheme_dts, dtype=np.float64),
    )
    return arrays


def write_checkpoint(sim: Simulation, path: str | pathlib.Path | IO[bytes]) -> None:
    """Save the complete multistep state for exact restart.

    File targets are written atomically: the payload goes to a ``.tmp``
    sibling which is then renamed over the final path, so readers never
    observe a partially written checkpoint.  A SHA-256 checksum over the
    payload is stored alongside the arrays and verified by
    :func:`load_checkpoint`.  ``path`` may also be a writable binary
    file object (used by the in-memory checkpoint ring).
    """
    arrays = _checkpoint_payload(sim)
    arrays["checksum"] = np.asarray(checkpoint_digest(arrays))
    if hasattr(path, "write"):
        np.savez_compressed(path, **arrays)
        return
    path = pathlib.Path(path)
    if path.suffix != ".npz":  # mirror np.savez's implicit suffix
        path = path.with_name(path.name + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _read_checkpoint(path: str | pathlib.Path | IO[bytes]) -> dict[str, np.ndarray]:
    """Read and checksum-verify a checkpoint into a plain dict.

    All decompression happens here, before any simulation state is
    touched; every failure mode (missing file, truncation, bad zip member,
    checksum mismatch) surfaces as :class:`CheckpointCorruptError`.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            out = {k: np.asarray(data[k]) for k in data.files}
    except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile) as exc:
        raise CheckpointCorruptError(f"unreadable checkpoint {path}: {exc}") from exc
    if "checksum" in out:  # absent only in pre-checksum legacy files
        stored = str(out["checksum"])
        actual = checkpoint_digest(out)
        if stored != actual:
            raise CheckpointCorruptError(
                f"checkpoint {path} failed checksum: stored {stored[:12]}..., "
                f"computed {actual[:12]}..."
            )
    return out


def verify_checkpoint(path: str | pathlib.Path | IO[bytes]) -> dict:
    """Validate a checkpoint without touching any simulation.

    Returns a small metadata dict (``step``, ``time``, ``dt``); raises
    :class:`CheckpointCorruptError` if the file is damaged.
    """
    data = _read_checkpoint(path)
    return {
        "step": int(data["step_count"]),
        "time": float(data["time"]),
        "dt": float(data["dt"]) if "dt" in data else None,
        "checksum": str(data["checksum"]) if "checksum" in data else None,
    }


def load_checkpoint(sim: Simulation, path: str | pathlib.Path | IO[bytes]) -> None:
    """Restore a simulation's state from :func:`write_checkpoint` output.

    The file is fully read and checksum-verified *before* the simulation
    is mutated, so a corrupt checkpoint leaves ``sim`` untouched (and the
    caller free to fall back to an older ring entry).
    """
    data = _read_checkpoint(path)
    try:
        for i in range(3):
            sim.fluid.u[i][:] = data[f"u{i}"]
            sim.fluid.v[i][:] = data[f"v{i}"]
            sim.fluid.w[i][:] = data[f"w{i}"]
            sim.scalar.t_hist[i][:] = data[f"t{i}"]
        sim.fluid.p = data["pressure"].copy()
        nf = int(data["n_fluid_hist"])
        sim.fluid.f_hist = [
            (data[f"fx{i}"].copy(), data[f"fy{i}"].copy(), data[f"fz{i}"].copy())
            for i in range(nf)
        ]
        ns = int(data["n_scalar_hist"])
        sim.scalar.f_hist = [data[f"ft{i}"].copy() for i in range(ns)]
    except KeyError as exc:
        raise CheckpointCorruptError(f"checkpoint {path} missing entry {exc}") from exc
    if sim.fluid.pressure_projection is not None:
        sim.fluid.pressure_projection.load_state(data)
    sim.time = float(data["time"])
    sim.step_count = int(data["step_count"])
    sim.scheme.step_count = int(data["scheme_steps"])
    if "dt" in data:
        sim.dt = float(data["dt"])
        sim.fluid.set_dt(sim.dt)
        sim.scalar.set_dt(sim.dt)
    if "last_cfl" in data:
        cfl, dt_last = (float(v) for v in data["last_cfl"])
        sim.last_cfl = None if dt_last < 0 else (cfl, dt_last)
    if hasattr(sim.scheme, "_dts") and "scheme_dts" in data:
        sim.scheme._dts = [float(v) for v in np.atleast_1d(data["scheme_dts"])]
