"""Field output and checkpoint/restart.

Snapshots are written as compressed ``.npz`` containers (the stand-in for
Neko's ``.fld``/ADIOS2 output); checkpoints capture the full multistep
state so a run restarts bit-for-bit.  The lossy-compressed alternative
lives in :mod:`repro.compression`.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.simulation import Simulation

__all__ = ["FieldWriter", "write_checkpoint", "load_checkpoint", "load_snapshot"]


class FieldWriter:
    """Writes numbered field snapshots into an output directory.

    Register as an in-situ callback: ``sim.callbacks.append(FieldWriter(dir))``.
    """

    def __init__(self, directory: str | pathlib.Path, prefix: str = "field") -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.counter = 0
        self.written: list[pathlib.Path] = []

    def __call__(self, sim: Simulation) -> pathlib.Path:
        ux, uy, uz = sim.velocity
        path = self.directory / f"{self.prefix}{self.counter:05d}.npz"
        np.savez_compressed(
            path,
            ux=ux,
            uy=uy,
            uz=uz,
            temperature=sim.temperature,
            pressure=sim.pressure,
            x=sim.space.x,
            y=sim.space.y,
            z=sim.space.z,
            meta=json.dumps(
                {
                    "time": sim.time,
                    "step": sim.step_count,
                    "rayleigh": sim.config.rayleigh,
                    "prandtl": sim.config.prandtl,
                    "lx": sim.config.lx,
                    "nelv": sim.space.nelv,
                    "case": sim.config.name,
                }
            ),
        )
        self.written.append(path)
        self.counter += 1
        return path


def load_snapshot(path: str | pathlib.Path) -> dict:
    """Load a snapshot written by :class:`FieldWriter`.

    Returns a dict with the field arrays plus the parsed ``meta`` mapping.
    """
    with np.load(path, allow_pickle=False) as data:
        out = {k: data[k] for k in data.files if k != "meta"}
        out["meta"] = json.loads(str(data["meta"]))
    return out


def write_checkpoint(sim: Simulation, path: str | pathlib.Path) -> None:
    """Save the complete multistep state for exact restart."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {}
    for i in range(3):
        arrays[f"u{i}"] = sim.fluid.u[i]
        arrays[f"v{i}"] = sim.fluid.v[i]
        arrays[f"w{i}"] = sim.fluid.w[i]
        arrays[f"t{i}"] = sim.scalar.t_hist[i]
    for i, f in enumerate(sim.fluid.f_hist):
        arrays[f"fx{i}"], arrays[f"fy{i}"], arrays[f"fz{i}"] = f
    for i, f in enumerate(sim.scalar.f_hist):
        arrays[f"ft{i}"] = f
    if sim.fluid.pressure_projection is not None:
        arrays.update(sim.fluid.pressure_projection.state_arrays())
    scheme_dts = getattr(sim.scheme, "_dts", [])
    np.savez_compressed(
        path,
        pressure=sim.fluid.p,
        n_fluid_hist=len(sim.fluid.f_hist),
        n_scalar_hist=len(sim.scalar.f_hist),
        time=sim.time,
        dt=sim.dt,
        last_cfl=np.asarray(sim.last_cfl if sim.last_cfl is not None else [-1.0, -1.0]),
        step_count=sim.step_count,
        scheme_steps=sim.scheme.step_count,
        scheme_dts=np.asarray(scheme_dts, dtype=np.float64),
        **arrays,
    )


def load_checkpoint(sim: Simulation, path: str | pathlib.Path) -> None:
    """Restore a simulation's state from :func:`write_checkpoint` output."""
    with np.load(path, allow_pickle=False) as data:
        for i in range(3):
            sim.fluid.u[i][:] = data[f"u{i}"]
            sim.fluid.v[i][:] = data[f"v{i}"]
            sim.fluid.w[i][:] = data[f"w{i}"]
            sim.scalar.t_hist[i][:] = data[f"t{i}"]
        sim.fluid.p = data["pressure"].copy()
        nf = int(data["n_fluid_hist"])
        sim.fluid.f_hist = [
            (data[f"fx{i}"].copy(), data[f"fy{i}"].copy(), data[f"fz{i}"].copy())
            for i in range(nf)
        ]
        ns = int(data["n_scalar_hist"])
        sim.scalar.f_hist = [data[f"ft{i}"].copy() for i in range(ns)]
        if sim.fluid.pressure_projection is not None:
            sim.fluid.pressure_projection.load_state(data)
        sim.time = float(data["time"])
        sim.step_count = int(data["step_count"])
        sim.scheme.step_count = int(data["scheme_steps"])
        if "dt" in data:
            sim.dt = float(data["dt"])
            sim.fluid.set_dt(sim.dt)
            sim.scalar.set_dt(sim.dt)
        if "last_cfl" in data:
            cfl, dt_last = (float(v) for v in data["last_cfl"])
            sim.last_cfl = None if dt_last < 0 else (cfl, dt_last)
        if hasattr(sim.scheme, "_dts") and "scheme_dts" in data:
            sim.scheme._dts = [float(v) for v in np.atleast_1d(data["scheme_dts"])]
