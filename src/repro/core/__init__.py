"""Core solver: case setup, P_N-P_N splitting, simulation driver.

This is the layer a user of the framework touches: build a
:class:`~repro.core.case.CaseConfig` (or use the RBC factories in
:mod:`repro.core.rbc`), construct a :class:`~repro.core.simulation.Simulation`
and call :meth:`run`.  The fluid and scalar schemes underneath implement the
paper's configuration: Karniadakis splitting, BDF3/EXT3, 3/2-rule
dealiasing, GMRES + hybrid Schwarz multigrid for the pressure and
CG + block-Jacobi for velocity and temperature.
"""

from repro.core.case import CaseConfig
from repro.core.timers import RegionTimers
from repro.core.fluid import FluidScheme
from repro.core.scalar import ScalarScheme
from repro.core.simulation import Simulation, StepResult
from repro.core.statistics import (
    facet_integral,
    facet_area,
    nusselt_volume,
    nusselt_plate,
    nusselt_dissipation,
    NusseltNumbers,
    compute_nusselt,
    reynolds_number,
)
from repro.core.rbc import rbc_box_case, rbc_cylinder_case
from repro.core.output import (
    CheckpointCorruptError,
    FieldWriter,
    load_checkpoint,
    load_snapshot,
    verify_checkpoint,
    write_checkpoint,
)

__all__ = [
    "CheckpointCorruptError",
    "FieldWriter",
    "verify_checkpoint",
    "load_checkpoint",
    "load_snapshot",
    "write_checkpoint",
    "CaseConfig",
    "RegionTimers",
    "FluidScheme",
    "ScalarScheme",
    "Simulation",
    "StepResult",
    "facet_integral",
    "facet_area",
    "nusselt_volume",
    "nusselt_plate",
    "nusselt_dissipation",
    "NusseltNumbers",
    "compute_nusselt",
    "reynolds_number",
    "rbc_box_case",
    "rbc_cylinder_case",
]
