"""Rayleigh-Benard case factories.

Two canonical setups:

* :func:`rbc_box_case` -- convection between parallel plates in a box,
  optionally periodic in the lateral directions (the classic configuration
  for onset/scaling studies; the critical Rayleigh number for rigid-rigid
  plates is Ra_c = 1708).
* :func:`rbc_cylinder_case` -- the cylindrical cell of the paper with
  aspect ratio Gamma = diameter/height (production: Gamma = 1/10).

Temperature convention: hot bottom plate ``T = +1/2``, cold top plate
``T = -1/2`` (zero-mean, DeltaT = 1); the conductive profile is
``T = 1/2 - z``.  The default initial condition superposes a deterministic
multi-mode perturbation on the conductive profile so that convection starts
reproducibly above onset.
"""

from __future__ import annotations

import numpy as np

from repro.core.case import CaseConfig
from repro.sem.mesh import box_mesh, cylinder_mesh

__all__ = ["rbc_box_case", "rbc_cylinder_case", "conductive_profile", "default_perturbation"]


def conductive_profile(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """The pure-conduction temperature solution ``T = 1/2 - z``."""
    return 0.5 - z


def default_perturbation(amplitude: float = 0.05, modes: int = 3):
    """A deterministic multi-mode perturbation vanishing at ``z = 0, 1``.

    Products of lateral harmonics with ``sin(pi z)`` envelopes; enough
    asymmetry to trigger all low azimuthal modes without randomness (so
    tests and examples are reproducible bit-for-bit).
    """

    def perturb(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
        envelope = np.sin(np.pi * z)
        p = np.zeros_like(z)
        for m in range(1, modes + 1):
            p += (
                np.sin(2 * np.pi * m * x + 0.3 * m)
                * np.cos(2 * np.pi * m * y + 0.7 * m)
                / m
            )
        return amplitude * envelope * p

    return perturb


def rbc_box_case(
    rayleigh: float,
    prandtl: float = 1.0,
    n: tuple[int, int, int] = (4, 4, 4),
    lx: int = 6,
    aspect: float = 2.0,
    periodic_lateral: bool = True,
    dt: float | None = None,
    z_grading: float = 1.5,
    perturbation_amplitude: float = 0.05,
    **overrides,
) -> CaseConfig:
    """RBC between parallel plates at ``z = 0`` and ``z = 1``.

    ``aspect`` is the lateral box size (in units of the height).  With
    ``periodic_lateral`` the sides wrap around; otherwise they are no-slip
    insulated walls.
    """
    mesh = box_mesh(
        n,
        lengths=(aspect, aspect, 1.0),
        periodic=(periodic_lateral, periodic_lateral, False),
        grading=(0.0, 0.0, z_grading),
    )
    no_slip = ("bottom", "top") if periodic_lateral else (
        "bottom", "top", "x-", "x+", "y-", "y+"
    )
    if dt is None:
        dt = _default_dt(rayleigh)
    pert = default_perturbation(perturbation_amplitude)

    def t0(x, y, z):
        return conductive_profile(x, y, z) + pert(x, y, z)

    cfg = CaseConfig(
        mesh=mesh,
        lx=lx,
        rayleigh=rayleigh,
        prandtl=prandtl,
        dt=dt,
        no_slip_labels=no_slip,
        temperature_bcs={"bottom": 0.5, "top": -0.5},
        initial_temperature=t0,
        name=f"rbc_box_Ra{rayleigh:g}",
        **overrides,
    )
    cfg.validate()
    return cfg


def rbc_cylinder_case(
    rayleigh: float,
    prandtl: float = 1.0,
    aspect: float = 0.5,
    n_square: int = 2,
    n_ring: int = 2,
    n_z: int = 8,
    lx: int = 6,
    dt: float | None = None,
    perturbation_amplitude: float = 0.05,
    **overrides,
) -> CaseConfig:
    """RBC in a cylindrical cell of diameter ``aspect`` (height 1).

    The paper's production cell has ``aspect = 1/10``; such slender cells
    need many ``n_z`` layers to keep elements isotropic.
    """
    mesh = cylinder_mesh(
        diameter=aspect,
        height=1.0,
        n_square=n_square,
        n_ring=n_ring,
        n_z=n_z,
    )
    if dt is None:
        dt = _default_dt(rayleigh)
    pert = default_perturbation(perturbation_amplitude)

    def t0(x, y, z):
        return conductive_profile(x, y, z) + pert(x, y, z)

    cfg = CaseConfig(
        mesh=mesh,
        lx=lx,
        rayleigh=rayleigh,
        prandtl=prandtl,
        dt=dt,
        no_slip_labels=("bottom", "top", "side"),
        temperature_bcs={"bottom": 0.5, "top": -0.5},
        initial_temperature=t0,
        name=f"rbc_cyl_G{aspect:g}_Ra{rayleigh:g}",
        **overrides,
    )
    cfg.validate()
    return cfg


def _default_dt(rayleigh: float) -> float:
    """A conservative default time step scaling with the expected velocity.

    Free-fall velocities are O(1); boundary-layer refinement tightens the
    CFL limit roughly like Ra^{-1/4} for fixed resolution.
    """
    return float(min(2.0e-2, 0.5 * rayleigh ** (-0.25)))
