"""Case configuration for Rayleigh-Benard simulations.

Non-dimensionalization follows the paper (eq. (1)): lengths by the cell
height ``H``, velocities by the free-fall velocity, temperatures by the
plate temperature difference.  The momentum diffusivity is then
``sqrt(Pr/Ra)``, the thermal diffusivity ``1/sqrt(Ra Pr)`` and buoyancy
enters as ``+T e_z``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sem.mesh import HexMesh

__all__ = ["CaseConfig"]


@dataclass
class CaseConfig:
    """Everything needed to set up a Boussinesq RBC simulation.

    Attributes
    ----------
    mesh:
        The computational mesh (box or cylinder).
    lx:
        GLL points per direction (polynomial degree ``lx - 1``; the paper's
        production runs use degree 7, i.e. ``lx = 8``).
    rayleigh, prandtl:
        The two governing parameters.
    dt:
        Constant time-step size (free-fall units).
    time_order:
        BDF/EXT target order (paper: 3).
    no_slip_labels:
        Boundaries with ``u = 0``.
    temperature_bcs:
        ``label -> value`` Dirichlet map for the temperature (the plates);
        unlisted boundaries are insulated (zero-flux).
    initial_temperature:
        Callable ``(x, y, z) -> T`` for the initial condition; defaults to
        the conductive profile plus a deterministic multi-mode perturbation
        that triggers convection above onset.
    pressure_tol / velocity_tol / temperature_tol:
        Relative tolerances of the three linear solves.
    coarse_iterations:
        Fixed iteration count of the coarse-grid CG (paper: ~10).
    pressure_projection_dim:
        Size of the previous-solutions projection space accelerating the
        pressure solve (0 disables; Neko enables this in production).
    adaptive_cfl:
        When set, the time step adapts to hold the Courant number near
        this target (variable-step BDF/EXT coefficients are used);
        ``dt`` then only sets the initial step, bounded by
        ``[dt_min, dt_max]``.
    dealias:
        Apply 3/2-rule overintegration to advection (paper: yes).
    schwarz_overlap:
        Use the one-layer data-overlap Schwarz variant.
    """

    mesh: HexMesh
    lx: int = 8
    rayleigh: float = 1.0e5
    prandtl: float = 1.0
    dt: float = 1.0e-3
    time_order: int = 3
    no_slip_labels: tuple[str, ...] = ()
    temperature_bcs: dict[str, float] = field(default_factory=dict)
    initial_temperature: object | None = None
    initial_velocity: object | None = None
    pressure_tol: float = 1.0e-5
    velocity_tol: float = 1.0e-9
    temperature_tol: float = 1.0e-9
    coarse_iterations: int = 10
    pressure_projection_dim: int = 8
    adaptive_cfl: float | None = None
    dt_min: float = 1.0e-6
    dt_max: float = 5.0e-2
    dealias: bool = True
    schwarz_overlap: bool = False
    gmres_restart: int = 30
    name: str = "rbc"

    @property
    def viscosity(self) -> float:
        """Non-dimensional momentum diffusivity ``sqrt(Pr/Ra)``."""
        return float(np.sqrt(self.prandtl / self.rayleigh))

    @property
    def conductivity(self) -> float:
        """Non-dimensional thermal diffusivity ``1/sqrt(Ra Pr)``."""
        return float(1.0 / np.sqrt(self.rayleigh * self.prandtl))

    def validate(self) -> None:
        """Raise on obviously inconsistent settings."""
        if self.lx < 3:
            raise ValueError("RBC cases need lx >= 3 (degree >= 2)")
        if self.rayleigh <= 0 or self.prandtl <= 0:
            raise ValueError("Ra and Pr must be positive")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        known = set(self.mesh.boundary_labels())
        for lab in self.no_slip_labels:
            if lab not in known:
                raise ValueError(f"no-slip label {lab!r} not on mesh (has {sorted(known)})")
        for lab in self.temperature_bcs:
            if lab not in known:
                raise ValueError(f"temperature BC label {lab!r} not on mesh")
