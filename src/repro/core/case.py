"""Case configuration for Rayleigh-Benard simulations.

Non-dimensionalization follows the paper (eq. (1)): lengths by the cell
height ``H``, velocities by the free-fall velocity, temperatures by the
plate temperature difference.  The momentum diffusivity is then
``sqrt(Pr/Ra)``, the thermal diffusivity ``1/sqrt(Ra Pr)`` and buoyancy
enters as ``+T e_z``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sem.mesh import HexMesh

__all__ = ["CaseConfig"]


@dataclass
class CaseConfig:
    """Everything needed to set up a Boussinesq RBC simulation.

    Attributes
    ----------
    mesh:
        The computational mesh (box or cylinder).
    lx:
        GLL points per direction (polynomial degree ``lx - 1``; the paper's
        production runs use degree 7, i.e. ``lx = 8``).
    rayleigh, prandtl:
        The two governing parameters.
    dt:
        Constant time-step size (free-fall units).
    time_order:
        BDF/EXT target order (paper: 3).
    no_slip_labels:
        Boundaries with ``u = 0``.
    temperature_bcs:
        ``label -> value`` Dirichlet map for the temperature (the plates);
        unlisted boundaries are insulated (zero-flux).
    initial_temperature:
        Callable ``(x, y, z) -> T`` for the initial condition; defaults to
        the conductive profile plus a deterministic multi-mode perturbation
        that triggers convection above onset.
    pressure_tol / velocity_tol / temperature_tol:
        Relative tolerances of the three linear solves.
    coarse_iterations:
        Fixed iteration count of the coarse-grid CG (paper: ~10).
    pressure_projection_dim:
        Size of the previous-solutions projection space accelerating the
        pressure solve (0 disables).  The default of 20 matches Neko's
        production settings and roughly halves the steady-state GMRES
        iteration count relative to a dimension-8 space.
    adaptive_cfl:
        When set, the time step adapts to hold the Courant number near
        this target (variable-step BDF/EXT coefficients are used);
        ``dt`` then only sets the initial step, bounded by
        ``[dt_min, dt_max]``.
    dealias:
        Apply 3/2-rule overintegration to advection (paper: yes).
    schwarz_overlap:
        Use the one-layer data-overlap Schwarz variant.
    coarse_method:
        Coarse-grid solve strategy: ``"direct"`` (cached sparse LU, the
        fast path) or ``"cg"`` (the paper's fixed-iteration Jacobi-CG).
    smoother_dtype:
        Precision of the Schwarz/FDM smoother: ``"float64"`` or
        ``"float32"`` (mixed precision; guarded by the iteration-count
        fallback band).
    operator_cache:
        Share preconditioner setups through the process-wide operator
        cache (``False`` forces cold builds).
    autotune:
        Benchmark kernel variants at startup and install the winners
        (overridden by an explicit ``tuning_table`` hit).
    tuning_table:
        Optional path to a committed autotuner tuning table consulted
        before (and instead of) a fresh startup sweep.
    """

    mesh: HexMesh
    lx: int = 8
    rayleigh: float = 1.0e5
    prandtl: float = 1.0
    dt: float = 1.0e-3
    time_order: int = 3
    no_slip_labels: tuple[str, ...] = ()
    temperature_bcs: dict[str, float] = field(default_factory=dict)
    initial_temperature: object | None = None
    initial_velocity: object | None = None
    pressure_tol: float = 1.0e-5
    velocity_tol: float = 1.0e-9
    temperature_tol: float = 1.0e-9
    coarse_iterations: int = 10
    pressure_projection_dim: int = 20
    adaptive_cfl: float | None = None
    dt_min: float = 1.0e-6
    dt_max: float = 5.0e-2
    dealias: bool = True
    schwarz_overlap: bool = False
    # Krylov dimension large enough that the pressure solve almost never
    # restarts (a restart discards the built-up subspace and costs extra
    # iterations; measured: ~8% fewer total iterations than restart=30 on
    # the benchmark window).  Memory is (restart+1) pressure-sized vectors.
    gmres_restart: int = 60
    coarse_method: str = "direct"
    smoother_dtype: str = "float64"
    operator_cache: bool = True
    autotune: bool = False
    tuning_table: str | None = None
    name: str = "rbc"

    @property
    def viscosity(self) -> float:
        """Non-dimensional momentum diffusivity ``sqrt(Pr/Ra)``."""
        return float(np.sqrt(self.prandtl / self.rayleigh))

    @property
    def conductivity(self) -> float:
        """Non-dimensional thermal diffusivity ``1/sqrt(Ra Pr)``."""
        return float(1.0 / np.sqrt(self.rayleigh * self.prandtl))

    def validate(self) -> None:
        """Raise on obviously inconsistent settings."""
        if self.lx < 3:
            raise ValueError("RBC cases need lx >= 3 (degree >= 2)")
        if self.rayleigh <= 0 or self.prandtl <= 0:
            raise ValueError("Ra and Pr must be positive")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.coarse_method not in ("cg", "direct"):
            raise ValueError(f"coarse_method must be 'cg' or 'direct', got {self.coarse_method!r}")
        if self.smoother_dtype not in ("float64", "float32"):
            raise ValueError(
                f"smoother_dtype must be 'float64' or 'float32', got {self.smoother_dtype!r}"
            )
        known = set(self.mesh.boundary_labels())
        for lab in self.no_slip_labels:
            if lab not in known:
                raise ValueError(f"no-slip label {lab!r} not on mesh (has {sorted(known)})")
        for lab in self.temperature_bcs:
            if lab not in known:
                raise ValueError(f"temperature BC label {lab!r} not on mesh")
