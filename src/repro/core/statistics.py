"""Flow statistics: Nusselt-number estimators, Reynolds number, energies.

Three independent Nusselt estimators are provided; their mutual agreement
in a statistically steady state is the standard consistency check for RBC
DNS (used heavily in the Ra = 1e15 reference simulations the paper builds
on):

* volume average of the convective + conductive heat flux,
* plate-averaged temperature gradient (bottom / top),
* volume-averaged thermal dissipation rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sem.operators import physical_grad
from repro.sem.quadrature import gll_points_weights
from repro.sem.space import FunctionSpace
from repro.statcheck.contracts import FIELD, contract

__all__ = [
    "facet_integral",
    "facet_area",
    "nusselt_volume",
    "nusselt_plate",
    "nusselt_dissipation",
    "NusseltNumbers",
    "compute_nusselt",
    "reynolds_number",
]


def _facet_quadrature(space: FunctionSpace, e: int, face: int) -> np.ndarray:
    """Surface quadrature weights (dA) on one element face."""
    c = space.coef
    idx = (e, *space.mesh.facet_node_index(face, space.lx))
    axis = {0: "r", 1: "r", 2: "s", 3: "s", 4: "t", 5: "t"}[face]
    # Tangent vectors are the derivatives along the two in-face directions.
    if axis == "r":
        t1 = np.stack([c.dxds[idx], c.dyds[idx], c.dzds[idx]])
        t2 = np.stack([c.dxdt[idx], c.dydt[idx], c.dzdt[idx]])
    elif axis == "s":
        t1 = np.stack([c.dxdr[idx], c.dydr[idx], c.dzdr[idx]])
        t2 = np.stack([c.dxdt[idx], c.dydt[idx], c.dzdt[idx]])
    else:
        t1 = np.stack([c.dxdr[idx], c.dydr[idx], c.dzdr[idx]])
        t2 = np.stack([c.dxds[idx], c.dyds[idx], c.dzds[idx]])
    cross = np.cross(t1, t2, axis=0)
    darea = np.sqrt(np.sum(cross**2, axis=0))
    _, w = gll_points_weights(space.lx)
    w = np.asarray(w)
    return darea * w[:, None] * w[None, :]


def facet_integral(space: FunctionSpace, label: str, field: np.ndarray) -> float:
    """Surface integral of a nodal field over a labelled boundary."""
    total = 0.0
    for e, face in space.mesh.boundary_facets[label]:
        idx = (int(e), *space.mesh.facet_node_index(int(face), space.lx))
        total += float(np.sum(field[idx] * _facet_quadrature(space, int(e), int(face))))
    return total


def facet_area(space: FunctionSpace, label: str) -> float:
    """Total area of a labelled boundary."""
    return facet_integral(space, label, np.ones(space.shape))


def nusselt_volume(
    space: FunctionSpace,
    uz: np.ndarray,
    temperature: np.ndarray,
    rayleigh: float,
    prandtl: float,
) -> float:
    """Volume-flux Nusselt number.

    ``Nu = (<u_z T> - kappa <dT/dz>) / (kappa DeltaT / H)`` with
    ``kappa = 1/sqrt(Ra Pr)`` and ``DeltaT = H = 1`` in free-fall units.
    """
    kappa = 1.0 / np.sqrt(rayleigh * prandtl)
    _, _, dtdz = physical_grad(temperature, space.coef, space.dx)
    flux = space.mean(uz * temperature) - kappa * space.mean(dtdz)
    return flux / kappa


def nusselt_plate(
    space: FunctionSpace,
    temperature: np.ndarray,
    label: str,
    rayleigh: float = None,
    prandtl: float = None,
) -> float:
    """Plate-gradient Nusselt number ``-<dT/dz>_plate / (DeltaT/H)``.

    For the top plate the outward heat flux is ``-dT/dz`` as well (heat
    leaves through the top), so the same expression applies to both plates.
    """
    _, _, dtdz = physical_grad(temperature, space.coef, space.dx)
    area = facet_area(space, label)
    return -facet_integral(space, label, dtdz) / area


def nusselt_dissipation(
    space: FunctionSpace,
    temperature: np.ndarray,
    rayleigh: float = None,
    prandtl: float = None,
) -> float:
    """Thermal-dissipation Nusselt number ``<|grad T|^2> H^2 / DeltaT^2``.

    The exact relation ``Nu = <eps_T> / (kappa DeltaT^2 / H^2)`` holds for
    statistically steady RBC; the diffusivity cancels in free-fall units.
    """
    gx, gy, gz = physical_grad(temperature, space.coef, space.dx)
    return space.mean(gx**2 + gy**2 + gz**2)


@dataclass
class NusseltNumbers:
    """The three estimators plus their spread (a convergence diagnostic)."""

    volume: float
    plate_bottom: float
    plate_top: float
    dissipation: float

    @property
    def mean(self) -> float:
        return 0.25 * (self.volume + self.plate_bottom + self.plate_top + self.dissipation)

    @property
    def spread(self) -> float:
        """Max relative deviation between estimators."""
        vals = [self.volume, self.plate_bottom, self.plate_top, self.dissipation]
        m = self.mean
        if m == 0.0:
            return float("inf")
        return max(abs(v - m) for v in vals) / abs(m)


@contract(uz=FIELD, temperature=FIELD)
def compute_nusselt(
    space: FunctionSpace,
    uz: np.ndarray,
    temperature: np.ndarray,
    rayleigh: float,
    prandtl: float,
    bottom_label: str = "bottom",
    top_label: str = "top",
) -> NusseltNumbers:
    """All Nusselt estimators in one call."""
    return NusseltNumbers(
        volume=nusselt_volume(space, uz, temperature, rayleigh, prandtl),
        plate_bottom=nusselt_plate(space, temperature, bottom_label),
        plate_top=nusselt_plate(space, temperature, top_label),
        dissipation=nusselt_dissipation(space, temperature),
    )


@contract(ux=FIELD, uy=FIELD, uz=FIELD)
def reynolds_number(
    space: FunctionSpace,
    ux: np.ndarray,
    uy: np.ndarray,
    uz: np.ndarray,
    rayleigh: float,
    prandtl: float,
) -> float:
    """Free-fall Reynolds number ``u_rms * sqrt(Ra/Pr)``."""
    urms = np.sqrt(space.mean(ux**2 + uy**2 + uz**2))
    return float(urms * np.sqrt(rayleigh / prandtl))
