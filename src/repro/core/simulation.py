"""The simulation driver: couples fluid and scalar, runs the time loop.

Responsibilities mirror Neko's ``case``/``simulation`` objects: hold the
function space and both schemes, apply the Boussinesq coupling (buoyancy
``+T e_z`` extrapolated together with advection), keep per-region wall-time
accounting, evaluate statistics, and invoke user callbacks (the in-situ
hooks: compression, streaming POD, field output).
"""

from __future__ import annotations

import dataclasses
import time as _time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.case import CaseConfig
from repro.core.fluid import FluidScheme
from repro.core.scalar import ScalarScheme
from repro.core.statistics import NusseltNumbers, compute_nusselt, reynolds_number
from repro.core.timers import RegionTimers
from repro.observability.metrics import MetricsRegistry
from repro.observability.phases import (
    PHASE_GATHER_SCATTER,
    PHASE_INSITU,
    PHASE_STATISTICS,
    PHASE_STEP,
)
from repro.observability.tracer import NULL_TRACER
from repro.sem.space import FunctionSpace
from repro.timeint.bdf_ext import TimeScheme
from repro.timeint.cfl import courant_number
from repro.timeint.variable import VariableTimeScheme

__all__ = ["Simulation", "StepResult"]


@dataclass
class StepResult:
    """Summary of one time step."""

    step: int
    time: float
    cfl: float
    pressure_iterations: int
    velocity_iterations: int
    temperature_iterations: int
    kinetic_energy: float
    divergence: float
    dt: float = 0.0


@dataclass
class StatSample:
    """One statistics sample along the run."""

    time: float
    nusselt: NusseltNumbers
    reynolds: float
    kinetic_energy: float


class Simulation:
    """A Boussinesq RBC simulation assembled from a :class:`CaseConfig`."""

    def __init__(
        self,
        config: CaseConfig,
        tracer=None,
        metrics=None,
        anomalies=None,
        flight=None,
        profiler=None,
    ) -> None:
        config.validate()
        self.config = config
        self.space = FunctionSpace(config.mesh, config.lx)
        # Observability: the tracer defaults to the no-op implementation
        # (uninstrumented runs stay on the pre-observability fast path);
        # the metrics registry is always live -- its per-step cost is a
        # handful of dict updates.  Span names follow the Fig. 4 phase
        # taxonomy: advection, pressure, velocity, temperature,
        # gather_scatter, insitu (see EXPERIMENTS.md).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Optional crash flight recorder and online anomaly detection
        # (repro.observability.fleet); both are no-cost when absent.  An
        # anomaly monitor without its own flight sink inherits ours, so a
        # flagged anomaly lands in the crash bundle's event tail.
        self.flight = flight
        self.anomalies = anomalies
        if anomalies is not None and flight is not None and anomalies.flight is None:
            anomalies.flight = flight
        # Continuous profiler (repro.observability.profile): per-step
        # measured-vs-modeled attribution fed from the region timers and
        # gather--scatter counters already maintained below; absent by
        # default, so the uninstrumented step path is unchanged.
        self.profiler = profiler
        self._last_step_seconds = 0.0
        self.timers = RegionTimers(tracer=self.tracer)
        self.adaptive = config.adaptive_cfl is not None
        self.scheme = (
            VariableTimeScheme(config.time_order)
            if self.adaptive
            else TimeScheme(config.time_order)
        )
        self.dt = config.dt

        # Kernel fast-path setup: consult the committed tuning table (or run
        # the startup autotuner) and fold the winners into the effective
        # config before the schemes build their preconditioners.  The
        # original config object is never mutated.
        self.tuning: dict[str, str] | None = None
        self.tuning_entry = None
        config = self._apply_autotune(config)
        self.config = config

        self.fluid = FluidScheme(self.space, config, self.scheme, self.timers)
        self.scalar = ScalarScheme(
            self.space, config, self.scheme, self.timers, dealiaser=self.fluid.dealiaser
        )
        self.time = 0.0
        self.step_count = 0
        # (cfl, dt) of the last completed step; drives adaptation and is
        # checkpointed so restarts reproduce the dt sequence exactly.
        self.last_cfl: tuple[float, float] | None = None
        self.callbacks: list[Callable[["Simulation"], None]] = []
        self.history: list[StepResult] = []
        self.stat_samples: list[StatSample] = []

        # Initial conditions.
        if config.initial_temperature is not None:
            self.scalar.set_temperature(self.space.interpolate(config.initial_temperature))
        if config.initial_velocity is not None:
            ux, uy, uz = config.initial_velocity(self.space.x, self.space.y, self.space.z)
            self.fluid.set_velocity(
                np.asarray(ux, dtype=np.float64) * np.ones(self.space.shape),
                np.asarray(uy, dtype=np.float64) * np.ones(self.space.shape),
                np.asarray(uz, dtype=np.float64) * np.ones(self.space.shape),
            )

        # Track the mixed-precision guard so trips surface as events/metrics.
        self._precision_fallbacks_seen = 0
        if config.operator_cache:
            from repro.precond.cache import global_cache

            global_cache().attach_metrics(self.metrics)

    def _apply_autotune(self, config: CaseConfig) -> CaseConfig:
        """Resolve the kernel-variant selection for this case.

        Order of precedence: an exact ``(nelem, p)`` hit in the configured
        tuning table, then a fresh startup sweep (``config.autotune``),
        then the safe defaults.  An unreadable table or an entry naming an
        unknown variant falls back with an ``autotune.fallback`` event --
        never an exception.  Returns a config copy with the winning
        ``smoother_dtype``/``operator_cache`` folded in.
        """
        if not (config.autotune or config.tuning_table):
            return config
        from repro.sem.autotune import TuningTable, apply_tuning, autotune

        nelem, p = config.mesh.nelv, config.lx - 1
        entry = None
        if config.tuning_table:
            try:
                table = TuningTable.load(config.tuning_table)
                entry = table.lookup(nelem, p)
            except (OSError, ValueError, KeyError) as exc:
                self.tracer.event(
                    "autotune.fallback", dimension="table", requested=str(config.tuning_table),
                    used="defaults", error=str(exc),
                )
                self.metrics.counter("autotune.fallback").inc()
        if entry is None and config.autotune:
            entry = autotune(nelem, p, tracer=self.tracer)
        self.tuning_entry = entry
        self.tuning = apply_tuning(
            entry.selections if entry is not None else None,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        return dataclasses.replace(
            config,
            smoother_dtype=self.tuning["smoother_dtype"],
            operator_cache=self.tuning["operator_cache"] == "on",
        )

    # -- accessors -------------------------------------------------------------

    @property
    def velocity(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (self.fluid.u[0], self.fluid.v[0], self.fluid.w[0])

    @property
    def temperature(self) -> np.ndarray:
        return self.scalar.temperature

    @property
    def pressure(self) -> np.ndarray:
        return self.fluid.p

    # -- stepping ----------------------------------------------------------------

    def _adapt_dt(self) -> None:
        """Adjust the step size toward the target Courant number."""
        if self.last_cfl is None:
            return
        last_cfl, last_dt = self.last_cfl
        cfl_per_dt = last_cfl / last_dt if last_dt > 0 else 0.0
        if cfl_per_dt <= 0.0:
            new_dt = min(self.dt * 1.2, self.config.dt_max)
        else:
            ideal = self.config.adaptive_cfl / cfl_per_dt
            # Limit the change rate to keep the multistep history healthy.
            new_dt = float(np.clip(ideal, 0.75 * self.dt, 1.2 * self.dt))
            new_dt = float(np.clip(new_dt, self.config.dt_min, self.config.dt_max))
        self.dt = new_dt
        self.fluid.set_dt(new_dt)
        self.scalar.set_dt(new_dt)

    def step(self) -> StepResult:
        """Advance the coupled system one time step."""
        if self.adaptive:
            self._adapt_dt()
            self.scheme.set_step(self.dt)

        gs = self.space.gs
        gs_calls, gs_bytes, gs_seconds = gs.calls, gs.bytes_moved, gs.seconds
        t_step = _time.perf_counter()
        with self.tracer.span(PHASE_STEP, step=self.step_count + 1, sim_time=self.time):
            b = self.space.coef.mass
            zeros = np.zeros(self.space.shape)
            # Buoyancy from the *current* temperature (explicit coupling).
            buoy = (zeros, zeros, b * self.scalar.temperature)

            c_fine = self.fluid.fine_velocity()
            vel_now = self.velocity
            self.scalar.step(vel_now, c_fine=c_fine)
            mons = self.fluid.step(buoy, c_fine=c_fine)

            self.scheme.advance()
            self.step_count += 1
            self.time += self.dt

            ux, uy, uz = self.velocity
            result = StepResult(
                step=self.step_count,
                time=self.time,
                cfl=courant_number(self.space, ux, uy, uz, self.dt),
                dt=self.dt,
                pressure_iterations=mons["pressure"].iterations,
                velocity_iterations=max(
                    mons["velocity_x"].iterations,
                    mons["velocity_y"].iterations,
                    mons["velocity_z"].iterations,
                ),
                temperature_iterations=self.scalar.monitors["temperature"].iterations,
                kinetic_energy=self.fluid.kinetic_energy(),
                divergence=self.fluid.divergence_norm(),
            )
            if self.tracer.enabled:
                # Gather--scatter is accumulated across many tiny dssum
                # calls; surface the per-step total as an aggregate phase
                # span so the Fig. 4 taxonomy is complete in the trace.
                self.tracer.record_span(
                    PHASE_GATHER_SCATTER,
                    gs.seconds - gs_seconds,
                    counters={
                        "calls": gs.calls - gs_calls,
                        "bytes": gs.bytes_moved - gs_bytes,
                    },
                )
                # Timestamped counter samples: these render as metric
                # lanes ("C" events) under the flame chart, putting the
                # CFL/backlog story on the same timeline as the phases.
                self.tracer.sample("sim.cfl", result.cfl)
                self.tracer.sample("sim.dt", result.dt)
                if "insitu.queue_depth" in self.metrics:
                    depth = self.metrics.gauge("insitu.queue_depth").value
                    if np.isfinite(depth):
                        self.tracer.sample("insitu.queue_depth", depth)
        step_seconds = _time.perf_counter() - t_step
        self._last_step_seconds = step_seconds
        self._record_step_metrics(result, step_seconds, gs_calls, gs_bytes, gs_seconds)
        self.history.append(result)
        self.last_cfl = (result.cfl, result.dt)
        return result

    def _record_step_metrics(
        self,
        result: StepResult,
        step_seconds: float,
        gs_calls: int,
        gs_bytes: int,
        gs_seconds: float,
    ) -> None:
        """Fold one step's measurements into the metrics registry."""
        # Runtime import: the bridge pulls repro.resilience, which imports
        # back into repro.core -- fine once everything is initialized,
        # circular at module-import time.
        from repro.observability.bridge import record_solver_monitor

        m = self.metrics
        m.counter("sim.steps").inc()
        m.histogram("sim.step_seconds").record(step_seconds)
        m.gauge("sim.cfl").set(result.cfl)
        m.gauge("sim.dt").set(result.dt)
        m.gauge("sim.kinetic_energy").set(result.kinetic_energy)
        m.gauge("sim.divergence").set(result.divergence)
        gs = self.space.gs
        m.counter("gs.calls").inc(gs.calls - gs_calls)
        m.counter("gs.bytes_moved").inc(gs.bytes_moved - gs_bytes)
        m.counter("gs.seconds").inc(gs.seconds - gs_seconds)
        pf = self.fluid.precision_fallbacks
        if pf > self._precision_fallbacks_seen:
            self.tracer.event(
                "autotune.precision_fallback", step=result.step, count=pf
            )
            m.counter("autotune.precision_fallback").inc(pf - self._precision_fallbacks_seen)
            self._precision_fallbacks_seen = pf
        for mon in (*self.fluid.monitors.values(), *self.scalar.monitors.values()):
            record_solver_monitor(mon, m)

    def run(
        self,
        n_steps: int | None = None,
        end_time: float | None = None,
        callback_interval: int = 0,
        stats_interval: int = 0,
        print_interval: int = 0,
    ) -> list[StepResult]:
        """Run the time loop until ``n_steps`` or ``end_time``.

        ``callback_interval`` / ``stats_interval`` control how often the
        registered in-situ callbacks fire and statistics are sampled.
        """
        if n_steps is None and end_time is None:
            raise ValueError("give n_steps or end_time")
        results = []
        while True:
            if n_steps is not None and len(results) >= n_steps:
                break
            if end_time is not None and self.time >= end_time - 1e-12:
                break
            res = self.step()
            results.append(res)
            if self.flight is not None:
                self.flight.record_step(self, res)
            if self.anomalies is not None:
                self.anomalies.observe_step(self, res, step_seconds=self._last_step_seconds)
            if self.profiler is not None:
                self.profiler.observe_step(self, res, step_seconds=self._last_step_seconds)
            if stats_interval and self.step_count % stats_interval == 0:
                with self.tracer.span(PHASE_STATISTICS, step=self.step_count):
                    self.sample_statistics()
            if callback_interval and self.step_count % callback_interval == 0:
                with self.tracer.span(PHASE_INSITU, step=self.step_count):
                    for cb in self.callbacks:
                        cb(self)
            if print_interval and self.step_count % print_interval == 0:
                print(
                    f"step {res.step:6d}  t={res.time:.4f}  CFL={res.cfl:.3f}  "
                    f"p-iters={res.pressure_iterations}  KE={res.kinetic_energy:.4e}"
                )
            quantity = self._nonfinite_quantity(res)
            if quantity is not None:
                message = (
                    f"simulation diverged at step {res.step} (t = {res.time:.4f}): "
                    f"{quantity} is not finite; CFL was {res.cfl:.2f} -- reduce dt"
                )
                if self.flight is not None:
                    # Dump the black box *before* raising: the exception may
                    # be swallowed by a resilient driver that rolls back.
                    self.flight.record_event(
                        "flight.divergence",
                        step=res.step,
                        time=res.time,
                        detail=message,
                        quantity=quantity,
                    )
                    self.flight.dump(reason="divergence")
                raise FloatingPointError(message)
        return results

    def _nonfinite_quantity(self, res: StepResult) -> str | None:
        """Name of the first non-finite monitored quantity, if any.

        Guards the kinetic energy, the divergence norm and the full
        temperature field: a NaN can enter through the scalar solve alone
        (buoyancy feeds it back one step later), so checking only the
        kinetic energy would report the blow-up a step late or not at all.
        """
        if not np.isfinite(res.kinetic_energy):
            return "kinetic energy"
        if not np.isfinite(res.divergence):
            return "divergence"
        if not np.all(np.isfinite(self.scalar.temperature)):
            return "temperature field"
        return None

    # -- statistics ----------------------------------------------------------------

    def sample_statistics(self) -> StatSample:
        """Evaluate and record the Nusselt/Reynolds sample at the current time."""
        ux, uy, uz = self.velocity
        nu = compute_nusselt(
            self.space, uz, self.temperature, self.config.rayleigh, self.config.prandtl
        )
        sample = StatSample(
            time=self.time,
            nusselt=nu,
            reynolds=reynolds_number(
                self.space, ux, uy, uz, self.config.rayleigh, self.config.prandtl
            ),
            kinetic_energy=self.fluid.kinetic_energy(),
        )
        self.stat_samples.append(sample)
        return sample

    def time_averaged_nusselt(self, discard_fraction: float = 0.5) -> NusseltNumbers:
        """Average the recorded Nusselt samples, discarding the transient."""
        if not self.stat_samples:
            raise RuntimeError("no statistics samples recorded; run with stats_interval")
        n0 = int(len(self.stat_samples) * discard_fraction)
        samples = self.stat_samples[n0:] or self.stat_samples[-1:]
        return NusseltNumbers(
            volume=float(np.mean([s.nusselt.volume for s in samples])),
            plate_bottom=float(np.mean([s.nusselt.plate_bottom for s in samples])),
            plate_top=float(np.mean([s.nusselt.plate_top for s in samples])),
            dissipation=float(np.mean([s.nusselt.dissipation for s in samples])),
        )
