"""The Boussinesq temperature scalar: advection-diffusion with BDF/EXT.

Dirichlet plates (hot bottom, cold top) enter through lifting: the solve is
performed for the homogeneous correction and the boundary data added back,
so the CG operator stays symmetric.  Insulated side walls are natural
(zero-flux) conditions and need no action.
"""

from __future__ import annotations

import numpy as np

from repro.core.case import CaseConfig
from repro.core.timers import RegionTimers
from repro.observability.phases import PHASE_TEMPERATURE
from repro.precond.jacobi import JacobiPrecond
from repro.sem.bc import DirichletBC
from repro.sem.dealias import Dealiaser
from repro.sem.operators import ax_helmholtz, convective_term_collocated
from repro.sem.space import FunctionSpace
from repro.solvers.cg import ConjugateGradient
from repro.solvers.monitor import SolverMonitor
from repro.timeint.bdf_ext import TimeScheme

__all__ = ["ScalarScheme"]


class ScalarScheme:
    """Temperature integrator sharing the fluid's function space."""

    def __init__(
        self,
        space: FunctionSpace,
        config: CaseConfig,
        scheme: TimeScheme,
        timers: RegionTimers | None = None,
        dealiaser: Dealiaser | None = None,
    ) -> None:
        self.space = space
        self.config = config
        self.scheme = scheme
        self.timers = timers if timers is not None else RegionTimers()
        self.kappa = config.conductivity
        self.dt = config.dt
        self.dealiaser = dealiaser

        # Combined Dirichlet data over all temperature boundaries.
        self.bcs = [
            DirichletBC(space, [lab], val) for lab, val in config.temperature_bcs.items()
        ]
        self.mask = np.ones(space.shape)
        self.lift = np.zeros(space.shape)
        for bc in self.bcs:
            self.mask *= bc.mask
            np.copyto(self.lift, bc.values, where=bc.mask == 0.0)

        self.t_hist = [space.zeros() for _ in range(3)]
        self.f_hist: list[np.ndarray] = []
        self._b0: float | None = None
        self._precond: JacobiPrecond | None = None
        self.monitors: dict[str, SolverMonitor] = {}

    @property
    def temperature(self) -> np.ndarray:
        """The current temperature field."""
        return self.t_hist[0]

    def set_temperature(self, t: np.ndarray) -> None:
        """Initialize all history levels (boundary values enforced)."""
        t = t.copy()
        np.copyto(t, self.lift, where=self.mask == 0.0)
        for lev in self.t_hist:
            lev[:] = t

    def prime_history(
        self,
        temperature_at,
        weak_forcing_at,
        t0: float,
        dt: float,
    ) -> None:
        """Fill the multistep histories from known solution/forcing functions.

        ``temperature_at(t)`` and ``weak_forcing_at(t)`` (the mass-weighted
        explicit term, advection included) are evaluated at ``t0 - j dt``;
        the order ramp is then skipped so the very first step runs at the
        scheme's target order.  Used by restart paths and the MMS
        temporal-order studies, where the ramp's low-order start would
        otherwise dominate the measured convergence rate.
        """
        for j in range(len(self.t_hist)):
            self.t_hist[j][:] = temperature_at(t0 - j * dt)
        self.f_hist = [
            weak_forcing_at(t0 - j * dt)
            for j in range(1, self.scheme.target_order)
        ]
        self.scheme.jump_start()

    def _amul_full(self, u: np.ndarray, h2: float) -> np.ndarray:
        return self.space.gs.add(
            ax_helmholtz(u, self.space.coef, self.space.dx, self.kappa, h2)
        )

    def set_dt(self, dt: float) -> None:
        """Change the step size (adaptive stepping); operators refresh lazily."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = dt

    def _refresh(self, b0: float) -> None:
        if self._b0 == (b0, self.dt):
            return
        h2 = b0 / self.dt
        if self._precond is None:
            self._precond = JacobiPrecond(self.space, self.kappa, h2, mask=self.mask)
        else:
            self._precond.update(self.kappa, h2)

        def amul(u: np.ndarray) -> np.ndarray:
            return self._amul_full(u, h2) * self.mask

        self._solver = ConjugateGradient(
            amul,
            self.space.gs.dot,
            precond=self._precond,
            tol=self.config.temperature_tol,
            maxiter=500,
            name="temperature",
            tracer=self.timers.tracer,
        )
        self._b0 = (b0, self.dt)

    def step(
        self,
        velocity: tuple[np.ndarray, np.ndarray, np.ndarray],
        c_fine: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
        source_weak: np.ndarray | None = None,
    ) -> dict[str, SolverMonitor]:
        """Advance the temperature one step, advected by ``velocity``."""
        space = self.space
        b0, bs = self.scheme.bdf
        ext = self.scheme.ext
        dt = self.dt
        self._refresh(b0)

        with self.timers.region(PHASE_TEMPERATURE):
            cx, cy, cz = velocity
            if self.dealiaser is not None:
                adv = self.dealiaser.convect_weak(cx, cy, cz, self.t_hist[0], c_fine=c_fine)
            else:
                conv = convective_term_collocated(
                    cx, cy, cz, self.t_hist[0], space.coef, space.dx
                )
                adv = space.coef.mass * conv
            f = -adv
            if source_weak is not None:
                f = f + source_weak
            self.f_hist.insert(0, f)
            del self.f_hist[3:]

            rhs = np.zeros(space.shape)
            for q, aq in enumerate(ext):
                if q < len(self.f_hist):
                    rhs += aq * self.f_hist[q]
            for j, bj in enumerate(bs):
                rhs += (bj / dt) * space.coef.mass * self.t_hist[j]

            # Lifting of the inhomogeneous Dirichlet data.
            h2 = b0 / dt
            bvec = (space.gs.add(rhs) - self._amul_full(self.lift, h2)) * self.mask
            guess = (self.t_hist[0] - self.lift) * self.mask
            theta, mon = self._solver.solve(bvec, x0=guess)
            t_new = theta * self.mask + self.lift
            self.t_hist.insert(0, t_new)
            del self.t_hist[3:]

        self.monitors = {"temperature": mon}
        return self.monitors
