"""Hybrid Schwarz multigrid: the paper's pressure preconditioner (eq. (3)).

    M0^{-1} = R0^T A0^{-1} R0 + sum_k R_k^T A~_k^{-1} R_k

Additively combines the vertex-space coarse correction with per-level
additive Schwarz smoothers (the fine solution space plus optional
intermediate polynomial levels).  The decisive structural property --
exploited by the task-overlap schedule of Section 5.3 and by the GPU
simulator -- is that the coarse term and the Schwarz term are *independent*:
:meth:`apply_parts` exposes them separately so they can run concurrently,
while :meth:`__call__` is the serial reference composition.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.precond.cache import OperatorCache
from repro.precond.coarse import CoarseGridSolver
from repro.precond.schwarz import SchwarzSmoother
from repro.sem.basis import lagrange_interpolation_matrix
from repro.sem.dealias import interp3, interp3_transpose
from repro.sem.quadrature import gll_points_weights
from repro.sem.space import FunctionSpace

__all__ = ["HybridSchwarzMultigrid", "IterationGuard"]


@dataclass
class _Timing:
    """Cumulative wall time spent in the two independent parts.

    ``per_apply`` keeps only the most recent samples (bounded deque):
    the preconditioner is applied once per Krylov iteration for the whole
    run, and an unbounded list would grow without limit.
    """

    coarse: float = 0.0
    schwarz: float = 0.0
    applications: int = 0
    per_apply: deque[tuple[float, float]] = field(
        default_factory=lambda: deque(maxlen=1024)
    )


@dataclass
class IterationGuard:
    """Fallback guard for the mixed-precision smoother.

    Watches the outer-solver iteration counts while the float32 smoother
    is active.  The best count seen so far is the *reference*; a solve
    whose count exceeds ``reference * (1 + band)`` scores a strike, and
    ``patience`` consecutive strikes trip the guard (:meth:`observe`
    returns ``True`` exactly once, at the trip).  A count back inside the
    band resets the strikes.  Once tripped the guard stays tripped -- the
    preconditioner rebuilds its smoothers in float64 and the guard only
    records history from then on.
    """

    band: float = 0.2
    patience: int = 3
    reference: int | None = None
    strikes: int = 0
    tripped: bool = False
    history: list[int] = field(default_factory=list)

    def observe(self, iterations: int) -> bool:
        """Record one solve's iteration count; ``True`` when the guard trips."""
        n = int(iterations)
        self.history.append(n)
        if self.tripped:
            return False
        if self.reference is None or n < self.reference:
            self.reference = n
        if n > self.reference * (1.0 + self.band):
            self.strikes += 1
            if self.strikes >= self.patience:
                self.tripped = True
                return True
        else:
            self.strikes = 0
        return False


class HybridSchwarzMultigrid:
    """Two-(or multi-)level additive Schwarz multigrid preconditioner.

    Parameters
    ----------
    space:
        The pressure function space.
    mask:
        Optional Dirichlet mask on the pressure (``None`` for the standard
        pure-Neumann pressure problem).
    coarse_iterations:
        Fixed CG iteration count of the coarse solve (``coarse_method="cg"``).
    mid_orders:
        Optional intermediate polynomial orders (``lx`` values) inserted
        between the fine level and the vertex space, each contributing an
        additional additive Schwarz term (the general k-level form).
    smoother_dtype:
        Precision of the Schwarz/FDM smoother solves.  ``np.float32``
        activates the mixed-precision fast path with an
        :class:`IterationGuard`: feed outer iteration counts to
        :meth:`observe_iterations` and the preconditioner rebuilds its
        smoothers in float64 when convergence regresses beyond the band.
    coarse_method:
        ``"direct"`` (cached sparse LU, the production default here) or
        ``"cg"`` (the paper's fixed-iteration configuration).
    cache:
        Operator-cache handle shared by all level setups (``None`` =
        process-wide cache).
    """

    def __init__(
        self,
        space: FunctionSpace,
        mask: np.ndarray | None = None,
        coarse_iterations: int = 10,
        mid_orders: tuple[int, ...] = (),
        overlap: bool = False,
        smoother_dtype: np.dtype | str | type = np.float64,
        coarse_method: str = "direct",
        cache: OperatorCache | bool | None = None,
        guard_band: float = 0.2,
        guard_patience: int = 3,
    ) -> None:
        self.space = space
        self.mask = mask
        self.overlap = overlap
        self.smoother_dtype = np.dtype(smoother_dtype)
        self._cache = cache
        self._mid_orders = tuple(mid_orders)
        self.coarse = CoarseGridSolver(
            space,
            iterations=coarse_iterations,
            mask=mask,
            method=coarse_method,
            cache=cache,
        )
        self._build_smoothers(self.smoother_dtype)
        self.guard: IterationGuard | None = (
            IterationGuard(band=guard_band, patience=guard_patience)
            if self.smoother_dtype == np.dtype(np.float32)
            else None
        )

        self.timing = _Timing()

    def _build_smoothers(self, dtype: np.dtype) -> None:
        """(Re)build the fine and mid-level smoothers at ``dtype``."""
        space, mask, cache = self.space, self.mask, self._cache
        self.schwarz = SchwarzSmoother(
            space, mask=mask, overlap=self.overlap, dtype=dtype, cache=cache
        )
        self.mid_levels: list[tuple[FunctionSpace, SchwarzSmoother, np.ndarray]] = []
        fine_pts, _ = gll_points_weights(space.lx)
        for lxm in self._mid_orders:
            if not (2 < lxm < space.lx):
                raise ValueError(
                    f"mid level lx={lxm} must satisfy 2 < lx < {space.lx}"
                )
            mid_space = FunctionSpace(space.mesh, lxm)
            mid_mask = None
            if mask is not None:
                # Re-derive the mask on the mid space from the same labels is
                # not possible here (labels are not stored); restrict by
                # interpolating and thresholding instead.
                # statcheck: ignore[backend-purity] -- constructor: levels built once per case
                jm = lagrange_interpolation_matrix(np.asarray(mid_space.points), space.lx)
                mid_mask = (interp3(mask, jm) > 0.999).astype(np.float64)
                mid_mask = mid_space.gs.min(mid_mask)
            smoother = SchwarzSmoother(mid_space, mask=mid_mask, dtype=dtype, cache=cache)
            # statcheck: ignore[backend-purity] -- constructor: levels built once per case
            j_m2f = lagrange_interpolation_matrix(np.asarray(fine_pts), lxm)
            self.mid_levels.append((mid_space, smoother, j_m2f))

    def observe_iterations(self, iterations: int) -> bool:
        """Feed one outer-solve iteration count to the mixed-precision guard.

        Returns ``True`` exactly when this observation trips the guard, in
        which case the smoothers have just been rebuilt in float64 (the
        caller should log/export the ``autotune.fallback`` event).  A
        float64 preconditioner has no guard and always returns ``False``.
        """
        if self.guard is None:
            return False
        if self.guard.observe(iterations):
            self.smoother_dtype = np.dtype(np.float64)
            self._build_smoothers(self.smoother_dtype)
            return True
        return False

    # -- the two independent parts -----------------------------------------

    def coarse_part(self, r: np.ndarray) -> np.ndarray:
        """``R0^T A0^{-1} R0 r`` -- the latency-bound coarse correction."""
        return self.coarse(r)

    def schwarz_part(self, r: np.ndarray) -> np.ndarray:
        """``sum_k R_k^T A~_k^{-1} R_k r`` -- the bandwidth-bound smoothers."""
        z = self.schwarz(r)
        for mid_space, smoother, j_m2f in self.mid_levels:
            # statcheck: ignore[hot-loop-allocation] -- one allocation per mid level (<= 2), not per element
            rm = mid_space.gs.add(interp3_transpose(r, j_m2f))
            zm = smoother(rm)
            # statcheck: ignore[hot-loop-allocation] -- one allocation per mid level (<= 2), not per element
            z += interp3(mid_space.gs.average(zm), j_m2f)
        return z

    def apply_parts(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Both parts, timed separately (they are data-independent).

        This is the decomposition the overlapped schedule launches on two
        streams; here the parts run sequentially but their independence is
        what the DES-based Fig. 2 study exploits.
        """
        t0 = time.perf_counter()
        zc = self.coarse_part(r)
        t1 = time.perf_counter()
        zs = self.schwarz_part(r)
        t2 = time.perf_counter()
        self.timing.coarse += t1 - t0
        self.timing.schwarz += t2 - t1
        self.timing.applications += 1
        self.timing.per_apply.append((t1 - t0, t2 - t1))
        return zc, zs

    def __call__(self, r: np.ndarray) -> np.ndarray:
        """Serial composition ``z = coarse_part(r) + schwarz_part(r)``."""
        zc, zs = self.apply_parts(r)
        z = zc + zs
        if self.mask is not None:
            z *= self.mask
        return z

    def kernel_inventory(self, n_elements: int | None = None) -> dict[str, list[tuple[str, int]]]:
        """Per-part kernel sequences for the GPU simulator."""
        return {
            "coarse": self.coarse.kernel_inventory(n_elements),
            "schwarz": self.schwarz.kernel_inventory(n_elements),
        }
