"""Additive overlapping Schwarz smoother (the fine level of eq. (3)).

Applies the per-element FDM inverse to the residual, combines the
overlapping contributions additively with counting weights and restores
C^0 continuity with a gather--scatter sum.

Two variants are provided:

* ``overlap=False`` (default): zero-Dirichlet ghost caps one grid spacing
  outside the element and no neighbour data; one tensor solve on ``lx^3``
  arrays.  Empirically the better conditioned of the two variants here
  (all eigenvalues of ``M^{-1} A`` positive, condition number independent
  of the element count).
* ``overlap=True``: the classic one-layer overlapping Schwarz.  Each
  element's local domain is extended by one grid point into its face
  neighbours; the residual at those ghost points is *real neighbour data*,
  gathered with the extrude/dssum/subtract-own trick that Nek5000 and Neko
  use (write your own depth-1 plane onto the shared face, dssum, subtract
  your contribution -- what remains is the neighbour's depth-1 value), and
  the local ghost corrections are returned to the neighbours through the
  transpose exchange.  Ghost values along extension edges/corners are
  zeroed, as in Nek5000.
"""

from __future__ import annotations

import numpy as np

from repro.precond.cache import CacheKey, OperatorCache, resolve_cache
from repro.precond.fdm import FastDiagonalization
from repro.sem.space import FunctionSpace

__all__ = ["SchwarzSmoother"]


class SchwarzSmoother:
    """One additive-Schwarz application ``z = sum_k R_k^T A_k^{-1} R_k r``.

    Parameters
    ----------
    space:
        Function space of the level this smoother acts on.
    mask:
        Optional Dirichlet mask applied before and after the local solves.
    damping:
        Scales the correction; with counting weights a value near 1 is
        appropriate for the Poisson problem.
    overlap:
        Use the one-layer data overlap (see module docstring).
    dtype:
        Precision of the local FDM solves (``np.float32`` for the
        mixed-precision smoother); the exchange and weighting stay float64.
    cache:
        Operator-cache handle forwarded to the FDM setup and used for the
        overlap counting weights (``None`` = process-wide cache).
    """

    def __init__(
        self,
        space: FunctionSpace,
        mask: np.ndarray | None = None,
        damping: float = 1.0,
        overlap: bool = False,
        dtype: np.dtype | str | type = np.float64,
        cache: OperatorCache | bool | None = None,
    ) -> None:
        self.space = space
        self.mask = mask
        self.damping = damping
        self.overlap = overlap
        self.dtype = np.dtype(dtype)
        self.fdm = FastDiagonalization(space, overlap=overlap, dtype=dtype, cache=cache)
        # Counting weights: each unique dof receives the average of its
        # (possibly overlapping) local solutions.  With overlap, the count
        # includes the ghost-return contributions and is computed
        # empirically by pushing an indicator field through the exchange
        # (Nek5000's ``schwarz_wt`` plays the same role).  The push is a
        # pure function of the connectivity, so it is cached.
        if overlap:
            key = CacheKey.for_space(space, "schwarz_weight[overlap=True]")
            self._weight = resolve_cache(cache).get_or_build(key, self._build_overlap_weight)
            self._sqrt_weight = None
        else:
            self._weight = 1.0 / space.gs.multiplicity
            # Split the counting weight symmetrically around the local
            # solves (Nek5000's ``schwarz_wt`` does the same): the smoother
            # becomes W^{1/2} (sum_k R_k^T A_k^{-1} R_k) W^{1/2}, which is
            # symmetric as an operator and measurably better conditioned
            # than the one-sided post-weighting -- ~12% fewer GMRES
            # iterations on the pure-Neumann pressure problem.
            self._sqrt_weight = np.sqrt(self._weight)
        # Final dssum averages duplicated dofs.
        self._post = 1.0 / space.gs.multiplicity if overlap else None

    def _build_overlap_weight(self) -> np.ndarray:
        ind = self._extended_residual(np.ones(self.space.shape))
        z1 = ind[:, 1:-1, 1:-1, 1:-1].copy()
        self._return_ghosts(z1, ind)
        return 1.0 / z1

    # -- overlap data exchange ----------------------------------------------

    def _extended_residual(self, r: np.ndarray) -> np.ndarray:
        """Extend ``r`` by one ghost layer filled with neighbour data.

        For each of the three tensor directions: write the depth-1 plane
        onto the face, dssum, subtract the own contribution.  Face-interior
        nodes have exactly two duplicates so the remainder is the (single)
        neighbour's depth-1 residual; face-edge nodes mix several neighbours
        and are zeroed, matching Nek5000's treatment of extension edges.
        """
        gs = self.space.gs
        nelv, lx = r.shape[0], r.shape[-1]
        lxe = lx + 2
        re = np.zeros((nelv, lxe, lxe, lxe))
        re[:, 1:-1, 1:-1, 1:-1] = r

        # Scratch plane buffer hoisted out of the axis loop: this runs once
        # per preconditioner application, so the smoother must not allocate
        # per axis.
        w = np.empty_like(r)
        for axis in (1, 2, 3):
            w.fill(0.0)
            lo = [slice(None)] * 4
            hi = [slice(None)] * 4
            lo_in = [slice(None)] * 4
            hi_in = [slice(None)] * 4
            lo[axis], hi[axis] = 0, lx - 1
            lo_in[axis], hi_in[axis] = 1, lx - 2
            w[tuple(lo)] = r[tuple(lo_in)]
            w[tuple(hi)] = r[tuple(hi_in)]
            wa = gs.add(w)
            ghost_lo = wa[tuple(lo)] - w[tuple(lo)]
            ghost_hi = wa[tuple(hi)] - w[tuple(hi)]
            # Zero the edge rings of each ghost plane.
            for plane in (ghost_lo, ghost_hi):
                plane[:, 0, :] = 0.0
                plane[:, -1, :] = 0.0
                plane[:, :, 0] = 0.0
                plane[:, :, -1] = 0.0
            dst_lo = [slice(None), slice(1, -1), slice(1, -1), slice(1, -1)]
            dst_hi = [slice(None), slice(1, -1), slice(1, -1), slice(1, -1)]
            dst_lo[axis] = 0
            dst_hi[axis] = lxe - 1
            re[tuple(dst_lo)] = ghost_lo
            re[tuple(dst_hi)] = ghost_hi
        return re

    def _return_ghosts(self, z: np.ndarray, ze: np.ndarray) -> None:
        """Add each element's ghost-layer solution to its neighbours.

        Transpose of :meth:`_extended_residual`: the correction an element
        computed at its ghost points belongs to the neighbour's depth-1
        nodes.  Transfer with the same face/dssum/subtract-own trick.
        """
        gs = self.space.gs
        lx = z.shape[-1]
        w = np.empty_like(z)  # scratch buffer shared across the axis loop
        # Ghost-plane scratch: the extracted planes have the same
        # (nelv, lx, lx) shape for every axis, so two buffers serve all
        # three passes instead of six fresh copies per application.
        g_lo = np.empty((z.shape[0], lx, lx), dtype=ze.dtype)
        g_hi = np.empty_like(g_lo)
        for axis in (1, 2, 3):
            src_lo = [slice(None), slice(1, -1), slice(1, -1), slice(1, -1)]
            src_hi = [slice(None), slice(1, -1), slice(1, -1), slice(1, -1)]
            src_lo[axis] = 0
            src_hi[axis] = lx + 1
            g_lo[...] = ze[tuple(src_lo)]
            g_hi[...] = ze[tuple(src_hi)]
            for plane in (g_lo, g_hi):
                plane[:, 0, :] = 0.0
                plane[:, -1, :] = 0.0
                plane[:, :, 0] = 0.0
                plane[:, :, -1] = 0.0
            w.fill(0.0)
            lo = [slice(None)] * 4
            hi = [slice(None)] * 4
            lo_in = [slice(None)] * 4
            hi_in = [slice(None)] * 4
            lo[axis], hi[axis] = 0, lx - 1
            lo_in[axis], hi_in[axis] = 1, lx - 2
            w[tuple(lo)] = g_lo
            w[tuple(hi)] = g_hi
            wa = gs.add(w)
            z[tuple(lo_in)] += wa[tuple(lo)] - w[tuple(lo)]
            z[tuple(hi_in)] += wa[tuple(hi)] - w[tuple(hi)]

    # -- application ----------------------------------------------------------

    def __call__(self, r: np.ndarray) -> np.ndarray:
        """Apply the smoother to an (assembled) residual."""
        if self.mask is not None:
            r = r * self.mask
        if self.overlap:
            re = self._extended_residual(r)
            ze = self.fdm.solve(re)
            z = ze[:, 1:-1, 1:-1, 1:-1].copy()
            self._return_ghosts(z, ze)
            z *= self._weight
            z = self.space.gs.add(z)
            z *= self._post
        else:
            z = self.fdm.solve(self._sqrt_weight * r)
            z *= self._sqrt_weight
            z = self.space.gs.add(z)
        if self.mask is not None:
            z *= self.mask
        if self.damping != 1.0:
            z *= self.damping
        return z

    def kernel_inventory(self, n_elements: int | None = None) -> list[tuple[str, int]]:
        """Kernel launch sequence of one application, for the GPU simulator.

        Returns ``(kernel_name, flop-ish size)`` tuples; the DES assigns
        durations from the machine model.  ``n_elements`` overrides the
        element count (used when modelling a production-size mesh).
        """
        ne = self.space.nelv if n_elements is None else n_elements
        lx = self.space.lx + (2 if self.overlap else 0)
        work = ne * lx**4  # tensor contraction cost scale
        seq: list[tuple[str, int]] = [("schwarz_mask", ne * lx**3)]
        if self.overlap:
            seq += [("schwarz_extrude", ne * lx**2 * 6), ("gs_extrude", ne * lx**2 * 6)]
        seq += [
            ("fdm_apply_st", 3 * work),
            ("fdm_scale", ne * lx**3),
            ("fdm_apply_s", 3 * work),
            ("schwarz_weight", ne * lx**3),
            ("gs_local", ne * lx**2 * 6),
            ("schwarz_mask2", ne * lx**3),
        ]
        return seq
