"""Process-wide operator/factorization cache for preconditioner setups.

The Schwarz-family preconditioners front-load real work: the 1-D
generalized eigendecompositions of the FDM, the per-element eigenvalue
tensors, the overlap counting weights and the coarse-grid factorization
are all pure functions of the discretization -- ``(mesh geometry, p)`` --
yet the seed implementation rebuilt them for every
:class:`~repro.precond.hsmg.HybridSchwarzMultigrid` instance.  One
simulation hides that behind the time loop; a sweep service running many
solves on the same mesh (ROADMAP item 3) pays it per job.

This module provides the factorization-cache pattern of Firedrake's
``FDMPC`` (see SNIPPETS.md): a process-wide LRU cache keyed on

    (mesh_hash, p, operator, dtype)

where ``mesh_hash`` fingerprints the *actual nodal geometry* (SHA-256 of
the GLL coordinate bytes), so any mesh perturbation -- a single corner
moved by one ulp -- produces a different key and can never alias a cached
factorization (collide-proofness is part of the cache-correctness test
suite).  Builders are deterministic, so a cache hit returns operators
bitwise identical to a cold build; entries are immutable (ndarray
buffers are marked read-only) and eviction only drops the cache's own
reference -- objects holding evicted entries keep working, which is what
makes a capacity cap safe under in-flight solves.

Observability: hits/misses/evictions/build seconds are tracked per cache
and exported through the ``cache.*`` metric family (see
:mod:`repro.observability.phases`); :func:`attach_metrics` mirrors the
counters into a :class:`~repro.observability.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from time import perf_counter
from typing import Any

import numpy as np

__all__ = [
    "CacheKey",
    "OperatorCache",
    "array_signature",
    "space_signature",
    "mask_fingerprint",
    "global_cache",
    "resolve_cache",
    "reset_global_cache",
]


def array_signature(*arrays: np.ndarray) -> str:
    """SHA-256 fingerprint of the raw bytes of one or more arrays.

    Shapes and dtypes are folded in so ``(2, 3)`` and ``(3, 2)`` views of
    the same buffer cannot collide.
    """
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a)  # statcheck: ignore[backend-purity] -- setup-time cache-key hashing
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def space_signature(space: Any) -> str:
    """Geometry fingerprint of a :class:`~repro.sem.space.FunctionSpace`.

    Hashes the GLL nodal coordinates (which capture the mesh, any curved
    element maps and the polynomial grid), the element count and the
    global dof count (which captures periodic identification: a periodic
    and a non-periodic box share coordinates but not connectivity).  The
    result is memoized on the space instance -- the hash walks a few
    hundred kilobytes and must not run once per preconditioner build.
    """
    cached = getattr(space, "_cache_signature", None)
    if cached is not None:
        return str(cached)
    h = hashlib.sha256()
    h.update(array_signature(space.x, space.y, space.z).encode())
    h.update(f"lx={space.lx};nelv={space.nelv};ndofs={space.n_dofs}".encode())
    sig = h.hexdigest()
    space._cache_signature = sig
    return sig


def mask_fingerprint(mask: np.ndarray | None) -> str:
    """Short fingerprint of an optional Dirichlet mask (``none`` when absent)."""
    if mask is None:
        return "none"
    return array_signature(np.asarray(mask))[:16]


@dataclass(frozen=True)
class CacheKey:
    """The cache key: discretization signature x operator x precision."""

    mesh_hash: str
    p: int
    operator: str
    dtype: str

    @classmethod
    def for_space(
        cls, space: Any, operator: str, dtype: np.dtype | str | type = np.float64
    ) -> "CacheKey":
        return cls(
            mesh_hash=space_signature(space),
            p=int(space.lx) - 1,
            operator=operator,
            dtype=str(np.dtype(dtype)),
        )


def _freeze(value: Any) -> Any:
    """Mark every ndarray reachable in ``value`` read-only (shallow walk).

    Cached entries are shared across preconditioner instances; an
    accidental in-place update in one solve would silently corrupt every
    other holder.  Read-only buffers turn that bug into an immediate
    ``ValueError``.
    """
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _freeze(item)
    elif isinstance(value, dict):
        for item in value.values():
            _freeze(item)
    return value


class OperatorCache:
    """Bounded, thread-safe LRU cache of operator/factorization setups.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is
        evicted beyond it.  Eviction drops only the cache's reference --
        live preconditioners holding the entry are unaffected.
    enabled:
        When ``False`` every lookup is a miss and nothing is stored
        (the autotuner benchmarks this configuration as the ``cache=off``
        variant).
    """

    def __init__(self, capacity: int = 64, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self._entries: OrderedDict[CacheKey, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.build_seconds = 0.0
        self._metrics: Any | None = None

    # -- core ----------------------------------------------------------------

    def get_or_build(self, key: CacheKey, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building (and storing) on miss."""
        if self.enabled:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._publish()
                    return self._entries[key]
        t0 = perf_counter()
        value = _freeze(builder())
        self.build_seconds += perf_counter() - t0
        with self._lock:
            self.misses += 1
            if self.enabled:
                # A concurrent builder may have won the race; keep the
                # stored entry so every holder shares one buffer set.
                if key not in self._entries:
                    self._entries[key] = value
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.evictions += 1
                value = self._entries[key]
            self._publish()
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop all entries (counters are kept; use :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.build_seconds = 0.0

    # -- reporting -------------------------------------------------------------

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def report(self) -> dict[str, Any]:
        """JSON-ready snapshot (the CI artifact format)."""
        return {
            "capacity": self.capacity,
            "enabled": self.enabled,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
            "build_seconds": self.build_seconds,
            "keys": [
                {
                    "mesh_hash": k.mesh_hash[:12],
                    "p": k.p,
                    "operator": k.operator,
                    "dtype": k.dtype,
                }
                for k in self._entries
            ],
        }

    def attach_metrics(self, metrics: Any) -> None:
        """Mirror the counters into a metrics registry (``cache.*`` family)."""
        self._metrics = metrics
        self._publish()

    def _publish(self) -> None:
        m = self._metrics
        if m is None:
            return
        m.gauge("cache.hits").set(self.hits)
        m.gauge("cache.misses").set(self.misses)
        m.gauge("cache.evictions").set(self.evictions)
        m.gauge("cache.hit_rate").set(self.hit_rate())
        m.gauge("cache.entries").set(len(self._entries))


_GLOBAL_CACHE = OperatorCache()


def global_cache() -> OperatorCache:
    """The process-wide cache shared by all preconditioner setups."""
    return _GLOBAL_CACHE


def reset_global_cache(capacity: int | None = None) -> OperatorCache:
    """Replace the process-wide cache (tests; capacity reconfiguration)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = OperatorCache(capacity=capacity or 64)
    return _GLOBAL_CACHE


def resolve_cache(cache: OperatorCache | bool | None) -> OperatorCache:
    """Normalize the ``cache=`` convention used across ``repro.precond``.

    ``None`` -> the process-wide cache; ``False`` -> a throwaway disabled
    cache (every lookup builds); an :class:`OperatorCache` -> itself.
    """
    if cache is None:
        return _GLOBAL_CACHE
    if cache is False:
        return OperatorCache(enabled=False)
    if cache is True:
        return _GLOBAL_CACHE
    return cache
