"""Coarse-grid solver: the ``R0^T A0^{-1} R0`` term of eq. (3).

The coarse space is the trilinear (Q1) finite-element space on the element
vertices.  Because Q1 is a subspace of the degree-N SEM space on every
element, the *Galerkin* coarse operator ``J^T A J`` equals the exactly
integrated Q1 stiffness matrix -- so that is what is assembled here (sparse,
with 2x2x2 Gauss quadrature, exact for trilinear geometry).  Using the
Galerkin-consistent operator matters: an under-integrated vertex Laplacian
over-corrects smooth modes and can push eigenvalues of ``M^{-1} A``
negative.

Two solve strategies are provided.  ``method="cg"`` (the class default,
and the paper's configuration) runs a Jacobi-preconditioned CG for a fixed
number of iterations (~10): cheap, allreduce-heavy and latency-dominated --
which is why the task-overlap schedule of Section 5.3 runs it concurrently
with the fine smoother.  ``method="direct"`` factorizes the sparse coarse
operator once (``splu``; the singular pure-Neumann case is regularized by
pinning vertex 0, which is exact for consistent right-hand sides) and
back-substitutes per application -- on a single-process run this replaces
~10 Python-level CG iterations with one triangular solve and is the
production fast path used by the HSMG preconditioner.  Assembly and
factorization are shared through the operator cache.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.precond.cache import CacheKey, OperatorCache, mask_fingerprint, resolve_cache
from repro.sem.basis import lagrange_interpolation_matrix
from repro.sem.dealias import interp3, interp3_transpose
from repro.sem.quadrature import gll_points_weights
from repro.sem.space import FunctionSpace
from repro.solvers.cg import ConjugateGradient

__all__ = ["CoarseGridSolver", "q1_element_stiffness"]

# Below this many vertices the direct solver densifies the factorized
# inverse: one gemv (BLAS) replaces two sparse triangular solves, which at
# the coarse-space sizes of interest is ~4x faster per application for at
# most a few MB of memory.  Above the bound the triangular solves win on
# memory (the dense inverse grows quadratically) and the splu path is kept.
_DENSE_INVERSE_MAX_VERTICES = 1024

# Reference Q1 data: vertex order matches the (k, j, i) elementwise layout
# (index = 4 k + 2 j + i), i.e. corner signs (t, s, r).
_CORNER_SIGNS = np.array(
    [[t, s, r] for t in (-1.0, 1.0) for s in (-1.0, 1.0) for r in (-1.0, 1.0)]
)  # (8, 3) in (t, s, r) order


def _q1_reference() -> tuple[np.ndarray, np.ndarray]:
    """Gradients of the 8 trilinear shape functions at the 2^3 Gauss points.

    Returns ``(dN, w)`` with ``dN`` of shape ``(8 qpoints, 8 basis, 3)`` --
    derivative directions ordered ``(t, s, r)`` to match the corner layout --
    and the quadrature weights (all 1 for the 2-point Gauss rule).
    """
    gp = 1.0 / np.sqrt(3.0)
    qpts = np.array([[t, s, r] for t in (-gp, gp) for s in (-gp, gp) for r in (-gp, gp)])
    nq = qpts.shape[0]
    dn = np.empty((nq, 8, 3))
    for q in range(nq):
        for i in range(8):
            sg = _CORNER_SIGNS[i]
            terms = (1.0 + sg * qpts[q]) / 2.0  # per-direction factors
            for d in range(3):
                prod = sg[d] / 2.0
                for d2 in range(3):
                    if d2 != d:
                        prod *= terms[d2]
                dn[q, i, d] = prod
    return dn, np.ones(nq)


def q1_element_stiffness(corner_coords: np.ndarray) -> np.ndarray:
    """Exactly integrated Q1 stiffness matrices, batched over elements.

    ``corner_coords`` is the mesh's ``(nelv, 2, 2, 2, 3)`` array; the result
    has shape ``(nelv, 8, 8)`` in the same vertex ordering.
    """
    dn, wq = _q1_reference()
    x = corner_coords.reshape(-1, 8, 3)  # (nelv, vertex, xyz)
    # Jacobian at each quadrature point: dx_b/dref_a.
    jmat = np.einsum("qia,eib->eqab", dn, x)
    det = np.linalg.det(jmat)
    # The (t, s, r) reference ordering is an odd permutation of (r, s, t),
    # so right-handed elements have det < 0 here; the stiffness integrand is
    # invariant under relabelling, only |det| enters.  A sign *change* inside
    # the mesh, however, means degenerate geometry.
    if np.any(det == 0.0) or (np.any(det > 0) and np.any(det < 0)):
        raise ValueError("coarse Q1 assembly found degenerate element Jacobians")
    det = np.abs(det)
    jinv = np.linalg.inv(jmat)  # (e, q, a, b): dref_a/dx_b
    # Physical gradients of shape functions: g[e,q,i,b].
    g = np.einsum("eqab,qia->eqib", jinv, dn)
    ke = np.einsum("eqib,eqjb,eq,q->eij", g, g, det, wq)
    return ke


class CoarseGridSolver:
    """Approximate inverse of the Galerkin vertex-space Poisson operator.

    Parameters
    ----------
    fine_space:
        The pressure space of the fine level.
    iterations:
        Fixed CG iteration count (paper: approximately 10); ignored by the
        direct method.
    mask:
        Optional fine-level Dirichlet mask; when ``None`` the problem is
        singular (pure Neumann) and the constant mode is projected out.
    method:
        ``"cg"`` (fixed-iteration Jacobi-CG, the paper's configuration and
        the class default) or ``"direct"`` (cached sparse LU, the
        production fast path).
    cache:
        Operator-cache handle for the assembly/factorization (``None`` =
        process-wide cache, ``False`` = private cold build).
    """

    def __init__(
        self,
        fine_space: FunctionSpace,
        iterations: int = 10,
        mask: np.ndarray | None = None,
        method: str = "cg",
        cache: OperatorCache | bool | None = None,
    ) -> None:
        if method not in ("cg", "direct"):
            raise ValueError(f"unknown coarse method: {method!r}")
        self.fine = fine_space
        self.method = method
        self.coarse = FunctionSpace(fine_space.mesh, 2)
        fine_pts, _ = gll_points_weights(fine_space.lx)
        # Prolongation J: Q1 nodal values -> degree-N nodal values.
        self.j_c2f = lagrange_interpolation_matrix(np.asarray(fine_pts), 2)

        gs = self.coarse.gs
        self.n_vertices = gs.n_global
        self.singular = mask is None
        self._mask = mask

        key = CacheKey.for_space(
            fine_space, f"coarse[{method};mask={mask_fingerprint(mask)}]"
        )
        self._free, self.a0, self._lu, self._ainv = resolve_cache(cache).get_or_build(
            key, self._build_operator
        )
        self._all_free = bool(self._free.all())
        self._inv_mult = 1.0 / fine_space.gs.multiplicity

        self.cg: ConjugateGradient | None = None
        self.iterations = iterations
        if method == "cg":
            diag = self.a0.diagonal()
            if np.any(diag <= 0):
                raise RuntimeError("coarse operator has non-positive diagonal")
            inv_diag = 1.0 / diag
            a0 = self.a0

            def amul(u: np.ndarray) -> np.ndarray:
                return a0 @ u

            def dot(u: np.ndarray, v: np.ndarray) -> float:
                return float(np.dot(u, v))

            self.cg = ConjugateGradient(
                amul,
                dot=dot,
                precond=lambda r: inv_diag * r,
                fixed_iterations=iterations,
                name="coarse-cg",
            )

    def _build_operator(
        self,
    ) -> tuple[np.ndarray, scipy.sparse.csr_matrix, Any, np.ndarray | None]:
        """Assemble the Galerkin coarse operator (and factorize it, if direct)."""
        gs = self.coarse.gs
        mask = self._mask
        free = np.ones(self.n_vertices, dtype=bool)
        if mask is not None:
            mc = np.ones(self.coarse.shape)
            for ct in (0, -1):
                for cs in (0, -1):
                    for cr in (0, -1):
                        mc[:, ct, cs, cr] = mask[:, ct, cs, cr]
            mc = gs.min(mc)
            free = gs.gather_unique(mc) > 0.5

        # Assemble the sparse Galerkin coarse operator over unique vertices.
        ke = q1_element_stiffness(self.fine.mesh.corner_coords)
        ids = gs.global_ids.reshape(self.fine.mesh.nelv, 8)
        rows = np.repeat(ids, 8, axis=1).reshape(-1)
        cols = np.tile(ids, (1, 8)).reshape(-1)
        a0 = scipy.sparse.coo_matrix(
            (ke.reshape(-1), (rows, cols)), shape=(self.n_vertices, self.n_vertices)
        ).tocsr()
        if mask is not None:
            # Eliminate constrained vertices: identity rows/cols.
            freef = free.astype(np.float64)
            d = scipy.sparse.diags(freef)
            a0 = d @ a0 @ d + scipy.sparse.diags(1.0 - freef)

        lu: Any = None
        ainv: np.ndarray | None = None
        if self.method == "direct":
            ap = a0
            if self.singular:
                # Pin vertex 0 (identity row/column).  For a consistent
                # right-hand side (sum == 0, guaranteed by the mean
                # projection) the solve with ``rhs[0] = 0`` is *exact*: the
                # dropped row is minus the sum of the others.
                pin = np.ones(self.n_vertices)
                pin[0] = 0.0
                d = scipy.sparse.diags(pin)
                e00 = scipy.sparse.coo_matrix(
                    ([1.0], ([0], [0])), shape=a0.shape
                )
                ap = (d @ a0 @ d + e00).tocsc()
            else:
                ap = a0.tocsc()
            lu = scipy.sparse.linalg.splu(ap)
            if self.n_vertices <= _DENSE_INVERSE_MAX_VERTICES:
                ainv = np.ascontiguousarray(lu.solve(np.eye(self.n_vertices)))
        return free, a0, lu, ainv

    # -- transfer operators --------------------------------------------------

    def restrict(self, r_fine: np.ndarray) -> np.ndarray:
        """Dual restriction ``R0 r`` onto unique vertex dofs."""
        rc = interp3_transpose(r_fine, self.j_c2f)
        # Dual vectors assemble by summation over duplicates.  The fine
        # residual is duplicated-consistent (already dssum-ed), so each
        # unique fine dof contributes once per element it belongs to -- undo
        # the duplication with inverse multiplicity *before* restriction.
        return np.bincount(
            self.coarse.gs.global_ids, weights=rc.reshape(-1), minlength=self.n_vertices
        )

    def prolong(self, u_vertex: np.ndarray) -> np.ndarray:
        """Prolongation ``R0^T u``: embed the Q1 solution in the fine space."""
        uc = self.coarse.gs.scatter_unique(u_vertex)
        return interp3(uc, self.j_c2f)

    def _project(self, u: np.ndarray) -> None:
        u -= u.mean() if self._all_free else u[self._free].mean()

    def __call__(self, r_fine: np.ndarray) -> np.ndarray:
        """Full coarse correction: restrict, solve, prolong.

        ``r_fine`` must be the assembled (dssum-ed, duplicated-consistent)
        fine residual *divided by nothing* -- the restriction handles the
        dual bookkeeping.  To keep the operation linear-consistent with the
        duplicated storage, the input is first de-duplicated.
        """
        r = r_fine * self._inv_mult
        rc = self.restrict(r)
        if self.singular:
            self._project(rc)
        else:
            rc[~self._free] = 0.0
        if self._lu is not None:
            if self.singular:
                rc[0] = 0.0
            uc = self._ainv @ rc if self._ainv is not None else self._lu.solve(rc)
        else:
            assert self.cg is not None
            uc, _ = self.cg.solve(rc)
        if self.singular:
            self._project(uc)
        return self.prolong(uc)

    def kernel_inventory(self, n_elements: int | None = None) -> list[tuple[str, int]]:
        """Kernel launch sequence for the GPU simulator (per application).

        The coarse solve is many *small* kernels plus global reductions --
        the launch-latency-dominated profile the paper overlaps away.
        """
        ne = self.fine.mesh.nelv if n_elements is None else n_elements
        seq: list[tuple[str, int]] = [("coarse_restrict", ne * 8 * self.fine.lx)]
        if self.method == "direct":
            # One gather + two triangular solves; nnz scales with vertices.
            seq.append(("coarse_direct_solve", int(getattr(self.a0, "nnz", ne * 27))))
        else:
            assert self.cg is not None
            iters = self.cg.fixed_iterations or 10
            for _ in range(iters):
                seq += [
                    ("coarse_ax", ne * 8 * 8),
                    ("coarse_gs", ne * 8),
                    ("allreduce_dot", 1),
                    ("coarse_axpy", ne * 8),
                    ("coarse_jacobi", ne * 8),
                    ("allreduce_dot", 1),
                    ("coarse_axpy2", ne * 8),
                ]
        seq.append(("coarse_prolong", ne * 8 * self.fine.lx))
        return seq
