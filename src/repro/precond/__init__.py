"""Preconditioners for the SEM pressure and Helmholtz solves.

The centrepiece is the paper's two-level additive overlapping Schwarz
multigrid (eq. (3)):

    M0^{-1} = R0^T A0^{-1} R0  +  sum_k Rk^T  Ak^{-1} Rk

* the coarse term restricts to the element-vertex (Q1) space and solves
  with a fixed-iteration Jacobi-preconditioned CG (``coarse.py``);
* the fine term solves a separable local Poisson problem on every element
  with the fast diagonalization method on a one-ghost-point extended grid
  (``fdm.py``), combined additively with counting weights (``schwarz.py``);
* ``hsmg.py`` assembles the two (or more) levels into the hybrid Schwarz
  multigrid object used as the GMRES right preconditioner, exposing the
  coarse/fine split that the task-overlap schedule of Section 5.3 runs on
  parallel streams.

Velocity and temperature use the plain Jacobi preconditioner
(``jacobi.py``) exactly as in the paper.
"""

from repro.precond.cache import (
    CacheKey,
    OperatorCache,
    global_cache,
    reset_global_cache,
    resolve_cache,
)
from repro.precond.jacobi import JacobiPrecond, helmholtz_diagonal
from repro.precond.fdm import FastDiagonalization
from repro.precond.schwarz import SchwarzSmoother
from repro.precond.coarse import CoarseGridSolver
from repro.precond.hsmg import HybridSchwarzMultigrid, IterationGuard

__all__ = [
    "JacobiPrecond",
    "helmholtz_diagonal",
    "FastDiagonalization",
    "SchwarzSmoother",
    "CoarseGridSolver",
    "HybridSchwarzMultigrid",
    "IterationGuard",
    "CacheKey",
    "OperatorCache",
    "global_cache",
    "reset_global_cache",
    "resolve_cache",
]
