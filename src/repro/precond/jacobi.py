"""Jacobi (diagonal) preconditioning for SEM Helmholtz operators.

The diagonal of the tensor-product stiffness matrix is computed in closed
form from the 1-D derivative matrix and the geometric factors (no operator
probing), assembled across elements with a gather--scatter sum, and
inverted once.  This is the preconditioner the paper uses for the velocity
and temperature solves.
"""

from __future__ import annotations

import numpy as np

from repro.precond.cache import CacheKey, OperatorCache, mask_fingerprint, resolve_cache
from repro.sem.space import FunctionSpace

__all__ = ["helmholtz_diagonal", "JacobiPrecond"]


def helmholtz_diagonal(
    space: FunctionSpace, h1: float | np.ndarray = 1.0, h2: float | np.ndarray = 0.0
) -> np.ndarray:
    """Unassembled elementwise diagonal of ``h1 * A + h2 * B``.

    For ``A = D_r^T G11 D_r + ... + D_s^T G12 D_r + ...`` the diagonal at
    node ``(k, j, i)`` is

        sum_m D[m,i]^2 G11[k,j,m] + sum_m D[m,j]^2 G22[k,m,i]
      + sum_m D[m,k]^2 G33[m,j,i]
      + 2 D[i,i] D[j,j] G12[k,j,i] + 2 D[i,i] D[k,k] G13[k,j,i]
      + 2 D[j,j] D[k,k] G23[k,j,i].

    (For GLL collocation the interior diagonal entries of ``D`` vanish, so
    the cross terms only contribute on element faces.)
    """
    c = space.coef
    d = np.asarray(space.dx)
    d2 = d * d  # d2[m, i] = D[m, i]^2
    ddiag = np.diag(d)

    diag = np.einsum("ekjm,mi->ekji", c.g11, d2)
    diag += np.einsum("ekmi,mj->ekji", c.g22, d2)
    diag += np.einsum("emji,mk->ekji", c.g33, d2)
    diag += 2.0 * c.g12 * ddiag[None, None, None, :] * ddiag[None, None, :, None]
    diag += 2.0 * c.g13 * ddiag[None, None, None, :] * ddiag[None, :, None, None]
    diag += 2.0 * c.g23 * ddiag[None, None, :, None] * ddiag[None, :, None, None]
    return h1 * diag + h2 * c.mass


class JacobiPrecond:
    """Assembled-diagonal Jacobi preconditioner.

    Parameters
    ----------
    space:
        The function space (supplies gather--scatter).
    h1, h2:
        Helmholtz coefficients; refresh with :meth:`update` when the time
        step (and hence ``h2 = b0 / dt``) changes.
    mask:
        Optional Dirichlet mask; masked dofs get an identity diagonal so
        that applying the preconditioner never touches them.
    cache:
        Operator-cache handle.  For *scalar* ``h1``/``h2`` the assembled
        inverse diagonal is a pure function of ``(space, h1, h2, mask)``
        and is shared through the cache (repeated jobs on the same mesh
        and time step skip the closed-form assembly); array-valued
        coefficients always rebuild.
    """

    def __init__(
        self,
        space: FunctionSpace,
        h1: float | np.ndarray = 1.0,
        h2: float | np.ndarray = 0.0,
        mask: np.ndarray | None = None,
        cache: OperatorCache | bool | None = None,
    ) -> None:
        self.space = space
        self.mask = mask
        self._cache = cache
        self._inv_diag: np.ndarray | None = None
        self.update(h1, h2)

    def _build_inv_diag(self, h1: float | np.ndarray, h2: float | np.ndarray) -> np.ndarray:
        diag = self.space.gs.add(helmholtz_diagonal(self.space, h1, h2))
        if self.mask is not None:
            diag = np.where(self.mask == 0.0, 1.0, diag)
        if np.any(diag <= 0.0):
            raise ValueError("Helmholtz diagonal is not positive; check h1/h2 signs")
        return 1.0 / diag

    def update(self, h1: float | np.ndarray, h2: float | np.ndarray) -> None:
        """Recompute the assembled diagonal for new Helmholtz coefficients."""
        if np.isscalar(h1) and np.isscalar(h2):
            key = CacheKey.for_space(
                self.space,
                f"jacobi_diag[h1={float(h1)!r};h2={float(h2)!r};"
                f"mask={mask_fingerprint(self.mask)}]",
            )
            self._inv_diag = resolve_cache(self._cache).get_or_build(
                key, lambda: self._build_inv_diag(h1, h2)
            )
        else:
            self._inv_diag = self._build_inv_diag(h1, h2)

    def __call__(self, r: np.ndarray) -> np.ndarray:
        """Apply ``z = diag(A)^{-1} r`` (masked dofs passed through zeroed)."""
        z = r * self._inv_diag
        if self.mask is not None:
            z *= self.mask
        return z
