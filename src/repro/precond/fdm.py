"""Fast diagonalization method (FDM) for per-element local Poisson solves.

The fine level of the Schwarz preconditioner solves, on every element, a
separable approximation of the Poisson operator

    A3 = Kz (x) My (x) Mx + Mz (x) Ky (x) Mx + Mz (x) My (x) Kx

where the 1-D stiffness/mass pairs live on an *extended* grid: the element's
GLL points plus one ghost point on each side (at the first interior GLL
spacing), with homogeneous Dirichlet conditions at the ghost points.  The
ghost extension plays the role of the one-layer overlap in Nek5000's classic
additive Schwarz: it regularizes the local problem (no Neumann null space)
while keeping the element's own boundary nodes free, so the smoother updates
*all* dofs.

Because every element uses the same reference extended grid, a single
generalized eigendecomposition ``K S = M S diag(lambda)`` is shared by all
elements; only the per-direction length scalings

    K_d = (2 / L_d) K_ref,   M_d = (L_d / 2) M_ref

differ, entering through the per-element eigenvalue tensor.  The local solve
is then three batched tensor contractions with ``S^T``, a pointwise division
and three with ``S`` -- the exact kernel profile the GPU simulator models.
"""

from __future__ import annotations

import functools

import numpy as np
import scipy.linalg

from repro.precond.cache import CacheKey, OperatorCache, resolve_cache
from repro.sem.quadrature import gauss_legendre_points_weights, gll_points_weights
from repro.sem.space import FunctionSpace

__all__ = ["FastDiagonalization", "extended_grid_operators"]


def _barycentric_weights(nodes: np.ndarray) -> np.ndarray:
    diff = nodes[:, None] - nodes[None, :]
    np.fill_diagonal(diff, 1.0)
    return 1.0 / np.prod(diff, axis=1)


def _interp_matrix(x_to: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Barycentric interpolation matrix from arbitrary ``nodes`` to ``x_to``."""
    bw = _barycentric_weights(nodes)
    d = x_to[:, None] - nodes[None, :]
    exact = np.abs(d) < 1e-14
    d = np.where(exact, 1.0, d)
    terms = bw[None, :] / d
    mat = terms / terms.sum(axis=1, keepdims=True)
    hit = np.any(exact, axis=1)
    if np.any(hit):  # pragma: no cover - quadrature points are interior
        mat[hit] = exact[hit].astype(np.float64)
    return mat


def _deriv_matrix(nodes: np.ndarray) -> np.ndarray:
    """Collocation derivative matrix on arbitrary distinct ``nodes``."""
    bw = _barycentric_weights(nodes)
    diff = nodes[:, None] - nodes[None, :]
    np.fill_diagonal(diff, 1.0)
    d = (bw[None, :] / bw[:, None]) / diff
    np.fill_diagonal(d, 0.0)
    np.fill_diagonal(d, -np.sum(d, axis=1))
    return d


def _lagrange_matrices_on_nodes(nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exact 1-D stiffness and mass matrices of the Lagrange basis on ``nodes``.

    Integrates ``l_i' l_j'`` and ``l_i l_j`` with a Gauss--Legendre rule that
    is exact for the polynomial degree at hand.  Derivatives are obtained by
    collocation differentiation at the nodes followed by (exact) polynomial
    interpolation to the quadrature points.
    """
    n = len(nodes)
    lo, hi = nodes[0], nodes[-1]
    xq, wq = gauss_legendre_points_weights(2 * n)
    xq = lo + (np.asarray(xq) + 1.0) / 2.0 * (hi - lo)
    wq = np.asarray(wq) * (hi - lo) / 2.0

    j = _interp_matrix(xq, nodes)
    vals = j
    ders = j @ _deriv_matrix(nodes)
    stiff = (ders * wq[:, None]).T @ ders
    mass = (vals * wq[:, None]).T @ vals
    return stiff, mass


@functools.lru_cache(maxsize=None)
def extended_grid_operators(lx: int, overlap: bool = False) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Eigen-setup of the extended reference grid for ``lx`` GLL points.

    Returns ``(S, lam, nodes)`` where the columns of ``S`` are generalized
    eigenvectors of the Dirichlet-reduced extended (stiffness, mass) pair
    normalized so ``S^T M S = I``, and ``lam`` the eigenvalues.

    With ``overlap=False`` the grid is the element's GLL points plus one
    ghost point per side carrying the homogeneous Dirichlet cap; the reduced
    system has ``lx`` dofs.  With ``overlap=True`` the local domain extends
    one point *into* the neighbours (those points carry real residual data
    gathered by the smoother) and the Dirichlet caps sit one further gap out;
    the reduced system has ``lx + 2`` dofs.
    """
    x, _ = gll_points_weights(lx)
    x = np.asarray(x)
    gap = x[1] - x[0]
    if overlap:
        nodes = np.concatenate(
            [[x[0] - 2 * gap, x[0] - gap], x, [x[-1] + gap, x[-1] + 2 * gap]]
        )
    else:
        nodes = np.concatenate([[x[0] - gap], x, [x[-1] + gap]])
    stiff, mass = _lagrange_matrices_on_nodes(nodes)
    # Homogeneous Dirichlet at the two cap points: drop first/last row+col.
    k_red = stiff[1:-1, 1:-1]
    m_red = mass[1:-1, 1:-1]
    lam, s = scipy.linalg.eigh(k_red, m_red)
    if lam[0] <= 0:
        raise RuntimeError("extended-grid FDM operator must be positive definite")
    return s, lam, nodes


def _element_lengths(space: FunctionSpace) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Average physical extent of every element along each local direction."""
    x, y, z = space.x, space.y, space.z

    def face_mid(arr: np.ndarray, axis: int, side: int) -> np.ndarray:
        sl = [slice(None)] * 4
        sl[axis] = side
        return arr[tuple(sl)].reshape(arr.shape[0], -1).mean(axis=1)

    def length(axis: int) -> np.ndarray:
        dx_ = face_mid(x, axis, -1) - face_mid(x, axis, 0)
        dy_ = face_mid(y, axis, -1) - face_mid(y, axis, 0)
        dz_ = face_mid(z, axis, -1) - face_mid(z, axis, 0)
        return np.sqrt(dx_**2 + dy_**2 + dz_**2)

    # axis 3 = r, axis 2 = s, axis 1 = t.
    return length(3), length(2), length(1)


class FastDiagonalization:
    """Batched per-element FDM solve ``u_e = A3_e^{-1} r_e``.

    With ``overlap=True`` the solve acts on extended ``(lx+2)^3`` arrays
    whose ghost layer carries neighbour residual data (the true one-layer
    overlapping Schwarz); otherwise on plain ``lx^3`` element arrays with
    zero Dirichlet ghost caps.

    ``dtype=np.float32`` runs the local solves in single precision (the
    NekRS mixed-precision smoother): residuals are cast down on entry and
    the correction cast back up, so the outer Krylov arithmetic stays in
    float64.  The eigen-setup is still computed in float64 and rounded
    once, which keeps the f32 operator a faithful rounding of the f64 one.

    The ``(S, S^T, inv_d3)`` setup is a pure function of the mesh geometry
    and ``(overlap, dtype)``, so it is shared through the process-wide
    :class:`~repro.precond.cache.OperatorCache` (``cache=None``); pass
    ``cache=False`` to force a private cold build.
    """

    def __init__(
        self,
        space: FunctionSpace,
        overlap: bool = False,
        dtype: np.dtype | str | type = np.float64,
        cache: OperatorCache | bool | None = None,
    ) -> None:
        self.space = space
        self.overlap = overlap
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"unsupported FDM dtype: {self.dtype}")
        key = CacheKey.for_space(space, f"fdm[overlap={overlap}]", self.dtype)
        self.s, self.st, self.inv_d3 = resolve_cache(cache).get_or_build(
            key, lambda: self._build(space, overlap, self.dtype)
        )
        self._inv_counts: np.ndarray | None = None

    @staticmethod
    def _build(
        space: FunctionSpace, overlap: bool, dtype: np.dtype
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        lx = space.lx
        s, lam, _ = extended_grid_operators(lx, overlap=overlap)
        lr, ls, lt = _element_lengths(space)

        # Eigenvalue tensor D3[e, k, j, i] of the separable operator with
        # direction scalings K_d = (2/L_d) K_ref, M_d = (L_d/2) M_ref.
        kx = (2.0 / lr)[:, None] * lam[None, :]
        ky = (2.0 / ls)[:, None] * lam[None, :]
        kz = (2.0 / lt)[:, None] * lam[None, :]
        mx = (lr / 2.0)[:, None] * np.ones_like(lam)[None, :]
        my = (ls / 2.0)[:, None] * np.ones_like(lam)[None, :]
        mz = (lt / 2.0)[:, None] * np.ones_like(lam)[None, :]

        d3 = (
            kz[:, :, None, None] * my[:, None, :, None] * mx[:, None, None, :]
            + mz[:, :, None, None] * ky[:, None, :, None] * mx[:, None, None, :]
            + mz[:, :, None, None] * my[:, None, :, None] * kx[:, None, None, :]
        )
        inv_d3 = 1.0 / d3
        return (
            s.astype(dtype, copy=True),
            np.ascontiguousarray(s.T).astype(dtype, copy=True),
            inv_d3.astype(dtype, copy=True),
        )

    def _tensor_apply(self, u: np.ndarray, m: np.ndarray) -> np.ndarray:
        nelv, lz, ly, lx = u.shape
        v = u @ m.T
        v = np.matmul(m, v)
        v = np.matmul(m, v.reshape(nelv, lz, ly * lx)).reshape(u.shape)
        return v

    def solve(self, r: np.ndarray) -> np.ndarray:
        """Apply the batched local inverse to an elementwise residual."""
        r = r.astype(self.dtype, copy=False)
        v = self._tensor_apply(r, self.st)
        v *= self.inv_d3
        v = self._tensor_apply(v, self.s)
        return v.astype(np.float64, copy=False)

    def __call__(self, r: np.ndarray) -> np.ndarray:
        """Preconditioner interface: local solves + counting-weighted average.

        Element-local inverses break interelement continuity; a Krylov
        direction with a discontinuous component picks up the assembled
        operator's null space (small residual, wrong field), so standalone
        use must restore continuity.  This is the classic additive Schwarz
        with counting weights; the full ghost-exchange variant lives in
        :class:`~repro.precond.schwarz.SchwarzSmoother`.  Still asymmetric
        with respect to the gather--scatter inner product -> pair with
        GMRES, not CG.
        """
        if self._inv_counts is None:
            gs = self.space.gs
            self._inv_counts = 1.0 / gs.add(np.ones(self.space.shape))
        return self.space.gs.add(self.solve(r)) * self._inv_counts
