"""The abstract device interface and device-array handle.

The contract mirrors Neko's ``device`` module: explicit allocation,
explicit host<->device transfers, named kernel launches and stream
synchronization.  Kernels are plain Python callables operating on the
underlying NumPy buffers -- the abstraction is about *bookkeeping*
(where data lives, what was launched, what it cost), which is the part
the paper's portability argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Device", "DeviceArray", "KernelRecord"]


@dataclass
class KernelRecord:
    """One recorded kernel launch."""

    name: str
    bytes_touched: int
    wall_seconds: float
    stream: int = 0


class DeviceArray:
    """Handle to memory owned by a device.

    The ``data`` buffer must only be touched through the owning device's
    methods (or kernels launched on it); reading it from the host requires
    an explicit :meth:`Device.to_host`.
    """

    def __init__(self, device: "Device", data: np.ndarray) -> None:
        self.device = device
        self.data = data

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeviceArray(shape={self.shape}, device={self.device.name})"


class Device:
    """Abstract compute device."""

    name = "abstract"

    # -- memory ------------------------------------------------------------

    def allocate(self, shape: tuple[int, ...], dtype=np.float64) -> DeviceArray:
        """Allocate uninitialized device memory."""
        raise NotImplementedError

    def to_device(self, host: np.ndarray) -> DeviceArray:
        """Copy a host array to the device."""
        raise NotImplementedError

    def to_host(self, arr: DeviceArray) -> np.ndarray:
        """Copy device memory back to a fresh host array."""
        raise NotImplementedError

    # -- execution -----------------------------------------------------------

    def launch(
        self,
        name: str,
        fn: Callable[..., None],
        *arrays: DeviceArray,
        stream: int = 0,
    ) -> None:
        """Launch a kernel: ``fn`` receives the raw buffers of ``arrays``.

        Kernels must write only into buffers they were handed (no
        allocation inside kernels -- the discipline GPU codes live by).
        """
        raise NotImplementedError

    def synchronize(self, stream: int | None = None) -> None:
        """Block until outstanding work (on one stream or all) completes."""

    # -- accounting -----------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        raise NotImplementedError

    def check_owned(self, *arrays: DeviceArray) -> None:
        """Guard against mixing arrays across devices."""
        for a in arrays:
            if a.device is not self:
                raise ValueError(
                    f"array on device {a.device.name!r} passed to {self.name!r}"
                )
