"""Simulated-GPU backend: NumPy correctness, modelled device timing.

Kernels execute on the host (results are bit-identical to the CPU
backend), but every launch advances a simulated per-stream clock using a
:class:`~repro.gpu.device.GpuModel`: host launch overhead, submit latency
and the roofline duration for the bytes touched.  ``simulated_time_us``
then reads off what the sequence *would* have cost on the modelled GPU --
the bridge between the real Python solver and the extreme-scale
performance model.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.backend.device import Device, DeviceArray, KernelRecord
from repro.gpu.device import GpuModel

__all__ = ["SimulatedGpuDevice"]


class SimulatedGpuDevice(Device):
    """NumPy execution + simulated GPU clock."""

    def __init__(self, model: GpuModel) -> None:
        self.model = model
        self.name = f"sim:{model.name}"
        self._allocated = 0
        self._host_clock_us = 0.0
        self._stream_clock_us: dict[int, float] = {}
        self.records: list[KernelRecord] = []
        self.h2d_bytes = 0
        self.d2h_bytes = 0

    # -- memory ------------------------------------------------------------

    def allocate(self, shape: tuple[int, ...], dtype=np.float64) -> DeviceArray:
        arr = DeviceArray(self, np.empty(shape, dtype=dtype))
        self._allocated += arr.nbytes
        return arr

    def to_device(self, host: np.ndarray) -> DeviceArray:
        arr = DeviceArray(self, np.array(host, copy=True))
        self._allocated += arr.nbytes
        self.h2d_bytes += arr.nbytes
        # PCIe-ish transfer cost on the host clock.
        self._host_clock_us += arr.nbytes / 25e9 * 1e6
        return arr

    def to_host(self, arr: DeviceArray) -> np.ndarray:
        self.check_owned(arr)
        self.d2h_bytes += arr.nbytes
        self.synchronize()
        self._host_clock_us += arr.nbytes / 25e9 * 1e6
        return arr.data.copy()

    # -- execution -----------------------------------------------------------

    def launch(
        self,
        name: str,
        fn: Callable[..., None],
        *arrays: DeviceArray,
        stream: int = 0,
    ) -> None:
        self.check_owned(*arrays)
        fn(*(a.data for a in arrays))  # immediate numerical effect

        nbytes = sum(a.nbytes for a in arrays)
        duration = self.model.kernel_duration_us(nbytes)
        self._host_clock_us += self.model.launch_overhead_us
        start = max(
            self._host_clock_us + self.model.submit_delay_us,
            self._stream_clock_us.get(stream, 0.0),
        )
        self._stream_clock_us[stream] = start + duration
        self.records.append(KernelRecord(name, nbytes, duration * 1e-6, stream))

    def synchronize(self, stream: int | None = None) -> None:
        if stream is None:
            target = max(self._stream_clock_us.values(), default=0.0)
        else:
            target = self._stream_clock_us.get(stream, 0.0)
        self._host_clock_us = max(self._host_clock_us, target)

    # -- accounting -----------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    @property
    def simulated_time_us(self) -> float:
        """Simulated wall time once all streams drain."""
        return max(
            self._host_clock_us, max(self._stream_clock_us.values(), default=0.0)
        )

    def reset_clock(self) -> None:
        self._host_clock_us = 0.0
        self._stream_clock_us.clear()
        self.records.clear()
