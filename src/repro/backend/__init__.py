"""Device abstraction layer (Section 5.1).

Neko hides CUDA/HIP/OpenCL behind a device layer that manages memory,
transfers and kernel launches, keeping the solver stack hardware-neutral.
This package reproduces that architecture in Python:

* :class:`~repro.backend.device.Device` -- the abstract interface
  (allocate, transfer, launch, synchronize, streams);
* :class:`~repro.backend.cpu.CpuDevice` -- the host backend executing
  kernels immediately with NumPy;
* :class:`~repro.backend.instrumented.InstrumentedDevice` -- a decorator
  backend recording every launch (name, bytes, wall time), used to
  calibrate the roofline constants of the performance model;
* :class:`~repro.backend.simgpu.SimulatedGpuDevice` -- executes with NumPy
  for correctness while advancing a *simulated* device clock from a
  :class:`~repro.gpu.device.GpuModel`, so whole solver phases can be
  "timed" as if they ran on an A100 or MI250X GCD.

Backends register by name (``cpu``, ``sim:a100``, ...), mirroring Neko's
runtime backend selection.
"""

from repro.backend.device import Device, DeviceArray, KernelRecord
from repro.backend.cpu import CpuDevice
from repro.backend.instrumented import InstrumentedDevice
from repro.backend.simgpu import SimulatedGpuDevice
from repro.backend.registry import available_backends, get_backend, register_backend

__all__ = [
    "Device",
    "DeviceArray",
    "KernelRecord",
    "CpuDevice",
    "InstrumentedDevice",
    "SimulatedGpuDevice",
    "available_backends",
    "get_backend",
    "register_backend",
]
