"""Backend registry: runtime selection by name, as in Neko's build system."""

from __future__ import annotations

from typing import Callable

from repro.backend.cpu import CpuDevice
from repro.backend.device import Device
from repro.backend.instrumented import InstrumentedDevice
from repro.backend.simgpu import SimulatedGpuDevice
from repro.gpu.device import A100, MI250X_GCD

__all__ = ["register_backend", "get_backend", "available_backends"]

_FACTORIES: dict[str, Callable[[], Device]] = {}


def register_backend(name: str, factory: Callable[[], Device]) -> None:
    """Register a backend factory under a name (overwrites existing)."""
    _FACTORIES[name] = factory


def get_backend(name: str) -> Device:
    """Construct a backend by name; raises ``KeyError`` with the options."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(_FACTORIES)}"
        ) from None


def available_backends() -> list[str]:
    return sorted(_FACTORIES)


register_backend("cpu", CpuDevice)
register_backend("cpu:instrumented", lambda: InstrumentedDevice(CpuDevice()))
register_backend("sim:a100", lambda: SimulatedGpuDevice(A100))
register_backend("sim:mi250x", lambda: SimulatedGpuDevice(MI250X_GCD))
# Canonical alias used by the verification subsystem's cross-backend
# equivalence checks: "the" simulated GPU, currently the A100 model.
register_backend("simgpu", lambda: SimulatedGpuDevice(A100))
