"""Instrumented backend: records every launch for model calibration."""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.backend.device import Device, DeviceArray, KernelRecord

__all__ = ["InstrumentedDevice"]


class InstrumentedDevice(Device):
    """Wraps another device, recording (name, bytes, wall time) per launch.

    The byte count is the total size of the arrays handed to the kernel --
    the quantity a bandwidth-bound roofline model needs.  Records feed the
    calibration path of :mod:`repro.perfmodel`.
    """

    def __init__(self, inner: Device) -> None:
        self.inner = inner
        self.name = f"instrumented({inner.name})"
        self.records: list[KernelRecord] = []

    def allocate(self, shape: tuple[int, ...], dtype=np.float64) -> DeviceArray:
        arr = self.inner.allocate(shape, dtype)
        arr.device = self
        return arr

    def to_device(self, host: np.ndarray) -> DeviceArray:
        arr = self.inner.to_device(host)
        arr.device = self
        return arr

    def to_host(self, arr: DeviceArray) -> np.ndarray:
        self.check_owned(arr)
        arr.device = self.inner
        try:
            return self.inner.to_host(arr)
        finally:
            arr.device = self

    def launch(
        self,
        name: str,
        fn: Callable[..., None],
        *arrays: DeviceArray,
        stream: int = 0,
    ) -> None:
        self.check_owned(*arrays)
        nbytes = sum(a.nbytes for a in arrays)
        for a in arrays:
            a.device = self.inner
        t0 = time.perf_counter()
        try:
            self.inner.launch(name, fn, *arrays, stream=stream)
        finally:
            dt = time.perf_counter() - t0
            for a in arrays:
                a.device = self
        self.records.append(KernelRecord(name, nbytes, dt, stream))

    def synchronize(self, stream: int | None = None) -> None:
        self.inner.synchronize(stream)

    @property
    def allocated_bytes(self) -> int:
        return self.inner.allocated_bytes

    # -- analysis -------------------------------------------------------------

    def totals_by_kernel(self) -> dict[str, tuple[int, int, float]]:
        """``name -> (launches, total bytes, total seconds)``."""
        out: dict[str, tuple[int, int, float]] = {}
        for r in self.records:
            n, b, t = out.get(r.name, (0, 0, 0.0))
            out[r.name] = (n + 1, b + r.bytes_touched, t + r.wall_seconds)
        return out

    def measured_bandwidth_gbs(self, name: str) -> float:
        """Effective bandwidth of one kernel over all its launches."""
        n, b, t = self.totals_by_kernel()[name]
        return b / t / 1e9 if t > 0 else 0.0
