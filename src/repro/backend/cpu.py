"""Host backend: immediate NumPy execution."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.backend.device import Device, DeviceArray

__all__ = ["CpuDevice"]


class CpuDevice(Device):
    """The reference backend: kernels run synchronously on the host."""

    name = "cpu"

    def __init__(self) -> None:
        self._allocated = 0

    def allocate(self, shape: tuple[int, ...], dtype=np.float64) -> DeviceArray:
        arr = DeviceArray(self, np.empty(shape, dtype=dtype))
        self._allocated += arr.nbytes
        return arr

    def to_device(self, host: np.ndarray) -> DeviceArray:
        arr = DeviceArray(self, np.array(host, copy=True))
        self._allocated += arr.nbytes
        return arr

    def to_host(self, arr: DeviceArray) -> np.ndarray:
        self.check_owned(arr)
        return arr.data.copy()

    def launch(
        self,
        name: str,
        fn: Callable[..., None],
        *arrays: DeviceArray,
        stream: int = 0,
    ) -> None:
        self.check_owned(*arrays)
        fn(*(a.data for a in arrays))

    def synchronize(self, stream: int | None = None) -> None:
        """Host execution is synchronous; nothing to wait for."""

    @property
    def allocated_bytes(self) -> int:
        return self._allocated
