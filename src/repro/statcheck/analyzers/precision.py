"""precision-flow: dtype provenance through the mixed-precision stack.

PR 7 made float32 a first-class citizen of the pressure solve (float32
Schwarz/FDM smoothing inside float64 GMRES, guarded by ``IterationGuard``).
That split is safe exactly as long as two invariants hold:

* float64 data is narrowed to float32 only inside a *guard-managed
  region* -- code that constructs or consults an ``IterationGuard`` so a
  quality regression trips recovery -- or under an explicit suppression
  stating why the narrowing is safe;
* float32 values never flow into the accumulations that decide
  convergence or publish physics (residual norms, inner products, sums):
  NekRS accumulates those in float64 even when the smoother runs float32,
  and so do we.

The analyzer assigns every expression a value from the flat lattice
``unknown < {f32, f64} < mixed`` and propagates it flow-sensitively
through assignments, branches (joined), loops (to fixpoint) and -- via
the call graph's context-insensitive function summaries -- across
function boundaries inside ``sem``/``precond``/``solvers``.  Python
scalars are dtype-neutral (NEP 50 weak promotion): constants sit at
lattice bottom so ``0.1 * f32_field`` stays ``f32``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.statcheck.analyzers.base import Analyzer
from repro.statcheck.dataflow import AbstractInterpreter, FlatLattice, SummarySolver
from repro.statcheck.finding import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    from repro.statcheck.callgraph import FunctionInfo, Project

__all__ = ["PrecisionFlowAnalyzer"]

#: Packages whose functions participate in the dtype dataflow.
SCOPE_PACKAGES = ("sem", "precond", "solvers")

_F32_NAMES = {"float32", "f4", "single", "<f4", ">f4"}
_F64_NAMES = {"float64", "f8", "double", "<f8", ">f8"}

#: np.* constructors that default to float64 when no dtype is given.
_F64_CONSTRUCTORS = {
    "zeros", "empty", "ones", "full", "arange", "linspace", "eye", "identity",
}
#: np.* constructors that inherit their model argument's dtype.
_LIKE_CONSTRUCTORS = {"zeros_like", "empty_like", "ones_like", "full_like"}
#: np.* wrappers whose result dtype follows the input's.
_WRAP_CONSTRUCTORS = {"array", "asarray", "ascontiguousarray", "asfortranarray"}
#: Reduction/accumulation entry points that must not receive float32.
_ACCUMULATIONS = {"dot", "vdot", "inner", "sum", "nansum", "norm", "einsum"}
#: Methods whose result keeps the receiver's dtype.
_PROPAGATING_METHODS = {
    "copy", "reshape", "ravel", "flatten", "transpose", "squeeze", "clip",
    "conj", "conjugate", "real", "imag", "min", "max",
}


def make_dtype_lattice() -> FlatLattice:
    return FlatLattice(atoms=("f32", "f64"), bottom="unknown", top="mixed")


def _dtype_of_expr(node: ast.expr | None) -> str | None:
    """Lattice atom named by a dtype expression, or None when symbolic."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.lower()
        if name in _F32_NAMES:
            return "f32"
        if name in _F64_NAMES:
            return "f64"
        return None
    from repro.statcheck.rules.base import attr_chain

    chain = attr_chain(node)
    if chain is None:
        return None
    final = chain.rsplit(".", 1)[-1]
    base = chain.split(".", 1)[0]
    if base in ("np", "numpy"):
        if final in _F32_NAMES:
            return "f32"
        if final in _F64_NAMES:
            return "f64"
    if chain == "float":  # builtin float is a float64 scalar
        return "f64"
    return None


def _dtype_keyword(node: ast.Call) -> str | None:
    for kw in node.keywords:
        if kw.arg == "dtype":
            return _dtype_of_expr(kw.value)
    return None


def guard_managed(info: "FunctionInfo") -> bool:
    """True when ``info`` constructs or consults an IterationGuard.

    A narrowing inside such a function is by definition monitored: the
    guard observes solver quality and trips back to float64, so the
    narrowing is the *mechanism* of the managed mixed-precision path, not
    an accident.  The test is lexical -- any reference to the
    ``IterationGuard`` type or a ``guard``/``iteration_guard`` attribute
    in the function body.
    """
    for node in ast.walk(info.node):
        if isinstance(node, ast.Name) and node.id == "IterationGuard":
            return True
        if isinstance(node, ast.Attribute) and node.attr in ("guard", "iteration_guard"):
            return True
    return False


class DtypeInterpreter(AbstractInterpreter):
    """The dtype transfer functions over the flat f32/f64 lattice."""

    def __init__(
        self,
        lattice: FlatLattice,
        summaries=None,  # qname -> FunctionSummary (read-only view)
        emit=None,  # callable(node, message) | None: finding sink
        guarded: bool = False,
    ) -> None:
        super().__init__(lattice)
        self.summaries = summaries or {}
        self.emit = emit
        self.guarded = guarded

    def transfer_call(
        self,
        node: ast.Call,
        chain: str | None,
        args: list[str],
        env: dict[str, str],
        recv: str,
    ) -> str:
        lat = self.lattice
        bot = lat.bottom
        if chain is None:
            return self._summary_ret(node, bot)
        final = chain.rsplit(".", 1)[-1]
        base = chain.split(".", 1)[0]

        # x.astype(t): the one explicit conversion point.
        if final == "astype" and isinstance(node.func, ast.Attribute):
            target = _dtype_of_expr(node.args[0] if node.args else None)
            if target is None:
                target = _dtype_keyword(node)
            if target == "f32" and recv in ("f64", "mixed"):
                self._report(
                    node,
                    f"{'float64' if recv == 'f64' else 'possibly-float64'} value "
                    "narrowed to float32 outside a guard-managed region",
                )
            return target if target is not None else bot

        # Scalar/array casts through the dtype constructors themselves.
        if base in ("np", "numpy") and final in _F32_NAMES:
            if args and args[0] in ("f64", "mixed"):
                self._report(
                    node,
                    "float64 value narrowed to float32 outside a guard-managed region",
                )
            return "f32"
        if base in ("np", "numpy") and final in _F64_NAMES:
            return "f64"

        # Accumulations: np.dot(a, b), np.linalg.norm(r), r.sum(), ...
        if final in _ACCUMULATIONS:
            operands = [recv, *args]
            if "f32" in operands:
                self._report(
                    node,
                    f"float32 value flows into '{final}' accumulation; "
                    "accumulate residuals/norms/dots in float64",
                )
            return lat.join_all(operands)

        if base in ("np", "numpy"):
            if final in _F64_CONSTRUCTORS:
                kw = _dtype_keyword(node)
                return kw if kw is not None else "f64"
            if final in _LIKE_CONSTRUCTORS:
                kw = _dtype_keyword(node)
                if kw is not None:
                    return kw
                return args[0] if args else bot
            if final in _WRAP_CONSTRUCTORS:
                kw = _dtype_keyword(node)
                if kw is not None:
                    return kw
                return lat.join_all(args)
            # Elementwise fallback (sqrt, abs, maximum, where, ...): the
            # result dtype follows NumPy promotion of the array operands.
            return lat.join_all(args)

        if final in _PROPAGATING_METHODS and isinstance(node.func, ast.Attribute):
            return recv

        return self._summary_ret(node, bot)

    def _summary_ret(self, node: ast.Call, default: str) -> str:
        callee = self.callee_of(node)
        if callee is not None:
            summary = self.summaries.get(callee) if self.summaries else None
            if summary is not None:
                return summary.ret or default
        return default

    def _report(self, node: ast.AST, message: str) -> None:
        if self.emit is not None and not self.guarded:
            self.emit(node, message)


class PrecisionFlowAnalyzer(Analyzer):
    name = "precision-flow"
    severity = Severity.WARNING
    description = (
        "float64->float32 narrowing outside IterationGuard-managed regions, and "
        "float32 flowing into residual/norm/dot accumulations (sem/precond/solvers)"
    )

    def check(self, project: "Project") -> Iterator[Finding]:
        graph = project.callgraph
        lattice = make_dtype_lattice()
        scope = [
            qname
            for qname, info in graph.functions.items()
            if info.ctx.in_package(*SCOPE_PACKAGES)
        ]
        if not scope:
            return

        # Phase 1: solve the interprocedural summaries (no findings yet --
        # the worklist revisits functions, which would duplicate reports).
        solver = SummarySolver(
            graph,
            lattice,
            lambda s: DtypeInterpreter(lattice, summaries=s.summaries),
            functions=scope,
        )
        solver.solve()

        # Phase 2: one emission pass per function with the converged
        # parameter context.  Loop bodies are interpreted twice by the
        # framework, so findings are deduplicated per AST node.
        for qname in sorted(scope):
            info = graph.functions[qname]
            reported: set[tuple[int, str]] = set()
            found: list[Finding] = []

            def emit(node: ast.AST, message: str, info=info, reported=reported, found=found):
                key = (id(node), message)
                if key in reported:
                    return
                reported.add(key)
                found.append(self.finding(info, node, message))

            interp = DtypeInterpreter(
                lattice,
                summaries=solver.summaries,
                emit=emit,
                guarded=guard_managed(info),
            )
            interp.site_callees = {
                id(s.node): s.callee for s in graph.callees_of(qname)
            }
            interp.run_function(info.node, dict(solver.summaries[qname].params))
            yield from found
