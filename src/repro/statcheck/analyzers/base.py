"""Analyzer base class and registry.

Analyzers are the interprocedural, flow-sensitive cousins of the
per-module rules: they receive the whole :class:`~repro.statcheck.callgraph.Project`
(parsed modules + call graph) instead of one :class:`ModuleContext`, and
emit the same :class:`~repro.statcheck.finding.Finding` objects -- so the
suppression grammar, the count-based baseline and every output format
apply unchanged.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.statcheck.finding import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    from repro.statcheck.callgraph import FunctionInfo, Project

__all__ = ["Analyzer"]


class Analyzer:
    """One named project-wide analysis.

    Subclasses set :attr:`name` (the kebab-case id used in suppressions,
    baselines and ``--analysis``), :attr:`severity` (the default finding
    severity) and implement :meth:`check`.
    """

    name: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""

    def check(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers shared by analyzers ----------------------------------------

    def finding(
        self,
        info: "FunctionInfo",
        node: ast.AST,
        message: str,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a finding anchored at ``node`` inside function ``info``."""
        ctx = info.ctx
        lineno = getattr(node, "lineno", info.node.lineno)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            path=ctx.relpath,
            line=lineno,
            col=col,
            message=message,
            severity=severity if severity is not None else self.severity,
            source_line=ctx.source_line(lineno),
        )


