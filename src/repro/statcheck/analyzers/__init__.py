"""Interprocedural analyzers built on the call graph + dataflow framework.

Three analyzers, each encoding a scaling invariant the ROADMAP's next
pushes depend on; see the individual modules for the rationale.
"""

from __future__ import annotations

from repro.statcheck.analyzers.allocations import HotLoopAllocationAnalyzer
from repro.statcheck.analyzers.base import Analyzer
from repro.statcheck.analyzers.collectives import CollectiveOrderingAnalyzer
from repro.statcheck.analyzers.precision import PrecisionFlowAnalyzer

__all__ = [
    "ALL_ANALYZERS",
    "Analyzer",
    "CollectiveOrderingAnalyzer",
    "HotLoopAllocationAnalyzer",
    "PrecisionFlowAnalyzer",
    "get_analyzers",
]

#: CLI keyword -> analyzer class ("all" expands to every entry, in order).
ALL_ANALYZERS: dict[str, type[Analyzer]] = {
    "precision": PrecisionFlowAnalyzer,
    "collectives": CollectiveOrderingAnalyzer,
    "allocations": HotLoopAllocationAnalyzer,
}


def get_analyzers(selection: str | list[str] | None) -> list[Analyzer]:
    """Resolve an ``--analysis`` selection into analyzer instances."""
    if selection is None:
        return []
    names = [selection] if isinstance(selection, str) else list(selection)
    if "all" in names:
        names = list(ALL_ANALYZERS)
    unknown = [n for n in names if n not in ALL_ANALYZERS]
    if unknown:
        raise ValueError(
            f"unknown analysis {unknown}; available: {sorted(ALL_ANALYZERS)} or 'all'"
        )
    seen: list[str] = []
    for n in names:
        if n not in seen:
            seen.append(n)
    return [ALL_ANALYZERS[n]() for n in seen]
