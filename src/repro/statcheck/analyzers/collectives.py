"""collective-ordering: deadlock shapes in the rank-parallel layer.

MPI programs hang, not crash, when ranks disagree about which collective
comes next.  ``repro.comm`` simulates the rank-parallel execution inside
one process (so such bugs show up as wrong answers or test hangs), and the
ROADMAP's O(10^3)-rank refactor will make the call patterns strictly more
complex -- the time to pin the discipline is before that refactor.

The analyzer enumerates execution paths per function in ``repro.comm``
(loops taken zero-or-once, ``raise`` paths dropped as legitimate error
exits) and extracts the sequence of collective / point-to-point calls on
each path.  Three checks:

* **rank-dependent collectives** (ERROR): a collective lexically inside a
  conditional whose test mentions a rank -- the canonical "some ranks
  enter the allreduce, some don't" deadlock.
* **divergent ordering across branches** (WARNING): two branches of an
  ``if`` issue collective sequences where neither is a prefix of the
  other.  Pure prefix divergence is tolerated: it is the uniform
  early-exit convention every iterative solver uses (all ranks break out
  of the loop together after a collective-agreed test).
* **unpaired point-to-point** (WARNING): an execution path with differing
  send and receive counts.

Call sequences are flattened through the call graph: a call into another
``repro.comm`` function splices that function's collective sequence in
place when it is unambiguous (all paths agree), and an opaque marker when
it is not -- the marker is identical on every path, so it cannot fake a
divergence, but it still participates in ordering.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from repro.statcheck.analyzers.base import Analyzer
from repro.statcheck.finding import Finding, Severity
from repro.statcheck.rules.base import attr_chain

if TYPE_CHECKING:  # pragma: no cover
    from repro.statcheck.callgraph import CallGraph, FunctionInfo, Project

__all__ = ["CollectiveOrderingAnalyzer"]

#: Method names that denote a collective operation on a communicator.
COLLECTIVE_NAMES = {
    "allreduce_scalar", "allreduce_array", "allreduce", "allgather", "alltoall",
    "barrier", "bcast", "broadcast", "exchange", "gather", "reduce", "scatter",
}
SEND_NAMES = {"send", "isend"}
RECV_NAMES = {"recv", "irecv"}

#: Cap on enumerated paths per function; beyond it the function is skipped
#: (a conservative bail-out, not a silent partial answer).
PATH_CAP = 64

_EventFn = Callable[[ast.Call], tuple[str, ...]]


@dataclass(frozen=True)
class _Path:
    events: tuple[str, ...]
    status: str  # "ok" | "return" | "break" | "continue" | "raise"


def _calls_in(node: ast.AST | None) -> list[ast.Call]:
    """Call nodes in ``node`` outside nested defs/classes/lambdas, in
    lexical order (a stable approximation of evaluation order)."""
    if node is None:
        return []
    out: list[ast.Call] = []
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if cur is not node and isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        if isinstance(cur, ast.Call):
            out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    out.sort(key=lambda c: (c.lineno, c.col_offset))
    return out


def _events_in(node: ast.AST | None, ev: _EventFn) -> tuple[str, ...]:
    events: list[str] = []
    for call in _calls_in(node):
        events.extend(ev(call))
    return tuple(events)


def _dedup(paths: list[_Path], cap: int) -> list[_Path]:
    seen: set[_Path] = set()
    out: list[_Path] = []
    for p in paths:
        if p not in seen:
            seen.add(p)
            out.append(p)
    if len(out) > cap:
        raise _TooManyPaths()
    return out


class _TooManyPaths(Exception):
    pass


def enumerate_paths(stmts: list[ast.stmt], ev: _EventFn, cap: int = PATH_CAP) -> list[_Path]:
    """All event sequences one execution of ``stmts`` can produce."""
    paths = [_Path((), "ok")]
    for stmt in stmts:
        nxt: list[_Path] = []
        for p in paths:
            if p.status != "ok":
                nxt.append(p)
                continue
            for q in _stmt_paths(stmt, ev, cap):
                nxt.append(_Path(p.events + q.events, q.status))
        paths = _dedup(nxt, cap)
    return paths


def _loop_paths(
    head_events: tuple[str, ...], body: list[ast.stmt], ev: _EventFn, cap: int
) -> list[_Path]:
    """Zero-or-one executions of a loop body; break/continue end the loop."""
    out = [_Path(head_events, "ok")]
    for p in enumerate_paths(body, ev, cap):
        status = "ok" if p.status in ("break", "continue") else p.status
        out.append(_Path(head_events + p.events, status))
    return out


def _stmt_paths(stmt: ast.stmt, ev: _EventFn, cap: int) -> list[_Path]:
    if isinstance(stmt, ast.If):
        test = _events_in(stmt.test, ev)
        out: list[_Path] = []
        for branch in (stmt.body, stmt.orelse):
            for p in enumerate_paths(branch, ev, cap):
                out.append(_Path(test + p.events, p.status))
        return out
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _loop_paths(_events_in(stmt.iter, ev), stmt.body, ev, cap)
    if isinstance(stmt, ast.While):
        return _loop_paths(_events_in(stmt.test, ev), stmt.body, ev, cap)
    if isinstance(stmt, ast.Return):
        return [_Path(_events_in(stmt.value, ev), "return")]
    if isinstance(stmt, ast.Raise):
        return [_Path((), "raise")]
    if isinstance(stmt, ast.Break):
        return [_Path((), "break")]
    if isinstance(stmt, ast.Continue):
        return [_Path((), "continue")]
    if isinstance(stmt, ast.Try):
        # The happy path; handler bodies are error paths and stay out of
        # the ordering contract (like raise-terminated paths).
        return enumerate_paths(stmt.body + stmt.orelse + stmt.finalbody, ev, cap)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        head: tuple[str, ...] = ()
        for item in stmt.items:
            head += _events_in(item.context_expr, ev)
        return [
            _Path(head + p.events, p.status) for p in enumerate_paths(stmt.body, ev, cap)
        ]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return [_Path((), "ok")]
    return [_Path(_events_in(stmt, ev), "ok")]


def _is_prefix(a: tuple[str, ...], b: tuple[str, ...]) -> bool:
    return len(a) <= len(b) and b[: len(a)] == a


def _mentions_rank(node: ast.AST) -> bool:
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and "rank" in n.id.lower():
            return True
        if isinstance(n, ast.Attribute) and "rank" in n.attr.lower():
            return True
    return False


def _direct_event(call: ast.Call) -> str | None:
    """Collective/p2p name when ``call`` is a communicator method call."""
    chain = attr_chain(call.func)
    if chain is None or "." not in chain:
        return None
    final = chain.rsplit(".", 1)[-1]
    if final in COLLECTIVE_NAMES or final in SEND_NAMES or final in RECV_NAMES:
        return final
    return None


class CollectiveOrderingAnalyzer(Analyzer):
    name = "collective-ordering"
    severity = Severity.WARNING
    description = (
        "deadlock shapes in repro.comm: rank-conditional collectives, divergent "
        "collective orderings across branches, unpaired send/recv"
    )

    def check(self, project: "Project") -> Iterator[Finding]:
        graph = project.callgraph
        scope = {
            qname
            for qname, info in graph.functions.items()
            if info.ctx.in_package("comm")
        }
        self._seq_memo: dict[str, tuple[str, ...]] = {}
        for qname in sorted(scope):
            yield from self._check_function(graph, scope, graph.functions[qname])

    # -- interprocedural sequence summaries ---------------------------------

    def _event_fn(self, graph: "CallGraph", scope: set[str], qname: str) -> _EventFn:
        sites = {id(s.node): s.callee for s in graph.callees_of(qname)}

        def ev(call: ast.Call) -> tuple[str, ...]:
            direct = _direct_event(call)
            if direct is not None:
                return (direct,)
            callee = sites.get(id(call))
            if callee is not None and callee in scope:
                return self._callee_seq(graph, scope, callee, stack=(qname,))
            return ()

        return ev

    def _callee_seq(
        self, graph: "CallGraph", scope: set[str], qname: str, stack: tuple[str, ...]
    ) -> tuple[str, ...]:
        """Canonical collective sequence of ``qname``: the common event
        sequence of all its non-raise paths, or one opaque marker when the
        paths disagree or recursion makes the answer path-dependent."""
        if qname in self._seq_memo:
            return self._seq_memo[qname]
        if qname in stack or len(stack) > 16:
            return (f"<{qname}>",)
        sites = {id(s.node): s.callee for s in graph.callees_of(qname)}

        def ev(call: ast.Call) -> tuple[str, ...]:
            direct = _direct_event(call)
            if direct is not None:
                return (direct,)
            callee = sites.get(id(call))
            if callee is not None and callee in scope:
                return self._callee_seq(graph, scope, callee, stack + (qname,))
            return ()

        info = graph.functions[qname]
        try:
            paths = enumerate_paths(info.node.body, ev)
        except _TooManyPaths:
            seq: tuple[str, ...] = (f"<{qname}>",)
        else:
            seqs = {p.events for p in paths if p.status != "raise"}
            if len(seqs) == 1:
                seq = next(iter(seqs))
            elif not any(seqs):
                seq = ()
            else:
                seq = (f"<{qname}>",)
        self._seq_memo[qname] = seq
        return seq

    # -- the three checks ----------------------------------------------------

    def _check_function(
        self, graph: "CallGraph", scope: set[str], info: "FunctionInfo"
    ) -> Iterator[Finding]:
        ctx = info.ctx
        ev = self._event_fn(graph, scope, info.qname)

        # 1. Collectives under rank-dependent conditionals (lexical).
        for call in _calls_in(info.node):
            name = _direct_event(call)
            if name is None or name in SEND_NAMES or name in RECV_NAMES:
                continue  # p2p under rank conditionals is the normal idiom
            for anc in ctx.ancestors(call):
                if anc is info.node:
                    break
                if isinstance(anc, ast.If) and _mentions_rank(anc.test):
                    yield self.finding(
                        info,
                        call,
                        f"collective '{name}' under a rank-dependent conditional; "
                        "all ranks must reach every collective",
                        severity=Severity.ERROR,
                    )
                    break

        # 2. Divergent collective orderings across if-branches.
        ifs = [
            n
            for n in ast.walk(info.node)
            if isinstance(n, ast.If) and self._inside(ctx, n, info.node)
        ]
        flagged: list[ast.If] = []
        # Innermost first, so one divergence is reported once, not at
        # every enclosing if.
        for if_node in sorted(ifs, key=lambda n: -self._depth(ctx, n)):
            if any(if_node in ctx.ancestors(f) for f in flagged):
                continue
            try:
                a = {p.events for p in enumerate_paths(if_node.body, ev) if p.status != "raise"}
                b = {p.events for p in enumerate_paths(if_node.orelse, ev) if p.status != "raise"}
            except _TooManyPaths:
                continue
            if any(
                not _is_prefix(x, y) and not _is_prefix(y, x)
                for x in a
                for y in b
            ):
                flagged.append(if_node)
                yield self.finding(
                    info,
                    if_node,
                    "collective orderings diverge across these branches "
                    "(neither sequence is a prefix of the other): deadlock shape",
                )

        # 3. Send/recv pairing per execution path.
        try:
            paths = enumerate_paths(info.node.body, ev)
        except _TooManyPaths:
            return
        for p in paths:
            if p.status == "raise":
                continue
            sends = sum(1 for e in p.events if e in SEND_NAMES)
            recvs = sum(1 for e in p.events if e in RECV_NAMES)
            if sends != recvs:
                yield self.finding(
                    info,
                    info.node,
                    f"execution path issues {sends} send(s) but {recvs} recv(s); "
                    "unpaired point-to-point traffic deadlocks under rendezvous",
                )
                break

    @staticmethod
    def _inside(ctx, node: ast.AST, func: ast.AST) -> bool:
        """True when ``node``'s nearest enclosing def is ``func``."""
        for anc in ctx.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return anc is func
        return False

    @staticmethod
    def _depth(ctx, node: ast.AST) -> int:
        return sum(1 for _ in ctx.ancestors(node))
