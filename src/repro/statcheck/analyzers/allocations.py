"""hot-loop-allocation: per-iteration array allocations on hot paths.

ROADMAP item 1's remaining headroom in the dealiased convection kernel --
and a good slice of the pressure-solve budget -- is allocator traffic:
``np.zeros``/``.copy()``/``.astype()`` and whole-array binary-op
temporaries created fresh on every iteration of an inner loop.  The fix
is always the same (hoist a scratch buffer, update in place), and the
in-place forms of the solver recurrences are bit-identical under IEEE
arithmetic, so the rewrites are safe even for golden-trajectory-tested
code.

Hot scope: ``repro.precond.*``, ``repro.solvers.*``, ``repro.sem.operators``,
``repro.sem.coef`` and ``repro.comm.distributed_solver``.  Setup-time
functions (``__init__``, ``build_*``/``_build_*``, ``setup*``) are exempt:
construction cost is paid once and hoisting there hurts readability for
nothing.

Three checks:

* direct allocator calls lexically inside a loop (``for``/``while`` or a
  comprehension) of a hot function (WARNING);
* loop-carried recurrence rebinds ``x = <expr containing x>`` that
  reallocate ``x`` every iteration instead of updating in place (WARNING);
* calls, inside such a loop, to a project function that the call graph
  says allocates (INFO -- advisory, because the callee may be amortized
  or conditional; the interprocedural *allocates* summary is a boolean
  fixpoint over the call graph).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.statcheck.analyzers.base import Analyzer
from repro.statcheck.finding import Finding, Severity
from repro.statcheck.rules.base import attr_chain

if TYPE_CHECKING:  # pragma: no cover
    from repro.statcheck.callgraph import CallGraph, FunctionInfo, Project

__all__ = ["HotLoopAllocationAnalyzer"]

#: Modules (exact) and packages (prefix) forming the hot scope.
HOT_MODULES = {
    "repro.sem.operators",
    "repro.sem.coef",
    "repro.comm.distributed_solver",
    # The batched exchange path runs once per simulated collective round at
    # O(10^4) ranks; its fill loops must stay allocator-free.
    "repro.comm.batched",
}
HOT_PACKAGES = ("precond", "solvers")

#: np.* / numpy.* callables that allocate a fresh array.
_NP_ALLOCATORS = {
    "zeros", "empty", "ones", "full", "zeros_like", "empty_like", "ones_like",
    "full_like", "array", "copy", "concatenate", "stack", "hstack", "vstack",
    "tile", "repeat", "outer", "kron",
}
#: Methods that allocate a fresh array regardless of receiver.
_METHOD_ALLOCATORS = {"copy", "astype", "flatten"}

#: Function-name prefixes/names exempt as setup-time.
_SETUP_NAMES = {"__init__", "__post_init__"}
_SETUP_PREFIXES = ("build", "_build", "setup", "_setup")

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def is_hot(info: "FunctionInfo") -> bool:
    if info.ctx.module in HOT_MODULES:
        pass
    elif not info.ctx.in_package(*HOT_PACKAGES):
        return False
    name = info.name
    if name in _SETUP_NAMES or name.startswith(_SETUP_PREFIXES):
        return False
    return True


def _allocator_name(call: ast.Call) -> str | None:
    """Dotted name when ``call`` allocates a fresh array, else None."""
    chain = attr_chain(call.func)
    if chain is not None:
        parts = chain.split(".")
        if parts[0] in ("np", "numpy") and parts[-1] in _NP_ALLOCATORS:
            return chain
        if len(parts) >= 2 and parts[-1] in _METHOD_ALLOCATORS:
            return chain
        return None
    # Method allocators on non-name receivers: ``ze[idx].copy()``.
    if isinstance(call.func, ast.Attribute) and call.func.attr in _METHOD_ALLOCATORS:
        return f"<expr>.{call.func.attr}"
    return None


def _enclosing_loop(ctx, node: ast.AST, func: ast.AST) -> ast.AST | None:
    """Nearest ``for``/``while`` between ``node`` and its function.

    Comprehensions are deliberately *not* loops here: a comprehension that
    builds a list of per-chunk arrays is the construction of the result,
    not a per-iteration leak.  The per-solver-iteration cost of calling an
    allocating helper from inside a real loop is what the interprocedural
    check reports.
    """
    for anc in ctx.ancestors(node):
        if anc is func:
            return None
        if isinstance(anc, _LOOPS):
            return anc
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return None
    return None


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _allocates(info: "FunctionInfo") -> bool:
    """Syntactic own-allocation: any allocator call anywhere in the body."""
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call) and _allocator_name(node) is not None:
            return True
    return False


def allocation_summaries(graph: "CallGraph") -> dict[str, bool]:
    """Transitive *allocates* summary per function (boolean fixpoint)."""
    summary = {qname: _allocates(info) for qname, info in graph.functions.items()}
    work = [q for q, v in summary.items() if v]
    while work:
        qname = work.pop()
        for caller in graph.callers_of(qname):
            if not summary.get(caller, False):
                summary[caller] = True
                work.append(caller)
    return summary


class HotLoopAllocationAnalyzer(Analyzer):
    name = "hot-loop-allocation"
    severity = Severity.WARNING
    description = (
        "fresh array allocations inside loops of hot paths (precond/solvers/"
        "sem.operators/sem.coef): hoist scratch buffers, update recurrences in place"
    )

    def check(self, project: "Project") -> Iterator[Finding]:
        graph = project.callgraph
        summaries = allocation_summaries(graph)
        for qname in sorted(graph.functions):
            info = graph.functions[qname]
            if not is_hot(info):
                continue
            yield from self._check_function(graph, summaries, info)

    def _check_function(
        self, graph: "CallGraph", summaries: dict[str, bool], info: "FunctionInfo"
    ) -> Iterator[Finding]:
        ctx = info.ctx
        sites = {id(s.node): s.callee for s in graph.callees_of(info.qname)}
        seen_calls: set[int] = set()

        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call) or id(node) in seen_calls:
                continue
            seen_calls.add(id(node))
            if _enclosing_loop(ctx, node, info.node) is None:
                continue
            name = _allocator_name(node)
            if name is not None:
                yield self.finding(
                    info,
                    node,
                    f"'{name}' allocates a fresh array every loop iteration; "
                    "hoist a scratch buffer outside the loop",
                )
                continue
            callee = sites.get(id(node))
            if callee is not None and summaries.get(callee, False):
                short = callee.rsplit(":", 1)[-1]
                yield self.finding(
                    info,
                    node,
                    f"call to '{short}' allocates arrays on every loop iteration "
                    "(interprocedural); consider an out= parameter or caching",
                    severity=Severity.INFO,
                )

        # Loop-carried recurrence rebinds: x = <binop/comprehension over x>.
        for stmt in ast.walk(info.node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not isinstance(stmt.value, (ast.BinOp, *_COMPREHENSIONS)):
                continue
            if _enclosing_loop(ctx, stmt, info.node) is None:
                continue
            if target.id in _names_in(stmt.value):
                yield self.finding(
                    info,
                    stmt,
                    f"loop-carried recurrence '{target.id} = ...' reallocates "
                    f"'{target.id}' every iteration; update in place "
                    "(the in-place form is bit-identical under IEEE addition)",
                )
