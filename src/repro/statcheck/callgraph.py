"""Project-wide call graph for the interprocedural analyzers.

The graph is deliberately conservative: an edge exists only when the
callee can be resolved with high confidence, and everything else is left
*unresolved* (analyzers treat unresolved calls as opaque).  Resolution
covers the cases that matter for this codebase:

* ``f(...)`` where ``f`` is a module-level function of the same module or
  imported with ``from <project module> import f``;
* ``self.m(...)`` inside a class body, resolved to the method ``m`` of
  that class;
* ``alias.f(...)`` where ``alias`` names a project module (``import
  repro.x as alias`` / ``from repro import x``);
* ``obj.m(...)`` where exactly **one** class in the whole project defines
  a method called ``m`` (unique-method-name resolution -- the lightweight
  cousin of class-hierarchy analysis).  Method names defined by several
  classes (``add``, ``solve``, ...) stay unresolved rather than guessed.

Nested ``def``s are not registered as call-graph nodes; calls inside them
are attributed to nobody (closures in this tree are setup-time geometry
maps, not solver paths).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.statcheck.engine import ModuleContext, iter_python_files
from repro.statcheck.rules.base import attr_chain

__all__ = ["CallGraph", "CallSite", "FunctionInfo", "Project", "build_callgraph"]

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Method names shared with builtin containers / ndarrays / files: excluded
#: from unique-method-name resolution (see :meth:`CallGraph.resolve_method`).
_BUILTIN_METHOD_NAMES = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse",
    "index", "count", "get", "items", "keys", "values", "update", "setdefault",
    "add", "discard", "union", "intersection", "join", "split", "strip",
    "startswith", "endswith", "format", "replace", "encode", "decode",
    "read", "write", "close", "flush", "seek", "copy", "astype", "reshape",
    "ravel", "flatten", "transpose", "fill", "sum", "mean", "min", "max",
    "dot", "tolist", "item",
})


@dataclass
class FunctionInfo:
    """One analyzable function or method in the project."""

    qname: str  # "repro.sem.coef:Coefficients.rebuild" / "repro.sem.coef:helper"
    module: str
    ctx: ModuleContext
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> list[str]:
        a = self.node.args
        names = [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]
        if a.vararg is not None:
            names.append(a.vararg.arg)
        if a.kwarg is not None:
            names.append(a.kwarg.arg)
        return names


@dataclass
class CallSite:
    """One call expression inside a registered function."""

    caller: str  # qname of the enclosing function
    node: ast.Call
    chain: str | None  # dotted source text of the callee ("np.dot", "self.f")
    callee: str | None  # resolved qname, or None when opaque


class CallGraph:
    """Functions, call sites and caller/callee adjacency."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.sites: dict[str, list[CallSite]] = {}
        self.callers: dict[str, set[str]] = {}
        #: method name -> qnames of every class method with that name.
        self.methods_by_name: dict[str, list[str]] = {}

    def callees_of(self, qname: str) -> list[CallSite]:
        return self.sites.get(qname, [])

    def callers_of(self, qname: str) -> set[str]:
        return self.callers.get(qname, set())

    def function(self, qname: str) -> FunctionInfo | None:
        return self.functions.get(qname)

    def resolve_method(self, name: str) -> str | None:
        """Unique-method-name resolution; None when absent or ambiguous.

        Names that builtin containers/arrays also define (``append``,
        ``get``, ``copy``, ...) never resolve this way: a project class
        happening to define the only method called ``append`` must not
        capture every ``list.append`` call in the tree.
        """
        if name in _BUILTIN_METHOD_NAMES:
            return None
        hits = self.methods_by_name.get(name, [])
        return hits[0] if len(hits) == 1 else None


def _project_module(name: str, known: set[str]) -> str | None:
    """Map an imported dotted name to a known project module, if any."""
    return name if name in known else None


def _module_imports(ctx: ModuleContext, known: set[str]) -> dict[str, str]:
    """Local alias -> imported project symbol.

    Values are either ``"<module>"`` (the alias names a module) or
    ``"<module>:<symbol>"`` (the alias names a function/class imported
    from a project module).
    """
    out: dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mod = _project_module(alias.name, known)
                if mod is not None:
                    out[alias.asname or alias.name.split(".")[0]] = mod
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                full = f"{node.module}.{alias.name}"
                if _project_module(full, known) is not None:
                    out[alias.asname or alias.name] = full
                elif _project_module(node.module, known) is not None:
                    out[alias.asname or alias.name] = f"{node.module}:{alias.name}"
    return out


def build_callgraph(modules: list[ModuleContext]) -> CallGraph:
    """Build the project call graph over parsed modules."""
    graph = CallGraph()
    known_modules = {ctx.module for ctx in modules}

    # Pass 1: register module-level functions and class methods.
    for ctx in modules:
        body = getattr(ctx.tree, "body", [])
        for stmt in body:
            if isinstance(stmt, _FuncDef):
                qname = f"{ctx.module}:{stmt.name}"
                graph.functions[qname] = FunctionInfo(qname, ctx.module, ctx, stmt)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, _FuncDef):
                        qname = f"{ctx.module}:{stmt.name}.{sub.name}"
                        graph.functions[qname] = FunctionInfo(
                            qname, ctx.module, ctx, sub, class_name=stmt.name
                        )
                        graph.methods_by_name.setdefault(sub.name, []).append(qname)

    # Pass 2: resolve call sites.
    for ctx in modules:
        imports = _module_imports(ctx, known_modules)
        module_funcs = {
            info.name: qname
            for qname, info in graph.functions.items()
            if info.module == ctx.module and info.class_name is None
        }
        body = getattr(ctx.tree, "body", [])
        for stmt in body:
            if isinstance(stmt, _FuncDef):
                _resolve_function(graph, ctx, stmt, None, imports, module_funcs)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, _FuncDef):
                        _resolve_function(
                            graph, ctx, sub, stmt.name, imports, module_funcs
                        )
    return graph


def _own_calls(node: ast.AST) -> list[ast.Call]:
    """Call nodes lexically inside ``node`` but outside nested defs/classes."""
    out: list[ast.Call] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        cur = stack.pop()
        if isinstance(cur, (*_FuncDef, ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(cur, ast.Call):
            out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    out.sort(key=lambda c: (c.lineno, c.col_offset))
    return out


def _resolve_function(
    graph: CallGraph,
    ctx: ModuleContext,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    class_name: str | None,
    imports: dict[str, str],
    module_funcs: dict[str, str],
) -> None:
    qname = (
        f"{ctx.module}:{class_name}.{node.name}"
        if class_name
        else f"{ctx.module}:{node.name}"
    )
    info = graph.functions.get(qname)
    if info is None:  # pragma: no cover - registration and resolution agree
        return
    local_params = set(info.params)
    sites: list[CallSite] = []
    for call in _own_calls(node):
        chain = attr_chain(call.func)
        callee = _resolve_call(
            graph, ctx, chain, class_name, imports, module_funcs, local_params
        )
        sites.append(CallSite(caller=qname, node=call, chain=chain, callee=callee))
        if callee is not None:
            graph.callers.setdefault(callee, set()).add(qname)
    graph.sites[qname] = sites


def _resolve_call(
    graph: CallGraph,
    ctx: ModuleContext,
    chain: str | None,
    class_name: str | None,
    imports: dict[str, str],
    module_funcs: dict[str, str],
    local_params: set[str],
) -> str | None:
    if chain is None:
        return None
    parts = chain.split(".")
    if len(parts) == 1:
        name = parts[0]
        if name in local_params:
            return None  # calling a callable parameter: opaque
        if name in module_funcs:
            return module_funcs[name]
        target = imports.get(name)
        if target is not None and ":" in target:
            mod, sym = target.split(":", 1)
            qname = f"{mod}:{sym}"
            return qname if qname in graph.functions else None
        return None
    if parts[0] == "self" and len(parts) == 2 and class_name is not None:
        qname = f"{ctx.module}:{class_name}.{parts[1]}"
        if qname in graph.functions:
            return qname
        return graph.resolve_method(parts[1])
    if len(parts) == 2:
        target = imports.get(parts[0])
        if target is not None and ":" not in target:
            qname = f"{target}:{parts[1]}"
            if qname in graph.functions:
                return qname
    # Fall back to unique-method-name resolution on the final attribute.
    return graph.resolve_method(parts[-1])


class Project:
    """All parsed modules of one run plus the (lazily built) call graph."""

    def __init__(
        self, modules: list[ModuleContext], errors: list[str] | None = None
    ) -> None:
        self.modules = modules
        self.errors = list(errors or [])
        self._graph: CallGraph | None = None
        self._by_relpath = {ctx.relpath: ctx for ctx in modules}

    @classmethod
    def load(cls, paths: list[Path], root: Path | None = None) -> "Project":
        """Parse every Python file under ``paths`` (parse errors reported)."""
        modules: list[ModuleContext] = []
        errors: list[str] = []
        for path in iter_python_files(paths):
            try:
                modules.append(ModuleContext.from_path(path, root=root))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                errors.append(f"{path}: {type(exc).__name__}: {exc}")
        return cls(modules, errors)

    @property
    def callgraph(self) -> CallGraph:
        if self._graph is None:
            self._graph = build_callgraph(self.modules)
        return self._graph

    def module_by_relpath(self, relpath: str) -> ModuleContext | None:
        return self._by_relpath.get(relpath)

    def functions_in_packages(self, *packages: str) -> list[FunctionInfo]:
        return [
            info
            for info in self.callgraph.functions.values()
            if info.ctx.in_package(*packages)
        ]
