"""Command-line interface: ``python -m repro.statcheck src/``.

Exit codes: 0 clean (no non-baselined findings at or above ``--fail-on``),
1 new findings, 2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.statcheck.analyzers import ALL_ANALYZERS, get_analyzers
from repro.statcheck.baseline import Baseline, partition_findings
from repro.statcheck.engine import check_project
from repro.statcheck.finding import Severity
from repro.statcheck.rules import ALL_RULES, get_rules
from repro.statcheck.sarif import to_sarif

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statcheck",
        description="Domain-invariant static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, default=[Path("src")],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline JSON; baselined findings are reported but do not fail",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline (or stdout) and exit 0",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="RULE",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--analysis", action="append", default=None,
        choices=[*ALL_ANALYZERS, "all"],
        help="also run this interprocedural analyzer (repeatable; 'all' runs every one)",
    )
    parser.add_argument(
        "--fail-on", default="warning", choices=[s.name.lower() for s in Severity],
        help="minimum severity of NEW findings that fails the run (default: warning)",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        help="output format (default: text)",
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="also print findings covered by the baseline",
    )
    parser.add_argument("--list-rules", action="store_true", help="list rules and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.name:<22s} {cls.severity.name.lower():<8s} {cls.description}", file=out)
        for acls in ALL_ANALYZERS.values():
            print(
                f"{acls.name:<22s} {acls.severity.name.lower():<8s} {acls.description}",
                file=out,
            )
        return 0

    try:
        rules = get_rules(args.select)
        analyzers = get_analyzers(args.analysis)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings, errors = check_project(args.paths, rules, analyzers)
    for err in errors:
        print(f"error: {err}", file=sys.stderr)

    if args.write_baseline:
        baseline = Baseline.from_findings(findings)
        if args.baseline is not None:
            baseline.write(args.baseline)
            print(
                f"wrote baseline with {len(baseline)} finding(s) to {args.baseline}",
                file=out,
            )
        else:
            json.dump({f.fingerprint: f.to_json() for f in findings}, out, indent=2)
            print(file=out)
        return 0 if not errors else 2

    baseline = Baseline.load(args.baseline) if args.baseline else Baseline.empty()
    new, baselined, stale = partition_findings(findings, baseline)
    threshold = Severity.parse(args.fail_on)
    failing = [f for f in new if f.severity >= threshold]
    advisory = [f for f in new if f.severity < threshold]

    if args.format == "sarif":
        json.dump(to_sarif(new, baselined, checks=[*rules, *analyzers]), out, indent=2)
        print(file=out)
    elif args.format == "json":
        json.dump(
            {
                "new": [f.to_json() for f in new],
                "baselined": [f.to_json() for f in baselined],
                "stale_fingerprints": stale,
                "failing": len(failing),
            },
            out,
            indent=2,
        )
        print(file=out)
    else:
        for f in new:
            print(f.render(), file=out)
        if args.show_baselined:
            for f in baselined:
                print(f"{f.render()}  (baselined)", file=out)
        if stale:
            print(
                f"note: {len(stale)} baselined finding(s) no longer occur; "
                f"regenerate the baseline to ratchet it down",
                file=out,
            )
        summary = (
            f"{len(findings)} finding(s): {len(new)} new "
            f"({len(failing)} at/above --fail-on={threshold.name.lower()}), "
            f"{len(baselined)} baselined"
        )
        print(summary, file=out)

    if errors:
        return 2
    if failing:
        return 1
    if advisory and args.format != "sarif":
        print(
            f"note: {len(advisory)} new finding(s) below the fail threshold",
            file=out,
        )
    return 0
