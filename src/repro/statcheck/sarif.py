"""SARIF 2.1.0 export for statcheck findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the file produced here annotates the exact
lines on a PR.  The mapping is deliberately small:

* one ``run`` with one ``tool.driver`` listing every rule/analyzer as a
  ``reportingDescriptor``;
* one ``result`` per finding, with the statcheck fingerprint carried in
  ``partialFingerprints`` (key ``statcheckFingerprint/v1``) so GitHub's
  alert deduplication matches the baseline's identity notion;
* ``baselineState`` distinguishes ``new`` findings from ``unchanged``
  (baselined) ones, mirroring the CLI's gate semantics.

Severities map INFO -> ``note``, WARNING -> ``warning``, ERROR ->
``error``.
"""

from __future__ import annotations

from typing import Iterable

from repro.statcheck.finding import Finding, Severity

__all__ = ["to_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_FINGERPRINT_KEY = "statcheckFingerprint/v1"

_LEVELS = {Severity.INFO: "note", Severity.WARNING: "warning", Severity.ERROR: "error"}


def _descriptor(name: str, description: str, severity: Severity) -> dict:
    return {
        "id": name,
        "name": name,
        "shortDescription": {"text": description or name},
        "defaultConfiguration": {"level": _LEVELS[severity]},
    }


def _result(finding: Finding, baseline_state: str, rule_index: dict[str, int]) -> dict:
    result: dict = {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {_FINGERPRINT_KEY: finding.fingerprint},
        "baselineState": baseline_state,
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    return result


def to_sarif(
    new: list[Finding],
    baselined: list[Finding],
    checks: Iterable = (),
) -> dict:
    """Build the SARIF log object (serialize with ``json.dump``).

    ``checks`` is the list of rule/analyzer classes or instances that ran
    (anything with ``name``/``description``/``severity`` attributes);
    they become the driver's rule descriptors.
    """
    descriptors = []
    rule_index: dict[str, int] = {}
    for check in checks:
        name = getattr(check, "name", "")
        if not name or name in rule_index:
            continue
        rule_index[name] = len(descriptors)
        descriptors.append(
            _descriptor(name, getattr(check, "description", ""), check.severity)
        )
    results = [_result(f, "new", rule_index) for f in new]
    results += [_result(f, "unchanged", rule_index) for f in baselined]
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.statcheck",
                        "rules": descriptors,
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
