"""Entry point for ``python -m repro.statcheck``."""

import sys

from repro.statcheck.cli import main

if __name__ == "__main__":
    sys.exit(main())
