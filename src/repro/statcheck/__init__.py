"""Domain-invariant static analysis and runtime array contracts.

Three cross-checking layers guard the invariants the paper's claims rest
on (performance portability through the device layer, bitwise-reproducible
DNS, a closed span taxonomy, a disciplined mixed-precision split):

* the **linter** (``python -m repro.statcheck src/``) -- per-module AST
  rules with per-finding severities, inline ``# statcheck: ignore[RULE]``
  suppressions and a committed count-based baseline
  (``statcheck_baseline.json``) so pre-existing findings don't block CI
  while new ones do;
* the **analyzers** (``--analysis {precision,collectives,allocations,all}``)
  -- flow-sensitive interprocedural analyses over the project call graph
  (:mod:`repro.statcheck.callgraph`) and a fixpoint dataflow framework
  (:mod:`repro.statcheck.dataflow`): dtype provenance through the
  mixed-precision stack, collective-ordering deadlock shapes in
  ``repro.comm``, and per-iteration allocations on hot loops.  Analyzer
  findings share the rules' suppression grammar, baseline and output
  formats (including ``--format sarif`` for code-scanning annotation);
* the **contracts** (:mod:`repro.statcheck.contracts`) -- shape/dtype
  specifications for the core ``(nelem, n, n, n)`` field layout, enforced
  at call boundaries when enabled (the test suite turns them on; runs
  default to zero-cost off).

See README "Static analysis & contracts".
"""

from repro.statcheck.analyzers import ALL_ANALYZERS, Analyzer, get_analyzers
from repro.statcheck.baseline import Baseline, partition_findings
from repro.statcheck.callgraph import CallGraph, Project, build_callgraph
from repro.statcheck.dataflow import AbstractInterpreter, FlatLattice, SummarySolver
from repro.statcheck.engine import (
    ModuleContext,
    check_paths,
    check_project,
    iter_python_files,
)
from repro.statcheck.finding import Finding, Severity
from repro.statcheck.rules import ALL_RULES, Rule, get_rules
from repro.statcheck.sarif import to_sarif

__all__ = [
    "ALL_ANALYZERS",
    "ALL_RULES",
    "AbstractInterpreter",
    "Analyzer",
    "Baseline",
    "CallGraph",
    "FlatLattice",
    "Finding",
    "ModuleContext",
    "Project",
    "Rule",
    "Severity",
    "SummarySolver",
    "build_callgraph",
    "check_paths",
    "check_project",
    "get_analyzers",
    "get_rules",
    "iter_python_files",
    "partition_findings",
    "to_sarif",
]
