"""Domain-invariant static analysis and runtime array contracts.

Two cross-checking layers guard the invariants the paper's claims rest
on (performance portability through the device layer, bitwise-reproducible
DNS, a closed span taxonomy):

* the **linter** (``python -m repro.statcheck src/``) -- AST rules with
  per-finding severities, inline ``# statcheck: ignore[RULE]``
  suppressions and a committed count-based baseline
  (``statcheck_baseline.json``) so pre-existing findings don't block CI
  while new ones do;
* the **contracts** (:mod:`repro.statcheck.contracts`) -- shape/dtype
  specifications for the core ``(nelem, n, n, n)`` field layout, enforced
  at call boundaries when enabled (the test suite turns them on; runs
  default to zero-cost off).

See README "Static analysis & contracts".
"""

from repro.statcheck.baseline import Baseline, partition_findings
from repro.statcheck.engine import ModuleContext, check_paths, iter_python_files
from repro.statcheck.finding import Finding, Severity
from repro.statcheck.rules import ALL_RULES, Rule, get_rules

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "check_paths",
    "get_rules",
    "iter_python_files",
    "partition_findings",
]
