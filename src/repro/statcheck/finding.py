"""Finding and severity types shared by the statcheck engine and rules.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* deliberately ignores the line number: baselining by
``(path, rule, source line text)`` keeps a committed baseline stable under
unrelated edits that shift code up or down, while still distinguishing
genuinely new occurrences (a second copy of the same offending line in the
same file raises the fingerprint's count above the baselined count).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Finding severity; ordering is by increasing seriousness."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative POSIX path
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    severity: Severity = Severity.WARNING
    source_line: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: path + rule + normalized line text."""
        key = f"{self.path}::{self.rule}::{self.source_line.strip()}"
        return hashlib.sha1(key.encode()).hexdigest()[:16]

    def render(self) -> str:
        """``path:line:col: severity [rule] message`` (editor-clickable)."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.severity.name.lower()} [{self.rule}] {self.message}"
        )

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity.name.lower(),
            "fingerprint": self.fingerprint,
        }
