"""Runtime array contracts: shape/dtype checks at call boundaries.

The counterpart of the static rules: where the linter proves properties
of the *source*, contracts check the *values* crossing the seams of the
solver.  The core currency of the codebase is the elementwise SEM field,
a ``float64`` array of shape ``(nelem, n, n, n)``; a transposed or
down-cast field does not fail loudly -- it produces slightly wrong
physics.  Contracts make it fail loudly, at the boundary it crossed.

Specs are declared with :class:`ArraySpec` and attached with the
:func:`contract` decorator::

    FIELD = ArraySpec("nelem,n,n,n")  # float64 by default

    @contract(u=FIELD, dx=ArraySpec("n,n"), returns=FIELD)
    def ax_poisson(u, coef, dx): ...

Named dimensions bind on first use and must agree across every spec of
the same call (so ``u`` of shape ``(8, 6, 6, 6)`` with ``dx`` of shape
``(5, 5)`` is rejected: ``n`` bound to 6, then saw 5).  ``*`` matches any
extent; an integer pins one.

Checking is **off by default and free when off**: the wrapper costs one
module-flag read per call, and the decorator returns the original
function untouched when ``REPRO_CONTRACTS=0`` could never change (it
cannot -- enabling is dynamic, so the wrapper is always installed, but
the disabled path is a single ``if``).  The test suite enables contracts
for every test (``tests/conftest.py``), which is how the static rules and
the runtime layer cross-check each other: the linter keeps the seams
disciplined, the contracts prove the discipline holds on real data.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Any, Callable, TypeVar

import numpy as np

__all__ = [
    "ArraySpec",
    "ContractViolation",
    "contract",
    "enable_contracts",
    "contracts_enabled",
    "FIELD",
    "FIELD_LIKE",
    "OPERATOR_1D",
]

F = TypeVar("F", bound=Callable[..., Any])


class ContractViolation(TypeError):
    """An array crossed a call boundary with the wrong shape or dtype."""


class _State:
    enabled = os.environ.get("REPRO_CONTRACTS", "") not in ("", "0", "false", "off")


def enable_contracts(on: bool = True) -> bool:
    """Globally enable/disable contract checking; returns the previous state."""
    prev = _State.enabled
    _State.enabled = bool(on)
    return prev


def contracts_enabled() -> bool:
    return _State.enabled


class ArraySpec:
    """Shape/dtype specification for one array argument.

    ``dims`` is a comma-separated spec string (or an iterable): a name
    binds that extent for the whole call, an integer pins it, ``*``
    matches anything.  ``dtype=None`` skips the dtype check.
    """

    __slots__ = ("dims", "dtype", "_dtype_np")

    def __init__(self, dims: str | tuple[object, ...], dtype: object = np.float64) -> None:
        if isinstance(dims, str):
            parts: list[object] = []
            for raw in dims.split(","):
                tok = raw.strip()
                if not tok:
                    raise ValueError(f"empty dimension in spec {dims!r}")
                parts.append(int(tok) if tok.lstrip("-").isdigit() else tok)
            self.dims = tuple(parts)
        else:
            self.dims = tuple(dims)
        self.dtype = dtype
        self._dtype_np = np.dtype(dtype) if dtype is not None else None

    def __repr__(self) -> str:
        dims = ",".join(str(d) for d in self.dims)
        dt = self._dtype_np.name if self._dtype_np is not None else "any"
        return f"ArraySpec({dims!r}, dtype={dt})"

    def validate(
        self, value: object, env: dict[str, int], where: str
    ) -> None:
        """Check ``value`` against this spec, binding named dims into ``env``."""
        if not isinstance(value, np.ndarray):
            raise ContractViolation(
                f"{where}: expected ndarray of shape ({self._dims_text()}), "
                f"got {type(value).__name__}"
            )
        if value.ndim != len(self.dims):
            raise ContractViolation(
                f"{where}: expected {len(self.dims)}-d array "
                f"({self._dims_text()}), got shape {value.shape}"
            )
        if self._dtype_np is not None and value.dtype != self._dtype_np:
            raise ContractViolation(
                f"{where}: expected dtype {self._dtype_np.name}, "
                f"got {value.dtype.name}"
            )
        for axis, (dim, extent) in enumerate(zip(self.dims, value.shape)):
            if dim == "*":
                continue
            if isinstance(dim, int):
                if extent != dim:
                    raise ContractViolation(
                        f"{where}: axis {axis} must have extent {dim}, "
                        f"got {extent} (shape {value.shape})"
                    )
            else:
                bound = env.setdefault(str(dim), extent)
                if bound != extent:
                    raise ContractViolation(
                        f"{where}: axis {axis} ({dim}={extent}) conflicts with "
                        f"{dim}={bound} bound earlier in this call "
                        f"(shape {value.shape})"
                    )

    def _dims_text(self) -> str:
        return ", ".join(str(d) for d in self.dims)


#: The core elementwise SEM field layout: ``(nelem, n, n, n)`` float64.
FIELD = ArraySpec("nelem,n,n,n")
#: Field layout with any dtype (masks, index fields).
FIELD_LIKE = ArraySpec("nelem,n,n,n", dtype=None)
#: A 1-D tensor operator row space, e.g. the ``(n, n)`` derivative matrix.
OPERATOR_1D = ArraySpec("n,n")


def contract(
    returns: ArraySpec | tuple[ArraySpec, ...] | None = None, **specs: ArraySpec
) -> Callable[[F], F]:
    """Attach array contracts to named parameters (and optionally the return).

    ``returns`` may be one spec or a tuple of specs for tuple-returning
    functions; it shares the dimension environment with the arguments, so
    a function declared ``(u=FIELD, returns=FIELD)`` must return a field
    of the *same* shape it was given.
    """

    def decorate(fn: F) -> F:
        sig = inspect.signature(fn)
        unknown = set(specs) - set(sig.parameters)
        if unknown:
            raise TypeError(
                f"contract({', '.join(sorted(unknown))}) names parameters "
                f"{fn.__qualname__} does not have"
            )

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _State.enabled:
                return fn(*args, **kwargs)
            bound = sig.bind_partial(*args, **kwargs)
            env: dict[str, int] = {}
            for name, spec in specs.items():
                if name in bound.arguments:
                    spec.validate(
                        bound.arguments[name], env, f"{fn.__qualname__}({name})"
                    )
            result = fn(*args, **kwargs)
            if returns is not None:
                if isinstance(returns, tuple):
                    if not isinstance(result, tuple) or len(result) != len(returns):
                        raise ContractViolation(
                            f"{fn.__qualname__}: expected a {len(returns)}-tuple "
                            f"return, got {type(result).__name__}"
                        )
                    for i, (spec, value) in enumerate(zip(returns, result)):
                        spec.validate(value, env, f"{fn.__qualname__}(return[{i}])")
                else:
                    returns.validate(result, env, f"{fn.__qualname__}(return)")
            return result

        wrapper.__contract_specs__ = dict(specs)  # type: ignore[attr-defined]
        wrapper.__contract_returns__ = returns  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
