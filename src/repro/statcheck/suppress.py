"""Inline suppressions: ``# statcheck: ignore[RULE]`` comments.

Grammar (one comment per physical line)::

    x = np.dot(a, b)  # statcheck: ignore[backend-purity] -- setup-time only
    # statcheck: ignore[determinism, api-hygiene] -- reason for the next line
    y = roll()
    z = frob()  # statcheck: ignore -- silences every rule on this line

A trailing comment suppresses matching findings on its own line; a
standalone comment line suppresses them on the next non-blank line (so
long statements can carry a suppression without breaking the line-length
budget).  Rule names are the kebab-case rule ids; the bare form without
brackets suppresses all rules.  Everything after ``--`` is a free-form
reason, which reviewers should insist on.
"""

from __future__ import annotations

import re

__all__ = ["Suppressions", "parse_suppressions", "SUPPRESS_RE"]

SUPPRESS_RE = re.compile(
    r"#\s*statcheck:\s*ignore"  # marker
    r"(?:\[(?P<rules>[A-Za-z0-9_\-, ]+)\])?"  # optional [rule, rule]
    r"(?:\s*--\s*(?P<reason>.*))?$"  # optional -- reason
)


class Suppressions:
    """Per-line suppression table for one module."""

    def __init__(self) -> None:
        # line (1-based) -> set of rule ids, or None meaning "all rules".
        self._by_line: dict[int, set[str] | None] = {}

    def add(self, line: int, rules: set[str] | None) -> None:
        existing = self._by_line.get(line, set())
        if rules is None or existing is None:
            self._by_line[line] = None
        else:
            self._by_line[line] = existing | rules

    def is_suppressed(self, line: int, rule: str) -> bool:
        if line not in self._by_line:
            return False
        rules = self._by_line[line]
        return rules is None or rule in rules

    def forward(self, src: int, dst: int) -> None:
        """Make the suppression at ``src`` (if any) also cover ``dst``.

        Used by the engine to attach suppressions written on decorator
        lines to the decorated ``def``/``class`` statement, where rules
        actually report their findings.
        """
        if src in self._by_line and src != dst:
            self.add(dst, self._by_line[src])

    def __len__(self) -> int:
        return len(self._by_line)


def parse_suppressions(lines: list[str]) -> Suppressions:
    """Scan source lines for suppression comments.

    ``lines`` is the module split into physical lines (no trailing
    newlines required).  Returns the per-line table with standalone
    comments already forwarded to the line they guard.
    """
    sup = Suppressions()
    pending: list[set[str] | None] = []
    for lineno, text in enumerate(lines, start=1):
        stripped = text.strip()
        m = SUPPRESS_RE.search(text)
        if m is not None:
            rules_text = m.group("rules")
            rules = (
                {r.strip().lower() for r in rules_text.split(",") if r.strip()}
                if rules_text
                else None
            )
            if stripped.startswith("#"):
                # Standalone comment: applies to the next code line.
                pending.append(rules)
            else:
                sup.add(lineno, rules)
            continue
        if not stripped or stripped.startswith("#"):
            continue  # blank/comment lines do not consume pending suppressions
        for rules in pending:
            sup.add(lineno, rules)
        pending = []
    return sup
