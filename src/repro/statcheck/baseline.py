"""Committed baselines: pre-existing findings don't block, new ones do.

A baseline is a JSON file mapping finding fingerprints to their counts at
the time it was written (plus a human-readable locator per entry so the
file reviews meaningfully in diffs).  The gate is count-based: a run
fails when any fingerprint occurs *more often* than the baseline allows,
so duplicating an offending line is caught even though its fingerprint is
already known, while moving it around the file is not flagged.

Stale entries (baselined findings that no longer occur) are reported so
the baseline can be regenerated and ratcheted down; they never fail the
run on their own.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.statcheck.finding import Finding

__all__ = ["Baseline", "partition_findings"]

_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint -> allowed count, with per-entry locators for humans."""

    counts: dict[str, int]
    entries: dict[str, dict[str, object]]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(counts={}, entries={})

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        counts: dict[str, int] = {}
        entries: dict[str, dict[str, object]] = {}
        for f in findings:
            fp = f.fingerprint
            counts[fp] = counts.get(fp, 0) + 1
            entries.setdefault(
                fp,
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                },
            )
        return cls(counts=counts, entries=entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if data.get("version") != _VERSION:
            raise ValueError(
                f"baseline {path}: unsupported version {data.get('version')!r} "
                f"(expected {_VERSION}); regenerate with --write-baseline"
            )
        counts: dict[str, int] = {}
        entries: dict[str, dict[str, object]] = {}
        for fp, entry in data.get("findings", {}).items():
            counts[fp] = int(entry.get("count", 1))
            entries[fp] = {k: v for k, v in entry.items() if k != "count"}
        return cls(counts=counts, entries=entries)

    def write(self, path: Path) -> None:
        findings = {
            fp: {**self.entries.get(fp, {}), "count": n}
            for fp, n in self.counts.items()
        }
        payload = {
            "version": _VERSION,
            "tool": "repro.statcheck",
            "findings": dict(sorted(findings.items(), key=lambda kv: (
                str(kv[1].get("path", "")), int(kv[1].get("line", 0)), kv[0]
            ))),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def __len__(self) -> int:
        return sum(self.counts.values())


def partition_findings(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Split findings into ``(new, baselined, stale_fingerprints)``.

    For a fingerprint occurring ``k`` times with allowance ``n``, the first
    ``n`` occurrences (in location order) are baselined and the remaining
    ``k - n`` are new.  Fingerprints allowed by the baseline but absent
    from the run are returned as stale, so the baseline can be ratcheted.
    """
    remaining = dict(baseline.counts)
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        fp = f.fingerprint
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            old.append(f)
        else:
            new.append(f)
    stale = sorted(fp for fp, n in remaining.items() if n > 0)
    return new, old, stale
