"""Rule base class and AST helpers shared by the domain rules."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.engine import ModuleContext
from repro.statcheck.finding import Finding, Severity

__all__ = ["Rule", "attr_chain", "enclosing_loops", "call_name_arg"]


class Rule:
    """One named check over a parsed module.

    Subclasses set :attr:`name` (the kebab-case id used in suppressions
    and baselines), :attr:`severity` and implement :meth:`check`; they may
    narrow :meth:`applies` to scope themselves to specific packages.
    """

    name: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""

    def applies(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


def attr_chain(node: ast.AST) -> str | None:
    """Dotted name of an attribute/name chain (``np.random.rand``), else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def enclosing_loops(ctx: ModuleContext, node: ast.AST) -> list[ast.AST]:
    """The ``for``/``while`` statements lexically enclosing ``node``."""
    return [a for a in ctx.ancestors(node) if isinstance(a, (ast.For, ast.While))]


def call_name_arg(call: ast.Call) -> ast.expr | None:
    """First positional argument of a call, if any."""
    return call.args[0] if call.args else None
