"""span-hygiene: span and metric names must come from the phase registry.

Every span name must be one of the Fig. 4 phases (or belong to a
registered dynamic family like ``krylov.<solver>``), and every metric
name must belong to a registered family -- otherwise dashboards, the
Chrome-trace exporter and the bench comparator silently grow orphan
series nobody aggregates.  The registry lives in
:mod:`repro.observability.phases`; this rule closes the loop statically.

Only *constant* names can be checked: plain string literals are matched
exactly, f-strings by their leading constant prefix (``f"krylov.{name}"``
passes because ``krylov.`` is a registered family).  Fully dynamic names
(a bare variable) are skipped -- they are the framework's business, and
the framework modules themselves (``repro.observability``) are excluded.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.observability.phases import (
    METRIC_PREFIXES,
    SPAN_PREFIXES,
    is_registered_metric,
    is_registered_span,
)
from repro.statcheck.engine import ModuleContext
from repro.statcheck.finding import Finding, Severity
from repro.statcheck.rules.base import Rule

__all__ = ["SpanHygieneRule"]

#: Methods whose first argument is a span name.
_SPAN_METHODS = {"span", "record_span", "event", "region"}
#: Methods whose first argument is a metric name.  ``sample`` is the
#: tracer's timestamped counter-sample hook: its series land in the same
#: exported lanes as registry metrics, so the same taxonomy applies.
_METRIC_METHODS = {"counter", "gauge", "histogram", "sample"}


class SpanHygieneRule(Rule):
    name = "span-hygiene"
    severity = Severity.WARNING
    description = (
        "literal tracer span / RegionTimers region / metric names must match "
        "the Fig. 4 phase registry (repro.observability.phases)"
    )

    def applies(self, ctx: ModuleContext) -> bool:
        # The observability package *implements* the generic machinery
        # (metrics are constructed from arbitrary `name=` parameters there)
        # and statcheck ships fixture-like strings; both are out of scope.
        return not ctx.in_package("observability", "statcheck")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method in _SPAN_METHODS:
                kind, check, prefixes = "span", is_registered_span, SPAN_PREFIXES
            elif method in _METRIC_METHODS:
                kind, check, prefixes = "metric", is_registered_metric, METRIC_PREFIXES
            else:
                continue
            if not node.args:
                continue
            name = _constant_prefix(node.args[0])
            if name is None:
                continue  # dynamic name; not statically checkable
            literal, is_exact = name
            ok = check(literal) if is_exact else literal.startswith(tuple(prefixes)) or any(
                p.startswith(literal) for p in prefixes
            )
            if not ok:
                yield ctx.finding(
                    self,
                    node,
                    f"unregistered {kind} name {literal!r}: add it to "
                    f"repro.observability.phases or use a registered family "
                    f"({', '.join(prefixes)})",
                )


def _constant_prefix(node: ast.expr) -> tuple[str, bool] | None:
    """``(text, is_exact)`` for literals / f-string prefixes, else None.

    A plain string literal returns ``(value, True)``; an f-string whose
    first piece is a constant returns ``(prefix, False)``; anything else
    (bare variable, concatenation, empty-prefix f-string) returns None.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, True
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value, False
    return None
