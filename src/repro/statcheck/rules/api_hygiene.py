"""api-hygiene: mutable defaults, shadowed builtins, unreachable code.

Classic Python footguns that are cheap to catch statically and expensive
to debug in a numerics codebase: a mutable default aliases state across
calls (deadly for anything holding field history), a parameter named
``max`` turns the next ``max(...)`` three lines down into a type error,
and statements after an unconditional ``return``/``raise`` are dead
weight that reads as live logic.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.engine import ModuleContext
from repro.statcheck.finding import Finding, Severity
from repro.statcheck.rules.base import Rule

__all__ = ["ApiHygieneRule"]

#: Builtins whose shadowing in function scope is flagged.  Chosen for the
#: ones numerics code actually calls; deliberately excludes rarely-used
#: builtins so domain vocabulary ("bin", "iter" as a count) stays usable.
SHADOWED_BUILTINS = {
    "list", "dict", "set", "tuple", "str", "int", "float", "bool", "bytes",
    "sum", "max", "min", "abs", "round", "len", "range", "zip", "map",
    "filter", "sorted", "all", "any", "type", "input", "id", "vars", "next",
    "object", "print", "open", "slice",
}

_MUTABLE_CALLS = {"list", "dict", "set"}
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


class ApiHygieneRule(Rule):
    name = "api-hygiene"
    severity = Severity.WARNING
    description = (
        "no mutable default arguments, shadowed builtins in function scope, "
        "or unreachable statements after return/raise"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(ctx, node)
                yield from self._check_shadowing(ctx, node)
            yield from self._check_unreachable(ctx, node)

    # -- mutable defaults ----------------------------------------------------

    def _check_defaults(self, ctx: ModuleContext, fn) -> Iterator[Finding]:
        defaults = list(fn.args.defaults) + [d for d in fn.args.kw_defaults if d]
        for d in defaults:
            if isinstance(d, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(d, ast.Call)
                and isinstance(d.func, ast.Name)
                and d.func.id in _MUTABLE_CALLS
            ):
                yield ctx.finding(
                    self,
                    d,
                    f"mutable default argument in `{fn.name}()` is shared "
                    f"across calls; default to None and construct inside",
                    severity=Severity.ERROR,
                )

    # -- shadowed builtins ---------------------------------------------------

    def _check_shadowing(self, ctx: ModuleContext, fn) -> Iterator[Finding]:
        args = [
            *fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs,
            *([fn.args.vararg] if fn.args.vararg else []),
            *([fn.args.kwarg] if fn.args.kwarg else []),
        ]
        for a in args:
            if a.arg in SHADOWED_BUILTINS:
                yield ctx.finding(
                    self, a, f"parameter `{a.arg}` shadows a builtin in `{fn.name}()`"
                )
        for stmt in _walk_own_scope(fn):
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            elif isinstance(stmt, ast.For):
                targets = [stmt.target]
            for t in targets:
                for name in ast.walk(t):
                    if (
                        isinstance(name, ast.Name)
                        and isinstance(name.ctx, ast.Store)
                        and name.id in SHADOWED_BUILTINS
                    ):
                        yield ctx.finding(
                            self,
                            name,
                            f"assignment to `{name.id}` shadows a builtin "
                            f"in `{fn.name}()`",
                        )

    # -- unreachable statements ----------------------------------------------

    def _check_unreachable(self, ctx: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        for body in _statement_blocks(node):
            for i, stmt in enumerate(body[:-1]):
                if isinstance(stmt, _TERMINATORS):
                    nxt = body[i + 1]
                    kw = type(stmt).__name__.lower()
                    yield ctx.finding(
                        self,
                        nxt,
                        f"unreachable statement after `{kw}`",
                        severity=Severity.ERROR,
                    )
                    break  # one report per block is enough


def _walk_own_scope(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk ``fn`` without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue  # nested scopes report through their own visit
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _statement_blocks(node: ast.AST) -> Iterator[list[ast.stmt]]:
    for field in ("body", "orelse", "finalbody"):
        block = getattr(node, field, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            yield block
