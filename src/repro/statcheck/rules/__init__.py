"""The domain rule set.

Five rules, each encoding an invariant the paper's claims rest on; see the
individual modules for the rationale.  :data:`ALL_RULES` is the default
set the CLI runs; :func:`get_rules` resolves ``--select`` names.
"""

from __future__ import annotations

from repro.statcheck.rules.api_hygiene import ApiHygieneRule
from repro.statcheck.rules.backend_purity import BackendPurityRule
from repro.statcheck.rules.base import Rule
from repro.statcheck.rules.determinism import DeterminismRule
from repro.statcheck.rules.resource_discipline import ResourceDisciplineRule
from repro.statcheck.rules.span_hygiene import SpanHygieneRule

__all__ = [
    "Rule",
    "ALL_RULES",
    "get_rules",
    "BackendPurityRule",
    "DeterminismRule",
    "SpanHygieneRule",
    "ResourceDisciplineRule",
    "ApiHygieneRule",
]

ALL_RULES: tuple[type[Rule], ...] = (
    BackendPurityRule,
    DeterminismRule,
    SpanHygieneRule,
    ResourceDisciplineRule,
    ApiHygieneRule,
)


def get_rules(select: list[str] | None = None) -> list[Rule]:
    """Instantiate the rule set, optionally narrowed to ``select`` names."""
    by_name = {cls.name: cls for cls in ALL_RULES}
    if select is None:
        return [cls() for cls in ALL_RULES]
    unknown = [s for s in select if s not in by_name]
    if unknown:
        raise ValueError(f"unknown rule(s) {unknown}; available: {sorted(by_name)}")
    return [by_name[s]() for s in select]
