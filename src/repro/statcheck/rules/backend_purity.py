"""backend-purity: hot-loop array math must go through the device layer.

The paper's portability claim (one solver, CPU/CUDA/HIP backends) maps to
this codebase as the :mod:`repro.backend` device registry: kernels that
run inside loops should be expressed against the backend so the same code
drives the CPU path, the instrumented path and the simulated-GPU path.
A raw ``np.*`` call inside a ``for``/``while`` loop in the numerics
packages bypasses that layer -- it pins the inner loop to host NumPy and
becomes invisible to the launch-record instrumentation that calibrates
the performance model.

Vectorized ``np.*`` calls at *setup* time (mesh construction, operator
factorization) are fine and common; only calls lexically inside loop
bodies are flagged.  Pre-existing sites live in the committed baseline;
genuinely setup-time loops should carry an explicit
``# statcheck: ignore[backend-purity] -- reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.engine import ModuleContext
from repro.statcheck.finding import Finding, Severity
from repro.statcheck.rules.base import Rule, attr_chain, enclosing_loops

__all__ = ["BackendPurityRule"]

#: Packages whose loops are considered kernel-adjacent.
KERNEL_PACKAGES = ("sem", "gpu", "precond")

#: ``np.<attr>`` calls that are bookkeeping, not array math.
_ALLOWED = {"errstate", "seterr", "geterr", "get_printoptions", "set_printoptions"}


class BackendPurityRule(Rule):
    name = "backend-purity"
    severity = Severity.WARNING
    description = (
        "np.* array math inside for/while loops in repro.sem / repro.gpu / "
        "repro.precond must route through the backend registry (repro.backend)"
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_package(*KERNEL_PACKAGES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            if parts[0] not in ("np", "numpy") or len(parts) < 2:
                continue
            if parts[1] in _ALLOWED:
                continue
            if not enclosing_loops(ctx, node):
                continue
            yield ctx.finding(
                self,
                node,
                f"`{chain}()` inside a loop: route hot-loop array math through "
                f"the backend registry (repro.backend), or mark the loop as "
                f"setup-time with an explicit ignore",
            )
