"""resource-discipline: context-managed resources, no bare excepts.

The in-situ pipeline and the resilience subsystem are the two places
where this codebase touches the outside world (files, worker threads,
queues, locks) *and* where errors are deliberately survived.  That
combination makes leaked handles and swallowed exceptions expensive:

* an ``open()`` outside a ``with`` leaks its descriptor on the error
  paths the resilience layer exists to exercise;
* a ``lock.acquire()`` outside ``with`` deadlocks the pipeline when the
  guarded block raises;
* a bare ``except:`` catches ``KeyboardInterrupt`` / ``SystemExit`` and
  turns an operator's Ctrl-C into a hung drain loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.engine import ModuleContext
from repro.statcheck.finding import Finding, Severity
from repro.statcheck.rules.base import Rule

__all__ = ["ResourceDisciplineRule"]

#: Packages where resource handling is safety-critical.
RESOURCE_PACKAGES = ("insitu", "resilience", "core")


class ResourceDisciplineRule(Rule):
    name = "resource-discipline"
    severity = Severity.WARNING
    description = (
        "files and locks in repro.insitu / repro.resilience / repro.core must "
        "use context managers; no bare `except:`"
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_package(*RESOURCE_PACKAGES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        with_exprs = _with_context_exprs(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare `except:` catches KeyboardInterrupt/SystemExit; "
                    "catch `Exception` (or narrower) instead",
                    severity=Severity.ERROR,
                )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "open"
                    and id(node) not in with_exprs
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "`open()` outside a `with` block leaks the descriptor "
                        "on error paths; use `with open(...) as f:`",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                    and id(node) not in with_exprs
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "explicit `.acquire()`: prefer `with lock:` so the lock "
                        "is released when the guarded block raises",
                    )


def _with_context_exprs(tree: ast.AST) -> set[int]:
    """ids of every node appearing inside a ``with`` item's context expression."""
    ids: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    ids.add(id(sub))
    return ids
