"""determinism: no unseeded randomness, no wall-clock reads in numerics.

Reproducible DNS means a run is a pure function of its configuration:
the same case file must produce the same trajectory, checkpoint ring and
statistics.  Two things silently break that:

* **unseeded randomness** -- the legacy ``np.random.*`` module functions
  draw from hidden global state, and ``np.random.default_rng()`` without
  a seed is fresh entropy per construction;
* **wall-clock reads** -- ``time.time()`` / ``datetime.now()`` leak the
  scheduling of the run into its results.  Durations belong to
  ``time.perf_counter`` (timers/tracers), and anything that *decides*
  based on time must take an injectable clock, the pattern the
  resilience and observability layers established.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.engine import ModuleContext
from repro.statcheck.finding import Finding, Severity
from repro.statcheck.rules.base import Rule, attr_chain

__all__ = ["DeterminismRule"]

#: Wall-clock calls (dotted suffixes matched against the full chain).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
}


class DeterminismRule(Rule):
    name = "determinism"
    severity = Severity.ERROR
    description = (
        "no unseeded np.random.* / random.* and no wall-clock reads "
        "(time.time, datetime.now) -- seeded generators and injectable clocks only"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            yield from self._check_call(ctx, node, chain)

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call, chain: str
    ) -> Iterator[Finding]:
        parts = chain.split(".")
        root = parts[0]

        # numpy global-state RNG: np.random.rand(...) and friends.
        if root in ("np", "numpy") and len(parts) >= 3 and parts[1] == "random":
            if parts[2] in ("default_rng", "Generator", "SeedSequence"):
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        self,
                        node,
                        f"`{chain}()` without a seed draws fresh OS entropy; "
                        f"pass an explicit seed (e.g. `default_rng(seed)`)",
                    )
            else:
                yield ctx.finding(
                    self,
                    node,
                    f"`{chain}()` uses the hidden global RNG; construct a seeded "
                    f"`np.random.default_rng(seed)` and thread it through",
                )
            return

        # stdlib `random` module: global RNG, or unseeded Random().
        if root == "random" and len(parts) == 2:
            if parts[1] == "Random":
                if not node.args:
                    yield ctx.finding(
                        self, node, "`random.Random()` without a seed; pass one"
                    )
            else:
                yield ctx.finding(
                    self,
                    node,
                    f"`{chain}()` uses the global stdlib RNG; use a seeded "
                    f"`random.Random(seed)` or numpy `default_rng(seed)`",
                )
            return

        # Wall-clock reads.
        if chain in _WALL_CLOCK or any(chain.endswith("." + w) for w in _WALL_CLOCK):
            yield ctx.finding(
                self,
                node,
                f"`{chain}()` reads the wall clock; numerics must be a pure "
                f"function of the configuration -- inject a clock "
                f"(`clock=time.perf_counter`-style parameter) instead",
            )
