"""Flow-sensitive, interprocedural fixpoint dataflow framework.

Three pieces, each small and reusable by any analyzer:

* :class:`FlatLattice` -- a finite join-semilattice over a set of atoms
  with a distinguished bottom ("no information") and top ("conflicting
  information"); ``join`` is the least upper bound.  Height 3, so every
  monotone fixpoint over it terminates.
* :class:`AbstractInterpreter` -- a flow-sensitive walk of one function
  body mapping local variable names to lattice values.  Branches of an
  ``if`` are interpreted in parallel and joined; loop bodies are
  interpreted twice so loop-carried values reach their fixpoint (values
  only ever climb the lattice, and the lattice is finite, so two passes
  suffice for a height-3 lattice).  Subclasses provide the *transfer
  functions* (what a call or constant means in the abstract domain).
* :class:`SummarySolver` -- the interprocedural layer: computes one
  context-insensitive summary per call-graph function (the join of every
  observed argument binding -> the join of every reachable ``return``)
  with a worklist iteration that re-queues callers when a summary climbs
  and callees when their observed arguments climb.  Monotone + finite
  lattice => the worklist drains; a generous pass cap turns a framework
  bug into a loud error instead of a hang.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.statcheck.callgraph import CallGraph, FunctionInfo

__all__ = ["AbstractInterpreter", "FlatLattice", "FunctionSummary", "SummarySolver"]


class FlatLattice:
    """Bottom < atoms < top, with ``join`` as least upper bound."""

    def __init__(self, atoms: Iterable[str], bottom: str, top: str) -> None:
        self.bottom = bottom
        self.top = top
        self.atoms = tuple(a for a in atoms if a not in (bottom, top))
        self.values = (bottom, *self.atoms, top)

    def join(self, a: str, b: str) -> str:
        if a not in self.values or b not in self.values:
            bad = a if a not in self.values else b
            raise ValueError(f"{bad!r} is not an element of this lattice")
        if a == b:
            return a
        if a == self.bottom:
            return b
        if b == self.bottom:
            return a
        return self.top

    def join_all(self, values: Iterable[str]) -> str:
        out = self.bottom
        for v in values:
            out = self.join(out, v)
        return out

    def leq(self, a: str, b: str) -> bool:
        """Partial order: ``a <= b`` iff joining a into b changes nothing."""
        return self.join(a, b) == b


@dataclass
class FunctionSummary:
    """Context-insensitive summary of one function."""

    params: dict[str, str] = field(default_factory=dict)  # joined observed args
    ret: str = ""  # joined return value (lattice bottom until computed)


class AbstractInterpreter:
    """Flow-sensitive abstract interpretation of one function body.

    Subclasses override the ``transfer_*`` hooks; the base class owns the
    control flow (sequencing, branch joins, loop stabilization) and the
    generic expression structure (names, binops, subscripts, ternaries).
    """

    def __init__(self, lattice: FlatLattice) -> None:
        self.lattice = lattice
        #: id(ast.Call) -> resolved callee qname, for the current function.
        #: Filled by :class:`SummarySolver` (or the analyzer's emit pass).
        self.site_callees: dict[int, str | None] = {}

    def callee_of(self, node: ast.Call) -> str | None:
        return self.site_callees.get(id(node))

    # -- transfer hooks (the abstract domain) -------------------------------

    def transfer_call(
        self,
        node: ast.Call,
        chain: str | None,
        args: list[str],
        env: dict[str, str],
        recv: str,
    ) -> str:
        """Abstract value of a call; ``recv`` is the method receiver's value
        (lattice bottom for plain function calls).  Default: opaque."""
        return self.lattice.bottom

    def transfer_constant(self, node: ast.Constant) -> str:
        return self.lattice.bottom

    def transfer_attribute(self, node: ast.Attribute, env: dict[str, str]) -> str:
        return self.lattice.bottom

    def on_call(
        self, node: ast.Call, chain: str | None, args: list[str], env: dict[str, str]
    ) -> None:
        """Observation hook: every evaluated call, with argument values."""

    # -- expressions ---------------------------------------------------------

    def eval(self, node: ast.expr | None, env: dict[str, str]) -> str:
        bot = self.lattice.bottom
        if node is None:
            return bot
        if isinstance(node, ast.Name):
            return env.get(node.id, bot)
        if isinstance(node, ast.Constant):
            return self.transfer_constant(node)
        if isinstance(node, ast.Call):
            from repro.statcheck.rules.base import attr_chain

            # Evaluate the receiver expression of method calls too, so a
            # chain like ``helper(x).astype(...)`` sees its operand value.
            recv = bot
            if isinstance(node.func, ast.Attribute):
                recv = self.eval(node.func.value, env)
            args = [self.eval(a, env) for a in node.args]
            for kw in node.keywords:
                self.eval(kw.value, env)
            chain = attr_chain(node.func)
            self.on_call(node, chain, args, env)
            return self.transfer_call(node, chain, args, env, recv)
        if isinstance(node, ast.BinOp):
            return self.lattice.join(self.eval(node.left, env), self.eval(node.right, env))
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.BoolOp):
            return self.lattice.join_all(self.eval(v, env) for v in node.values)
        if isinstance(node, ast.Compare):
            self.eval(node.left, env)
            for c in node.comparators:
                self.eval(c, env)
            return bot
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return self.lattice.join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, ast.Subscript):
            return self.eval(node.value, env)
        if isinstance(node, ast.Attribute):
            return self.transfer_attribute(node, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self.lattice.join_all(self.eval(e, env) for e in node.elts)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_env = dict(env)
            for gen in node.generators:
                src = self.eval(gen.iter, env)
                self._bind_target(gen.target, src, comp_env)
            return self.eval(node.elt, comp_env)
        if isinstance(node, ast.DictComp):
            comp_env = dict(env)
            for gen in node.generators:
                src = self.eval(gen.iter, env)
                self._bind_target(gen.target, src, comp_env)
            return self.eval(node.value, comp_env)
        if isinstance(node, ast.Dict):
            return self.lattice.join_all(
                self.eval(v, env) for v in node.values if v is not None
            )
        if isinstance(node, ast.NamedExpr):
            val = self.eval(node.value, env)
            self._bind_target(node.target, val, env)
            return val
        if isinstance(node, ast.Lambda):
            return bot
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return bot
        if isinstance(node, ast.Await):
            return self.eval(node.value, env)
        return bot

    # -- statements ----------------------------------------------------------

    def _bind_target(self, target: ast.expr, value: str, env: dict[str, str]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, value, env)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value, env)
        # Attribute / Subscript targets mutate objects, not locals: ignored.

    def exec_block(
        self, stmts: list[ast.stmt], env: dict[str, str], returns: list[str]
    ) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env, returns)

    def exec_stmt(
        self, stmt: ast.stmt, env: dict[str, str], returns: list[str]
    ) -> None:
        join = self.lattice.join
        if isinstance(stmt, ast.Assign):
            val = self.eval(stmt.value, env)
            for t in stmt.targets:
                self._bind_target(t, val, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, self.eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            val = self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                env[name] = join(env.get(name, self.lattice.bottom), val)
        elif isinstance(stmt, ast.Return):
            returns.append(self.eval(stmt.value, env))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            env_then = dict(env)
            env_else = dict(env)
            self.exec_block(stmt.body, env_then, returns)
            self.exec_block(stmt.orelse, env_else, returns)
            self._merge_into(env, env_then, env_else)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            src = self.eval(stmt.iter, env)
            # Two passes: the first discovers loop-carried bindings, the
            # second lets values that climbed feed back into the body.
            for _ in range(2):
                self._bind_target(stmt.target, src, env)
                env_body = dict(env)
                self.exec_block(stmt.body, env_body, returns)
                self._merge_into(env, env_body)
            self.exec_block(stmt.orelse, env, returns)
        elif isinstance(stmt, ast.While):
            for _ in range(2):
                self.eval(stmt.test, env)
                env_body = dict(env)
                self.exec_block(stmt.body, env_body, returns)
                self._merge_into(env, env_body)
            self.exec_block(stmt.orelse, env, returns)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                val = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, val, env)
            self.exec_block(stmt.body, env, returns)
        elif isinstance(stmt, ast.Try):
            env_body = dict(env)
            self.exec_block(stmt.body, env_body, returns)
            self._merge_into(env, env_body)
            for handler in stmt.handlers:
                env_h = dict(env)
                self.exec_block(handler.body, env_h, returns)
                self._merge_into(env, env_h)
            self.exec_block(stmt.orelse, env, returns)
            self.exec_block(stmt.finalbody, env, returns)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            if isinstance(stmt, ast.Assert):
                self.eval(stmt.test, env)
            elif stmt.exc is not None:
                self.eval(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    env.pop(t.id, None)
        # Nested defs/classes, imports, pass, global/nonlocal: no effect
        # on the local abstract state.

    def _merge_into(self, env: dict[str, str], *branches: dict[str, str]) -> None:
        """Join branch environments back into ``env`` (in place)."""
        join = self.lattice.join
        bot = self.lattice.bottom
        keys = set(env)
        for b in branches:
            keys |= set(b)
        for k in keys:
            env[k] = self.lattice.join_all(
                [env.get(k, bot)] + [b.get(k, bot) for b in branches]
            )

    # -- whole-function driver ----------------------------------------------

    def run_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, params: dict[str, str]
    ) -> tuple[dict[str, str], str]:
        """Interpret one function body.

        Returns ``(final_env, joined_return_value)``.
        """
        env = dict(params)
        returns: list[str] = []
        self.exec_block(node.body, env, returns)
        return env, self.lattice.join_all(returns)


class SummarySolver:
    """Worklist fixpoint over the call graph's function summaries."""

    #: Hard cap on worklist passes; the finite lattice converges far
    #: earlier, so hitting the cap means a non-monotone transfer function.
    MAX_PASSES = 10_000

    def __init__(
        self,
        graph: "CallGraph",
        lattice: FlatLattice,
        make_interpreter,
        functions: Iterable[str] | None = None,
    ) -> None:
        self.graph = graph
        self.lattice = lattice
        #: ``make_interpreter(solver) -> AbstractInterpreter`` so analyzer
        #: interpreters can call back into :meth:`summary_for`.
        self.make_interpreter = make_interpreter
        self.summaries: dict[str, FunctionSummary] = {}
        self._scope = set(functions) if functions is not None else set(graph.functions)
        for qname in self._scope:
            info = graph.functions[qname]
            self.summaries[qname] = FunctionSummary(
                params={p: lattice.bottom for p in info.params}, ret=lattice.bottom
            )

    def summary_for(self, qname: str) -> FunctionSummary | None:
        return self.summaries.get(qname)

    def observe_call(self, callee: str, args: dict[str, str]) -> bool:
        """Join observed argument values into the callee's context.

        Returns True when the context climbed (the callee must be re-run).
        """
        summary = self.summaries.get(callee)
        if summary is None:
            return False
        changed = False
        for name, val in args.items():
            if name not in summary.params:
                continue
            joined = self.lattice.join(summary.params[name], val)
            if joined != summary.params[name]:
                summary.params[name] = joined
                changed = True
        return changed

    def solve(self) -> None:
        """Run the worklist to fixpoint."""
        work = list(self._scope)
        queued = set(work)
        passes = 0
        while work:
            passes += 1
            if passes > self.MAX_PASSES:
                raise RuntimeError(
                    "dataflow fixpoint did not converge -- non-monotone transfer?"
                )
            qname = work.pop()
            queued.discard(qname)
            info = self.graph.functions[qname]
            interp = self.make_interpreter(self)
            summary = self.summaries[qname]
            before = summary.ret
            changed_callees = self._run_one(interp, info, summary)
            for callee in changed_callees:
                if callee in self._scope and callee not in queued:
                    work.append(callee)
                    queued.add(callee)
            if summary.ret != before:
                for caller in self.graph.callers_of(qname):
                    if caller in self._scope and caller not in queued:
                        work.append(caller)
                        queued.add(caller)

    def _run_one(
        self, interp: AbstractInterpreter, info: "FunctionInfo", summary: FunctionSummary
    ) -> set[str]:
        """Interpret one function; returns callees whose context climbed."""
        changed: set[str] = set()
        solver = self
        interp.site_callees = {
            id(s.node): s.callee for s in self.graph.callees_of(info.qname)
        }

        original_on_call = interp.on_call

        def on_call(node, chain, args, env):  # noqa: ANN001 - hook signature
            callee = interp.callee_of(node)
            if callee is not None:
                callee_info = solver.graph.function(callee)
                if callee_info is not None:
                    bound = _bind_args(callee_info, node, args)
                    if solver.observe_call(callee, bound):
                        changed.add(callee)
            original_on_call(node, chain, args, env)

        interp.on_call = on_call  # type: ignore[method-assign]
        _, ret = interp.run_function(info.node, dict(summary.params))
        summary.ret = self.lattice.join(summary.ret, ret)
        return changed


def _bind_args(
    info: "FunctionInfo", node: ast.Call, args: list[str]
) -> dict[str, str]:
    """Positionally bind abstract argument values to the callee's params."""
    params = info.params
    offset = 1 if info.class_name is not None and params and params[0] == "self" else 0
    bound: dict[str, str] = {}
    for i, val in enumerate(args):
        idx = i + offset
        if idx < len(params):
            bound[params[idx]] = val
    return bound
